"""Unit tests for crossbar models: Eq. 1-2, mapping inversion, MNA.

The key cross-validation lives here: the behavioural (column-sum)
Eq. 2 model must agree with the MNA circuit solver in the vanishing-
wire-resistance limit, which pins down our reading of the paper's
ambiguous Eq. 2 subscripts.
"""

import numpy as np
import pytest

from repro.device.rram import HFOX_DEVICE, RRAMDevice
from repro.device.variation import NonIdealFactors
from repro.xbar.crossbar import Crossbar, coefficients_from_conductance
from repro.xbar.ir_drop import IRDropPoint, sweep_ir_drop, wire_resistance_for_node
from repro.xbar.mapping import DifferentialCrossbar, MappingConfig, solve_conductances
from repro.xbar.mna import MNACrossbar


class TestCoefficients:
    def test_column_sum_normalization(self):
        g = np.array([[1e-5, 2e-5], [3e-5, 4e-5]])
        c = coefficients_from_conductance(g, g_s=1e-3)
        expected = g / (1e-3 + g.sum(axis=0, keepdims=True))
        assert np.allclose(c, expected)

    def test_coefficients_below_one(self, rng):
        g = rng.uniform(HFOX_DEVICE.g_min, HFOX_DEVICE.g_max, (16, 8))
        c = coefficients_from_conductance(g, g_s=1e-3)
        assert np.all(c.sum(axis=0) < 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            coefficients_from_conductance(np.zeros(4), g_s=1e-3)
        with pytest.raises(ValueError):
            coefficients_from_conductance(-np.ones((2, 2)), g_s=1e-3)
        with pytest.raises(ValueError):
            coefficients_from_conductance(np.ones((2, 2)), g_s=0.0)


class TestCrossbar:
    def test_apply_matches_matrix_product(self, rng):
        g = rng.uniform(HFOX_DEVICE.g_min, HFOX_DEVICE.g_max, (6, 4))
        xbar = Crossbar(g, g_s=1e-3)
        v = rng.uniform(0, 1, (3, 6))
        assert np.allclose(xbar.apply(v), v @ xbar.coefficients())

    def test_input_dim_validation(self, rng):
        xbar = Crossbar(rng.uniform(1e-6, 1e-4, (4, 2)), g_s=1e-3)
        with pytest.raises(ValueError):
            xbar.apply(np.zeros((1, 5)))

    def test_pv_perturbs_coefficients(self, rng):
        g = rng.uniform(HFOX_DEVICE.g_min, HFOX_DEVICE.g_max, (5, 5))
        xbar = Crossbar(g, g_s=1e-3)
        noise = NonIdealFactors(sigma_pv=0.3, seed=0)
        c_noisy = xbar.coefficients(noise, noise.rng())
        assert not np.allclose(c_noisy, xbar.coefficients())

    def test_sf_perturbs_output(self, rng):
        g = rng.uniform(HFOX_DEVICE.g_min, HFOX_DEVICE.g_max, (5, 5))
        xbar = Crossbar(g, g_s=1e-3)
        v = rng.uniform(0.1, 1, (2, 5))
        noise = NonIdealFactors(sigma_sf=0.3, seed=0)
        assert not np.allclose(xbar.apply(v, noise), xbar.apply(v))

    def test_conductances_snapped_to_device(self):
        device = RRAMDevice(levels=2)
        g = np.full((2, 2), (device.g_min + device.g_max) / 2)
        xbar = Crossbar(g, g_s=1e-3, device=device)
        assert set(np.unique(xbar.conductances)) <= {device.g_min, device.g_max}


class TestMapping:
    def test_solve_inverts_eq2_exactly(self, rng):
        c_target = rng.uniform(0.001, 0.01, (8, 4))
        g = solve_conductances(c_target, g_s=1e-3, device=HFOX_DEVICE)
        assert np.allclose(coefficients_from_conductance(g, 1e-3), c_target)

    def test_solve_rejects_infeasible_columns(self):
        c = np.full((4, 1), 0.3)  # column sum 1.2 >= 1
        with pytest.raises(ValueError):
            solve_conductances(c, g_s=1e-3, device=HFOX_DEVICE)

    def test_solve_rejects_negative(self):
        with pytest.raises(ValueError):
            solve_conductances(-np.ones((2, 2)) * 0.001, g_s=1e-3, device=HFOX_DEVICE)

    @pytest.mark.parametrize("shape", [(4, 3), (32, 16), (100, 10)])
    def test_differential_pair_is_exact(self, shape, rng):
        weights = rng.normal(0, 1.5, shape)
        pair = DifferentialCrossbar(weights)
        x = rng.uniform(0, 1, (5, shape[0]))
        ideal = x @ weights
        scale = max(np.max(np.abs(ideal)), 1e-12)
        assert np.max(np.abs(pair.apply(x) - ideal)) / scale < 1e-10

    def test_differential_device_count(self, rng):
        pair = DifferentialCrossbar(rng.normal(size=(6, 3)))
        assert pair.device_count == 2 * 6 * 3

    def test_all_negative_weights(self, rng):
        weights = -np.abs(rng.normal(0, 1, (5, 2)))
        pair = DifferentialCrossbar(weights)
        x = rng.uniform(0, 1, (3, 5))
        assert np.allclose(pair.apply(x), x @ weights, atol=1e-9)

    def test_zero_weight_matrix(self):
        pair = DifferentialCrossbar(np.zeros((4, 2)))
        x = np.random.default_rng(0).uniform(0, 1, (3, 4))
        assert np.allclose(pair.apply(x), 0.0, atol=1e-9)

    def test_pv_noise_changes_output(self, rng):
        pair = DifferentialCrossbar(rng.normal(size=(6, 3)))
        x = rng.uniform(0, 1, (2, 6))
        noise = NonIdealFactors(sigma_pv=0.2, seed=1)
        assert not np.allclose(pair.apply(x, noise), pair.apply(x))

    def test_too_many_rows_raises(self):
        # Base coefficient times rows must stay under the headroom.
        config = MappingConfig(g_s=1e-3, row_sum_headroom=0.5)
        device = RRAMDevice(r_on=1e4, r_off=1e5)  # g_min/g_s = 1e-2
        with pytest.raises(ValueError):
            DifferentialCrossbar(np.ones((100, 2)), config=config, device=device)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MappingConfig(g_s=0.0)
        with pytest.raises(ValueError):
            MappingConfig(row_sum_headroom=1.0)
        with pytest.raises(ValueError):
            MappingConfig(coefficient_ceiling=0.0)


class TestMNA:
    def test_converges_to_ideal_model(self, rng):
        """The Eq. 2 column-sum reading must be the g_w -> inf limit."""
        g = rng.uniform(HFOX_DEVICE.g_min, HFOX_DEVICE.g_max, (8, 5))
        mna = MNACrossbar(g, g_s=1e-3, wire_resistance=1e-9)
        v = rng.uniform(0, 1, (4, 8))
        assert np.allclose(mna.solve(v), mna.ideal_outputs(v), atol=1e-4)

    def test_ir_drop_grows_with_wire_resistance(self, rng):
        g = rng.uniform(HFOX_DEVICE.g_min, HFOX_DEVICE.g_max, (16, 16))
        v = rng.uniform(0, 1, (4, 16))
        small = MNACrossbar(g, g_s=1e-3, wire_resistance=0.5).ir_drop_error(v)
        large = MNACrossbar(g, g_s=1e-3, wire_resistance=50.0).ir_drop_error(v)
        assert large > small

    def test_ir_drop_reduces_outputs(self, rng):
        # Wire resistance only drops potential: outputs can't exceed ideal.
        g = rng.uniform(HFOX_DEVICE.g_min, HFOX_DEVICE.g_max, (10, 10))
        v = rng.uniform(0, 1, (2, 10))
        mna = MNACrossbar(g, g_s=1e-3, wire_resistance=20.0)
        assert np.all(mna.solve(v) <= mna.ideal_outputs(v) + 1e-12)

    def test_single_input_superposition(self, rng):
        """Linear network: solving a batch equals solving rows separately."""
        g = rng.uniform(HFOX_DEVICE.g_min, HFOX_DEVICE.g_max, (5, 3))
        mna = MNACrossbar(g, g_s=1e-3, wire_resistance=2.0)
        v = rng.uniform(0, 1, (3, 5))
        batch = mna.solve(v)
        singles = np.vstack([mna.solve(v[i]) for i in range(3)])
        assert np.allclose(batch, singles)

    def test_validation(self):
        with pytest.raises(ValueError):
            MNACrossbar(np.ones(3), g_s=1e-3)
        with pytest.raises(ValueError):
            MNACrossbar(-np.ones((2, 2)), g_s=1e-3)
        with pytest.raises(ValueError):
            MNACrossbar(np.ones((2, 2)) * 1e-5, g_s=0.0)
        with pytest.raises(ValueError):
            MNACrossbar(np.ones((2, 2)) * 1e-5, g_s=1e-3, wire_resistance=0.0)

    def test_input_dim_validation(self, rng):
        mna = MNACrossbar(rng.uniform(1e-6, 1e-4, (4, 2)), g_s=1e-3)
        with pytest.raises(ValueError):
            mna.solve(np.zeros((1, 7)))


class TestIRDropSweep:
    def test_error_grows_with_size(self):
        points = sweep_ir_drop(sizes=[4, 32], wire_resistances=[5.0], n_vectors=4, seed=0)
        by_size = {p.size: p.relative_error for p in points}
        assert by_size[32] > by_size[4]

    def test_node_table(self):
        assert wire_resistance_for_node(90) == 2.0
        assert wire_resistance_for_node(22) > wire_resistance_for_node(90)
        with pytest.raises(ValueError):
            wire_resistance_for_node(7)

    def test_rejects_tiny_arrays(self):
        with pytest.raises(ValueError):
            sweep_ir_drop(sizes=[1], wire_resistances=[1.0])

    def test_point_fields(self):
        (point,) = sweep_ir_drop(sizes=[4], wire_resistances=[2.0], n_vectors=2, seed=1)
        assert isinstance(point, IRDropPoint)
        assert point.size == 4
        assert point.mean_abs_error >= 0.0


class TestMapMatrixHelper:
    def test_equivalent_to_constructor(self, rng):
        from repro.xbar.mapping import map_matrix

        weights = rng.normal(size=(6, 3))
        x = rng.uniform(0, 1, (4, 6))
        via_helper = map_matrix(weights).apply(x)
        via_ctor = DifferentialCrossbar(weights).apply(x)
        assert np.allclose(via_helper, via_ctor)

    def test_forwards_config(self, rng):
        from repro.xbar.mapping import map_matrix

        pair = map_matrix(
            rng.normal(size=(4, 2)), config=MappingConfig(input_nonlinearity=2.0)
        )
        assert pair.positive.nonlinearity == 2.0
