"""Chaos tests for the resilient executor layer.

Workers here genuinely misbehave — raise, hang, SIGKILL their own
process — and the assertions check the campaign-grade semantics:
bounded retry with backoff, stall-timeout pool rebuilds, crashed-worker
resubmission, and graceful degradation to serial execution (logged and
recorded in a span).
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.obs import trace as obs_trace
from repro.parallel import (
    TASK_RETRIES_ENV,
    TASK_TIMEOUT_ENV,
    ResilienceReport,
    RetryPolicy,
    TaskError,
    resilient_map,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _square(v):
    return v * v


def _kill_self_once(args):
    """SIGKILL this worker the first time; succeed on resubmission."""
    value, marker, parent_pid = args
    if not os.path.exists(marker) and os.getpid() != parent_pid:
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return value * value


def _hang_once(args):
    """Sleep far past the stall timeout the first time only."""
    value, marker = args
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write(str(os.getpid()))
        time.sleep(60)
    return value * value


def _raise_once(args):
    """Raise the first time; succeed on retry."""
    value, marker = args
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write(str(os.getpid()))
        raise RuntimeError("injected failure")
    return value * value


def _fail_in_workers(args):
    """Fail in any worker process; succeed only in the parent."""
    value, parent_pid = args
    if os.getpid() != parent_pid:
        raise RuntimeError("only the parent may run me")
    return value * value


def _always_raise(value):
    raise ValueError(f"task {value} is doomed")


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.timeout is None
        assert policy.retries == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(max_pool_rebuilds=-1)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "12.5")
        monkeypatch.setenv(TASK_RETRIES_ENV, "5")
        policy = RetryPolicy.from_env()
        assert policy.timeout == 12.5
        assert policy.retries == 5

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "12.5")
        monkeypatch.setenv(TASK_RETRIES_ENV, "5")
        policy = RetryPolicy.from_env(timeout=1.0, retries=1)
        assert policy.timeout == 1.0
        assert policy.retries == 1

    def test_env_unset_uses_defaults(self, monkeypatch):
        monkeypatch.delenv(TASK_TIMEOUT_ENV, raising=False)
        monkeypatch.delenv(TASK_RETRIES_ENV, raising=False)
        policy = RetryPolicy.from_env()
        assert policy.timeout is None
        assert policy.retries == 2

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff=0.1, max_backoff=0.35)
        assert policy.sleep_for(0) == pytest.approx(0.1)
        assert policy.sleep_for(1) == pytest.approx(0.2)
        assert policy.sleep_for(2) == pytest.approx(0.35)
        assert RetryPolicy(backoff=0.0).sleep_for(5) == 0.0


class TestSerialResilience:
    def test_happy_path_keeps_order(self):
        outcome = resilient_map(_square, [3, 1, 4, 1, 5], workers=1)
        assert outcome.results == [9, 1, 16, 1, 25]
        assert outcome.report.tasks == 5
        assert not outcome.report.degraded

    def test_retry_in_parent(self):
        state = {"calls": 0}

        def flaky(v):
            state["calls"] += 1
            if state["calls"] == 1:
                raise RuntimeError("first call fails")
            return v + 1

        outcome = resilient_map(
            flaky, [41], workers=1, policy=RetryPolicy(retries=2, backoff=0)
        )
        assert outcome.results == [42]
        assert outcome.report.retries == 1

    def test_exhaustion_raises_task_error_with_cause(self):
        with pytest.raises(TaskError) as excinfo:
            resilient_map(
                _always_raise, [7], workers=1,
                policy=RetryPolicy(retries=1, backoff=0),
            )
        assert excinfo.value.index == 0
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_zero_retries(self):
        with pytest.raises(TaskError):
            resilient_map(
                _always_raise, [1], workers=1,
                policy=RetryPolicy(retries=0, backoff=0),
            )


class TestChaosProcessPool:
    def test_crashed_worker_is_resubmitted(self, tmp_path):
        marker = tmp_path / "crash-marker"
        items = [(v, str(marker), os.getpid()) for v in range(6)]
        outcome = resilient_map(
            _kill_self_once, items, workers=2, kind="process",
            policy=RetryPolicy(retries=2, backoff=0.01),
        )
        assert outcome.results == [v * v for v in range(6)]
        assert outcome.report.crashes >= 1
        assert outcome.report.pool_rebuilds >= 1
        assert marker.exists()
        assert any("crashed" in event for event in outcome.report.events)

    def test_stall_timeout_fires_and_recovers(self, tmp_path):
        marker = tmp_path / "hang-marker"
        items = [(v, str(marker)) for v in range(4)]
        start = time.monotonic()
        outcome = resilient_map(
            _hang_once, items, workers=2, kind="process",
            policy=RetryPolicy(timeout=1.0, retries=2, backoff=0.01),
        )
        elapsed = time.monotonic() - start
        assert outcome.results == [v * v for v in range(4)]
        assert outcome.report.timeouts >= 1
        assert elapsed < 30  # rebuilt, not waiting out the 60s sleep
        assert any("rebuilding pool" in event for event in outcome.report.events)

    def test_worker_exception_is_retried(self, tmp_path):
        marker = tmp_path / "raise-marker"
        items = [(v, str(marker)) for v in range(5)]
        outcome = resilient_map(
            _raise_once, items, workers=2, kind="process",
            policy=RetryPolicy(retries=2, backoff=0.01),
        )
        assert outcome.results == [v * v for v in range(5)]
        assert outcome.report.retries >= 1

    def test_thread_pool_retry(self, tmp_path):
        marker = tmp_path / "thread-marker"
        items = [(v, str(marker)) for v in range(4)]
        outcome = resilient_map(
            _raise_once, items, workers=2, kind="thread",
            policy=RetryPolicy(retries=2, backoff=0.01),
        )
        assert outcome.results == [v * v for v in range(4)]
        assert outcome.report.retries >= 1


class TestSerialDegradation:
    def test_exhausted_tasks_degrade_to_serial_with_span(self):
        # Fails in every worker, succeeds in the parent: the pool burns
        # the retry budget, then the serial fallback completes the map.
        items = [(v, os.getpid()) for v in range(3)]
        obs_trace.enable(True)
        obs_trace.clear()
        try:
            outcome = resilient_map(
                _fail_in_workers, items, workers=2, kind="process",
                policy=RetryPolicy(retries=1, backoff=0.01),
            )
            names = {record.name for record in obs_trace.get_records()}
        finally:
            obs_trace.enable(False)
            obs_trace.clear()
        assert outcome.results == [0, 1, 4]
        assert outcome.report.degraded
        assert outcome.report.serial_fallback_tasks == 3
        assert "resilient_serial_fallback" in names
        assert "resilient_map" in names
        assert any("degrading" in event for event in outcome.report.events)

    def test_unpicklable_work_degrades_upfront(self):
        offset = 5
        with pytest.warns(RuntimeWarning, match="not picklable"):
            outcome = resilient_map(
                lambda v: v + offset, [1, 2, 3], workers=2, kind="process"
            )
        assert outcome.results == [6, 7, 8]
        assert outcome.report.degraded
        assert any("not picklable" in event for event in outcome.report.events)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown executor kind"):
            resilient_map(_square, [1, 2], workers=2, kind="gpu")


class TestReportShape:
    def test_to_dict_roundtrips_json_safe(self):
        report = ResilienceReport(tasks=3)
        report.record("something happened")
        payload = report.to_dict()
        assert payload["tasks"] == 3
        assert payload["events"] == ["something happened"]
        assert set(payload) == {
            "tasks", "retries", "timeouts", "crashes", "pool_rebuilds",
            "serial_fallback_tasks", "degraded", "events",
        }

    def test_results_iterate_in_order(self):
        outcome = resilient_map(_square, [2, 3], workers=1)
        assert list(outcome) == [4, 9]

    def test_bit_identity_serial_vs_pooled(self):
        """Resilience must not change results, only where tasks run."""
        values = list(np.linspace(0.0, 1.0, 8))
        serial = resilient_map(_square, values, workers=1).results
        pooled = resilient_map(_square, values, workers=2, kind="process").results
        assert serial == pooled
