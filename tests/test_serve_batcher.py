"""Micro-batcher semantics: fusion, shedding, deadlines, invisibility.

The load-bearing property (satellite of the serving PR): **batching is
invisible** — a request decoded out of a fused batch equals the same
request served alone, for *any* interleaving of concurrent requests
and any ``max_batch``/``max_delay`` policy.  Hypothesis drives that
over a bit-exact element-wise engine (row-wise arithmetic commutes
with concatenation exactly); a fixed-seed real-MEI test then pins the
same property on the actual encode → crossbar → comparator → decode
pipeline, where the comparator's 0.5 hardening makes the decoded
outputs batch-shape independent.

Chaos-path coverage (crashes, stalls, retry exhaustion) lives in
``tests/test_serve_chaos.py``.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import knobs
from repro.core.mei import MEI, MEIConfig
from repro.nn.trainer import TrainConfig
from repro.obs import metrics as obs_metrics
from repro.parallel.resilient import RetryPolicy
from repro.serve import (
    BatchPolicy,
    DeadlineExceeded,
    InferenceEngine,
    MicroBatcher,
    QueueOverflow,
    RequestError,
    ServeError,
)

FAST_RETRY = RetryPolicy(timeout=None, retries=2, backoff=0.0)


def _double(batch):
    """Row-wise element-wise reference engine: exact under concatenation."""
    return np.asarray(batch) * 2.0 + 0.25


def _req(rows, dim=3, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 1.0, (rows, dim))


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.002)


class _GatedEngine:
    """Blocks the first evaluation until released — lets a test park the
    dispatcher so follow-up requests provably queue (and then fuse)."""

    def __init__(self, fn=_double):
        self.fn = fn
        self.gate = threading.Event()
        self.calls = []

    def __call__(self, batch):
        self.calls.append(np.asarray(batch).shape)
        if len(self.calls) == 1:
            assert self.gate.wait(10)
        return self.fn(batch)


class TestBatching:
    def test_single_request_roundtrip(self):
        with MicroBatcher(_double, BatchPolicy(max_batch=8, max_delay=0.0),
                          retry=FAST_RETRY) as batcher:
            values = _req(3)
            assert np.array_equal(batcher.submit(values).result(10), _double(values))

    def test_concurrent_requests_fuse_into_one_evaluation(self):
        engine = _GatedEngine()
        policy = BatchPolicy(max_batch=16, max_delay=0.0)
        with MicroBatcher(engine, policy, retry=FAST_RETRY) as batcher:
            first = batcher.submit(_req(2, seed=1))
            _wait_for(lambda: len(engine.calls) == 1)
            second = batcher.submit(_req(3, seed=2))
            third = batcher.submit(_req(4, seed=3))
            engine.gate.set()
            second.result(10), third.result(10), first.result(10)
        assert engine.calls == [(2, 3), (7, 3)]  # 3+4 fused into one pass
        counters = obs_metrics.snapshot()["counters"]
        assert counters["serve_batches"] == 2.0
        assert counters["serve_requests"] == 3.0
        assert counters["serve_responses"] == 3.0

    def test_fused_responses_match_requests_served_alone(self):
        engine = _GatedEngine()
        requests = [_req(rows, seed=rows) for rows in (2, 1, 3)]
        with MicroBatcher(engine, BatchPolicy(max_batch=16, max_delay=0.0),
                          retry=FAST_RETRY) as batcher:
            blocker = batcher.submit(_req(1, seed=9))
            _wait_for(lambda: len(engine.calls) == 1)
            futures = [batcher.submit(r) for r in requests]
            engine.gate.set()
            results = [f.result(10) for f in futures]
            blocker.result(10)
        for request, result in zip(requests, results):
            assert np.array_equal(result, _double(request))

    def test_oversize_request_forms_its_own_batch(self):
        with MicroBatcher(_double, BatchPolicy(max_batch=2, max_delay=0.0),
                          retry=FAST_RETRY) as batcher:
            values = _req(5)
            assert np.array_equal(batcher.submit(values).result(10), _double(values))

    def test_small_requests_never_split_across_batches(self):
        """A request is a unit: a batch closes *before* a request that
        would overflow ``max_batch``, never mid-request."""
        engine = _GatedEngine()
        with MicroBatcher(engine, BatchPolicy(max_batch=4, max_delay=0.0),
                          retry=FAST_RETRY) as batcher:
            blocker = batcher.submit(_req(1, seed=9))
            _wait_for(lambda: len(engine.calls) == 1)
            futures = [batcher.submit(_req(3, seed=s)) for s in (1, 2)]
            engine.gate.set()
            for future in futures:
                future.result(10)
            blocker.result(10)
        assert engine.calls == [(1, 3), (3, 3), (3, 3)]


class TestOverloadAndDeadlines:
    def test_queue_overflow_sheds_loudly(self):
        engine = _GatedEngine()
        policy = BatchPolicy(max_batch=1, max_delay=0.0, queue_limit=2)
        with MicroBatcher(engine, policy, retry=FAST_RETRY) as batcher:
            blocker = batcher.submit(_req(1, seed=0))
            _wait_for(lambda: len(engine.calls) == 1)
            queued = [batcher.submit(_req(1, seed=s)) for s in (1, 2)]
            with pytest.raises(QueueOverflow):
                batcher.submit(_req(1, seed=3))
            assert obs_metrics.snapshot()["counters"]["serve_shed"] == 1.0
            engine.gate.set()
            blocker.result(10)
            for future in queued:  # shed request gone, queued ones served
                assert future.result(10) is not None

    def test_expired_deadline_rejected_before_evaluation(self):
        engine = _GatedEngine()
        policy = BatchPolicy(max_batch=4, max_delay=0.0, deadline=0.05)
        with MicroBatcher(engine, policy, retry=FAST_RETRY) as batcher:
            first = batcher.submit(_req(1, seed=0))
            _wait_for(lambda: len(engine.calls) == 1)
            late = batcher.submit(_req(1, seed=1))
            time.sleep(0.15)  # let the queued request's deadline lapse
            engine.gate.set()
            first.result(10)
            with pytest.raises(DeadlineExceeded):
                late.result(10)
        assert obs_metrics.snapshot()["counters"]["serve_deadline_misses"] == 1.0
        assert len(engine.calls) == 1  # the late request never reached the engine


class TestLifecycle:
    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(_double, BatchPolicy(), retry=FAST_RETRY)
        batcher.close()
        with pytest.raises(ServeError, match="closed"):
            batcher.submit(_req(1))

    def test_close_fails_undrained_requests(self):
        engine = _GatedEngine()
        batcher = MicroBatcher(engine, BatchPolicy(max_batch=1, max_delay=0.0),
                               retry=FAST_RETRY)
        blocker = batcher.submit(_req(1, seed=0))
        _wait_for(lambda: len(engine.calls) == 1)
        stuck = batcher.submit(_req(1, seed=1))
        batcher.close(timeout=0.2)  # dispatcher is parked; queue must not leak
        with pytest.raises(ServeError):
            stuck.result(10)
        engine.gate.set()
        blocker.result(10)  # in-flight batch still completes exactly once

    def test_malformed_submit_rejected(self):
        with MicroBatcher(_double, BatchPolicy(), retry=FAST_RETRY) as batcher:
            with pytest.raises(RequestError):
                batcher.submit(np.zeros(3))  # 1-D: validate() upstream reshapes

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_delay=-0.1)
        with pytest.raises(ValueError):
            BatchPolicy(queue_limit=0)
        with pytest.raises(ValueError):
            BatchPolicy(deadline=0.0)

    def test_policy_from_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "7")
        monkeypatch.setenv("REPRO_SERVE_MAX_DELAY_MS", "5")
        monkeypatch.setenv("REPRO_SERVE_QUEUE_LIMIT", "3")
        monkeypatch.setenv("REPRO_SERVE_DEADLINE_MS", "50")
        policy = BatchPolicy.from_knobs()
        assert policy.max_batch == 7
        assert policy.max_delay == pytest.approx(0.005)
        assert policy.queue_limit == 3
        assert policy.deadline == pytest.approx(0.05)
        assert knobs.get_float("REPRO_SERVE_DEADLINE_MS") == 50.0

    def test_default_deadline_is_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_DEADLINE_MS", raising=False)
        assert BatchPolicy.from_knobs().deadline is None


class TestBatchingInvisibility:
    """The property suite: fused == alone, over arbitrary interleavings."""

    @settings(max_examples=25, deadline=None)
    @given(
        requests=st.lists(
            st.lists(
                st.lists(
                    st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False, width=64),
                    min_size=3, max_size=3,
                ),
                min_size=1, max_size=4,
            ),
            min_size=1, max_size=6,
        ),
        max_batch=st.sampled_from([1, 2, 7, 64]),
        max_delay=st.sampled_from([0.0, 0.003]),
    )
    def test_any_interleaving_decodes_as_if_served_alone(
        self, requests, max_batch, max_delay
    ):
        arrays = [np.asarray(r, dtype=float) for r in requests]
        policy = BatchPolicy(max_batch=max_batch, max_delay=max_delay)
        with MicroBatcher(_double, policy, retry=FAST_RETRY) as batcher:
            futures = [batcher.submit(a) for a in arrays]
            results = [f.result(10) for f in futures]
        for array, result in zip(arrays, results):
            assert result.shape == array.shape
            assert np.array_equal(result, _double(array))

    def test_real_mei_batched_equals_alone(self):
        """Fixed-seed pin on the production engine: requests fused into
        one crossbar pass decode exactly as when served alone — the
        comparator hardens every bit against 0.5, so the decoded
        outputs carry no trace of the batch they rode in."""
        rng = np.random.default_rng(7)
        config = MEIConfig(in_groups=2, out_groups=1, hidden=6, bits=4)
        x = rng.uniform(0.0, 1.0, (32, config.in_groups))
        y = rng.uniform(0.0, 1.0, (32, config.out_groups))
        mei = MEI(config, seed=7).train(
            x, y, TrainConfig(epochs=3, batch_size=16, learning_rate=0.02,
                              shuffle_seed=7)
        )
        engine = InferenceEngine(mei)
        gated = _GatedEngine(fn=engine.predict)
        requests = [
            rng.uniform(0.0, 1.0, (rows, config.in_groups)) for rows in (2, 3, 1, 4)
        ]
        with MicroBatcher(gated, BatchPolicy(max_batch=32, max_delay=0.0),
                          retry=FAST_RETRY) as batcher:
            blocker = batcher.submit(rng.uniform(0.0, 1.0, (1, config.in_groups)))
            _wait_for(lambda: len(gated.calls) == 1)
            futures = [batcher.submit(r) for r in requests]
            gated.gate.set()
            results = [f.result(30) for f in futures]
            blocker.result(30)
        assert gated.calls == [(1, 2), (10, 2)]  # all four fused into one pass
        for request, result in zip(requests, results):
            assert np.array_equal(result, engine.predict(request))
