"""The weight->conductance mapping cache.

Re-deploying the same trained weights (MC trials, fault campaigns,
sweep repeats) must reuse the solved mapping — bit-for-bit — while
fault injection on one deployment stays isolated from every other.
"""

import numpy as np
import pytest

from repro.device.rram import HFOX_DEVICE, RRAMDevice
from repro.obs import metrics as obs_metrics
from repro.xbar import mapping
from repro.xbar.mapping import (
    MAPPING_CACHE_CAPACITY,
    DifferentialCrossbar,
    MappingConfig,
    clear_mapping_cache,
    map_matrix,
    mapping_cache_size,
)


@pytest.fixture(autouse=True)
def _cold_cache():
    clear_mapping_cache()
    yield
    clear_mapping_cache()


def _weights(seed=0, shape=(6, 4)):
    return np.random.default_rng(seed).uniform(-1, 1, shape)


def _counter(name):
    return obs_metrics.counter(name).value


class TestHitMiss:
    def test_second_deploy_hits(self):
        w = _weights()
        map_matrix(w)
        assert _counter("mapping_cache_misses") == 1
        map_matrix(w)
        assert _counter("mapping_cache_hits") == 1
        assert mapping_cache_size() == 1

    def test_hit_is_bit_identical(self):
        w = _weights()
        first = map_matrix(w)
        second = map_matrix(w)
        assert second.scale == first.scale
        assert np.array_equal(second.positive.conductances, first.positive.conductances)
        assert np.array_equal(second.negative.conductances, first.negative.conductances)

    def test_different_weights_miss(self):
        map_matrix(_weights(0))
        map_matrix(_weights(1))
        assert _counter("mapping_cache_misses") == 2
        assert _counter("mapping_cache_hits") == 0

    def test_config_participates_in_key(self):
        w = _weights()
        map_matrix(w, config=MappingConfig())
        map_matrix(w, config=MappingConfig(row_sum_headroom=0.4))
        assert _counter("mapping_cache_misses") == 2

    def test_device_participates_in_key(self):
        w = _weights()
        other = RRAMDevice(
            r_on=HFOX_DEVICE.r_on * 0.5,
            r_off=HFOX_DEVICE.r_off,
            levels=HFOX_DEVICE.levels,
        )
        map_matrix(w, device=HFOX_DEVICE)
        map_matrix(w, device=other)
        assert _counter("mapping_cache_misses") == 2

    def test_same_bytes_different_shape_miss(self):
        w = _weights(shape=(6, 4))
        map_matrix(w)
        map_matrix(w.reshape(4, 6))
        assert _counter("mapping_cache_misses") == 2


class TestIsolation:
    def test_mutating_one_deployment_does_not_leak(self):
        w = _weights()
        first = map_matrix(w)
        baseline = first.positive.conductances.copy()
        first.positive.conductances[:] = 0.0  # fault injection in place
        second = map_matrix(w)
        assert np.array_equal(second.positive.conductances, baseline)

    def test_caller_mutating_weights_after_deploy_is_safe(self):
        w = _weights()
        first = map_matrix(w)
        w_snapshot = w.copy()
        w[0, 0] += 1.0
        second = map_matrix(w)  # new key: real re-solve, not a stale hit
        assert _counter("mapping_cache_misses") == 2
        third = map_matrix(w_snapshot)
        assert np.array_equal(third.positive.conductances, first.positive.conductances)


class TestLifecycle:
    def test_clear_empties_cache(self):
        map_matrix(_weights())
        assert mapping_cache_size() == 1
        clear_mapping_cache()
        assert mapping_cache_size() == 0

    def test_capacity_is_bounded_lru(self, monkeypatch):
        monkeypatch.setattr(mapping, "MAPPING_CACHE_CAPACITY", 3)
        for seed in range(5):
            map_matrix(_weights(seed, shape=(3, 2)))
        assert mapping_cache_size() == 3
        # seed 0 and 1 were evicted; re-deploying them misses again.
        map_matrix(_weights(0, shape=(3, 2)))
        assert _counter("mapping_cache_hits") == 0
        # seed 4 is still resident.
        map_matrix(_weights(4, shape=(3, 2)))
        assert _counter("mapping_cache_hits") == 1

    def test_capacity_constant_is_sane(self):
        assert MAPPING_CACHE_CAPACITY >= 16

    def test_direct_constructor_also_cached(self):
        w = _weights()
        DifferentialCrossbar(w)
        DifferentialCrossbar(w)
        assert _counter("mapping_cache_hits") == 1
