"""Shared-memory ndarray transport (``REPRO_SHM``).

Contract: with the knob on, a :class:`ProcessExecutor` sweep returns
results bit-identical to the default pickling path, ships each large
array into shared memory exactly once, and leaves no ``/dev/shm``
segment behind when the map completes.
"""

import glob
import pickle

import numpy as np
import pytest

from repro.parallel.executor import ProcessExecutor, SerialExecutor
from repro.parallel.shm import SHM_MIN_BYTES, ShmRef, ShmSession, dumps, loads, shm_enabled


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


def _big(seed=0, n=256):
    # n*n float64 = 512 KiB — comfortably past SHM_MIN_BYTES.
    return np.random.default_rng(seed).standard_normal((n, n))


class TestRoundTrip:
    def test_large_array_round_trips_bit_identical(self):
        x = _big()
        with ShmSession() as session:
            blob = dumps({"x": x, "tag": "payload"}, session)
            out = loads(blob)
            assert np.array_equal(out["x"], x)
            assert out["tag"] == "payload"

    def test_small_arrays_stay_inline(self):
        x = np.arange(8.0)
        with ShmSession() as session:
            blob = dumps(x, session)
            assert session._segments == []
            # No persistent id was emitted, so a plain Unpickler works.
            assert np.array_equal(pickle.loads(blob), x)

    def test_threshold_is_configurable(self):
        x = np.arange(32.0)
        with ShmSession() as session:
            blob = dumps(x, session, min_bytes=64)
            with pytest.raises(pickle.UnpicklingError):
                pickle.loads(blob)  # persistent id present -> plain loads fails
            assert np.array_equal(loads(blob), x)

    def test_attached_view_is_read_only(self):
        x = _big()
        with ShmSession() as session:
            out = loads(dumps(x, session))
            assert not out.flags.writeable
            with pytest.raises(ValueError):
                out[0, 0] = 1.0

    def test_non_contiguous_array_round_trips(self):
        x = _big()[::2, ::2]
        assert not x.flags.c_contiguous
        with ShmSession() as session:
            assert np.array_equal(loads(dumps(x, session)), x)


class TestDedup:
    def test_one_array_many_items_one_segment(self):
        x = _big()
        items = [{"base": x, "i": i} for i in range(12)]
        with ShmSession() as session:
            for item in items:
                dumps(item, session)
            assert len(session._segments) == 1

    def test_session_counts_segments(self):
        x, y = _big(0), _big(1)
        with ShmSession() as session:
            dumps([x, x, y], session)
            dumps({"again": x}, session)
            assert len(session._segments) == 2


class TestCleanup:
    def test_session_unlinks_all_segments(self):
        before = _shm_segments()
        session = ShmSession()
        dumps(_big(), session)
        assert _shm_segments() - before  # segment exists while open
        session.close()
        assert _shm_segments() - before == set()

    def test_close_is_idempotent(self):
        session = ShmSession()
        dumps(_big(), session)
        session.close()
        session.close()


class TestKnob:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert shm_enabled() is False

    def test_enabled_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "1")
        assert shm_enabled() is True


def _weighted_sum(item):
    base, w = item
    return float(base.sum() * w)


class TestExecutorIntegration:
    def test_shm_map_matches_default_and_serial(self, monkeypatch):
        base = _big()
        items = [(base, w) for w in (0.5, 1.0, 2.0, 4.0)]
        expected = SerialExecutor().map(_weighted_sum, items)

        monkeypatch.delenv("REPRO_SHM", raising=False)
        default = ProcessExecutor(workers=2).map(_weighted_sum, items)
        monkeypatch.setenv("REPRO_SHM", "1")
        via_shm = ProcessExecutor(workers=2).map(_weighted_sum, items)

        assert via_shm == default == expected

    def test_shm_map_cleans_up(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "1")
        before = _shm_segments()
        base = _big()
        ProcessExecutor(workers=2).map(_weighted_sum, [(base, 1.0), (base, 2.0)])
        assert _shm_segments() - before == set()

    def test_unpicklable_task_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "1")
        offset = 10.0
        with pytest.warns(RuntimeWarning, match="picklable"):
            out = ProcessExecutor(workers=2).map(
                lambda v: v + offset, [1.0, 2.0]
            )
        assert out == [11.0, 12.0]


def test_shmref_is_compact():
    ref = ShmRef(name="psm_x", shape=(4, 4), dtype="float64")
    assert len(pickle.dumps(ref)) < 200


def test_min_bytes_constant_is_sane():
    assert SHM_MIN_BYTES == 1 << 16


def test_worker_attach_cache_survives_repeated_items():
    # Same blob loaded twice in one process must not re-attach per load.
    x = _big()
    with ShmSession() as session:
        blob = dumps(x, session)
        a = loads(blob)
        b = loads(blob)
        assert np.array_equal(a, b)
        assert a.base is not None and b.base is not None


def test_environ_access_goes_through_knobs(monkeypatch):
    # shm_enabled must honour registry coercion, not raw env truthiness.
    monkeypatch.setenv("REPRO_SHM", "off")
    assert shm_enabled() is False
    monkeypatch.setenv("REPRO_SHM", "yes")
    assert shm_enabled() is True
