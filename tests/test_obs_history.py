"""Tests for the benchmark-trajectory subsystem.

Covers the history store (``repro.obs.history``), the regression gate
(``repro.obs.compare``), the markdown/HTML reporting
(``repro.obs.report``), the ``bench``/``compare``/``report`` CLI
wiring, and the version stamping satellite.
"""

import json
from html.parser import HTMLParser

import pytest

import repro
from repro.__main__ import main
from repro.experiments.runner import ExperimentScale
from repro.obs import compare as obs_compare
from repro.obs import history as obs_history
from repro.obs import metrics as obs_metrics
from repro.obs import report as obs_report
from repro.obs import runinfo
from repro.obs import trace as obs_trace
from repro.obs.trace import span

TINY = ExperimentScale(name="tiny", n_train=300, n_test=80, epochs=15, noise_trials=2)

SHA_A = "a" * 40
SHA_B = "b" * 40


def _entry(sha, created, metrics, **extra):
    return {
        "kind": "bench",
        "created": created,
        "git_sha": sha,
        "version": repro.__version__,
        "seed": 0,
        "scale": "quick",
        "metrics": metrics,
        **extra,
    }


def _write_history(path, entries):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(json.dumps(e) for e in entries) + "\n")
    return path


class TestHistoryStore:
    def test_append_and_load_round_trip(self, tmp_path):
        store = tmp_path / "history.jsonl"
        entry = _entry(SHA_A, "2026-01-01T00:00:00", {"table1.fft.error_mei": 0.1})
        target = obs_history.append_entry(entry, store)
        assert target == store
        obs_history.append_entry(
            _entry(SHA_B, "2026-01-02T00:00:00", {"table1.fft.error_mei": 0.2}), store
        )
        loaded = obs_history.load_history(store)
        assert [e["git_sha"] for e in loaded] == [SHA_A, SHA_B]

    def test_corrupt_lines_are_skipped(self, tmp_path):
        store = tmp_path / "history.jsonl"
        store.write_text(
            json.dumps(_entry(SHA_A, "t1", {"m": 1.0}))
            + "\n{not json\n\n"
            + json.dumps(_entry(SHA_B, "t2", {"m": 2.0}))
            + "\n"
        )
        assert len(obs_history.load_history(store)) == 2

    def test_missing_store_is_empty(self, tmp_path):
        assert obs_history.load_history(tmp_path / "nope.jsonl") == []

    def test_sha_prefix_lookup_and_latest(self, tmp_path):
        history = [
            _entry(SHA_A, "2026-01-01T00:00:00", {"m": 1.0}),
            _entry(SHA_B, "2026-01-02T00:00:00", {"m": 2.0}),
            _entry(SHA_A, "2026-01-03T00:00:00", {"m": 3.0}),
        ]
        assert len(obs_history.entries_for_sha(history, SHA_A[:8])) == 2
        latest = obs_history.latest_entry(history)
        assert latest["metrics"]["m"] == 3.0
        latest_b = obs_history.latest_entry(history, sha=SHA_B)
        assert latest_b["metrics"]["m"] == 2.0

    def test_aggregate_means_repeated_runs(self):
        history = [
            _entry(SHA_A, "t1", {"m": 1.0, "only_first": 5.0}),
            _entry(SHA_A, "t2", {"m": 3.0}),
        ]
        agg = obs_history.aggregate_metrics(history)
        assert agg["m"] == 2.0
        assert agg["only_first"] == 5.0

    def test_build_entry_carries_provenance_and_sorted_metrics(self):
        entry = obs_history.build_entry({"b": 2.0, "a": 1.0}, seed=7, scale="quick")
        assert list(entry["metrics"]) == ["a", "b"]
        assert entry["seed"] == 7
        assert entry["version"] == repro.__version__
        assert entry["git_sha"] == entry["provenance"]["git_sha"]


class TestFlatten:
    def test_nested_payload_flattens_to_dotted_leaves(self):
        payload = {
            "provenance": {"git_sha": "x", "cpu_count": 8},
            "rows": [
                {"name": "fft", "error_mei": 0.1, "topology": "2x16x1", "ok": True},
                {"name": "jpeg", "error_mei": 0.2},
            ],
            "sweep": {"speedup": 4.7, "levels": [0.05, 0.1]},
        }
        flat = obs_history.flatten_payload(payload, prefix="bench_parallel")
        assert flat["bench_parallel.rows.fft.error_mei"] == 0.1
        assert flat["bench_parallel.rows.jpeg.error_mei"] == 0.2
        assert flat["bench_parallel.sweep.speedup"] == 4.7
        assert flat["bench_parallel.sweep.levels.0"] == 0.05
        # provenance, strings and booleans are not metrics
        assert not any("provenance" in k or "topology" in k or k.endswith(".ok")
                       for k in flat)

    def test_ingest_out_dir_uses_stems(self, tmp_path):
        (tmp_path / "table1_fft.json").write_text(
            json.dumps({"rows": [{"name": "fft", "error_mei": 0.1}]})
        )
        (tmp_path / "broken.json").write_text("{oops")
        flat = obs_history.ingest_out_dir(tmp_path)
        assert flat == {"table1_fft.rows.fft.error_mei": 0.1}

    def test_metrics_from_spans_accumulates_siblings(self):
        obs_trace.enable(True)
        obs_trace.clear()
        try:
            with span("bench"):
                for _ in range(3):
                    with span("round"):
                        pass
            flat = obs_history.metrics_from_spans()
        finally:
            obs_trace.enable(False)
            obs_trace.clear()
        assert set(flat) == {"span.bench", "span.bench/round"}
        assert flat["span.bench"] >= flat["span.bench/round"]


class TestCompare:
    def test_classification_and_direction(self):
        assert obs_compare.classify_metric("table1.fft.error_mei") == "accuracy"
        assert obs_compare.classify_metric("span.bench/row:fft/train") == "perf"
        assert obs_compare.classify_metric("bench_parallel.sweep.speedup") == "perf"
        assert not obs_compare.higher_is_better("table1.fft.error_mei")
        assert obs_compare.higher_is_better("table1.fft.robustness_mei")
        assert obs_compare.higher_is_better("bench_parallel.sweep.speedup")
        assert obs_compare.higher_is_better("table1.fft.area_saved_measured")

    def test_statuses(self):
        baseline = {
            "table1.fft.error_mei": 0.10,
            "table1.fft.robustness_mei": 0.80,
            "span.bench": 10.0,
            "gone.error": 0.5,
        }
        current = {
            "table1.fft.error_mei": 0.20,       # error doubled -> regressed
            "table1.fft.robustness_mei": 0.95,  # robustness up -> improved
            "span.bench": 10.1,                 # within perf tolerance -> ok
            "fresh.error": 0.3,                 # new metric
        }
        result = obs_compare.compare_metrics(baseline, current)
        status = {v.name: v.status for v in result.verdicts}
        assert status["table1.fft.error_mei"] == "regressed"
        assert status["table1.fft.robustness_mei"] == "improved"
        assert status["span.bench"] == "ok"
        assert status["gone.error"] == "missing"
        assert status["fresh.error"] == "new"

    def test_tolerance_is_relative_plus_absolute(self):
        tol = obs_compare.Tolerance(rel=0.10, abs=0.005)
        assert not tol.exceeded(0.100, 0.109)   # inside 10%
        assert tol.exceeded(0.100, 0.120)
        assert not tol.exceeded(0.0, 0.004)     # abs floor guards zero baselines
        assert tol.exceeded(0.0, 0.006)

    def test_exit_codes(self):
        accuracy_reg = obs_compare.compare_metrics(
            {"x.error": 0.1}, {"x.error": 0.5}
        )
        assert accuracy_reg.exit_code() == 1
        assert accuracy_reg.exit_code(strict=True) == 1
        perf_reg = obs_compare.compare_metrics(
            {"span.bench": 1.0}, {"span.bench": 10.0}
        )
        assert perf_reg.exit_code() == 0
        assert perf_reg.exit_code(strict=True) == 1
        clean = obs_compare.compare_metrics({"x.error": 0.1}, {"x.error": 0.1})
        assert clean.exit_code(strict=True) == 0

    def test_verdict_is_machine_readable(self):
        result = obs_compare.compare_metrics({"x.error": 0.1}, {"x.error": 0.5})
        payload = json.loads(json.dumps(result.to_dict(strict=True)))
        assert payload["exit_code"] == 1
        assert payload["counts"]["regressed"] == 1
        assert payload["verdicts"][0]["name"] == "x.error"
        assert payload["verdicts"][0]["delta"] == pytest.approx(0.4)

    def test_baseline_resolution_order(self, tmp_path):
        history = [
            _entry(SHA_A, "t1", {"m.error": 0.1}),
            _entry(SHA_B, "t2", {"m.error": 0.3}),
        ]
        snapshot = tmp_path / "baseline.json"
        snapshot.write_text(json.dumps(_entry("c" * 40, "t0", {"m.error": 0.2})))
        # Named SHA found in history wins over the snapshot file.
        label, metrics = obs_compare.resolve_baseline(
            history, baseline_sha=SHA_A[:10], baseline_file=snapshot
        )
        assert label.startswith("history:") and metrics["m.error"] == 0.1
        # Unknown SHA falls back to the snapshot.
        label, metrics = obs_compare.resolve_baseline(
            history, baseline_sha="f" * 40, baseline_file=snapshot
        )
        assert label.startswith("snapshot:") and metrics["m.error"] == 0.2
        # No SHA, no snapshot: previous-commit entries.
        label, metrics = obs_compare.resolve_baseline(
            history, baseline_file=tmp_path / "nope.json"
        )
        assert label == f"history:{SHA_A[:12]}" and metrics["m.error"] == 0.1
        # Nothing resolvable at all.
        assert obs_compare.resolve_baseline([], baseline_file=None) is None

    def test_compare_history_unchanged_tree_passes(self, tmp_path):
        store = _write_history(
            tmp_path / "history.jsonl",
            [
                _entry(SHA_A, "t1", {"x.error": 0.1, "span.bench": 5.0}),
                _entry(SHA_B, "t2", {"x.error": 0.1, "span.bench": 6.5}),
            ],
        )
        result = obs_compare.compare_history(
            store, baseline_sha=SHA_A, baseline_file=None
        )
        assert result.exit_code() == 0
        assert result.exit_code(strict=True) == 0

    def test_compare_history_detects_synthetic_regression(self, tmp_path):
        store = _write_history(
            tmp_path / "history.jsonl",
            [
                _entry(SHA_A, "t1", {"table1.fft.error_mei": 0.10}),
                _entry(SHA_B, "t2", {"table1.fft.error_mei": 0.18}),
            ],
        )
        result = obs_compare.compare_history(
            store, baseline_sha=SHA_A, baseline_file=None
        )
        assert [v.name for v in result.accuracy_regressions] == ["table1.fft.error_mei"]
        assert result.exit_code(strict=True) != 0

    def test_compare_history_averages_repeated_runs(self, tmp_path):
        # Two noisy perf runs at HEAD average back inside tolerance.
        store = _write_history(
            tmp_path / "history.jsonl",
            [
                _entry(SHA_A, "t1", {"span.bench": 10.0}),
                _entry(SHA_B, "t2", {"span.bench": 13.0}),
                _entry(SHA_B, "t3", {"span.bench": 9.0}),
            ],
        )
        result = obs_compare.compare_history(
            store, baseline_sha=SHA_A, baseline_file=None
        )
        (verdict,) = result.verdicts
        assert verdict.current == pytest.approx(11.0)
        assert verdict.status == "ok"


class _HTMLChecker(HTMLParser):
    _VOID = ("meta", "br", "circle", "polyline")

    def __init__(self):
        super().__init__()
        self.stack = []
        self.seen = set()

    def handle_starttag(self, tag, attrs):
        self.seen.add(tag)
        if tag not in self._VOID:
            self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        self.seen.add(tag)  # self-closing: nothing to balance

    def handle_endtag(self, tag):
        if tag in self._VOID:
            return
        assert self.stack and self.stack[-1] == tag, f"unbalanced </{tag}>"
        self.stack.pop()


class TestReport:
    HISTORY = [
        _entry(SHA_A, "2026-01-01T00:00:00",
               {"table1.fft.error_mei": 0.10, "table1.jpeg.error_mei": 0.05,
                "span.bench/row:fft": 4.0, "span.bench/row:fft/train": 3.0}),
        _entry(SHA_B, "2026-01-02T00:00:00",
               {"table1.fft.error_mei": 0.12, "table1.jpeg.error_mei": 0.04,
                "span.bench/row:fft": 5.0, "span.bench/row:fft/train": 4.0}),
    ]

    def test_sparkline_shapes(self):
        assert obs_report.sparkline([]) == ""
        assert obs_report.sparkline([1.0, 1.0]) == "▁▁"
        line = obs_report.sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3 and line[0] == "▁" and line[-1] == "█"

    def test_markdown_contains_every_metric_and_spans(self):
        md = obs_report.render_markdown(self.HISTORY)
        assert "table1.fft.error_mei" in md
        assert "table1.jpeg.error_mei" in md
        assert "## Slowest spans" in md
        assert "bench/row:fft" in md
        assert "## Accuracy metrics" in md and "## Performance metrics" in md

    def test_markdown_empty_history(self):
        md = obs_report.render_markdown([])
        assert "No history entries" in md

    def test_html_is_valid_and_has_trajectories(self):
        html_text = obs_report.render_html(self.HISTORY)
        checker = _HTMLChecker()
        checker.feed(html_text)
        checker.close()
        assert checker.stack == []  # every opened tag closed
        assert "svg" in checker.seen and "table" in checker.seen
        for bench in ("fft", "jpeg"):
            assert f"table1.{bench}.error_mei" in html_text
        assert "Slowest spans" in html_text

    def test_write_report_emits_both_files(self, tmp_path):
        md_path, html_path = obs_report.write_report(self.HISTORY, out_dir=tmp_path)
        assert md_path.read_text().startswith("# Benchmark trajectory")
        assert html_path.read_text().startswith("<!DOCTYPE html>")

    def test_slowest_spans_ordering(self):
        top = obs_report.slowest_spans(
            {"span.a": 1.0, "span.b": 3.0, "x.error": 9.0}, n=1
        )
        assert top == [("b", 3.0)]


class TestBenchDriver:
    def test_run_bench_appends_provenance_stamped_entry(self, tmp_path):
        from repro.experiments.bench import render_bench_entry, run_bench

        store = tmp_path / "history.jsonl"
        entry, target = run_bench(
            names=["fft"],
            scale=TINY,
            seed=0,
            history_path=store,
            out_dir=tmp_path / "out",  # empty: no archived payloads
        )
        assert target == store
        metrics = entry["metrics"]
        assert metrics["table1.fft.error_mei"] > 0.0
        assert "table1.fft.robustness_mei" in metrics
        assert metrics["span.bench/row:fft"] > 0.0
        # Per-stage spans (digital/adda/mei training) ride along.
        assert any(k.endswith("/train") for k in metrics)
        assert "span.bench/row:fft/mei" in metrics
        assert entry["version"] == repro.__version__
        assert entry["scale"] == "tiny"
        # The store round-trips and bench leaves tracing off again.
        (loaded,) = obs_history.load_history(store)
        assert loaded["metrics"]["table1.fft.error_mei"] == pytest.approx(
            metrics["table1.fft.error_mei"]
        )
        assert not obs_trace.enabled()
        rendered = render_bench_entry(entry)
        assert "fft" in rendered and "err MEI" in rendered

    def test_bench_then_compare_round_trip(self, tmp_path):
        from repro.experiments.bench import run_bench, write_baseline

        store = tmp_path / "history.jsonl"
        entry, _ = run_bench(
            names=["fft"], scale=TINY, seed=0,
            history_path=store, out_dir=tmp_path / "out",
        )
        baseline = write_baseline(entry, tmp_path / "baseline.json")
        # Identical metrics vs the snapshot: the gate passes strictly.
        result = obs_compare.compare_history(store, baseline_file=baseline)
        assert result.exit_code(strict=True) == 0

    def test_archived_payloads_are_ingested(self, tmp_path):
        from repro.experiments.bench import run_bench

        out = tmp_path / "benchmarks" / "out"
        out.mkdir(parents=True)
        (out / "ext_timing.json").write_text(
            json.dumps({"rows": [{"name": "fft", "speedup": 2.0}]})
        )
        entry, _ = run_bench(
            names=["fft"], scale=TINY, seed=0,
            history_path=tmp_path / "h.jsonl", out_dir=out,
        )
        assert entry["metrics"]["ext_timing.rows.fft.speedup"] == 2.0


class TestCLI:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_compare_cli_unchanged_passes(self, tmp_path, capsys):
        store = _write_history(
            tmp_path / "history.jsonl",
            [
                _entry(SHA_A, "t1", {"x.error": 0.1}),
                _entry(SHA_B, "t2", {"x.error": 0.1}),
            ],
        )
        code = main(["compare", "--history", str(store), "--baseline", SHA_A,
                     "--baseline-file", str(tmp_path / "missing.json")])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_compare_cli_strict_fails_on_accuracy_regression(self, tmp_path, capsys):
        store = _write_history(
            tmp_path / "history.jsonl",
            [
                _entry(SHA_A, "t1", {"table1.fft.error_mei": 0.10}),
                _entry(SHA_B, "t2", {"table1.fft.error_mei": 0.20}),
            ],
        )
        code = main(["compare", "--strict", "--history", str(store),
                     "--baseline", SHA_A,
                     "--baseline-file", str(tmp_path / "missing.json")])
        assert code != 0
        assert "FAIL" in capsys.readouterr().out

    def test_compare_cli_json_verdict(self, tmp_path, capsys):
        store = _write_history(
            tmp_path / "history.jsonl",
            [
                _entry(SHA_A, "t1", {"x.error": 0.1}),
                _entry(SHA_B, "t2", {"x.error": 0.5}),
            ],
        )
        code = main(["compare", "--json", "--history", str(store),
                     "--baseline", SHA_A,
                     "--baseline-file", str(tmp_path / "missing.json")])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 1

    def test_compare_cli_nothing_to_compare(self, tmp_path, capsys):
        empty = tmp_path / "history.jsonl"
        assert main(["compare", "--history", str(empty),
                     "--baseline-file", str(tmp_path / "missing.json")]) == 0
        assert main(["compare", "--strict", "--history", str(empty),
                     "--baseline-file", str(tmp_path / "missing.json")]) == 2
        assert "nothing to compare" in capsys.readouterr().out

    def test_report_cli_writes_html_with_trajectories(self, tmp_path, capsys):
        store = _write_history(
            tmp_path / "history.jsonl",
            [
                _entry(SHA_A, "t1", {"table1.fft.error_mei": 0.1,
                                     "table1.sobel.error_mei": 0.02}),
                _entry(SHA_B, "t2", {"table1.fft.error_mei": 0.11,
                                     "table1.sobel.error_mei": 0.02}),
            ],
        )
        out = tmp_path / "reports"
        assert main(["report", "--history", str(store), "--out", str(out)]) == 0
        html_text = (out / "report.html").read_text()
        checker = _HTMLChecker()
        checker.feed(html_text)
        checker.close()
        assert checker.stack == []
        for bench in ("fft", "sobel"):
            assert f"table1.{bench}.error_mei" in html_text
        # Markdown twin on stdout and on disk.
        assert "table1.fft.error_mei" in capsys.readouterr().out
        assert (out / "report.md").exists()


class TestVersionStamping:
    def test_provenance_header_carries_version(self):
        assert runinfo.provenance_header()["version"] == repro.__version__

    def test_manifest_carries_version(self, tmp_path):
        path = runinfo.write_manifest("demo", run_dir=tmp_path)
        manifest = json.loads(path.read_text())
        assert manifest["environment"]["version"] == repro.__version__


class TestMetricsReset:
    def test_reset_clears_registry(self):
        obs_metrics.counter("reset_probe").inc(3)
        obs_metrics.gauge("reset_gauge").set(1.0)
        assert obs_metrics.snapshot()["counters"]["reset_probe"] == 3.0
        obs_metrics.reset()
        assert obs_metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_leak_a_counter_on_purpose(self):
        obs_metrics.counter("leaky").inc(3)  # deliberately not reset here

    def test_autouse_fixture_isolated_previous_test(self):
        # The previous test incremented "leaky" and left it; the autouse
        # fixture in conftest must have reset the registry in between.
        assert "leaky" not in obs_metrics.snapshot()["counters"]


class TestCompareUnknownKinds:
    """Regression: entries of an unregistered kind used to be silently
    skipped by the gate; now they warn with a count and are excluded."""

    def _mixed_store(self, tmp_path):
        return _write_history(
            tmp_path / "history.jsonl",
            [
                _entry(SHA_A, "t1", {"x.error": 0.1}),
                _entry(SHA_B, "t2", {"x.error": 0.1}),
                _entry(SHA_B, "t3", {"mystery.error": 9.9}, kind="mystery"),
                _entry(SHA_B, "t4", {"mystery.error": 9.9}, kind="mystery"),
            ],
        )

    def test_unknown_kind_entries_warn_with_count(self, tmp_path):
        store = self._mixed_store(tmp_path)
        with pytest.warns(RuntimeWarning, match=r"2 history entries.*'mystery'"):
            result = obs_compare.compare_history(
                store, baseline_sha=SHA_A, baseline_file=None
            )
        # ...and are excluded: the bogus metric never reaches the gate.
        assert result.exit_code(strict=True) == 0
        assert "mystery.error" not in {v.name for v in result.verdicts}

    def test_registered_kinds_do_not_warn(self, tmp_path, recwarn):
        store = _write_history(
            tmp_path / "history.jsonl",
            [
                _entry(SHA_A, "t1", {"x.error": 0.1}),
                _entry(SHA_B, "t2", {"x.error": 0.1}),
                _entry(SHA_B, "t3", {"bench_serve.rps": 100.0}, kind="serve"),
                _entry(SHA_B, "t4", {"budget.err": 0.01}, kind="errorbudget"),
            ],
        )
        obs_compare.compare_history(store, baseline_sha=SHA_A, baseline_file=None)
        assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]

    def test_explicitly_requested_kind_is_honoured_unregistered(self, tmp_path, recwarn):
        store = self._mixed_store(tmp_path)
        result = obs_compare.compare_history(
            store, baseline_sha=SHA_B, baseline_file=None, kind="mystery"
        )
        assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]
        assert {v.name for v in result.verdicts} == {"mystery.error"}

    def test_entry_kind_defaults_seed_era_entries_to_bench(self):
        entry = _entry(SHA_A, "t1", {"x.error": 0.1})
        del entry["kind"]
        assert obs_history.entry_kind(entry) == "bench"
        assert obs_history.entry_kind({"kind": "serve"}) == "serve"
        assert "serve" in obs_history.KNOWN_KINDS
