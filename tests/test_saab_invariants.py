"""Invariant tests for SAAB's boosting state machine."""

import numpy as np

from repro.core.mei import MEI, MEIConfig
from repro.core.saab import SAAB, SAABConfig
from repro.nn.trainer import TrainConfig

FAST = TrainConfig(epochs=20, batch_size=64, learning_rate=0.02, shuffle_seed=0)


def _toy_data(rng, n=300):
    x = rng.uniform(0, 1, (n, 2))
    y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
    return x, y


def _factory(hidden=10):
    return lambda k: MEI(MEIConfig(2, 1, hidden), seed=70 + k)


class TestWeightInvariants:
    def test_weights_stay_positive(self, rng):
        x, y = _toy_data(rng)
        saab = SAAB(_factory(), SAABConfig(n_learners=4, compare_bits=3, seed=0))
        saab.train(x, y, FAST)
        assert np.all(saab._weights > 0)

    def test_weights_finite(self, rng):
        x, y = _toy_data(rng)
        saab = SAAB(_factory(), SAABConfig(n_learners=4, compare_bits=8, seed=0))
        saab.train(x, y, FAST)  # strict comparison stresses the guard
        assert np.all(np.isfinite(saab._weights))

    def test_round_count_matches_learner_count(self, rng):
        x, y = _toy_data(rng)
        saab = SAAB(_factory(), SAABConfig(n_learners=3, seed=0)).train(x, y, FAST)
        assert len(saab.rounds) == len(saab.learners) == len(saab.alphas) == 3

    def test_errors_recorded_in_unit_interval(self, rng):
        x, y = _toy_data(rng)
        saab = SAAB(_factory(), SAABConfig(n_learners=3, compare_bits=4, seed=0))
        saab.train(x, y, FAST)
        for round_info in saab.rounds:
            assert 0.0 < round_info.error < 1.0


class TestVoteInvariants:
    def test_vote_deterministic(self, rng):
        x, y = _toy_data(rng)
        saab = SAAB(_factory(), SAABConfig(n_learners=3, seed=0)).train(x, y, FAST)
        assert np.array_equal(saab.predict_bits(x[:20]), saab.predict_bits(x[:20]))

    def test_single_learner_vote_is_that_learner(self, rng):
        x, y = _toy_data(rng)
        saab = SAAB(_factory(), SAABConfig(n_learners=1, seed=0)).train(x, y, FAST)
        assert np.array_equal(
            saab.predict_bits(x[:20]), saab.learners[0].predict_bits(x[:20])
        )

    def test_vote_respects_port_width(self, rng):
        x, y = _toy_data(rng)
        saab = SAAB(_factory(), SAABConfig(n_learners=2, seed=0)).train(x, y, FAST)
        bits = saab.predict_bits(x[:5])
        assert bits.shape == (5, 8)  # 1 output group x 8 bits

    def test_len_reflects_trained_learners(self, rng):
        x, y = _toy_data(rng)
        saab = SAAB(_factory(), SAABConfig(n_learners=2, seed=0))
        assert len(saab) == 0
        saab.extend(x, y, 1, FAST)
        assert len(saab) == 1
        saab.extend(x, y, 1, FAST)
        assert len(saab) == 2
