"""Unit tests for optimizers, trainer and dataset utilities."""

import numpy as np
import pytest

from repro.nn.datasets import UnitScaler, minibatches, resample, train_test_split
from repro.nn.losses import WeightedMSE
from repro.nn.network import MLP
from repro.nn.optimizers import SGD, Adam, Momentum, get_optimizer
from repro.nn.trainer import TrainConfig, Trainer


def _quadratic_data(rng, n=300):
    x = rng.uniform(0, 1, (n, 1))
    return x, 0.2 + 0.6 * x * x


class TestOptimizers:
    @pytest.mark.parametrize("name", ["sgd", "momentum", "adam"])
    def test_registry(self, name):
        assert get_optimizer(name) is not None

    def test_registry_rejects_unknown(self):
        with pytest.raises(ValueError):
            get_optimizer("lbfgs")

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            Momentum(momentum=1.0)

    @pytest.mark.parametrize("opt_name", ["sgd", "momentum", "adam"])
    def test_reduces_loss(self, opt_name, rng):
        x, y = _quadratic_data(rng)
        net = MLP((1, 6, 1), rng=0)
        loss = WeightedMSE()
        opt = get_optimizer(opt_name, learning_rate=0.05)
        initial = loss.value(net.predict(x), y)
        for _ in range(100):
            pred = net.forward(x, train=True)
            net.backward(loss.gradient(pred, y))
            opt.step(net.layers)
        assert loss.value(net.predict(x), y) < initial * 0.5

    def test_adam_state_per_parameter(self, rng):
        net = MLP((2, 3, 1), rng=0)
        opt = Adam()
        x = rng.uniform(0, 1, (8, 2))
        y = rng.uniform(0, 1, (8, 1))
        loss = WeightedMSE()
        pred = net.forward(x, train=True)
        net.backward(loss.gradient(pred, y))
        opt.step(net.layers)
        # 2 layers x (weights + bias).
        assert len(opt._m) == 4


class TestTrainer:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainConfig(lr_decay=0.0)

    def test_fits_quadratic(self, rng):
        x, y = _quadratic_data(rng)
        net = MLP((1, 8, 1), rng=0)
        result = Trainer(config=TrainConfig(epochs=120, shuffle_seed=0)).fit(net, x, y)
        assert result.final_train_loss < 1e-3
        assert result.epochs_run == 120

    def test_loss_history_monotone_trend(self, rng):
        x, y = _quadratic_data(rng)
        net = MLP((1, 8, 1), rng=0)
        result = Trainer(config=TrainConfig(epochs=60, shuffle_seed=0)).fit(net, x, y)
        assert result.train_losses[-1] < result.train_losses[0]

    def test_early_stopping(self, rng):
        x, y = _quadratic_data(rng)
        net = MLP((1, 8, 1), rng=0)
        cfg = TrainConfig(epochs=500, patience=5, shuffle_seed=0)
        result = Trainer(config=cfg).fit(net, x, y, x_val=x[:50], y_val=y[:50])
        assert result.stopped_early
        assert result.epochs_run < 500

    def test_lr_decay_schedule(self, rng):
        x, y = _quadratic_data(rng, n=64)
        net = MLP((1, 4, 1), rng=0)
        cfg = TrainConfig(epochs=10, learning_rate=0.01, lr_decay=0.1, lr_decay_every=5,
                          shuffle_seed=0)
        trainer = Trainer(config=cfg)
        trainer.fit(net, x, y)  # smoke: schedule path executes

    def test_shape_validation(self, rng):
        net = MLP((2, 4, 1), rng=0)
        trainer = Trainer()
        with pytest.raises(ValueError):
            trainer.fit(net, np.zeros((10, 3)), np.zeros((10, 1)))
        with pytest.raises(ValueError):
            trainer.fit(net, np.zeros((10, 2)), np.zeros((10, 2)))
        with pytest.raises(ValueError):
            trainer.fit(net, np.zeros((10, 2)), np.zeros((9, 1)))

    def test_sample_weights_focus_training(self, rng):
        # Two clusters; weighting one to ~zero should leave it unfit.
        x = np.concatenate([np.full((100, 1), 0.2), np.full((100, 1), 0.8)])
        y = np.concatenate([np.full((100, 1), 0.2), np.full((100, 1), 0.9)])
        weights = np.concatenate([np.full(100, 1.0), np.full(100, 1e-6)])
        net = MLP((1, 4, 1), rng=0)
        Trainer(config=TrainConfig(epochs=150, shuffle_seed=0)).fit(
            net, x, y, sample_weights=weights
        )
        err_heavy = abs(float(net.predict(np.array([[0.2]]))[0, 0]) - 0.2)
        err_light = abs(float(net.predict(np.array([[0.8]]))[0, 0]) - 0.9)
        assert err_heavy < err_light


class TestDatasets:
    def test_split_sizes(self, rng):
        x = rng.uniform(size=(100, 2))
        y = rng.uniform(size=(100, 1))
        xt, yt, xv, yv = train_test_split(x, y, test_fraction=0.2, rng=0)
        assert len(xv) == 20 and len(xt) == 80
        assert len(yt) == 80 and len(yv) == 20

    def test_split_validation(self, rng):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 1)), np.zeros((4, 1)))
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 1)), np.zeros((5, 1)), test_fraction=1.5)

    def test_split_partitions_data(self, rng):
        x = np.arange(50).reshape(-1, 1).astype(float)
        xt, _, xv, _ = train_test_split(x, x, test_fraction=0.3, rng=1)
        assert sorted(np.concatenate([xt, xv]).ravel().tolist()) == list(range(50))

    def test_scaler_roundtrip(self, rng):
        scaler = UnitScaler(low=np.array([-2.0, 0.0]), high=np.array([2.0, 10.0]), margin=0.1)
        values = rng.uniform(-2, 2, (20, 2)) * np.array([1.0, 2.5]) + np.array([0.0, 5.0])
        assert np.allclose(scaler.inverse(scaler.transform(values)), values)

    def test_scaler_margin(self):
        scaler = UnitScaler(low=np.zeros(1), high=np.ones(1), margin=0.05)
        assert np.isclose(scaler.transform(np.array([0.0]))[0], 0.05)
        assert np.isclose(scaler.transform(np.array([1.0]))[0], 0.95)

    def test_scaler_from_data_handles_constant_column(self):
        data = np.column_stack([np.ones(10), np.arange(10.0)])
        scaler = UnitScaler.from_data(data)
        out = scaler.transform(data)
        assert np.all(np.isfinite(out))

    def test_scaler_validation(self):
        with pytest.raises(ValueError):
            UnitScaler(low=np.array([1.0]), high=np.array([1.0]))
        with pytest.raises(ValueError):
            UnitScaler(low=np.zeros(1), high=np.ones(1), margin=0.5)

    def test_resample_prefers_heavy_samples(self, rng):
        x = np.arange(10).reshape(-1, 1).astype(float)
        p = np.zeros(10)
        p[3] = 1.0
        xs, _ = resample(x, x, p, size=50, rng=0)
        assert np.all(xs == 3.0)

    def test_resample_validation(self):
        x = np.zeros((4, 1))
        with pytest.raises(ValueError):
            resample(x, x, np.zeros(4))  # zero-sum distribution
        with pytest.raises(ValueError):
            resample(x, x, np.array([0.5, 0.5]))  # length mismatch
        with pytest.raises(ValueError):
            resample(x, x, np.array([1, -1, 0, 0.0]))  # negative weight

    def test_minibatches_cover_data(self, rng):
        x = np.arange(25).reshape(-1, 1).astype(float)
        seen = []
        for xb, yb, wb in minibatches(x, x, batch_size=4, rng=0):
            assert wb is None
            seen.extend(xb.ravel().tolist())
        assert sorted(seen) == list(range(25))

    def test_minibatches_carry_weights(self, rng):
        x = np.arange(8).reshape(-1, 1).astype(float)
        w = np.arange(8).astype(float)
        for xb, _, wb in minibatches(x, x, batch_size=3, rng=0, sample_weights=w):
            assert np.allclose(wb, xb.ravel())
