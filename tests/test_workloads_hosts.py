"""Tests for the host-application pipelines around each oracle kernel.

The paper's scenario is an accelerator *inside* an application; these
tests exercise the host plumbing with exact kernels (the integration
suite covers learned kernels).
"""

import numpy as np

from repro.workloads.fft import approximate_fft, radix2_fft, twiddle
from repro.workloads.jpeg import (
    blocks_to_image,
    codec_roundtrip,
    image_to_blocks,
    synthetic_image,
)
from repro.workloads.kmeans import KMeansClusterer, rgb_distance, segment_image
from repro.workloads.sobel import sobel_image, sobel_window


class TestFFTHost:
    def test_exact_twiddles_give_exact_fft(self, rng):
        for n in (4, 32, 128):
            signal = rng.normal(size=n)
            assert np.allclose(approximate_fft(signal, twiddle), np.fft.fft(signal))

    def test_parseval_energy_conservation(self, rng):
        signal = rng.normal(size=64)
        spectrum = radix2_fft(signal)
        assert np.isclose(np.sum(np.abs(spectrum) ** 2) / 64, np.sum(signal**2))

    def test_linearity(self, rng):
        a = rng.normal(size=32)
        b = rng.normal(size=32)
        assert np.allclose(radix2_fft(a + 2 * b), radix2_fft(a) + 2 * radix2_fft(b))

    def test_impulse_flat_spectrum(self):
        impulse = np.zeros(16)
        impulse[0] = 1.0
        assert np.allclose(radix2_fft(impulse), np.ones(16))


class TestJPEGHost:
    def test_whole_image_roundtrip_quality_ordering(self, rng):
        img = synthetic_image(40, 40, rng)
        blocks = image_to_blocks(img)

        def reconstruct(quality):
            return blocks_to_image(codec_roundtrip(blocks, quality), 40, 40)

        err90 = np.mean(np.abs(reconstruct(90) - img))
        err30 = np.mean(np.abs(reconstruct(30) - img))
        assert err90 < err30

    def test_dc_only_block_survives_exactly(self):
        flat = np.full((1, 8, 8), 144.0)
        recon = codec_roundtrip(flat, 50)
        assert np.allclose(recon, flat, atol=1.0)


class TestKMeansHost:
    def test_segmentation_reduces_color_count(self, rng):
        from repro.workloads.kmeans import synthetic_rgb_image

        img = synthetic_rgb_image(20, 20, rng, n_regions=4)
        seg = segment_image(img, k=4, rng=0, max_iterations=6)
        original_colors = len(np.unique(img.reshape(-1, 3), axis=0))
        seg_colors = len(np.unique(seg.reshape(-1, 3), axis=0))
        assert seg_colors <= 4 < original_colors

    def test_distance_kernel_triangle_inequality(self, rng):
        a = rng.uniform(0, 255, (20, 3))
        b = rng.uniform(0, 255, (20, 3))
        c = rng.uniform(0, 255, (20, 3))
        ab = rgb_distance(np.concatenate([a, b], axis=1))[:, 0]
        bc = rgb_distance(np.concatenate([b, c], axis=1))[:, 0]
        ac = rgb_distance(np.concatenate([a, c], axis=1))[:, 0]
        assert np.all(ac <= ab + bc + 1e-9)

    def test_lloyd_objective_never_increases(self, rng):
        """Within-cluster distance is monotonically non-increasing."""
        points = rng.uniform(0, 255, (100, 3))
        clusterer = KMeansClusterer(k=3, max_iterations=1)
        clusterer.fit(points, rng=0)
        prev_objective = None
        for _ in range(5):
            labels = clusterer.assign(points)
            objective = sum(
                float(np.sum((points[labels == j] - clusterer.centroids[j]) ** 2))
                for j in range(3)
            )
            if prev_objective is not None:
                assert objective <= prev_objective + 1e-6
            prev_objective = objective
            # One more Lloyd step from the current centroids.
            for j in range(3):
                members = points[labels == j]
                if len(members):
                    clusterer.centroids[j] = members.mean(axis=0)


class TestSobelHost:
    def test_rotation_symmetry(self):
        """A horizontal edge and its transpose give the same magnitudes."""
        img = np.zeros((12, 12))
        img[6:, :] = 200.0
        horizontal = sobel_image(img)
        vertical = sobel_image(img.T)
        assert np.allclose(horizontal, vertical.T)

    def test_constant_image_zero_edges(self):
        img = np.full((10, 10), 123.0)
        assert np.allclose(sobel_image(img), 0.0)

    def test_window_kernel_matches_image_operator(self, rng):
        """The per-window kernel and the whole-image operator agree."""
        img = rng.uniform(0, 255, (9, 9))
        from repro.workloads.sobel import extract_windows

        windows = extract_windows(img)
        assert np.allclose(
            sobel_window(windows).reshape(9, 9), sobel_image(img)
        )
