"""Hand-computed values for the signal-quality helpers.

``snr_db`` / ``bit_error_rate`` / ``weighted_bit_error`` feed the
error-budget attribution harness, so every branch here is pinned to a
value worked out by hand rather than round-tripped through the
implementation.
"""

import numpy as np
import pytest

from repro.metrics import bit_error_rate, snr_db, weighted_bit_error


class TestSnrDb:
    def test_hand_computed_value(self):
        # signal power = 1, noise power = (1/4)·1 -> 10·log10(4)
        reference = np.array([1.0, 1.0, 1.0, 1.0])
        test = np.array([1.0, 1.0, 1.0, 0.0])
        assert snr_db(reference, test) == pytest.approx(10 * np.log10(4.0))

    def test_perfect_match_is_infinite(self):
        x = np.array([0.5, -0.25, 2.0])
        assert snr_db(x, x) == np.inf

    def test_silent_reference_with_noise_is_negative_infinity(self):
        assert snr_db(np.zeros(3), np.array([0.0, 0.1, 0.0])) == -np.inf

    def test_broadcasts(self):
        reference = np.ones((2, 4))
        test = np.array([1.0, 1.0, 1.0, 0.0])
        # same powers as the hand-computed case, just stacked
        assert snr_db(reference, test) == pytest.approx(10 * np.log10(4.0))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            snr_db(np.ones(3), np.ones(4))


class TestBitErrorRate:
    def test_scalar_rate(self):
        predicted = np.array([1, 0, 1, 1])
        target = np.array([1, 1, 0, 1])
        assert bit_error_rate(predicted, target) == pytest.approx(0.5)

    def test_per_plane_msb_first(self):
        # one 4-bit group; only the second-most-significant bit differs
        predicted = np.array([[1, 0, 1, 1]])
        target = np.array([[1, 1, 1, 1]])
        rates = bit_error_rate(predicted, target, bits=4)
        np.testing.assert_allclose(rates, [0.0, 1.0, 0.0, 0.0])

    def test_per_plane_averages_over_groups(self):
        # two 2-bit groups: MSB wrong in one group of two -> 0.5
        predicted = np.array([[1, 0, 0, 1]])
        target = np.array([[0, 0, 0, 1]])
        rates = bit_error_rate(predicted, target, bits=2)
        np.testing.assert_allclose(rates, [0.5, 0.0])

    def test_leading_axes_broadcast(self):
        predicted = np.zeros((3, 2, 4))
        target = np.zeros((1, 2, 4))
        target[..., 0] = 1.0  # MSB of the first 2-bit group always wrong
        rates = bit_error_rate(predicted, target, bits=2)
        np.testing.assert_allclose(rates, [0.5, 0.0])

    def test_invalid_bits_raise(self):
        with pytest.raises(ValueError):
            bit_error_rate(np.zeros(4), np.zeros(4), bits=0)
        with pytest.raises(ValueError):
            bit_error_rate(np.zeros(4), np.zeros(4), bits=3)


class TestWeightedBitError:
    def test_hand_computed_value(self):
        # decay 2 -> weights (2, 1); (2·1 + 1·0)/3 = 2/3
        assert weighted_bit_error(np.array([1.0, 0.0]), decay=2.0) == pytest.approx(2 / 3)

    def test_uniform_rates_are_invariant_to_decay(self):
        rates = np.full(5, 0.25)
        assert weighted_bit_error(rates, decay=4.0) == pytest.approx(0.25)

    def test_msb_weighting_beats_lsb(self):
        msb_bad = weighted_bit_error(np.array([0.5, 0.0, 0.0]))
        lsb_bad = weighted_bit_error(np.array([0.0, 0.0, 0.5]))
        assert msb_bad > lsb_bad

    def test_rejects_non_vector_input(self):
        with pytest.raises(ValueError):
            weighted_bit_error(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            weighted_bit_error(np.zeros(0))
