"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.nn.trainer import TrainConfig


@pytest.fixture
def rng():
    """Deterministic generator for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def fast_train():
    """A tiny training budget for architecture smoke tests."""
    return TrainConfig(epochs=30, batch_size=64, learning_rate=0.02, shuffle_seed=0)
