"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.nn.trainer import TrainConfig
from repro.obs import metrics as obs_metrics


@pytest.fixture(autouse=True)
def _isolate_metrics_registry():
    """Keep the process-wide metrics registry from leaking across tests.

    Counters/histograms accumulate globally (by design); without this
    reset a test asserting on ``snapshot()`` would see whatever the
    previously-run tests happened to count.
    """
    obs_metrics.reset()
    yield
    obs_metrics.reset()


@pytest.fixture
def rng():
    """Deterministic generator for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def fast_train():
    """A tiny training budget for architecture smoke tests."""
    return TrainConfig(epochs=30, batch_size=64, learning_rate=0.02, shuffle_seed=0)
