"""Serving artifacts: save/load round-trips, schema and integrity.

The artifact contract (``repro.serve.artifact``): a load-once archive
that reproduces the *exact* validated system — programmed conductances
included — and refuses loudly when tampered with, mislabelled or from
a future schema.  Bit-faithfulness across every workload is covered by
``tests/test_serve_differential.py``; this file owns the storage
semantics.
"""

import numpy as np
import pytest

from repro import serialization
from repro.core.mei import MEI, MEIConfig
from repro.core.saab import SAAB, SAABConfig
from repro.nn.trainer import TrainConfig
from repro.serve import (
    ARTIFACT_KIND,
    ARTIFACT_SCHEMA_VERSION,
    load_artifact,
    save_artifact,
)
from repro.xbar.mapping import MappingConfig

TINY = MEIConfig(in_groups=2, out_groups=1, hidden=6, bits=4)
TRAIN = TrainConfig(epochs=3, batch_size=16, learning_rate=0.02, shuffle_seed=0)


def _unit_data(n=32, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.uniform(0.0, 1.0, (n, TINY.in_groups)),
        rng.uniform(0.0, 1.0, (n, TINY.out_groups)),
    )


def _tiny_mei(seed=0, mapping_config=None):
    x, y = _unit_data(seed=seed)
    return MEI(TINY, mapping_config=mapping_config, seed=seed).train(x, y, TRAIN)


def _tiny_saab(n_learners=2, seed=0):
    x, y = _unit_data(seed=seed)
    saab = SAAB(
        lambda k: MEI(TINY, seed=seed + k),
        SAABConfig(n_learners=n_learners, compare_bits=3, seed=seed),
    )
    saab.train(x, y, TRAIN)
    return saab


def _probe(n=8, seed=99):
    return np.random.default_rng(seed).uniform(0.0, 1.0, (n, TINY.in_groups))


class TestRoundtrip:
    def test_mei_roundtrip_is_bit_identical(self, tmp_path):
        mei = _tiny_mei()
        probe = _probe()
        expected = mei.predict_trials(probe, trials=1)[0]
        path = save_artifact(mei, tmp_path / "mei.npz", benchmark="fft")
        loaded = load_artifact(path)
        assert loaded.kind == "mei"
        assert isinstance(loaded.system, MEI)
        assert np.array_equal(loaded.system.predict_trials(probe, trials=1)[0], expected)

    def test_saab_roundtrip_is_bit_identical(self, tmp_path):
        saab = _tiny_saab()
        probe = _probe()
        expected = saab.predict_trials(probe, trials=1)[0]
        path = save_artifact(saab, tmp_path / "saab.npz")
        loaded = load_artifact(path)
        assert loaded.kind == "saab"
        assert isinstance(loaded.system, SAAB)
        assert len(loaded.system.learners) == len(saab.learners)
        assert loaded.system.alphas == pytest.approx(saab.alphas)
        assert [r.error for r in loaded.system.rounds] == pytest.approx(
            [r.error for r in saab.rounds]
        )
        assert np.array_equal(loaded.system.predict_trials(probe, trials=1)[0], expected)

    def test_mapping_config_round_trips(self, tmp_path):
        mapping = MappingConfig(row_sum_headroom=0.8, wire_resistance=0.5)
        mei = _tiny_mei(mapping_config=mapping)
        probe = _probe()
        expected = mei.predict_trials(probe, trials=1)[0]
        loaded = load_artifact(save_artifact(mei, tmp_path / "mapped.npz"))
        assert loaded.system.mapping_config == mapping
        assert np.array_equal(loaded.system.predict_trials(probe, trials=1)[0], expected)

    def test_programmed_conductances_persist(self, tmp_path):
        """The artifact is the chip: drifted conductances survive the
        round-trip instead of being re-derived from the weights."""
        mei = _tiny_mei()
        drifted = [np.array(g) * 1.01 for g in mei.analog.conductance_snapshot()]
        mei.analog.restore_conductances(drifted)
        loaded = load_artifact(save_artifact(mei, tmp_path / "drift.npz"))
        restored = loaded.system.analog.conductance_snapshot()
        assert all(np.array_equal(a, b) for a, b in zip(restored, drifted))
        # A fresh deploy() re-maps from the weights — different state.
        loaded.system.deploy()
        redeployed = loaded.system.analog.conductance_snapshot()
        assert not all(np.array_equal(a, b) for a, b in zip(redeployed, drifted))


class TestSchema:
    def test_meta_interface_and_provenance(self, tmp_path):
        mei = _tiny_mei()
        loaded = load_artifact(
            save_artifact(mei, tmp_path / "m.npz", benchmark="kmeans",
                          extra_meta={"note": "test"})
        )
        meta = loaded.meta
        assert meta["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert meta["kind"] == ARTIFACT_KIND
        assert meta["benchmark"] == "kmeans"
        assert meta["note"] == "test"
        assert meta["saab"] is None
        assert loaded.interface == {
            "B_I": mei.in_bits, "B_O": mei.out_bits, "B_N": mei.config.bits,
        }
        assert isinstance(meta["digest"], str) and meta["digest"]
        assert "git_sha" in meta["provenance"]
        assert len(meta["members"]) == 1

    def test_untrained_ensemble_refused(self, tmp_path):
        saab = SAAB(lambda k: MEI(TINY, seed=k), SAABConfig(n_learners=2, compare_bits=3))
        with pytest.raises(ValueError, match="untrained"):
            save_artifact(saab, tmp_path / "nope.npz")

    def test_wrong_kind_refused(self, tmp_path):
        path = tmp_path / "other.npz"
        serialization.write_archive(
            path, "not-a-model", {"schema_version": 1}, {"a": np.zeros(3)}
        )
        with pytest.raises(ValueError, match="serve-model"):
            load_artifact(path)

    def test_future_schema_version_refused(self, tmp_path):
        path = save_artifact(_tiny_mei(), tmp_path / "future.npz")
        meta, arrays = serialization.read_archive(path, ARTIFACT_KIND)
        meta["schema_version"] = ARTIFACT_SCHEMA_VERSION + 1
        serialization.write_archive(path, ARTIFACT_KIND, meta, arrays)
        with pytest.raises(ValueError, match="schema version"):
            load_artifact(path)


class TestIntegrity:
    """Chaos: a corrupted archive must be refused loudly, not served."""

    def test_tampered_payload_refused(self, tmp_path):
        path = save_artifact(_tiny_mei(), tmp_path / "tampered.npz")
        with np.load(path) as data:
            arrays = {name: np.array(data[name]) for name in data.files}
        victim = next(name for name in arrays if "_g_" in name)
        arrays[victim] = arrays[victim] + 1e-3  # silent bit-rot / tampering
        np.savez(path, **arrays)
        with pytest.raises(serialization.IntegrityError, match="digest mismatch"):
            load_artifact(path)

    def test_tampered_meta_refused(self, tmp_path):
        path = save_artifact(_tiny_mei(), tmp_path / "meta.npz")
        with np.load(path) as data:
            arrays = {name: np.array(data[name]) for name in data.files}
        meta = bytes(arrays["__meta__"]).decode()
        meta = meta.replace('"system": "mei"', '"system": "xxx"')
        arrays["__meta__"] = np.frombuffer(meta.encode(), dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(serialization.IntegrityError):
            load_artifact(path)

    def test_digest_is_content_addressed(self, tmp_path):
        mei = _tiny_mei()
        a = load_artifact(save_artifact(mei, tmp_path / "a.npz"))
        b = load_artifact(save_artifact(mei, tmp_path / "b.npz"))
        meta_a = {k: v for k, v in a.meta.items() if k not in ("digest", "provenance")}
        meta_b = {k: v for k, v in b.meta.items() if k not in ("digest", "provenance")}
        assert meta_a == meta_b
