"""Tests for the design space exploration flow (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.dse import DSEConfig, explore, search_hidden_size
from repro.core.mei import MEI, MEIConfig
from repro.cost.area import Topology
from repro.device.variation import NonIdealFactors
from repro.nn.trainer import TrainConfig


def _toy_dataset(rng, n=500):
    x = rng.uniform(0, 1, (n, 2))
    y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
    return x[:-100], y[:-100], x[-100:], y[-100:]


def _metric(pred, target):
    return float(np.mean(np.abs(pred - target)))


FAST = TrainConfig(epochs=25, batch_size=64, learning_rate=0.02, shuffle_seed=0)


class TestDSEConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DSEConfig(error_requirement=0.0)
        with pytest.raises(ValueError):
            DSEConfig(error_requirement=0.1, robustness_requirement=2.0)
        with pytest.raises(ValueError):
            DSEConfig(error_requirement=0.1, initial_hidden=8, max_hidden=4)
        with pytest.raises(ValueError):
            DSEConfig(error_requirement=0.1, change_rate_threshold=0.0)


class TestHiddenSearch:
    def test_search_grows_until_stall(self, rng):
        x_tr, y_tr, x_te, y_te = _toy_dataset(rng)
        config = DSEConfig(error_requirement=0.1, initial_hidden=2, max_hidden=32,
                           change_rate_threshold=0.3)
        make = lambda h, s: MEI(MEIConfig(2, 1, h), seed=s)
        best, hidden, history = search_hidden_size(
            make, x_tr, y_tr, x_te, y_te, _metric, config, FAST
        )
        assert best.config.hidden == hidden
        assert len(history) >= 2
        sizes = [h for h, _ in history]
        assert sizes == sorted(sizes)
        assert all(b == 2 * a for a, b in zip(sizes, sizes[1:]))

    def test_search_respects_max_hidden(self, rng):
        x_tr, y_tr, x_te, y_te = _toy_dataset(rng, n=200)
        config = DSEConfig(error_requirement=0.1, initial_hidden=4, max_hidden=8,
                           change_rate_threshold=1e-9)
        make = lambda h, s: MEI(MEIConfig(2, 1, h), seed=s)
        _, hidden, history = search_hidden_size(
            make, x_tr, y_tr, x_te, y_te, _metric, config, FAST
        )
        assert hidden <= 8
        assert max(h for h, _ in history) <= 8


class TestExplore:
    def test_easy_requirement_single_mei(self, rng):
        """A loose budget is met by R1 without boosting."""
        x_tr, y_tr, x_te, y_te = _toy_dataset(rng)
        config = DSEConfig(error_requirement=0.2, initial_hidden=8, max_hidden=16,
                           prune=False, seed=0)
        result = explore(Topology(2, 8, 1), x_tr, y_tr, x_te, y_te, _metric, config, FAST)
        assert result.status == "ok"
        assert not result.used_saab
        assert result.k == 1
        assert isinstance(result.system, MEI)
        assert result.error <= 0.2

    def test_impossible_requirement_reports(self, rng):
        """An unmeetable error budget must end in Mission Impossible."""
        x_tr, y_tr, x_te, y_te = _toy_dataset(rng, n=300)
        config = DSEConfig(error_requirement=1e-9, initial_hidden=4, max_hidden=8,
                           prune=False, seed=0)
        result = explore(Topology(2, 8, 1), x_tr, y_tr, x_te, y_te, _metric, config, FAST)
        assert result.status == "mission_impossible"
        assert any("Mission Impossible" in line for line in result.log)
        assert result.k <= result.k_max

    def test_robustness_requirement_can_trigger_saab(self, rng):
        """A strict robustness bar under noise exercises the boost loop."""
        x_tr, y_tr, x_te, y_te = _toy_dataset(rng, n=300)
        noise = NonIdealFactors(sigma_pv=0.3, sigma_sf=0.3, seed=5)
        config = DSEConfig(
            error_requirement=0.5,
            robustness_requirement=0.999,  # nearly impossible under noise
            noise=noise,
            initial_hidden=4,
            max_hidden=8,
            noise_trials=2,
            prune=False,
            seed=0,
        )
        result = explore(Topology(2, 8, 1), x_tr, y_tr, x_te, y_te, _metric, config, FAST)
        # Either it found a robust config or exhausted K_max trying.
        assert result.status in ("ok", "mission_impossible")
        assert result.k >= 1

    def test_pruning_runs_on_single_mei(self, rng):
        x_tr, y_tr, x_te, y_te = _toy_dataset(rng)
        config = DSEConfig(error_requirement=0.2, initial_hidden=8, max_hidden=16,
                           prune=True, seed=0)
        result = explore(Topology(2, 8, 1), x_tr, y_tr, x_te, y_te, _metric, config, FAST)
        assert isinstance(result.system, MEI)
        assert result.topology.in_bits <= 8
        assert result.topology.out_bits <= 8

    def test_savings_fractions_reported(self, rng):
        x_tr, y_tr, x_te, y_te = _toy_dataset(rng, n=300)
        config = DSEConfig(error_requirement=0.2, initial_hidden=8, max_hidden=8,
                           prune=False, seed=0)
        result = explore(Topology(2, 8, 1), x_tr, y_tr, x_te, y_te, _metric, config, FAST)
        assert -1.0 < result.area_saved < 1.0
        assert -1.0 < result.power_saved < 1.0

    def test_k_max_positive(self, rng):
        x_tr, y_tr, x_te, y_te = _toy_dataset(rng, n=300)
        config = DSEConfig(error_requirement=0.2, initial_hidden=8, max_hidden=8,
                           prune=False, seed=0)
        result = explore(Topology(2, 8, 1), x_tr, y_tr, x_te, y_te, _metric, config, FAST)
        assert result.k_max >= 1
