"""Property-based tests for fault injection and redundancy repair.

Hypothesis drives the four contracts the campaign engine stands on:

1. injection is **idempotent** for a fixed seed — the same model
   produces the same defect map and the same stuck conductances;
2. injected conductances never leave ``[g_min, g_max]``;
3. accuracy degradation is **monotone** in the total fault rate
   (statistically: averaged over defect seeds, with tolerance);
4. spare-column remapping with **zero spares is an exact no-op**.
"""

import functools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.mei import MEI, MEIConfig
from repro.device.faults import (
    DEFECT_COL_OPEN,
    DEFECT_HEALTHY,
    DEFECT_ROW_OPEN,
    DEFECT_SA0,
    DEFECT_SA1,
    FaultModel,
    inject_faults,
    inject_faults_analog_report,
)
from repro.device.rram import HFOX_DEVICE
from repro.nn.trainer import TrainConfig
from repro.xbar.crossbar import Crossbar
from repro.xbar.redundancy import remap_spare_columns

_G_MIN, _G_MAX = HFOX_DEVICE.g_min, HFOX_DEVICE.g_max


def _shapes():
    return st.tuples(st.integers(2, 12), st.integers(2, 12))


def _conductances():
    return _shapes().flatmap(
        lambda shape: hnp.arrays(
            dtype=np.float64,
            shape=shape,
            elements=st.floats(_G_MIN, _G_MAX, allow_nan=False, width=64),
        )
    )


def _models():
    return st.builds(
        FaultModel,
        stuck_on_rate=st.floats(0.0, 0.4),
        stuck_off_rate=st.floats(0.0, 0.4),
        row_failure_rate=st.floats(0.0, 0.3),
        col_failure_rate=st.floats(0.0, 0.3),
        seed=st.integers(0, 2**32 - 1),
    )


class TestInjectionIdempotent:
    @given(g=_conductances(), model=_models())
    @settings(max_examples=50, deadline=None)
    def test_same_seed_same_defects_and_conductances(self, g, model):
        a, b = Crossbar(g.copy(), g_s=1e-3), Crossbar(g.copy(), g_s=1e-3)
        defects_a = inject_faults(a, model)
        defects_b = inject_faults(b, model)
        assert np.array_equal(defects_a, defects_b)
        assert np.array_equal(a.conductances, b.conductances)

    @given(model=_models(), shape=_shapes())
    @settings(max_examples=50, deadline=None)
    def test_defect_map_is_pure_in_seed(self, model, shape):
        assert np.array_equal(
            model.defect_map(shape, model.rng(3)),
            model.defect_map(shape, model.rng(3)),
        )

    @given(model=_models())
    @settings(max_examples=25, deadline=None)
    def test_for_array_materializes_the_stream(self, model):
        # The manifest-recorded per-array seed replays the same map.
        direct = model.defect_map((6, 6), model.rng(2))
        recorded = model.for_array(2)
        assert np.array_equal(
            direct, recorded.defect_map((6, 6), recorded.replay_rng())
        )


class TestConductanceBounds:
    @given(g=_conductances(), model=_models())
    @settings(max_examples=50, deadline=None)
    def test_injection_stays_in_device_range(self, g, model):
        xbar = Crossbar(g, g_s=1e-3)
        defects = inject_faults(xbar, model)
        assert np.all(xbar.conductances >= _G_MIN)
        assert np.all(xbar.conductances <= _G_MAX)
        assert np.all(xbar.conductances[defects == DEFECT_SA1] == _G_MAX)
        for cls in (DEFECT_SA0, DEFECT_ROW_OPEN, DEFECT_COL_OPEN):
            assert np.all(xbar.conductances[defects == cls] == _G_MIN)
        healthy = defects == DEFECT_HEALTHY
        assert np.allclose(xbar.conductances[healthy], g[healthy])


@functools.lru_cache(maxsize=1)
def _trained_mei():
    """One small trained MEI shared by the statistical properties."""
    rng = np.random.default_rng(12345)
    x = rng.uniform(0, 1, (500, 2))
    y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
    mei = MEI(MEIConfig(2, 1, 16), seed=0).train(
        x, y, TrainConfig(epochs=30, batch_size=64, learning_rate=0.02,
                          shuffle_seed=0)
    )
    return mei, mei.analog.conductance_snapshot(), x, y


def _seed_averaged_error(rate: float, seeds=range(8)) -> float:
    mei, snapshot, x, y = _trained_mei()
    values = []
    for seed in seeds:
        mei.analog.restore_conductances(snapshot)
        inject_faults_analog_report(
            mei.analog,
            FaultModel(stuck_on_rate=rate / 2, stuck_off_rate=rate / 2,
                       seed=seed),
        )
        values.append(float(np.mean(np.abs(mei.predict(x) - y))))
    mei.analog.restore_conductances(snapshot)
    return float(np.mean(values))


class TestMonotoneDegradation:
    @given(
        rates=st.tuples(st.floats(0.0, 0.25), st.floats(0.0, 0.25))
        .map(sorted)
        .filter(lambda pair: pair[1] - pair[0] >= 0.05)
    )
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    def test_error_grows_with_total_rate(self, rates):
        low, high = rates
        # Statistical monotonicity: seed-averaged, with slack for the
        # plateau noise of a small ensemble of defect draws.
        assert _seed_averaged_error(high) >= _seed_averaged_error(low) - 0.05

    def test_clean_is_the_floor(self):
        clean = _seed_averaged_error(0.0)
        assert _seed_averaged_error(0.1) > clean
        assert _seed_averaged_error(0.3) > clean


class TestZeroSparesNoOp:
    @given(
        g=_conductances(),
        seed=st.integers(0, 2**16),
        rate=st.floats(0.0, 0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_zero_spares_changes_nothing(self, g, seed, rate):
        xbar = Crossbar(g.copy(), g_s=1e-3)
        pristine = xbar.conductances.copy()
        defects = inject_faults(
            xbar, FaultModel(stuck_on_rate=rate / 2, stuck_off_rate=rate / 2,
                             seed=seed)
        )
        faulted = xbar.conductances.copy()
        report = remap_spare_columns(xbar, defects, pristine, spares=0)
        assert np.array_equal(xbar.conductances, faulted)
        assert report.spares_used == 0
        assert report.cells_repaired == 0
        assert report.cells_unrepaired == int(np.count_nonzero(defects))

    @given(g=_conductances(), spares=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_clean_array_consumes_no_spares(self, g, spares):
        xbar = Crossbar(g.copy(), g_s=1e-3)
        defects = np.zeros_like(xbar.conductances, dtype=int)
        before = xbar.conductances.copy()
        report = remap_spare_columns(xbar, defects, before.copy(), spares)
        assert report.spares_used == 0
        assert np.array_equal(xbar.conductances, before)

    @given(g=_conductances(), seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_full_budget_restores_pristine(self, g, seed):
        # Enough spares for every column => the array is fully healed.
        xbar = Crossbar(g.copy(), g_s=1e-3)
        pristine = xbar.conductances.copy()
        defects = inject_faults(
            xbar, FaultModel(stuck_on_rate=0.2, stuck_off_rate=0.2, seed=seed)
        )
        remap_spare_columns(xbar, defects, pristine,
                            spares=xbar.conductances.shape[1])
        assert np.array_equal(xbar.conductances, pristine)


class TestRemapValidation:
    def test_shape_mismatch_rejected(self):
        xbar = Crossbar(np.full((4, 4), _G_MIN), g_s=1e-3)
        good = np.zeros((4, 4), dtype=int)
        with pytest.raises(ValueError, match="defect map shape"):
            remap_spare_columns(xbar, np.zeros((3, 4), dtype=int),
                                xbar.conductances.copy(), 1)
        with pytest.raises(ValueError, match="pristine snapshot shape"):
            remap_spare_columns(xbar, good, np.zeros((4, 5)), 1)
        with pytest.raises(ValueError, match="spares"):
            remap_spare_columns(xbar, good, xbar.conductances.copy(), -1)
