"""Extended property-based tests: scalers, metrics, devices, dynamics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.device.dynamics import SwitchingModel
from repro.device.rram import RRAMDevice
from repro.metrics.error import average_relative_error, image_diff, miss_rate
from repro.metrics.image import psnr
from repro.nn.datasets import UnitScaler
from repro.quant.fixedpoint import FixedPointCodec

finite = st.floats(allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6)


class TestScalerProperties:
    @given(
        low=st.floats(-100, 100),
        span=st.floats(0.1, 100),
        margin=st.floats(0, 0.4),
        value=st.floats(-100, 200),
    )
    def test_roundtrip_identity(self, low, span, margin, value):
        scaler = UnitScaler(low=np.array([low]), high=np.array([low + span]), margin=margin)
        v = np.array([value])
        assert np.allclose(scaler.inverse(scaler.transform(v)), v, atol=1e-6 * max(1, abs(value)))

    @given(
        low=st.floats(-10, 10),
        span=st.floats(0.5, 10),
        margin=st.floats(0, 0.4),
        a=st.floats(-10, 20),
        b=st.floats(-10, 20),
    )
    def test_transform_monotone(self, low, span, margin, a, b):
        scaler = UnitScaler(low=np.array([low]), high=np.array([low + span]), margin=margin)
        ta = scaler.transform(np.array([a]))[0]
        tb = scaler.transform(np.array([b]))[0]
        if a <= b:
            assert ta <= tb + 1e-12

    @given(low=st.floats(-10, 10), span=st.floats(0.5, 10), margin=st.floats(0.01, 0.4))
    def test_in_range_values_land_inside_margin(self, low, span, margin):
        scaler = UnitScaler(low=np.array([low]), high=np.array([low + span]), margin=margin)
        values = np.linspace(low, low + span, 11)
        unit = scaler.transform(values[:, None])
        assert np.all(unit >= margin - 1e-12)
        assert np.all(unit <= 1 - margin + 1e-12)


class TestMetricProperties:
    @given(arrays(float, (5, 2), elements=st.floats(-10, 10, allow_nan=False)))
    def test_relative_error_zero_iff_identical(self, arr):
        assert average_relative_error(arr, arr) == 0.0

    @given(
        arrays(float, (5, 2), elements=st.floats(-10, 10, allow_nan=False)),
        arrays(float, (5, 2), elements=st.floats(-10, 10, allow_nan=False)),
    )
    def test_relative_error_capped(self, a, b):
        assert 0.0 <= average_relative_error(a, b) <= 1.0

    @given(
        arrays(float, (6, 2), elements=st.floats(0, 1, allow_nan=False)),
        arrays(float, (6, 2), elements=st.floats(0, 1, allow_nan=False)),
    )
    def test_miss_rate_bounds(self, a, b):
        assert 0.0 <= miss_rate(a, b) <= 1.0

    @given(
        arrays(float, (4, 4), elements=st.floats(0, 255, allow_nan=False)),
        arrays(float, (4, 4), elements=st.floats(0, 255, allow_nan=False)),
    )
    def test_image_diff_symmetric(self, a, b):
        assert image_diff(a, b, 255.0) == image_diff(b, a, 255.0)

    @given(
        img=arrays(float, (8, 8), elements=st.floats(0, 200, allow_nan=False)),
        shift=st.floats(1, 50),
    )
    def test_psnr_worse_for_larger_offsets(self, img, shift):
        close = psnr(img, img + shift / 2)
        far = psnr(img, img + shift)
        assert close >= far


class TestDeviceProperties:
    @given(
        r_on=st.floats(1e3, 1e5),
        ratio=st.floats(2, 1e4),
        g=st.floats(0, 1),
    )
    def test_clip_stays_in_window(self, r_on, ratio, g):
        device = RRAMDevice(r_on=r_on, r_off=r_on * ratio)
        clipped = device.clip_conductance(np.array([g]))
        assert device.g_min <= clipped[0] <= device.g_max

    @given(levels=st.integers(2, 64), g=st.floats(0, 2e-4))
    def test_discretize_idempotent(self, levels, g):
        device = RRAMDevice(levels=levels)
        once = device.discretize(np.array([g]))
        twice = device.discretize(once)
        assert np.allclose(once, twice)

    @given(
        state=st.floats(0, 1),
        voltage=st.floats(-2, 2),
        dt=st.floats(1e-9, 1e-6),
    )
    @settings(max_examples=50)
    def test_switching_state_bounded(self, state, voltage, dt):
        model = SwitchingModel()
        after = model.step(np.array([state]), np.array([voltage]), dt)
        assert 0.0 <= after[0] <= 1.0

    @given(state=st.floats(0.01, 0.99), voltage=st.floats(0.4, 2))
    @settings(max_examples=50)
    def test_set_never_decreases_state(self, state, voltage):
        model = SwitchingModel()
        after = model.apply_pulse(np.array([state]), voltage, 10e-9)
        assert after[0] >= state - 1e-12


class TestCodecCrossProperties:
    @given(
        bits=st.integers(2, 12),
        values=arrays(float, (3, 2), elements=st.floats(0, 0.999, allow_nan=False)),
    )
    def test_encode_decode_within_group_resolution(self, bits, values):
        codec = FixedPointCodec(bits)
        decoded = codec.decode(codec.encode(values))
        assert np.all(np.abs(decoded - values) < codec.resolution)

    @given(bits=st.integers(1, 12), dims=st.integers(1, 6))
    def test_ports_scale_linearly(self, bits, dims):
        codec = FixedPointCodec(bits)
        assert codec.ports(dims) == dims * bits
