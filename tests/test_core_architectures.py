"""Tests for AnalogMLP deployment, TraditionalRCS and MEI."""

import numpy as np
import pytest

from repro.core.deploy import AnalogMLP
from repro.core.mei import MEI, MEIConfig
from repro.core.rcs import TraditionalRCS
from repro.cost.area import Topology
from repro.device.variation import NonIdealFactors
from repro.nn.network import MLP


def _toy_data(rng, n=400):
    """A smooth 2-in 1-out mapping in the unit interval."""
    x = rng.uniform(0, 1, (n, 2))
    y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
    return x, y


class TestAnalogMLP:
    def test_matches_software_network(self, rng):
        """Ideal deployment must match the software net to high precision."""
        net = MLP((4, 6, 2), rng=0)
        analog = AnalogMLP(net)
        x = rng.uniform(0, 1, (10, 4))
        assert np.allclose(analog.forward(x), net.predict(x), atol=1e-8)

    def test_weights_snapshot_at_deploy(self, rng):
        net = MLP((2, 4, 1), rng=0)
        analog = AnalogMLP(net)
        x = rng.uniform(0, 1, (5, 2))
        before = analog.forward(x)
        net.layers[0].weights += 10.0  # post-deploy software change
        assert np.allclose(analog.forward(x), before)

    def test_device_count(self):
        analog = AnalogMLP(MLP((3, 5, 2), rng=0))
        assert analog.device_count == 2 * 3 * 5 + 2 * 5 * 2

    def test_noise_trials_reproducible(self, rng):
        analog = AnalogMLP(MLP((3, 4, 2), rng=0))
        x = rng.uniform(0, 1, (5, 3))
        noise = NonIdealFactors(sigma_pv=0.2, seed=11)
        a = analog.forward(x, noise, trial=2)
        b = analog.forward(x, noise, trial=2)
        c = analog.forward(x, noise, trial=3)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_input_validation(self, rng):
        analog = AnalogMLP(MLP((3, 4, 2), rng=0))
        with pytest.raises(ValueError):
            analog.forward(rng.uniform(0, 1, (2, 5)))


class TestTraditionalRCS:
    def test_train_and_predict(self, rng, fast_train):
        x, y = _toy_data(rng)
        rcs = TraditionalRCS(Topology(2, 8, 1), seed=0).train(x, y, fast_train)
        pred = rcs.predict(x[:50])
        assert pred.shape == (50, 1)
        assert np.mean(np.abs(pred - y[:50])) < 0.1

    def test_predict_requires_training(self):
        rcs = TraditionalRCS(Topology(2, 4, 1), seed=0)
        with pytest.raises(RuntimeError):
            rcs.predict(np.zeros((1, 2)))

    def test_output_quantized_to_adc_grid(self, rng, fast_train):
        x, y = _toy_data(rng)
        rcs = TraditionalRCS(Topology(2, 8, 1, bits=8), seed=0).train(x, y, fast_train)
        pred = rcs.predict(x[:20])
        assert np.allclose(pred * 256, np.round(pred * 256))

    def test_analog_path_close_to_digital(self, rng, fast_train):
        """The ideal mixed-signal path only adds bounded quantization error."""
        x, y = _toy_data(rng)
        rcs = TraditionalRCS(Topology(2, 8, 1), seed=0).train(x, y, fast_train)
        digital = rcs.predict_digital(x)
        analog = rcs.predict(x)
        # Input+output 8-bit quantization bounds the deviation: the
        # output step alone is 2^-8, distortion through the net stays
        # within a few LSBs for a smooth target.
        assert np.mean(np.abs(analog - digital)) < 0.02

    def test_noise_degrades_accuracy(self, rng, fast_train):
        x, y = _toy_data(rng)
        rcs = TraditionalRCS(Topology(2, 8, 1), seed=0).train(x, y, fast_train)
        clean = rcs.mse(x, y)
        noisy = rcs.mse(x, y, NonIdealFactors(sigma_pv=0.4, sigma_sf=0.4, seed=0))
        assert noisy > clean

    def test_bit_interface_roundtrip(self, rng, fast_train):
        x, y = _toy_data(rng)
        rcs = TraditionalRCS(Topology(2, 8, 1), seed=0).train(x, y, fast_train)
        bits = rcs.predict_bits(x[:10])
        assert bits.shape == (10, 8)
        assert set(np.unique(bits)) <= {0.0, 1.0}
        target_bits = rcs.target_bits(y[:10])
        assert target_bits.shape == (10, 8)

    def test_sample_weights_accepted(self, rng, fast_train):
        x, y = _toy_data(rng, n=100)
        weights = rng.uniform(0.5, 1.5, 100)
        TraditionalRCS(Topology(2, 4, 1), seed=0).train(x, y, fast_train, weights)


class TestMEIConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MEIConfig(0, 1, 4)
        with pytest.raises(ValueError):
            MEIConfig(1, 1, 4, bits=0)
        with pytest.raises(ValueError):
            MEIConfig(1, 1, 4, weight_decay_ratio=0.0)


class TestMEI:
    def test_port_counts(self):
        mei = MEI(MEIConfig(in_groups=2, out_groups=1, hidden=8, bits=8), seed=0)
        assert mei.in_ports_full == 16
        assert mei.out_ports_full == 8
        assert mei.network.in_dim == 16
        assert mei.network.out_dim == 8

    def test_loss_weights_match_eq5(self):
        mei = MEI(MEIConfig(1, 2, 4, bits=8), seed=0)
        weights = mei.loss().port_weights
        assert weights[0] == 1.0
        assert weights[7] == 2.0**-7
        assert weights[8] == 1.0  # second group restarts at the MSB

    def test_plain_loss_when_unweighted(self):
        mei = MEI(MEIConfig(1, 1, 4, msb_weighted=False), seed=0)
        assert mei.loss().port_weights is None

    def test_train_and_predict(self, rng, fast_train):
        x, y = _toy_data(rng)
        mei = MEI(MEIConfig(2, 1, 16), seed=0).train(x, y, fast_train)
        pred = mei.predict(x[:50])
        assert pred.shape == (50, 1)
        assert np.mean(np.abs(pred - y[:50])) < 0.15

    def test_predict_bits_hard(self, rng, fast_train):
        x, y = _toy_data(rng)
        mei = MEI(MEIConfig(2, 1, 8), seed=0).train(x, y, fast_train)
        bits = mei.predict_bits(x[:10])
        assert set(np.unique(bits)) <= {0.0, 1.0}

    def test_predict_requires_training(self):
        mei = MEI(MEIConfig(1, 1, 4), seed=0)
        with pytest.raises(RuntimeError):
            mei.predict_bits(np.zeros((1, 1)))

    def test_topology_for_cost_model(self):
        mei = MEI(MEIConfig(in_groups=2, out_groups=2, hidden=32, bits=8), seed=0)
        topo = mei.topology()
        assert topo.in_ports == 16 and topo.out_ports == 16 and topo.hidden == 32
        assert str(topo) == "(2.8)x32x(2.8)"

    def test_pruned_view_masks_ports(self, rng, fast_train):
        x, y = _toy_data(rng)
        mei = MEI(MEIConfig(2, 1, 8), seed=0).train(x, y, fast_train)
        pruned = mei.pruned(in_bits=4, out_bits=5)
        assert pruned.in_ports == 8 and pruned.out_ports == 5
        assert str(pruned.topology()) == "(2.4)x8x(1.5)"
        # The original is untouched.
        assert mei.in_bits == 8 and mei.out_bits == 8

    def test_pruned_input_bits_zeroed(self, rng, fast_train):
        x, y = _toy_data(rng)
        mei = MEI(MEIConfig(2, 1, 8), seed=0).train(x, y, fast_train)
        pruned = mei.pruned(in_bits=3)
        encoded = pruned.encode_inputs(x[:5])
        assert np.all(encoded[:, 3:8] == 0.0)
        assert np.all(encoded[:, 11:16] == 0.0)

    def test_pruned_output_decode_excludes_lsbs(self):
        mei = MEI(MEIConfig(1, 1, 4, bits=4), seed=0)
        pruned = mei.pruned(out_bits=2)
        bits = np.ones((1, 4))
        # Only the top two bits contribute: 0.5 + 0.25.
        assert np.isclose(pruned.decode_outputs(bits)[0, 0], 0.75)

    def test_pruned_validation(self):
        mei = MEI(MEIConfig(1, 1, 4), seed=0)
        with pytest.raises(ValueError):
            mei.pruned(in_bits=0)
        with pytest.raises(ValueError):
            mei.pruned(out_bits=9)

    def test_mei_robust_to_sf_relative_to_adda(self, rng, fast_train):
        """The Fig. 5 headline: discrete inputs resist signal noise."""
        x, y = _toy_data(rng)
        noise = NonIdealFactors(sigma_sf=0.3, seed=3)
        rcs = TraditionalRCS(Topology(2, 8, 1), seed=0).train(x, y, fast_train)
        mei = MEI(MEIConfig(2, 1, 16), seed=0).train(x, y, fast_train)
        rcs_degradation = rcs.mse(x, y, noise) - rcs.mse(x, y)
        mei_degradation = mei.mse(x, y, noise) - mei.mse(x, y)
        assert mei_degradation < rcs_degradation * 1.5

    def test_from_traditional(self):
        mei = MEI.from_traditional(Topology(2, 8, 2, bits=8), seed=0)
        assert mei.config.in_groups == 2
        assert mei.config.out_groups == 2
        assert mei.config.hidden == 16  # 2x default
        assert mei.config.bits == 8
