"""Tests for the CLI entry point and the bit-length extension experiment."""

import pytest

from repro.__main__ import main
from repro.experiments.bitlength import run_bitlength
from repro.experiments.runner import ExperimentScale

TINY = ExperimentScale(name="tiny", n_train=300, n_test=80, epochs=15, noise_trials=2)


class TestCLI:
    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "AD/DA total" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_bench_flag_requires_valid_name(self):
        with pytest.raises(SystemExit):
            main(["table1", "--bench", "nonexistent"])


class TestBitLength:
    def test_sweep_structure(self):
        result = run_bitlength(name="sobel", bit_lengths=(4, 8), scale=TINY, seed=0)
        assert [p.bits for p in result.points] == [4, 8]
        assert all(0 <= p.error for p in result.points)
        assert "bits" in result.render()

    def test_wider_interface_costs_more(self):
        result = run_bitlength(name="sobel", bit_lengths=(4, 8), scale=TINY, seed=0)
        four, eight = result.points
        # More ports -> more devices -> smaller savings.
        assert eight.area_saved < four.area_saved
        assert eight.power_saved < four.power_saved
