"""Tests for the latency model and device I-V nonlinearity."""

import numpy as np
import pytest

from repro.cost.area import MEITopology, Topology
from repro.cost.timing import TimingParams, latency_mei, latency_traditional, speedup
from repro.xbar.crossbar import Crossbar, sinh_nonlinearity
from repro.xbar.mapping import DifferentialCrossbar, MappingConfig


class TestTimingParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimingParams(t_dac=-1.0)
        with pytest.raises(ValueError):
            TimingParams(dacs_per_port=0.0)
        with pytest.raises(ValueError):
            TimingParams(adcs_per_port=1.5)


class TestLatency:
    def test_traditional_includes_conversions(self):
        params = TimingParams(t_dac=1.0, t_adc=0.7, t_settle=5.0)
        latency = latency_traditional(Topology(2, 8, 2), params)
        assert latency == pytest.approx(1.0 + 2 * 5.0 + 0.7)

    def test_mei_skips_conversions(self):
        params = TimingParams(t_settle=5.0, t_comparator=0.2)
        latency = latency_mei(MEITopology(16, 16, 16), params)
        assert latency == pytest.approx(2 * 5.0 + 0.2)

    def test_converter_sharing_serializes(self):
        private = TimingParams(dacs_per_port=1.0, adcs_per_port=1.0)
        shared = TimingParams(dacs_per_port=1 / 8, adcs_per_port=1 / 8)
        topo = Topology(8, 8, 8)
        assert latency_traditional(topo, shared) > latency_traditional(topo, private)

    def test_mei_is_faster(self):
        params = TimingParams()
        topo = Topology(2, 8, 2)
        assert speedup(topo, MEITopology.from_analog(topo), params) > 1.0

    def test_layers_validation(self):
        with pytest.raises(ValueError):
            latency_traditional(Topology(1, 1, 1), TimingParams(), layers=0)
        with pytest.raises(ValueError):
            latency_mei(MEITopology(8, 8, 8), TimingParams(), layers=0)

    def test_energy_per_inference(self):
        from repro.cost.timing import energy_per_inference

        assert energy_per_inference(1000.0, 10.0) == 10_000.0  # 10 pJ in fJ
        with pytest.raises(ValueError):
            energy_per_inference(-1.0, 1.0)


class TestSinhNonlinearity:
    def test_fixed_points(self):
        v = np.array([0.0, 1.0])
        for alpha in (0.5, 2.0, 5.0):
            out = sinh_nonlinearity(v, alpha)
            assert out[0] == 0.0
            assert out[1] == pytest.approx(1.0)

    def test_zero_alpha_is_identity(self, rng):
        v = rng.uniform(0, 1, 50)
        assert np.array_equal(sinh_nonlinearity(v, 0.0), v)

    def test_compresses_midrange(self, rng):
        v = rng.uniform(0.1, 0.9, 50)
        out = sinh_nonlinearity(v, 3.0)
        assert np.all(out < v)  # sinh sags below linear inside (0, 1)

    def test_monotone(self):
        v = np.linspace(0, 1, 100)
        out = sinh_nonlinearity(v, 4.0)
        assert np.all(np.diff(out) > 0)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            sinh_nonlinearity(np.array([0.5]), -1.0)


class TestNonlinearCrossbar:
    def test_binary_inputs_unaffected(self, rng):
        """MEI's 0/1 levels are immune to the input nonlinearity."""
        g = rng.uniform(1e-7, 1e-4, (6, 3))
        linear = Crossbar(g, g_s=1e-3, nonlinearity=0.0)
        nonlinear = Crossbar(g, g_s=1e-3, nonlinearity=3.0)
        bits = rng.integers(0, 2, (5, 6)).astype(float)
        assert np.allclose(nonlinear.apply(bits), linear.apply(bits))

    def test_analog_inputs_distorted(self, rng):
        g = rng.uniform(1e-7, 1e-4, (6, 3))
        linear = Crossbar(g, g_s=1e-3, nonlinearity=0.0)
        nonlinear = Crossbar(g, g_s=1e-3, nonlinearity=3.0)
        analog = rng.uniform(0.2, 0.8, (5, 6))
        assert not np.allclose(nonlinear.apply(analog), linear.apply(analog))

    def test_differential_pair_carries_nonlinearity(self, rng):
        config = MappingConfig(input_nonlinearity=3.0)
        pair = DifferentialCrossbar(rng.normal(size=(5, 2)), config=config)
        assert pair.positive.nonlinearity == 3.0
        x = rng.uniform(0.2, 0.8, (4, 5))
        ideal = x @ np.zeros((5, 2))  # placeholder, compare vs linear pair
        linear_pair = DifferentialCrossbar(
            pair_weights := rng.normal(size=(5, 2)), config=MappingConfig()
        )
        nl_pair = DifferentialCrossbar(pair_weights, config=config)
        assert not np.allclose(nl_pair.apply(x), linear_pair.apply(x))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MappingConfig(input_nonlinearity=-0.5)
