"""Coverage for the RNG-discipline helpers (ensure_rng / fresh_rng)."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.parallel.seeding import derive_seed, ensure_rng, fresh_rng


class _ListHandler(logging.Handler):
    def __init__(self):
        super().__init__()
        self.records = []

    def emit(self, record):
        self.records.append(record)


@pytest.fixture
def repro_log():
    """Capture repro.* log records (the repro logger never propagates)."""
    from repro.obs.log import get_logger

    get_logger("parallel.seeding")  # force configuration first
    logger = logging.getLogger("repro")
    handler = _ListHandler()
    old_level = logger.level
    logger.addHandler(handler)
    logger.setLevel(logging.INFO)
    try:
        yield handler.records
    finally:
        logger.removeHandler(handler)
        logger.setLevel(old_level)


def _seed_records(records):
    return [r for r in records if r.getMessage() == "fresh rng drawn"]


class TestEnsureRng:
    def test_generator_passes_through_identically(self):
        rng = np.random.default_rng(7)
        assert ensure_rng(rng) is rng

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(123).normal(size=8)
        b = ensure_rng(123).normal(size=8)
        np.testing.assert_array_equal(a, b)

    def test_numpy_integer_seed_accepted(self):
        a = ensure_rng(np.int64(5)).normal(size=4)
        b = ensure_rng(5).normal(size=4)
        np.testing.assert_array_equal(a, b)

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(11)
        a = ensure_rng(seq).normal(size=4)
        b = ensure_rng(np.random.SeedSequence(11)).normal(size=4)
        np.testing.assert_array_equal(a, b)

    def test_none_yields_usable_generator(self):
        rng = ensure_rng(None, "test")
        assert isinstance(rng, np.random.Generator)
        assert rng.normal(size=3).shape == (3,)


class TestFreshRng:
    def test_logs_the_drawn_seed(self, repro_log):
        fresh_rng("unit-test")
        records = _seed_records(repro_log)
        assert records, "fresh_rng must log its seed"
        fields = records[-1].fields
        assert fields["label"] == "unit-test"
        assert isinstance(fields["seed"], int)

    def test_logged_seed_replays_the_stream(self, repro_log):
        rng = fresh_rng("replay")
        drawn = rng.normal(size=16)
        seed = _seed_records(repro_log)[-1].fields["seed"]
        replayed = np.random.default_rng(seed).normal(size=16)
        np.testing.assert_array_equal(drawn, replayed)

    def test_distinct_calls_yield_distinct_streams(self):
        a = fresh_rng().normal(size=8)
        b = fresh_rng().normal(size=8)
        assert not np.array_equal(a, b)


class TestCallSites:
    """The migrated fallbacks keep their deterministic seeded paths."""

    def test_dense_layer_seeded_init_unchanged(self):
        from repro.nn.layers import DenseLayer

        w1 = DenseLayer(4, 3, rng=np.random.default_rng(0)).weights
        w2 = DenseLayer(4, 3, rng=np.random.default_rng(0)).weights
        np.testing.assert_array_equal(w1, w2)

    def test_mlp_accepts_int_seed(self):
        from repro.nn.network import MLP

        a = MLP((2, 4, 1), rng=3).layers[0].weights
        b = MLP((2, 4, 1), rng=3).layers[0].weights
        np.testing.assert_array_equal(a, b)

    def test_unseeded_nonideal_factors_replayable_from_log(self, repro_log):
        from repro.device.variation import NonIdealFactors

        factors = NonIdealFactors(sigma_pv=0.1)
        perturbed = factors.perturb_conductance(np.ones((3, 3)))
        seed = _seed_records(repro_log)[-1].fields["seed"]
        replay = factors.perturb_conductance(np.ones((3, 3)), rng=np.random.default_rng(seed))
        np.testing.assert_array_equal(perturbed, replay)

    def test_comparator_unseeded_draw_is_logged(self, repro_log):
        from repro.analog.periphery import Comparator

        comp = Comparator(offset_sigma=0.05)
        comp.apply(np.linspace(0, 1, 9))
        labels = [r.fields["label"] for r in _seed_records(repro_log)]
        assert "analog.Comparator" in labels

    def test_zero_sigma_draws_no_entropy(self, repro_log):
        from repro.device.variation import lognormal_factors

        out = lognormal_factors((4,), 0.0, None)
        np.testing.assert_array_equal(out, np.ones(4))
        assert not _seed_records(repro_log)


def test_derive_seed_still_pure():
    assert derive_seed(0, 3) == derive_seed(0, 3)
    with pytest.raises(ValueError):
        derive_seed(0, -1)
