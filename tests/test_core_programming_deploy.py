"""Tests for write-verify programmed deployment of AnalogMLP."""

import numpy as np

from repro.core.deploy import AnalogMLP
from repro.device.programming import ProgrammingConfig
from repro.nn.network import MLP


class TestProgrammedDeployment:
    def test_programming_perturbs_conductances(self, rng):
        net = MLP((4, 6, 2), rng=0)
        ideal = AnalogMLP(net)
        programmed = AnalogMLP(
            net, programming=ProgrammingConfig(tolerance=0.05, max_iterations=3,
                                               pulse_sigma=0.1, seed=0)
        )
        assert not np.allclose(
            ideal.crossbars[0].positive.conductances,
            programmed.crossbars[0].positive.conductances,
        )

    def test_tight_programming_close_to_ideal(self, rng):
        net = MLP((4, 6, 2), rng=0)
        ideal = AnalogMLP(net)
        programmed = AnalogMLP(
            net, programming=ProgrammingConfig(tolerance=0.002, max_iterations=50,
                                               pulse_sigma=0.05, seed=0)
        )
        x = rng.uniform(0, 1, (10, 4))
        assert np.allclose(programmed.forward(x), ideal.forward(x), atol=0.05)

    def test_loose_programming_degrades_more(self, rng):
        net = MLP((4, 6, 2), rng=0)
        ideal = AnalogMLP(net)
        x = rng.uniform(0, 1, (20, 4))
        reference = ideal.forward(x)

        def deviation(tolerance, iterations):
            programmed = AnalogMLP(
                net,
                programming=ProgrammingConfig(tolerance=tolerance,
                                              max_iterations=iterations,
                                              pulse_sigma=0.15, seed=0),
            )
            return float(np.mean(np.abs(programmed.forward(x) - reference)))

        assert deviation(0.2, 1) > deviation(0.005, 40)

    def test_programming_is_deterministic_with_seed(self, rng):
        net = MLP((3, 4, 1), rng=0)
        config = ProgrammingConfig(seed=7)
        a = AnalogMLP(net, programming=config)
        b = AnalogMLP(net, programming=config)
        x = rng.uniform(0, 1, (5, 3))
        assert np.array_equal(a.forward(x), b.forward(x))

    def test_arrays_get_distinct_noise_streams(self):
        net = MLP((3, 4, 1), rng=0)
        deployed = AnalogMLP(
            net, programming=ProgrammingConfig(pulse_sigma=0.2, tolerance=0.05,
                                               max_iterations=1, seed=0)
        )
        pos = deployed.crossbars[0].positive.conductances
        neg = deployed.crossbars[0].negative.conductances
        ideal = AnalogMLP(net)
        rel_pos = pos / ideal.crossbars[0].positive.conductances
        rel_neg = neg / ideal.crossbars[0].negative.conductances
        # If both arrays shared a stream the relative perturbations
        # would be identical.
        assert not np.allclose(rel_pos, rel_neg)
