"""The profile report builder and ``python -m repro profile`` CLI."""

import json

import pytest

from repro import __main__ as cli
from repro.obs import trace
from repro.obs.profile import (
    build_report,
    hotspots_from_flat_metrics,
    hotspots_from_records,
    hotspots_from_tree,
    latest_manifest_path,
    render_html,
    render_text,
)


def _tree():
    # bench (10s) -> train (6s) -> epoch (4s); bench -> deploy (1s)
    return {
        "path": "",
        "children": [
            {
                "path": "bench",
                "name": "bench",
                "count": 1,
                "total_seconds": 10.0,
                "children": [
                    {
                        "path": "bench/train",
                        "name": "train",
                        "count": 2,
                        "total_seconds": 6.0,
                        "children": [
                            {
                                "path": "bench/train/epoch",
                                "name": "epoch",
                                "count": 20,
                                "total_seconds": 4.0,
                                "children": [],
                            }
                        ],
                    },
                    {
                        "path": "bench/deploy",
                        "name": "deploy",
                        "count": 3,
                        "total_seconds": 1.0,
                        "children": [],
                    },
                ],
            }
        ],
    }


class TestTree:
    def test_exclusive_is_inclusive_minus_direct_children(self):
        spots = {s.path: s for s in hotspots_from_tree(_tree())}
        assert spots["bench"].exclusive_seconds == pytest.approx(3.0)  # 10-6-1
        assert spots["bench/train"].exclusive_seconds == pytest.approx(2.0)  # 6-4
        assert spots["bench/train/epoch"].exclusive_seconds == pytest.approx(4.0)
        assert spots["bench/deploy"].exclusive_seconds == pytest.approx(1.0)

    def test_ranked_by_exclusive_descending(self):
        paths = [s.path for s in hotspots_from_tree(_tree())]
        assert paths == ["bench/train/epoch", "bench", "bench/train", "bench/deploy"]

    def test_exclusive_clamped_at_zero(self):
        tree = {
            "path": "",
            "children": [
                {
                    "path": "a",
                    "count": 1,
                    "total_seconds": 1.0,
                    "children": [
                        # Overlapping children can exceed the parent.
                        {"path": "a/b", "count": 1, "total_seconds": 2.0, "children": []}
                    ],
                }
            ],
        }
        spots = {s.path: s for s in hotspots_from_tree(tree)}
        assert spots["a"].exclusive_seconds == 0.0

    def test_children_as_dict_accepted(self):
        tree = {
            "path": "",
            "children": {
                "a": {"path": "a", "count": 1, "total_seconds": 2.0, "children": {}},
            },
        }
        assert [s.path for s in hotspots_from_tree(tree)] == ["a"]


class TestFlatMetrics:
    def test_reconstructs_hierarchy_from_span_keys(self):
        metrics = {
            "span.bench": 10.0,
            "span.bench/train": 4.0,
            "span.bench/deploy": 5.0,
            "accuracy": 0.97,  # not a span: ignored
        }
        spots = {s.path: s for s in hotspots_from_flat_metrics(metrics)}
        assert set(spots) == {"bench", "bench/train", "bench/deploy"}
        assert spots["bench"].exclusive_seconds == pytest.approx(1.0)
        assert spots["bench"].count == 0  # unknown

    def test_only_direct_children_are_subtracted(self):
        metrics = {"span.a": 10.0, "span.a/b": 4.0, "span.a/b/c": 3.0}
        spots = {s.path: s for s in hotspots_from_flat_metrics(metrics)}
        assert spots["a"].exclusive_seconds == pytest.approx(6.0)
        assert spots["a/b"].exclusive_seconds == pytest.approx(1.0)

    def test_junk_values_skipped(self):
        assert hotspots_from_flat_metrics({"span.x": "soon", "span.": 1.0}) == []


class TestRecords:
    def test_live_records_produce_hotspots(self):
        trace.enable()
        try:
            trace.clear()
            with trace.span("outer"):
                with trace.span("inner"):
                    pass
            spots = {s.path for s in hotspots_from_records()}
        finally:
            trace.clear()
            trace.enable(False)
        assert spots == {"outer", "outer/inner"}


class TestRendering:
    def _report(self):
        return build_report(hotspots_from_tree(_tree()), source="test", experiment="bench")

    def test_report_shape(self):
        report = self._report()
        assert report["source"] == "test"
        assert report["experiment"] == "bench"
        assert report["total_seconds"] == pytest.approx(10.0)
        assert report["hotspots"][0]["path"] == "bench/train/epoch"
        json.dumps(report)  # must be JSON-serializable as-is

    def test_text_render_has_columns_and_unknown_counts(self):
        report = build_report(
            hotspots_from_flat_metrics({"span.bench": 2.0}), source="history"
        )
        text = render_text(report)
        assert "excl" in text and "bench" in text
        assert "?" in text  # unknown call count

    def test_text_render_respects_top(self):
        text = render_text(self._report(), top=2)
        assert "bench/train/epoch" in text
        assert "bench/deploy" not in text

    def test_html_render_is_self_contained(self):
        html = render_html(self._report())
        assert html.lstrip().startswith("<!") or html.lstrip().startswith("<html")
        assert "bench/train/epoch" in html


class TestLatestManifest:
    def test_picks_newest_manifest_skipping_non_manifests(self, tmp_path):
        (tmp_path / "0001-old.json").write_text(
            json.dumps({"span_tree": {"path": "", "children": []}})
        )
        (tmp_path / "0002-new.json").write_text(
            json.dumps({"span_tree": {"path": "", "children": []}})
        )
        (tmp_path / "0003-not-a-manifest.json").write_text(json.dumps({"rows": []}))
        (tmp_path / "0004-broken.json").write_text("{nope")
        assert latest_manifest_path(tmp_path).name == "0002-new.json"

    def test_empty_dir_returns_none(self, tmp_path):
        assert latest_manifest_path(tmp_path) is None
        assert latest_manifest_path(tmp_path / "missing") is None


class TestCli:
    def _manifest(self, tmp_path):
        path = tmp_path / "123-bench.json"
        path.write_text(json.dumps({"experiment": "bench", "span_tree": _tree()}))
        return path

    def test_manifest_text_output(self, tmp_path, capsys):
        rc = cli.main(["profile", "--manifest", str(self._manifest(tmp_path))])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bench/train/epoch" in out

    def test_manifest_json_output_and_check(self, tmp_path, capsys):
        rc = cli.main(
            ["profile", "--manifest", str(self._manifest(tmp_path)), "--json", "--check"]
        )
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["hotspots"][0]["exclusive_seconds"] == pytest.approx(4.0)

    def test_missing_manifest_exits_2(self, tmp_path, capsys):
        rc = cli.main(["profile", "--manifest", str(tmp_path / "nope.json")])
        assert rc == 2

    def test_no_sources_exits_2(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "empty-runs"))
        monkeypatch.setenv("REPRO_HISTORY", str(tmp_path / "no-history.jsonl"))
        rc = cli.main(["profile"])
        assert rc == 2
        assert "no span data" in capsys.readouterr().err.lower()

    def test_html_written(self, tmp_path):
        out = tmp_path / "profile.html"
        rc = cli.main(
            ["profile", "--manifest", str(self._manifest(tmp_path)), "--html", str(out)]
        )
        assert rc == 0
        assert "bench/train" in out.read_text()
