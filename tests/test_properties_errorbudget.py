"""Property test: error-budget additivity across seeds and sigmas.

The attribution harness reports a first-order additivity residual; by
construction the identity

    total_gap == sum(stage deltas) + residual

must hold *exactly* (the residual is defined as the difference), and
every stage delta must equal ``err_real - counterfactual_error``.
Hypothesis sweeps seeds and noise levels so the identity is not an
artifact of one lucky configuration.
"""

import functools

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.errorbudget import ErrorBudgetConfig, attribute_error
from repro.core.mei import MEI, MEIConfig
from repro.nn.trainer import TrainConfig


@functools.lru_cache(maxsize=1)
def _system():
    """One tiny trained MEI shared by every Hypothesis example."""
    rng = np.random.default_rng(3)
    x = rng.uniform(0.05, 0.95, size=(48, 2))
    y = x.mean(axis=1, keepdims=True)
    mei = MEI(MEIConfig(in_groups=2, out_groups=1, hidden=6, bits=4), seed=0)
    mei.train(x, y, TrainConfig(epochs=10, batch_size=16, learning_rate=0.05,
                                shuffle_seed=0))
    return mei, x, y


def _mean_abs(predicted, target):
    return float(np.mean(np.abs(predicted - target)))


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    sigma_pv=st.floats(min_value=0.0, max_value=0.5,
                       allow_nan=False, allow_infinity=False),
    sigma_sf=st.floats(min_value=0.0, max_value=0.2,
                       allow_nan=False, allow_infinity=False),
)
def test_stage_deltas_sum_to_total_gap_within_residual(seed, sigma_pv, sigma_sf):
    mei, x, y = _system()
    config = ErrorBudgetConfig(
        sigma_pv=sigma_pv, sigma_sf=sigma_sf, trials=2, seed=seed
    )
    result = attribute_error(mei, x, y, _mean_abs, config, benchmark="prop")

    total = sum(stage.delta for stage in result.stages)
    assert abs(result.total_gap - (total + result.residual)) < 1e-9

    for stage in result.stages:
        assert abs(stage.delta - (result.err_real - stage.counterfactual_error)) < 1e-12
        assert abs(
            stage.leave_one_in_delta
            - (stage.leave_one_in_error - result.err_ideal)
        ) < 1e-12

    assert result.total_gap == result.err_real - result.err_ideal


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_attribution_is_deterministic_per_seed(seed):
    mei, x, y = _system()
    config = ErrorBudgetConfig(trials=2, seed=seed)
    first = attribute_error(mei, x, y, _mean_abs, config, benchmark="prop")
    second = attribute_error(mei, x, y, _mean_abs, config, benchmark="prop")
    assert first.err_real == second.err_real
    assert first.err_ideal == second.err_ideal
    assert [s.delta for s in first.stages] == [s.delta for s in second.stages]
