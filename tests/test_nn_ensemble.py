"""Batched ensemble training: bit-identity vs the serial reference.

The contract under test (``repro.nn.ensemble``): training K
same-topology members with one stacked matmul per layer produces
float64 weights, biases and loss histories **bit identical** to K
independent :class:`Trainer.fit` runs with matching shuffle seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import MLP, TrainConfig, Trainer, WeightedMSE, mse
from repro.nn.ensemble import EnsembleTrainer, _backward, _forward, _stack_models, train_ensemble
from repro.nn.losses import Loss


def _data(n=97, in_dim=5, out_dim=3, seed=7):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, (n, in_dim))
    w = rng.uniform(-1, 1, (in_dim, out_dim))
    y = np.tanh(x @ w) + 0.05 * rng.standard_normal((n, out_dim))
    return x, y


def _members(count, sizes=(5, 8, 3), seed0=11):
    return [MLP(sizes, rng=seed0 + k) for k in range(count)]


def _serial_reference(config, loss, x, y, sample_weights, seeds, sizes=(5, 8, 3),
                      seed0=11, x_val=None, y_val=None):
    results = []
    models = []
    for k, seed in enumerate(seeds):
        model = MLP(sizes, rng=seed0 + k)
        cfg = TrainConfig(**{**config.__dict__, "shuffle_seed": seed})
        trainer = Trainer(loss=loss, config=cfg)
        wk = sample_weights[k] if isinstance(sample_weights, np.ndarray) and \
            sample_weights.ndim == 2 else sample_weights
        results.append(trainer.fit(model, x, y, x_val=x_val, y_val=y_val,
                                   sample_weights=wk))
        models.append(model)
    return models, results


class TestBitIdentity:
    def test_full_config_matches_serial_exactly(self):
        """Adam + lr decay + l2 + per-sample and per-port weights."""
        x, y = _data()
        rng = np.random.default_rng(3)
        sw = rng.uniform(0.2, 1.0, x.shape[0])
        loss = WeightedMSE(port_weights=np.array([1.0, 0.5, 0.25]))
        config = TrainConfig(epochs=6, batch_size=16, optimizer="adam",
                             learning_rate=0.01, lr_decay=0.5, lr_decay_every=3,
                             l2=1e-4)
        seeds = [101, 102, 103, 104]

        batched = _members(4)
        EnsembleTrainer(loss=loss, config=config).fit(
            batched, x, y, sample_weights=sw, shuffle_seeds=seeds
        )
        serial, serial_results = _serial_reference(config, loss, x, y, sw, seeds)

        for bm, sm in zip(batched, serial):
            for bl, sl in zip(bm.layers, sm.layers):
                assert np.array_equal(bl.weights, sl.weights)
                assert np.array_equal(bl.bias, sl.bias)

    def test_loss_histories_match_serial(self):
        x, y = _data(n=64)
        x_val, y_val = _data(n=16, seed=8)
        config = TrainConfig(epochs=5, batch_size=16, optimizer="sgd",
                             learning_rate=0.05)
        seeds = [1, 2, 3]

        batched = _members(3)
        batched_results = EnsembleTrainer(config=config).fit(
            batched, x, y, x_val=x_val, y_val=y_val, shuffle_seeds=seeds
        )
        _, serial_results = _serial_reference(config, None, x, y, None, seeds,
                                              x_val=x_val, y_val=y_val)
        for br, sr in zip(batched_results, serial_results):
            assert br.train_losses == sr.train_losses
            assert br.val_losses == sr.val_losses
            assert br.epochs_run == sr.epochs_run

    def test_per_member_sample_weights(self):
        x, y = _data(n=40)
        rng = np.random.default_rng(5)
        sw = rng.uniform(0.1, 1.0, (2, x.shape[0]))  # a SAAB-style (K, n)
        config = TrainConfig(epochs=4, batch_size=8, optimizer="momentum",
                             learning_rate=0.02)
        seeds = [21, 22]

        batched = _members(2)
        EnsembleTrainer(config=config).fit(batched, x, y, sample_weights=sw,
                                           shuffle_seeds=seeds)
        serial, _ = _serial_reference(config, None, x, y, sw, seeds)
        for bm, sm in zip(batched, serial):
            for bl, sl in zip(bm.layers, sm.layers):
                assert np.array_equal(bl.weights, sl.weights)

    def test_train_ensemble_wrapper(self):
        x, y = _data(n=32)
        config = TrainConfig(epochs=3, batch_size=8, shuffle_seed=9)
        batched = _members(2)
        results = train_ensemble(batched, x, y, config=config)
        serial, _ = _serial_reference(config, None, x, y, None, [9, 9])
        assert len(results) == 2
        for bm, sm in zip(batched, serial):
            assert np.array_equal(bm.layers[0].weights, sm.layers[0].weights)


class TestValidation:
    def test_topology_mismatch_rejected(self):
        x, y = _data(n=16)
        models = [MLP((5, 8, 3), rng=0), MLP((5, 4, 3), rng=1)]
        with pytest.raises(ValueError, match="topology"):
            EnsembleTrainer(config=TrainConfig(epochs=1)).fit(models, x, y)

    def test_unsupported_loss_rejected(self):
        class Custom(Loss):
            def value(self, predicted, target, sample_weights=None):
                return mse(predicted, target)

            def gradient(self, predicted, target, sample_weights=None):
                return predicted - target

        with pytest.raises(ValueError, match="WeightedMSE"):
            EnsembleTrainer(loss=Custom())

    def test_patience_rejected(self):
        with pytest.raises(ValueError, match="patience"):
            EnsembleTrainer(config=TrainConfig(patience=3))

    def test_weight_noise_rejected(self):
        with pytest.raises(ValueError, match="weight_noise_sigma"):
            EnsembleTrainer(config=TrainConfig(weight_noise_sigma=0.1))

    def test_bad_sample_weight_shape_rejected(self):
        x, y = _data(n=16)
        with pytest.raises(ValueError):
            EnsembleTrainer(config=TrainConfig(epochs=1)).fit(
                _members(2), x, y, sample_weights=np.ones((3, 16))
            )

    def test_seed_count_mismatch_rejected(self):
        x, y = _data(n=16)
        with pytest.raises(ValueError, match="shuffle seeds"):
            EnsembleTrainer(config=TrainConfig(epochs=1)).fit(
                _members(2), x, y, shuffle_seeds=[1, 2, 3]
            )

    def test_empty_ensemble_rejected(self):
        x, y = _data(n=16)
        with pytest.raises(ValueError, match="at least one"):
            EnsembleTrainer(config=TrainConfig(epochs=1)).fit([], x, y)


# Satellite property test: the batched WeightedMSE gradient equals the
# per-member loop for arbitrary shapes/weights/sample-weights.
@settings(max_examples=60, deadline=None)
@given(
    members=st.integers(1, 5),
    batch=st.integers(1, 8),
    ports=st.integers(1, 4),
    weighted_ports=st.booleans(),
    weighted_samples=st.booleans(),
    seed=st.integers(0, 2**31 - 1),
)
def test_batched_gradient_matches_member_loop(
    members, batch, ports, weighted_ports, weighted_samples, seed
):
    rng = np.random.default_rng(seed)
    pred = rng.standard_normal((members, batch, ports))
    target = rng.standard_normal((members, batch, ports))
    port_weights = rng.uniform(0.1, 2.0, ports) if weighted_ports else None
    sample_weights = rng.uniform(0.0, 2.0, (members, batch)) if weighted_samples else None

    loss = WeightedMSE(port_weights=port_weights)
    trainer = EnsembleTrainer(loss=loss, config=TrainConfig(epochs=1))
    batched = trainer._gradient(pred, target, sample_weights)

    for k in range(members):
        wk = sample_weights[k] if sample_weights is not None else None
        reference = loss.gradient(pred[k], target[k], wk)
        assert np.array_equal(batched[k], reference)


@settings(max_examples=30, deadline=None)
@given(
    members=st.integers(1, 4),
    batch=st.integers(1, 6),
    seed=st.integers(0, 2**31 - 1),
)
def test_batched_forward_backward_match_member_loop(members, batch, seed):
    rng = np.random.default_rng(seed)
    models = [MLP((3, 5, 2), rng=seed % 1000 + k) for k in range(members)]
    x = rng.standard_normal((batch, 3))
    grad = rng.standard_normal((members, batch, 2))

    stacks = _stack_models(models)
    out = _forward(stacks, x, train=True)
    _backward(stacks, grad)

    for k, model in enumerate(models):
        assert np.array_equal(out[k], model.forward(x))
