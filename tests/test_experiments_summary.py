"""Tests for the report collector and its CLI subcommand."""

import pathlib


from repro.__main__ import main
from repro.experiments.summary import REPORT_ORDER, collect_reports


class TestCollectReports:
    def test_orders_known_reports(self, tmp_path):
        (tmp_path / "fig3_hidden_sweep.txt").write_text("FIG3 CONTENT")
        (tmp_path / "fig2_breakdown.txt").write_text("FIG2 CONTENT")
        report = collect_reports(tmp_path)
        assert report.index("FIG2 CONTENT") < report.index("FIG3 CONTENT")

    def test_lists_missing(self, tmp_path):
        report = collect_reports(tmp_path)
        assert "Missing reports" in report
        assert "table1_fft" in report

    def test_appends_unknown_files(self, tmp_path):
        (tmp_path / "custom_extra.txt").write_text("EXTRA CONTENT")
        report = collect_reports(tmp_path)
        assert "EXTRA CONTENT" in report

    def test_handles_missing_directory(self, tmp_path):
        report = collect_reports(tmp_path / "nope")
        assert report.startswith("# Reproduction report")

    def test_order_covers_every_bench_artifact(self):
        """Each bench module's save_report name appears in REPORT_ORDER."""
        bench_dir = pathlib.Path("benchmarks")
        import re

        names = set()
        for path in bench_dir.glob("test_bench_*.py"):
            names.update(re.findall(r'save_report\(\s*[f]?"([a-z0-9_{}]+)"', path.read_text()))
        names = {n for n in names if "{" not in n}  # parametrized handled below
        missing = names - set(REPORT_ORDER)
        assert not missing, f"REPORT_ORDER missing: {missing}"


class TestCLISummary:
    def test_summary_subcommand(self, capsys):
        # 'report' now renders the benchmark trajectory (see
        # test_obs_history); the archived-table collation moved here.
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "Reproduction report" in out
