"""Unit tests for the fixed-point codec."""

import numpy as np
import pytest

from repro.quant.fixedpoint import FixedPointCodec, bit_place_values, quantize_unit


class TestBitPlaceValues:
    def test_first_entry_is_half(self):
        assert bit_place_values(8)[0] == 0.5

    def test_values_halve(self):
        values = bit_place_values(6)
        assert np.allclose(values[:-1] / values[1:], 2.0)

    def test_sum_approaches_one(self):
        assert np.isclose(bit_place_values(20).sum(), 1.0 - 2.0**-20)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            bit_place_values(0)


class TestQuantizeUnit:
    def test_grid_alignment(self):
        q = quantize_unit(np.array([0.1, 0.5, 0.9]), 8)
        assert np.allclose(q * 256, np.round(q * 256))

    def test_clips_above_range(self):
        assert quantize_unit(np.array([1.5]), 8)[0] == 255 / 256

    def test_clips_below_range(self):
        assert quantize_unit(np.array([-0.3]), 8)[0] == 0.0

    def test_error_bounded_by_lsb(self):
        values = np.linspace(0, 0.999, 777)
        q = quantize_unit(values, 8)
        assert np.all(np.abs(q - values) < 2.0**-8)

    def test_idempotent(self):
        values = np.linspace(0, 0.99, 100)
        q = quantize_unit(values, 6)
        assert np.array_equal(quantize_unit(q, 6), q)


class TestFixedPointCodec:
    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            FixedPointCodec(0)
        with pytest.raises(ValueError):
            FixedPointCodec(33)

    def test_resolution(self):
        assert FixedPointCodec(8).resolution == 2.0**-8

    def test_encode_shape(self):
        codec = FixedPointCodec(8)
        bits = codec.encode(np.zeros((5, 3)))
        assert bits.shape == (5, 24)

    def test_encode_is_binary(self):
        codec = FixedPointCodec(8)
        bits = codec.encode(np.random.default_rng(0).uniform(0, 1, (20, 4)))
        assert set(np.unique(bits)) <= {0.0, 1.0}

    def test_half_encodes_as_msb(self):
        codec = FixedPointCodec(8)
        bits = codec.encode(np.array([[0.5]]))
        assert bits[0, 0] == 1.0
        assert np.all(bits[0, 1:] == 0.0)

    def test_encode_1d_input_keeps_rank(self):
        codec = FixedPointCodec(4)
        bits = codec.encode(np.array([0.5, 0.25]))
        assert bits.shape == (8,)

    def test_roundtrip_equals_quantize(self, rng):
        codec = FixedPointCodec(8)
        values = rng.uniform(0, 1, (50, 3))
        assert np.allclose(codec.decode(codec.encode(values)), codec.quantize(values))

    def test_roundtrip_exact_on_grid(self, rng):
        codec = FixedPointCodec(6)
        values = rng.integers(0, 64, (30, 2)) / 64.0
        assert np.allclose(codec.decode(codec.encode(values)), values)

    def test_decode_soft_bits(self):
        codec = FixedPointCodec(2)
        # Soft MSB of 0.5 contributes half its place value.
        assert np.isclose(codec.decode(np.array([0.5, 0.0]))[0], 0.25)

    def test_decode_rejects_misaligned(self):
        codec = FixedPointCodec(8)
        with pytest.raises(ValueError):
            codec.decode(np.zeros((2, 13)))

    def test_ports(self):
        assert FixedPointCodec(8).ports(3) == 24

    def test_ports_rejects_zero(self):
        with pytest.raises(ValueError):
            FixedPointCodec(8).ports(0)

    def test_multirow_group_layout(self):
        codec = FixedPointCodec(4)
        bits = codec.encode(np.array([[0.5, 0.0], [0.0, 0.5]]))
        # First group of row 0 and second group of row 1 carry the MSB.
        assert bits[0, 0] == 1.0 and bits[0, 4] == 0.0
        assert bits[1, 0] == 0.0 and bits[1, 4] == 1.0

    def test_encode_clips_out_of_range(self):
        codec = FixedPointCodec(8)
        bits = codec.encode(np.array([2.0, -1.0]))
        decoded = codec.decode(bits)
        assert decoded[0] == 1.0 - 2.0**-8
        assert decoded[1] == 0.0
