"""Coverage for the central REPRO_* knob registry."""

from __future__ import annotations

import pathlib

import pytest

from repro.config import knobs

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs"


class TestRegistry:
    def test_unknown_knob_rejected_on_every_accessor(self):
        for accessor in (knobs.get_raw, knobs.get_str, knobs.get_bool,
                         knobs.get_int, knobs.get_path, knobs.knob):
            with pytest.raises(knobs.UnknownKnobError):
                accessor("REPRO_NO_SUCH_KNOB")

    def test_knob_names_must_carry_prefix(self):
        with pytest.raises(ValueError):
            knobs.Knob(name="WORKERS", kind="int", default=None, description="x")

    def test_conflicting_reregistration_rejected(self):
        declared = knobs.knob("REPRO_WORKERS")
        # Identical re-registration is idempotent...
        assert knobs.register(declared.name, declared.kind, declared.default,
                              declared.description, declared.choices) == declared
        # ...but changing the contract in a second declaration is an error.
        with pytest.raises(ValueError):
            knobs.register("REPRO_WORKERS", "str", None, "different")

    def test_expected_catalogue_is_registered(self):
        names = {declared.name for declared in knobs.all_knobs()}
        assert names == {
            "REPRO_LOG",
            "REPRO_LOG_JSON",
            "REPRO_TRACE",
            "REPRO_RUN_DIR",
            "REPRO_HISTORY",
            "REPRO_WORKERS",
            "REPRO_EXECUTOR",
            "REPRO_FULL",
            "REPRO_TASK_TIMEOUT",
            "REPRO_TASK_RETRIES",
            "REPRO_DTYPE",
            "REPRO_ERRORBUDGET_TRIALS",
            "REPRO_SANITIZE",
            "REPRO_SERVE_DEADLINE_MS",
            "REPRO_SERVE_MAX_BATCH",
            "REPRO_SERVE_MAX_DELAY_MS",
            "REPRO_SERVE_PORT",
            "REPRO_SERVE_QUEUE_LIMIT",
            "REPRO_SHM",
            "REPRO_TELEMETRY",
            "REPRO_TELEMETRY_PORT",
            "REPRO_TELEMETRY_INTERVAL",
        }


class TestDefaults:
    def test_unset_knobs_fall_back_to_declared_defaults(self, monkeypatch):
        for name in ("REPRO_RUN_DIR", "REPRO_HISTORY", "REPRO_EXECUTOR"):
            monkeypatch.delenv(name, raising=False)
        assert knobs.get_path("REPRO_RUN_DIR") == "runs"
        assert knobs.get_path("REPRO_HISTORY") == "runs/history.jsonl"
        assert knobs.get_str("REPRO_EXECUTOR") == "process"

    def test_empty_string_counts_as_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DIR", "   ")
        assert knobs.get_path("REPRO_RUN_DIR") == "runs"

    def test_raw_does_not_apply_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert knobs.get_raw("REPRO_WORKERS") is None
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        assert knobs.get_raw("REPRO_WORKERS") == "junk"


class TestCoercion:
    def test_bool_accepts_all_truthy_spellings(self, monkeypatch):
        for raw in ("1", "true", "YES", " On "):
            monkeypatch.setenv("REPRO_TRACE", raw)
            assert knobs.get_bool("REPRO_TRACE") is True
        for raw in ("0", "off", "no", "false", ""):
            monkeypatch.setenv("REPRO_TRACE", raw)
            assert knobs.get_bool("REPRO_TRACE") is False

    def test_int_coercion_and_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", " 4 ")
        assert knobs.get_int("REPRO_WORKERS") == 4
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert knobs.get_int("REPRO_WORKERS") == 1  # declared default

    def test_int_rejects_junk_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            knobs.get_int("REPRO_WORKERS")

    def test_str_strips_whitespace(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "  thread  ")
        assert knobs.get_str("REPRO_EXECUTOR") == "thread"


class TestSnapshot:
    def test_snapshot_captures_all_repro_vars(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_SURPRISE", "x")  # unregistered but captured
        snap = knobs.snapshot()
        assert snap["REPRO_TRACE"] == "1"
        assert snap["REPRO_SURPRISE"] == "x"
        assert all(name.startswith("REPRO_") for name in snap)

    def test_unregistered_surfaces_stray_vars(self, monkeypatch):
        monkeypatch.setenv("REPRO_SURPRISE", "x")
        assert "REPRO_SURPRISE" in knobs.unregistered()
        monkeypatch.delenv("REPRO_SURPRISE")
        assert "REPRO_SURPRISE" not in knobs.unregistered()

    def test_no_stray_knobs_in_test_environment(self):
        # Guards against tests (or CI) exporting knobs that were never
        # declared — exactly the drift RPR003 exists to prevent.
        known_ci_noise = {name for name in knobs.unregistered()}
        assert known_ci_noise == set(), (
            f"undeclared REPRO_* variables in the environment: {known_ci_noise}; "
            "declare them in repro.config.knobs"
        )


class TestDocs:
    def test_docs_table_lists_every_knob(self):
        table = knobs.docs_table()
        for declared in knobs.all_knobs():
            assert f"`{declared.name}`" in table
        assert table.startswith("| Knob | Type | Default | Description |")

    def test_observability_doc_documents_every_knob(self):
        text = (DOCS / "observability.md").read_text(encoding="utf-8")
        missing = [d.name for d in knobs.all_knobs() if f"`{d.name}`" not in text]
        assert missing == [], f"knobs missing from docs/observability.md: {missing}"

    def test_enum_choices_rendered(self):
        table = knobs.docs_table()
        assert "serial / thread / process" in table


class TestIntegration:
    """The migrated call sites still honour their knobs."""

    def test_trace_env_resolves_through_registry(self, monkeypatch):
        from repro.obs import trace

        monkeypatch.setenv("REPRO_TRACE", "yes")
        assert knobs.get_bool(trace.TRACE_ENV) is True

    def test_workers_env_resolves_through_registry(self, monkeypatch):
        from repro.parallel.executor import resolve_workers

        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        with pytest.warns(RuntimeWarning):
            assert resolve_workers() == 1

    def test_full_scale_accepts_truthy_spellings(self, monkeypatch):
        from repro.experiments.runner import FULL_SCALE, QUICK_SCALE, default_scale

        monkeypatch.setenv("REPRO_FULL", "true")
        assert default_scale() == FULL_SCALE
        monkeypatch.setenv("REPRO_FULL", "0")
        assert default_scale() == QUICK_SCALE

    def test_history_path_resolves_through_registry(self, monkeypatch, tmp_path):
        from repro.obs.history import history_path

        monkeypatch.setenv("REPRO_HISTORY", str(tmp_path / "h.jsonl"))
        assert history_path() == tmp_path / "h.jsonl"
        monkeypatch.delenv("REPRO_HISTORY")
        assert str(history_path()) == "runs/history.jsonl"

    def test_manifest_env_block_uses_snapshot(self, monkeypatch):
        from repro.obs.runinfo import repro_env

        monkeypatch.setenv("REPRO_TRACE", "1")
        assert repro_env()["REPRO_TRACE"] == "1"
