"""Tests of the Benchmark layer: datasets, scalers, metrics, registry."""

import numpy as np
import pytest

from repro.metrics.error import average_relative_error, image_diff, miss_rate
from repro.workloads.base import BenchmarkSpec
from repro.workloads.registry import (
    BENCHMARK_NAMES,
    PAPER_TABLE1,
    all_benchmarks,
    make_benchmark,
)


class TestRegistry:
    def test_all_six_benchmarks(self):
        assert set(BENCHMARK_NAMES) == {
            "fft", "inversek2j", "jmeint", "jpeg", "kmeans", "sobel"
        }

    def test_make_benchmark_unknown(self):
        with pytest.raises(ValueError):
            make_benchmark("nonexistent")

    def test_all_benchmarks_order(self):
        names = [b.spec.name for b in all_benchmarks()]
        assert names == list(BENCHMARK_NAMES)

    def test_paper_topologies_match_table1(self):
        """Digital/AD-DA topologies of Table 1."""
        expected = {
            "fft": (1, 8, 2),
            "inversek2j": (2, 8, 2),
            "jmeint": (18, 48, 2),
            "jpeg": (64, 16, 64),
            "kmeans": (6, 20, 1),
            "sobel": (9, 8, 1),
        }
        for name, (i, h, o) in expected.items():
            topo = make_benchmark(name).spec.topology
            assert (topo.inputs, topo.hidden, topo.outputs) == (i, h, o)

    def test_paper_pruned_topologies_notation(self):
        """The (D.B) notation of Table 1's pruned MEI column."""
        expected = {
            "fft": "(1.7)x16x(2.8)",
            "inversek2j": "(2.8)x32x(2.8)",
            "jmeint": "(18.6)x64x(2.1)",
            "jpeg": "(64.6)x64x(64.7)",
            "kmeans": "(6.6)x32x(1.8)",
            "sobel": "(9.6)x16x(1.1)",
        }
        for name, notation in expected.items():
            assert str(PAPER_TABLE1[name].pruned_mei) == notation

    def test_paper_rows_consistent(self):
        for name in BENCHMARK_NAMES:
            row = PAPER_TABLE1[name]
            assert 0 < row.area_saved < 1
            assert 0 < row.power_saved < 1
            assert row.name == name

    def test_spec_rejects_unknown_metric(self):
        from repro.cost.area import Topology

        with pytest.raises(ValueError):
            BenchmarkSpec("x", "app", Topology(1, 1, 1), metric="nope")


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestBenchmarkDatasets:
    def test_dataset_shapes(self, name):
        bench = make_benchmark(name)
        data = bench.dataset(n_train=128, n_test=32, seed=0)
        topo = bench.spec.topology
        assert data.x_train.shape == (128, topo.inputs)
        assert data.y_train.shape == (128, topo.outputs)
        assert data.x_test.shape == (32, topo.inputs)
        assert data.in_dim == topo.inputs and data.out_dim == topo.outputs

    def test_normalized_to_unit_interval(self, name):
        bench = make_benchmark(name)
        data = bench.dataset(n_train=256, n_test=64, seed=1)
        for arr in (data.x_train, data.y_train, data.x_test, data.y_test):
            assert arr.min() >= -1e-9
            assert arr.max() <= 1.0 + 1e-9

    def test_dataset_deterministic(self, name):
        bench = make_benchmark(name)
        a = bench.dataset(n_train=64, n_test=16, seed=3)
        b = bench.dataset(n_train=64, n_test=16, seed=3)
        assert np.array_equal(a.x_train, b.x_train)
        assert np.array_equal(a.y_train, b.y_train)

    def test_perfect_prediction_scores_zero(self, name):
        bench = make_benchmark(name)
        data = bench.dataset(n_train=64, n_test=32, seed=0)
        assert bench.error_normalized(data.y_test, data.y_test) == 0.0

    def test_wrong_prediction_scores_positive(self, name):
        bench = make_benchmark(name)
        data = bench.dataset(n_train=64, n_test=32, seed=0)
        shuffled = data.y_test[::-1].copy()
        if np.allclose(shuffled, data.y_test):
            pytest.skip("degenerate targets")
        assert bench.error_normalized(shuffled, data.y_test) > 0.0

    def test_scaler_roundtrip(self, name):
        bench = make_benchmark(name)
        _, out_scaler = bench.scalers()
        data = bench.dataset(n_train=64, n_test=16, seed=0)
        raw = out_scaler.inverse(data.y_test)
        assert np.allclose(out_scaler.transform(raw), data.y_test)


class TestJmeintLabels:
    def test_both_classes_present(self, rng):
        bench = make_benchmark("jmeint")
        _, y = bench.generate(400, rng)
        rate = y[:, 0].mean()
        assert 0.2 < rate < 0.8


class TestMetrics:
    def test_average_relative_error_basics(self):
        pred = np.array([[1.1], [2.0]])
        true = np.array([[1.0], [2.0]])
        assert np.isclose(average_relative_error(pred, true), 0.05)

    def test_relative_error_epsilon_guard(self):
        pred = np.array([[0.001]])
        true = np.array([[0.0]])
        assert average_relative_error(pred, true, epsilon=0.01) == 0.1

    def test_miss_rate_one_hot(self):
        pred = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        true = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        assert np.isclose(miss_rate(pred, true), 2 / 3)

    def test_miss_rate_single_column(self):
        pred = np.array([[0.7], [0.2]])
        true = np.array([[1.0], [1.0]])
        assert miss_rate(pred, true) == 0.5

    def test_image_diff_normalization(self):
        pred = np.full((4, 4), 10.0)
        true = np.zeros((4, 4))
        assert image_diff(pred, true, value_range=255.0) == 10.0 / 255.0

    def test_image_diff_validation(self):
        with pytest.raises(ValueError):
            image_diff(np.zeros(4), np.zeros(4), value_range=0.0)
        with pytest.raises(ValueError):
            image_diff(np.zeros(4), np.zeros(5))
