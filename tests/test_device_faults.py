"""Failure-injection tests: stuck-at faults in deployed crossbars."""

import numpy as np
import pytest

from repro.core.deploy import AnalogMLP
from repro.core.mei import MEI, MEIConfig
from repro.core.saab import SAAB, SAABConfig
from repro.device.faults import FaultModel, inject_faults, inject_faults_analog
from repro.device.rram import HFOX_DEVICE
from repro.nn.network import MLP
from repro.xbar.crossbar import Crossbar


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(stuck_on_rate=-0.1)
        with pytest.raises(ValueError):
            FaultModel(stuck_on_rate=0.6, stuck_off_rate=0.6)

    def test_defect_map_rates(self):
        model = FaultModel(stuck_on_rate=0.1, stuck_off_rate=0.2, seed=0)
        defects = model.defect_map((200, 200), np.random.default_rng(0))
        rates = [(defects == c).mean() for c in (1, 2)]
        assert abs(rates[0] - 0.1) < 0.01
        assert abs(rates[1] - 0.2) < 0.01

    def test_zero_rate_no_defects(self):
        defects = FaultModel().defect_map((50, 50), np.random.default_rng(0))
        assert not defects.any()


class TestInjectFaults:
    def test_stuck_cells_pinned(self, rng):
        g = rng.uniform(HFOX_DEVICE.g_min * 5, HFOX_DEVICE.g_max / 2, (20, 20))
        xbar = Crossbar(g, g_s=1e-3)
        defects = inject_faults(xbar, FaultModel(stuck_on_rate=0.2,
                                                 stuck_off_rate=0.2, seed=1))
        assert np.all(xbar.conductances[defects == 1] == HFOX_DEVICE.g_max)
        assert np.all(xbar.conductances[defects == 2] == HFOX_DEVICE.g_min)
        healthy = defects == 0
        assert np.allclose(xbar.conductances[healthy], g[healthy])

    def test_analog_injection_counts(self, rng):
        net = MLP((4, 8, 2), rng=0)
        analog = AnalogMLP(net)
        count = inject_faults_analog(analog, FaultModel(stuck_on_rate=0.05,
                                                        stuck_off_rate=0.05, seed=0))
        total_cells = analog.device_count
        assert 0 < count < total_cells
        assert abs(count / total_cells - 0.1) < 0.05

    def test_faults_degrade_accuracy(self, rng, fast_train):
        x = rng.uniform(0, 1, (500, 2))
        y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
        mei = MEI(MEIConfig(2, 1, 16), seed=0).train(x, y, fast_train)
        clean = np.mean(np.abs(mei.predict(x) - y))
        inject_faults_analog(mei.analog, FaultModel(stuck_on_rate=0.05,
                                                    stuck_off_rate=0.05, seed=3))
        faulty = np.mean(np.abs(mei.predict(x) - y))
        assert faulty > clean

    def test_ensemble_masks_single_chip_faults(self, rng, fast_train):
        """The redundancy argument: a voted ensemble with one faulty
        member beats that faulty member alone."""
        x = rng.uniform(0, 1, (600, 2))
        y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
        saab = SAAB(
            lambda k: MEI(MEIConfig(2, 1, 16), seed=20 + k),
            SAABConfig(n_learners=3, compare_bits=4, seed=0),
        ).train(x, y, fast_train)
        # Heavy faults on one member only.
        inject_faults_analog(saab.learners[1].analog,
                             FaultModel(stuck_on_rate=0.15, stuck_off_rate=0.15, seed=7))
        faulty_member = np.mean(np.abs(saab.learners[1].predict(x) - y))
        ensemble = np.mean(np.abs(saab.predict(x) - y))
        assert ensemble < faulty_member
