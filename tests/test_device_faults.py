"""Failure-injection tests: stuck-at faults in deployed crossbars."""

import numpy as np
import pytest

from repro.core.deploy import AnalogMLP
from repro.core.mei import MEI, MEIConfig
from repro.core.saab import SAAB, SAABConfig
from repro.device.faults import (
    DEFECT_COL_OPEN,
    DEFECT_ROW_OPEN,
    FaultModel,
    inject_faults,
    inject_faults_analog,
    inject_faults_analog_report,
)
from repro.device.rram import HFOX_DEVICE
from repro.nn.network import MLP
from repro.xbar.crossbar import Crossbar


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(stuck_on_rate=-0.1)
        with pytest.raises(ValueError):
            FaultModel(stuck_on_rate=0.6, stuck_off_rate=0.6)

    def test_defect_map_rates(self):
        model = FaultModel(stuck_on_rate=0.1, stuck_off_rate=0.2, seed=0)
        defects = model.defect_map((200, 200), np.random.default_rng(0))
        rates = [(defects == c).mean() for c in (1, 2)]
        assert abs(rates[0] - 0.1) < 0.01
        assert abs(rates[1] - 0.2) < 0.01

    def test_zero_rate_no_defects(self):
        defects = FaultModel().defect_map((50, 50), np.random.default_rng(0))
        assert not defects.any()


class TestLineFailures:
    def test_row_open_hits_whole_rows(self):
        model = FaultModel(row_failure_rate=0.2, seed=0)
        defects = model.defect_map((50, 8), np.random.default_rng(0))
        open_rows = np.where((defects == DEFECT_ROW_OPEN).any(axis=1))[0]
        assert open_rows.size > 0
        for row in open_rows:
            assert np.all(defects[row] == DEFECT_ROW_OPEN)

    def test_col_open_hits_whole_columns(self):
        model = FaultModel(col_failure_rate=0.2, seed=0)
        defects = model.defect_map((8, 50), np.random.default_rng(0))
        open_cols = np.where((defects == DEFECT_COL_OPEN).any(axis=0))[0]
        assert open_cols.size > 0
        for col in open_cols:
            assert np.all(defects[:, col] == DEFECT_COL_OPEN)

    def test_line_failures_override_cell_classes(self):
        model = FaultModel(stuck_on_rate=0.4, stuck_off_rate=0.4,
                           col_failure_rate=0.3, seed=1)
        defects = model.defect_map((30, 30), np.random.default_rng(1))
        open_cols = (defects == DEFECT_COL_OPEN).any(axis=0)
        assert open_cols.any()
        assert np.all(defects[:, open_cols] == DEFECT_COL_OPEN)

    def test_open_lines_pin_to_g_min(self, rng):
        g = rng.uniform(HFOX_DEVICE.g_min * 5, HFOX_DEVICE.g_max / 2, (20, 20))
        xbar = Crossbar(g, g_s=1e-3)
        defects = inject_faults(
            xbar, FaultModel(row_failure_rate=0.15, col_failure_rate=0.15, seed=2)
        )
        opened = (defects == DEFECT_ROW_OPEN) | (defects == DEFECT_COL_OPEN)
        assert opened.any()
        assert np.all(xbar.conductances[opened] == HFOX_DEVICE.g_min)

    def test_line_rate_validation(self):
        with pytest.raises(ValueError):
            FaultModel(row_failure_rate=-0.1)
        with pytest.raises(ValueError):
            FaultModel(col_failure_rate=1.5)


class TestInjectionReport:
    def test_report_covers_every_array(self, rng):
        net = MLP((4, 8, 2), rng=0)
        analog = AnalogMLP(net)
        report = inject_faults_analog_report(
            analog, FaultModel(stuck_on_rate=0.05, stuck_off_rate=0.05, seed=0)
        )
        arrays = list(analog.arrays())
        assert len(report.defect_maps) == len(arrays)
        assert len(report.array_seeds) == len(arrays)
        assert report.total_cells == analog.device_count
        assert 0 < report.observed_rate < 1

    def test_array_seeds_replay_the_maps(self, rng):
        net = MLP((4, 8, 2), rng=0)
        analog = AnalogMLP(net)
        model = FaultModel(stuck_on_rate=0.08, seed=5)
        report = inject_faults_analog_report(analog, model)
        for index, (seed, defects) in enumerate(
            zip(report.array_seeds, report.defect_maps)
        ):
            recorded = FaultModel(stuck_on_rate=0.08, seed=seed)
            replayed = recorded.defect_map(defects.shape, recorded.replay_rng())
            assert np.array_equal(replayed, defects)

    def test_to_dict_json_safe(self):
        import json

        net = MLP((4, 6, 2), rng=0)
        report = inject_faults_analog_report(
            AnalogMLP(net), FaultModel(stuck_off_rate=0.1, seed=1)
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["base_seed"] == 1
        assert payload["total_cells"] == report.total_cells
        assert len(payload["array_seeds"]) == len(report.defect_maps)

    def test_is_clean_and_total_rate(self):
        assert FaultModel().is_clean
        assert not FaultModel(row_failure_rate=0.01).is_clean
        model = FaultModel(stuck_on_rate=0.02, stuck_off_rate=0.03)
        assert model.total_rate == pytest.approx(0.05)


class TestInjectFaults:
    def test_stuck_cells_pinned(self, rng):
        g = rng.uniform(HFOX_DEVICE.g_min * 5, HFOX_DEVICE.g_max / 2, (20, 20))
        xbar = Crossbar(g, g_s=1e-3)
        defects = inject_faults(xbar, FaultModel(stuck_on_rate=0.2,
                                                 stuck_off_rate=0.2, seed=1))
        assert np.all(xbar.conductances[defects == 1] == HFOX_DEVICE.g_max)
        assert np.all(xbar.conductances[defects == 2] == HFOX_DEVICE.g_min)
        healthy = defects == 0
        assert np.allclose(xbar.conductances[healthy], g[healthy])

    def test_analog_injection_counts(self, rng):
        net = MLP((4, 8, 2), rng=0)
        analog = AnalogMLP(net)
        count = inject_faults_analog(analog, FaultModel(stuck_on_rate=0.05,
                                                        stuck_off_rate=0.05, seed=0))
        total_cells = analog.device_count
        assert 0 < count < total_cells
        assert abs(count / total_cells - 0.1) < 0.05

    def test_faults_degrade_accuracy(self, rng, fast_train):
        x = rng.uniform(0, 1, (500, 2))
        y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
        mei = MEI(MEIConfig(2, 1, 16), seed=0).train(x, y, fast_train)
        clean = np.mean(np.abs(mei.predict(x) - y))
        inject_faults_analog(mei.analog, FaultModel(stuck_on_rate=0.05,
                                                    stuck_off_rate=0.05, seed=3))
        faulty = np.mean(np.abs(mei.predict(x) - y))
        assert faulty > clean

    def test_ensemble_masks_single_chip_faults(self, rng, fast_train):
        """The redundancy argument: a voted ensemble with one faulty
        member beats that faulty member alone."""
        x = rng.uniform(0, 1, (600, 2))
        y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
        saab = SAAB(
            lambda k: MEI(MEIConfig(2, 1, 16), seed=20 + k),
            SAABConfig(n_learners=3, compare_bits=4, seed=0),
        ).train(x, y, fast_train)
        # Heavy faults on one member only.
        inject_faults_analog(saab.learners[1].analog,
                             FaultModel(stuck_on_rate=0.15, stuck_off_rate=0.15, seed=7))
        faulty_member = np.mean(np.abs(saab.learners[1].predict(x) - y))
        ensemble = np.mean(np.abs(saab.predict(x) - y))
        assert ensemble < faulty_member
