"""Fixture-driven coverage for the repro-lint rule set.

Every RPR rule gets at least one *positive* fixture (the rule fires)
and one *negative* fixture (idiomatic code passes), plus suppression,
rendering and repo-wide enforcement tests.  Fixtures are inline source
snippets: the unit under test is pure (source text in, findings out),
so no tmp files are needed except for the path-walking tests.
"""

from __future__ import annotations

import json

import pytest

from repro.lintrules import (
    ALL_PROGRAM_RULES,
    ALL_RULES,
    SCHEMA_VERSION,
    check_source,
    render_human,
    render_json,
    run_paths,
    suppressed_lines,
)
from repro.lintrules.engine import default_target, iter_python_files, run_program


def codes(source: str, path: str = "lib.py") -> list:
    return [finding.rule for finding in check_source(source, path)]


# ---------------------------------------------------------------------------
# RPR001 — unseeded generator construction
# ---------------------------------------------------------------------------


class TestRPR001:
    def test_fires_on_bare_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes(src) == ["RPR001"]

    def test_fires_through_import_alias(self):
        src = "from numpy.random import default_rng as make\nrng = make()\n"
        assert codes(src) == ["RPR001"]

    def test_fires_on_direct_generator_construction(self):
        src = "import numpy as np\ng = np.random.Generator(np.random.PCG64(7))\n"
        assert "RPR001" in codes(src)

    def test_silent_on_seeded_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert codes(src) == []

    def test_silent_on_threaded_rng_argument(self):
        src = (
            "import numpy as np\n"
            "def noisy(x, rng):\n"
            "    return x + rng.normal(size=x.shape)\n"
        )
        assert codes(src) == []


# ---------------------------------------------------------------------------
# RPR002 — legacy global RNG state
# ---------------------------------------------------------------------------


class TestRPR002:
    def test_fires_on_numpy_global_seed(self):
        src = "import numpy as np\nnp.random.seed(0)\nx = np.random.rand(3)\n"
        found = codes(src)
        assert found.count("RPR002") == 2

    def test_fires_on_stdlib_random_import(self):
        assert codes("import random\n") == ["RPR002"]

    def test_fires_on_from_import_of_legacy_function(self):
        assert codes("from numpy.random import randn\n") == ["RPR002"]

    def test_silent_on_generator_api(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(1)\n"
            "ok = isinstance(rng, np.random.Generator)\n"
            "seq = np.random.SeedSequence(5)\n"
        )
        assert codes(src) == []


# ---------------------------------------------------------------------------
# RPR003 — environment reads outside the knob registry
# ---------------------------------------------------------------------------


class TestRPR003:
    def test_fires_on_environ_get(self):
        src = "import os\nlevel = os.environ.get('REPRO_LOG', '')\n"
        assert codes(src) == ["RPR003"]

    def test_fires_on_getenv_and_subscript(self):
        src = "import os\na = os.getenv('REPRO_TRACE')\nb = os.environ['REPRO_FULL']\n"
        assert codes(src) == ["RPR003", "RPR003"]

    def test_fires_on_environ_iteration(self):
        src = "import os\nknobs = {k: v for k, v in os.environ.items()}\n"
        assert codes(src) == ["RPR003"]

    def test_silent_on_registry_read(self):
        src = (
            "from repro.config import knobs\n"
            "workers = knobs.get_int('REPRO_WORKERS')\n"
        )
        assert codes(src) == []


# ---------------------------------------------------------------------------
# RPR004 — stdout writes in library modules
# ---------------------------------------------------------------------------


class TestRPR004:
    def test_fires_on_print_in_library_module(self):
        assert codes("print('done')\n", "repro/core/thing.py") == ["RPR004"]

    def test_fires_on_sys_stdout_write(self):
        src = "import sys\nsys.stdout.write('table')\n"
        assert codes(src) == ["RPR004"]

    def test_fires_on_print_to_explicit_stdout(self):
        src = "import sys\nprint('x', file=sys.stdout)\n"
        assert "RPR004" in codes(src)

    def test_silent_in_main_module(self):
        assert codes("print('table row')\n", "repro/__main__.py") == []

    def test_silent_on_stderr_diagnostics(self):
        src = "import sys\nprint('debug', file=sys.stderr)\n"
        assert codes(src) == []


# ---------------------------------------------------------------------------
# RPR005 — hand-rolled rng normalization
# ---------------------------------------------------------------------------


class TestRPR005:
    def test_fires_on_not_isinstance_block(self):
        src = (
            "import numpy as np\n"
            "def f(rng=None):\n"
            "    if not isinstance(rng, np.random.Generator):\n"
            "        rng = np.random.default_rng(rng)\n"
            "    return rng\n"
        )
        assert codes(src) == ["RPR005"]

    def test_fires_on_conditional_expression_form(self):
        src = (
            "import numpy as np\n"
            "def f(rng):\n"
            "    return rng if isinstance(rng, np.random.Generator) "
            "else np.random.default_rng(rng)\n"
        )
        assert codes(src) == ["RPR005"]

    def test_silent_on_ensure_rng(self):
        src = (
            "from repro.parallel.seeding import ensure_rng\n"
            "def f(rng=None):\n"
            "    return ensure_rng(rng, 'fixture')\n"
        )
        assert codes(src) == []

    def test_silent_on_unrelated_isinstance(self):
        src = "def f(x):\n    if not isinstance(x, int):\n        x = int(x)\n    return x\n"
        assert codes(src) == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def write_tree(root, files: dict) -> list:
    """Materialize {relpath: source} under root; returns the file list."""
    paths = []
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        paths.append(path)
    # every package directory needs an __init__.py for module naming
    for rel in files:
        parent = (root / rel).parent
        while parent != root:
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
                paths.append(init)
            parent = parent.parent
    return sorted(set(paths))


def program_codes(root, files: dict) -> list:
    return [f.rule for f in run_program(write_tree(root, files))]


# ---------------------------------------------------------------------------
# RPR006 — layering contract and cycle freedom (whole-program)
# ---------------------------------------------------------------------------


class TestRPR006:
    def test_fires_on_seeded_upward_import(self, tmp_path):
        # the CI gate scenario: someone makes config depend on obs
        found = program_codes(
            tmp_path,
            {
                "repro/config/bad.py": "from repro.obs import log\n",
                "repro/obs/log.py": "x = 1\n",
            },
        )
        assert found == ["RPR006"]

    def test_fires_on_peer_package_import(self, tmp_path):
        found = program_codes(
            tmp_path,
            {
                "repro/quant/a.py": "import repro.parallel.b\n",
                "repro/parallel/b.py": "x = 1\n",
            },
        )
        assert found == ["RPR006"]

    def test_fires_on_module_cycle(self, tmp_path):
        found = program_codes(
            tmp_path,
            {
                "repro/xbar/a.py": "import repro.xbar.b\n",
                "repro/xbar/b.py": "import repro.xbar.a\n",
            },
        )
        assert found == ["RPR006"]

    def test_silent_on_downward_and_lazy_imports(self, tmp_path):
        found = program_codes(
            tmp_path,
            {
                "repro/nn/net.py": (
                    "from repro.config import knobs\n"           # downward: fine
                    "def debug():\n"
                    "    from repro.experiments import x\n"      # lazy seam: exempt
                ),
                "repro/config/knobs.py": "x = 1\n",
                "repro/experiments/x.py": "x = 1\n",
            },
        )
        assert found == []

    def test_silent_on_type_checking_import(self, tmp_path):
        found = program_codes(
            tmp_path,
            {
                "repro/device/f.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro.xbar.c import C\n"
                ),
                "repro/xbar/c.py": "class C: pass\n",
            },
        )
        assert found == []


# ---------------------------------------------------------------------------
# RPR007 — raw float dtype literals in hot-path packages
# ---------------------------------------------------------------------------


class TestRPR007:
    HOT = "src/repro/xbar/newmod.py"

    def test_fires_on_dtype_float_in_hot_path(self):
        src = "import numpy as np\nx = np.zeros(3, dtype=float)\n"
        assert codes(src, self.HOT) == ["RPR007"]

    def test_fires_on_np_float64_and_string_literals(self):
        src = (
            "import numpy as np\n"
            "a = np.asarray([1], dtype=np.float64)\n"
            "b = np.asarray([1], dtype='float32')\n"
        )
        assert codes(src, self.HOT) == ["RPR007", "RPR007"]

    def test_fires_on_astype_float(self):
        src = "import numpy as np\ny = np.arange(3).astype(float)\n"
        assert codes(src, self.HOT) == ["RPR007"]

    def test_silent_outside_hot_path_packages(self):
        src = "import numpy as np\nx = np.zeros(3, dtype=float)\n"
        assert codes(src, "src/repro/core/newmod.py") == []

    def test_silent_on_config_dtype_astype(self):
        src = (
            "import numpy as np\n"
            "from repro.config.dtype import astype as _astype\n"
            "x = _astype(np.zeros(3))\n"
            "m = np.zeros(3, dtype=bool)\n"
        )
        assert codes(src, self.HOT) == []


# ---------------------------------------------------------------------------
# RPR008 — knob lifecycle (whole-program)
# ---------------------------------------------------------------------------

KNOBS_MODULE = (
    "def register(name, kind, default, description):\n"
    "    pass\n"
    "def get_bool(name):\n"
    "    return False\n"
)


class TestRPR008:
    def test_fires_on_registered_but_never_read(self, tmp_path):
        found = program_codes(
            tmp_path,
            {
                "repro/config/knobs.py": (
                    KNOBS_MODULE + "register('REPRO_DEAD', 'bool', '0', 'unused')\n"
                ),
            },
        )
        assert found == ["RPR008"]

    def test_fires_on_import_time_read(self, tmp_path):
        found = program_codes(
            tmp_path,
            {
                "repro/config/knobs.py": (
                    KNOBS_MODULE + "register('REPRO_X', 'bool', '0', 'doc')\n"
                ),
                "repro/nn/mod.py": (
                    "from repro.config import knobs\n"
                    "FROZEN = knobs.get_bool('REPRO_X')\n"
                ),
            },
        )
        assert found == ["RPR008"]

    def test_fires_on_unregistered_read(self, tmp_path):
        found = program_codes(
            tmp_path,
            {
                "repro/config/knobs.py": (
                    KNOBS_MODULE + "register('REPRO_X', 'bool', '0', 'doc')\n"
                ),
                "repro/nn/mod.py": (
                    "from repro.config import knobs\n"
                    "def f():\n"
                    "    return knobs.get_bool('REPRO_X'), knobs.get_bool('REPRO_TYPO')\n"
                ),
            },
        )
        assert found == ["RPR008"]

    def test_resolves_module_level_env_constants(self, tmp_path):
        # the owning-module idiom: TRACE_ENV = "REPRO_X"; get_bool(TRACE_ENV)
        found = program_codes(
            tmp_path,
            {
                "repro/config/knobs.py": (
                    KNOBS_MODULE + "register('REPRO_X', 'bool', '0', 'doc')\n"
                ),
                "repro/obs/mod.py": (
                    "from repro.config import knobs\n"
                    "X_ENV = 'REPRO_X'\n"
                    "def enabled():\n"
                    "    return knobs.get_bool(X_ENV)\n"
                ),
            },
        )
        assert found == []


# ---------------------------------------------------------------------------
# RPR009 — metric registry discipline (per-file + whole-program)
# ---------------------------------------------------------------------------


class TestRPR009:
    def test_fires_on_direct_metric_construction(self):
        src = "from repro.obs.metrics import Counter\nc = Counter('jobs')\n"
        assert codes(src) == ["RPR009"]

    def test_silent_inside_the_registry_module(self):
        src = "from repro.obs.metrics import Counter\nc = Counter('jobs')\n"
        assert codes(src, "src/repro/obs/metrics.py") == []

    def test_silent_on_factory_use(self):
        src = "from repro.obs import metrics\nc = metrics.counter('jobs')\n"
        assert codes(src) == []

    def test_fires_on_cross_family_name_collision(self, tmp_path):
        found = program_codes(
            tmp_path,
            {
                "repro/a.py": "from repro.obs import metrics\nc = metrics.counter('dup')\n",
                "repro/b.py": "from repro.obs import metrics\ng = metrics.gauge('dup')\n",
                "repro/obs/metrics.py": "def counter(n): pass\ndef gauge(n): pass\n",
            },
        )
        assert found == ["RPR009", "RPR009"]

    def test_fires_on_openmetrics_unsafe_name(self, tmp_path):
        found = program_codes(
            tmp_path,
            {
                "repro/a.py": "from repro.obs import metrics\nc = metrics.counter('Bad-Name')\n",
                "repro/obs/metrics.py": "def counter(n): pass\n",
            },
        )
        assert found == ["RPR009"]

    def test_silent_on_same_family_reuse(self, tmp_path):
        found = program_codes(
            tmp_path,
            {
                "repro/a.py": "from repro.obs import metrics\nc = metrics.counter('dup')\n",
                "repro/b.py": "from repro.obs import metrics\ng = metrics.counter('dup')\n",
                "repro/obs/metrics.py": "def counter(n): pass\n",
            },
        )
        assert found == []


# ---------------------------------------------------------------------------
# RPR010 — executors / SHM arenas without context management
# ---------------------------------------------------------------------------


class TestRPR010:
    def test_fires_on_bare_pool_construction(self):
        src = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "pool = ThreadPoolExecutor(2)\n"
        )
        assert codes(src) == ["RPR010"]

    def test_fires_on_bare_shm_session(self):
        src = "from repro.parallel.shm import ShmSession\ns = ShmSession()\n"
        assert codes(src) == ["RPR010"]

    def test_silent_on_with_block(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "with ProcessPoolExecutor(2) as pool:\n"
            "    pass\n"
        )
        assert codes(src) == []

    def test_silent_on_exit_stack(self):
        src = (
            "from contextlib import ExitStack\n"
            "from repro.parallel.shm import ShmSession\n"
            "with ExitStack() as stack:\n"
            "    s = stack.enter_context(ShmSession())\n"
        )
        assert codes(src) == []


# ---------------------------------------------------------------------------
# RPR011 — spans opened without `with`
# ---------------------------------------------------------------------------


class TestRPR011:
    def test_fires_on_unmanaged_span(self):
        src = "from repro.obs.trace import span\nspan('solve')\n"
        assert codes(src) == ["RPR011"]

    def test_fires_on_attribute_spelling(self):
        src = "from repro.obs import trace\ns = trace.span('solve')\n"
        assert codes(src) == ["RPR011"]

    def test_silent_on_with_span(self):
        src = (
            "from repro.obs.trace import span\n"
            "with span('solve', rows=4):\n"
            "    pass\n"
        )
        assert codes(src) == []

    def test_silent_inside_trace_module(self):
        src = "from repro.obs.trace import span\nspan('x')\n"
        assert codes(src, "src/repro/obs/trace.py") == []


class TestSuppressions:
    def test_line_suppression_silences_one_rule(self):
        src = "import os\nv = os.environ.get('X')  # repro-lint: disable=RPR003\n"
        assert codes(src) == []

    def test_suppression_is_line_scoped(self):
        src = (
            "import os\n"
            "a = os.environ.get('X')  # repro-lint: disable=RPR003\n"
            "b = os.environ.get('Y')\n"
        )
        findings = check_source(src, "lib.py")
        assert [(f.rule, f.line) for f in findings] == [("RPR003", 3)]

    def test_suppression_is_rule_scoped(self):
        src = "import os\nprint(os.environ['X'])  # repro-lint: disable=RPR003\n"
        assert codes(src) == ["RPR004"]

    def test_multi_code_suppression(self):
        src = "import os\nprint(os.environ['X'])  # repro-lint: disable=RPR003,RPR004\n"
        assert codes(src) == []

    def test_parser_reads_comment_tokens(self):
        lines = suppressed_lines("x = 1\ny = 2  # repro-lint: disable=RPR001, RPR005\n")
        assert lines == {2: {"RPR001", "RPR005"}}


# ---------------------------------------------------------------------------
# Engine: rendering, walking, and the repo-wide gate
# ---------------------------------------------------------------------------


class TestEngine:
    def test_render_human_lists_location_and_code(self):
        findings = check_source("print('x')\n", "pkg/mod.py")
        text = render_human(findings, checked=1)
        assert "pkg/mod.py:1:0: RPR004" in text
        assert "1 finding(s)" in text

    def test_render_human_clean(self):
        assert "clean" in render_human([], checked=3)

    def test_render_json_round_trips(self):
        findings = check_source("import random\n", "pkg/mod.py")
        payload = json.loads(render_json(findings, checked=1))
        assert payload["total"] == 1
        assert payload["by_rule"] == {"RPR002": 1}
        assert payload["findings"][0]["path"] == "pkg/mod.py"
        all_codes = {rule.code for rule in ALL_RULES} | {
            rule.code for rule in ALL_PROGRAM_RULES
        }
        assert payload["rules"] == sorted(all_codes)

    def test_render_json_is_schema_versioned_and_stably_ordered(self):
        # CI diffs the artifact across runs: the schema carries its
        # version and findings arrive in (path, line, col, rule) order
        # no matter the order they were produced in.
        findings = check_source("import random\n", "pkg/mod.py") + check_source(
            "import os\nos.environ['X']\n", "pkg/aaa.py"
        )
        payload = json.loads(render_json(findings, checked=2))
        assert payload["schema_version"] == SCHEMA_VERSION
        locations = [(f["path"], f["line"], f["col"], f["rule"]) for f in payload["findings"]]
        assert locations == sorted(locations)

    def test_iter_python_files_walks_and_dedupes(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "b.py").write_text("y = 2\n")
        (sub / "__pycache__").mkdir()
        (sub / "__pycache__" / "c.py").write_text("z = 3\n")
        files = list(iter_python_files([tmp_path, tmp_path / "a.py"]))
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_run_paths_reports_violations_in_tree(self, tmp_path):
        (tmp_path / "bad.py").write_text("import numpy as np\nr = np.random.default_rng()\n")
        findings = run_paths([tmp_path])
        assert [f.rule for f in findings] == ["RPR001"]

    def test_every_rule_has_positive_and_negative_fixture(self):
        # Meta-test: the classes above cover each registered rule
        # (RPR006 and RPR008 are program rules, RPR009 is both).
        covered = {rule.code for rule in ALL_RULES}
        covered |= {rule.code for rule in ALL_PROGRAM_RULES}
        assert covered == {f"RPR{i:03d}" for i in range(1, 12)}

    def test_program_findings_honour_suppressions(self, tmp_path):
        files = write_tree(
            tmp_path,
            {
                "repro/config/bad.py": (
                    "from repro.obs import log  # repro-lint: disable=RPR006\n"
                ),
                "repro/obs/log.py": "x = 1\n",
            },
        )
        assert [f.rule for f in run_program(files)] == []


_ALL_CODES = sorted(
    {rule.code for rule in ALL_RULES} | {rule.code for rule in ALL_PROGRAM_RULES}
)


@pytest.mark.parametrize("rule", _ALL_CODES)
def test_repo_is_clean(rule):
    """The enforcement gate: the shipped package has zero findings."""
    findings = [f for f in run_paths([default_target()]) if f.rule == rule]
    assert findings == [], "\n".join(f.format() for f in findings)


def test_cli_lint_exits_zero_and_reports_json(capsys):
    from repro.__main__ import main

    assert main(["lint", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == 0
    assert payload["files_checked"] > 50


def test_cli_lint_nonzero_on_finding(tmp_path, capsys):
    from repro.__main__ import main

    bad = tmp_path / "bad.py"
    bad.write_text("import os\nv = os.environ.get('REPRO_LOG')\n")
    assert main(["lint", "--paths", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RPR003" in out


def test_cli_list_rules(capsys):
    from repro.__main__ import main

    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.code in out
    for rule in ALL_PROGRAM_RULES:
        assert rule.code in out


def test_cli_lint_graph_renders_dot_and_svg(capsys):
    from repro.__main__ import main

    assert main(["lint", "--graph", "dot"]) == 0
    dot = capsys.readouterr().out
    assert dot.startswith("digraph")
    assert '"nn" -> "config"' in dot
    assert main(["lint", "--graph", "svg"]) == 0
    svg = capsys.readouterr().out
    assert svg.startswith("<svg")
    assert "xbar" in svg


# ---------------------------------------------------------------------------
# The import-graph builder itself
# ---------------------------------------------------------------------------


class TestImportGraph:
    def build(self, tmp_path, files):
        import ast

        from repro.lintrules.graph import build_graph

        paths = write_tree(tmp_path, files)
        return build_graph([(p, ast.parse(p.read_text())) for p in paths])

    def test_resolves_modules_and_classifies_edges(self, tmp_path):
        graph = self.build(
            tmp_path,
            {
                "repro/nn/net.py": (
                    "from repro.config import knobs\n"
                    "def lazy():\n"
                    "    from repro.obs import log\n"
                ),
                "repro/config/knobs.py": "x = 1\n",
                "repro/obs/log.py": "x = 1\n",
            },
        )
        assert "repro.nn.net" in graph.modules
        kinds = {(e.dst, e.lazy) for e in graph.edges if e.src == "repro.nn.net"}
        assert ("repro.config.knobs", False) in kinds
        assert ("repro.obs.log", True) in kinds

    def test_relative_imports_resolve(self, tmp_path):
        graph = self.build(
            tmp_path,
            {
                "repro/xbar/a.py": "from . import b\nfrom ..config import knobs\n",
                "repro/xbar/b.py": "x = 1\n",
                "repro/config/knobs.py": "x = 1\n",
            },
        )
        dsts = {e.dst for e in graph.edges if e.src == "repro.xbar.a"}
        assert {"repro.xbar.b", "repro.config.knobs"} <= dsts

    def test_find_cycles_reports_rotated_cycle(self, tmp_path):
        from repro.lintrules.graph import find_cycles

        graph = self.build(
            tmp_path,
            {
                "repro/core/a.py": "import repro.core.b\n",
                "repro/core/b.py": "import repro.core.c\n",
                "repro/core/c.py": "import repro.core.a\n",
            },
        )
        cycles = find_cycles(graph)
        assert len(cycles) == 1
        assert cycles[0][0] == "repro.core.a"
        assert set(cycles[0]) == {"repro.core.a", "repro.core.b", "repro.core.c"}

    def test_lazy_edges_do_not_create_cycles(self, tmp_path):
        from repro.lintrules.graph import find_cycles

        graph = self.build(
            tmp_path,
            {
                "repro/core/a.py": "import repro.core.b\n",
                "repro/core/b.py": "def f():\n    import repro.core.a\n",
            },
        )
        assert find_cycles(graph) == []

    def test_dot_marks_lazy_edges_dashed(self, tmp_path):
        from repro.lintrules.graph import REPRO_CONTRACT

        graph = self.build(
            tmp_path,
            {
                "repro/parallel/seeding.py": (
                    "def f():\n    from repro.obs import log\n"
                ),
                "repro/obs/log.py": "x = 1\n",
            },
        )
        dot = graph.to_dot(REPRO_CONTRACT)
        assert '"parallel" -> "obs" [style=dashed];' in dot

    def test_svg_renders_every_ranked_layer(self, tmp_path):
        from repro.lintrules.graph import LAYER_RANKS, REPRO_CONTRACT

        graph = self.build(
            tmp_path,
            {
                "repro/nn/net.py": "from repro.config import knobs\n",
                "repro/config/knobs.py": "x = 1\n",
            },
        )
        svg = graph.to_svg(REPRO_CONTRACT)
        for layer in LAYER_RANKS:
            assert f">{layer}<" in svg

    def test_module_name_for_walks_init_chain(self, tmp_path):
        from repro.lintrules.graph import module_name_for

        paths = write_tree(tmp_path, {"repro/xbar/mna.py": "x = 1\n"})
        named = {module_name_for(p) for p in paths}
        assert "repro.xbar.mna" in named
        assert "repro.xbar" in named  # the __init__ maps to the package
        loose = tmp_path / "script.py"
        loose.write_text("x = 1\n")
        assert module_name_for(loose) is None
