"""Fixture-driven coverage for the repro-lint rule set.

Every RPR rule gets at least one *positive* fixture (the rule fires)
and one *negative* fixture (idiomatic code passes), plus suppression,
rendering and repo-wide enforcement tests.  Fixtures are inline source
snippets: the unit under test is pure (source text in, findings out),
so no tmp files are needed except for the path-walking tests.
"""

from __future__ import annotations

import json

import pytest

from repro.lintrules import (
    ALL_RULES,
    check_source,
    render_human,
    render_json,
    run_paths,
    suppressed_lines,
)
from repro.lintrules.engine import default_target, iter_python_files


def codes(source: str, path: str = "lib.py") -> list:
    return [finding.rule for finding in check_source(source, path)]


# ---------------------------------------------------------------------------
# RPR001 — unseeded generator construction
# ---------------------------------------------------------------------------


class TestRPR001:
    def test_fires_on_bare_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes(src) == ["RPR001"]

    def test_fires_through_import_alias(self):
        src = "from numpy.random import default_rng as make\nrng = make()\n"
        assert codes(src) == ["RPR001"]

    def test_fires_on_direct_generator_construction(self):
        src = "import numpy as np\ng = np.random.Generator(np.random.PCG64(7))\n"
        assert "RPR001" in codes(src)

    def test_silent_on_seeded_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert codes(src) == []

    def test_silent_on_threaded_rng_argument(self):
        src = (
            "import numpy as np\n"
            "def noisy(x, rng):\n"
            "    return x + rng.normal(size=x.shape)\n"
        )
        assert codes(src) == []


# ---------------------------------------------------------------------------
# RPR002 — legacy global RNG state
# ---------------------------------------------------------------------------


class TestRPR002:
    def test_fires_on_numpy_global_seed(self):
        src = "import numpy as np\nnp.random.seed(0)\nx = np.random.rand(3)\n"
        found = codes(src)
        assert found.count("RPR002") == 2

    def test_fires_on_stdlib_random_import(self):
        assert codes("import random\n") == ["RPR002"]

    def test_fires_on_from_import_of_legacy_function(self):
        assert codes("from numpy.random import randn\n") == ["RPR002"]

    def test_silent_on_generator_api(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(1)\n"
            "ok = isinstance(rng, np.random.Generator)\n"
            "seq = np.random.SeedSequence(5)\n"
        )
        assert codes(src) == []


# ---------------------------------------------------------------------------
# RPR003 — environment reads outside the knob registry
# ---------------------------------------------------------------------------


class TestRPR003:
    def test_fires_on_environ_get(self):
        src = "import os\nlevel = os.environ.get('REPRO_LOG', '')\n"
        assert codes(src) == ["RPR003"]

    def test_fires_on_getenv_and_subscript(self):
        src = "import os\na = os.getenv('REPRO_TRACE')\nb = os.environ['REPRO_FULL']\n"
        assert codes(src) == ["RPR003", "RPR003"]

    def test_fires_on_environ_iteration(self):
        src = "import os\nknobs = {k: v for k, v in os.environ.items()}\n"
        assert codes(src) == ["RPR003"]

    def test_silent_on_registry_read(self):
        src = (
            "from repro.config import knobs\n"
            "workers = knobs.get_int('REPRO_WORKERS')\n"
        )
        assert codes(src) == []


# ---------------------------------------------------------------------------
# RPR004 — stdout writes in library modules
# ---------------------------------------------------------------------------


class TestRPR004:
    def test_fires_on_print_in_library_module(self):
        assert codes("print('done')\n", "repro/core/thing.py") == ["RPR004"]

    def test_fires_on_sys_stdout_write(self):
        src = "import sys\nsys.stdout.write('table')\n"
        assert codes(src) == ["RPR004"]

    def test_fires_on_print_to_explicit_stdout(self):
        src = "import sys\nprint('x', file=sys.stdout)\n"
        assert "RPR004" in codes(src)

    def test_silent_in_main_module(self):
        assert codes("print('table row')\n", "repro/__main__.py") == []

    def test_silent_on_stderr_diagnostics(self):
        src = "import sys\nprint('debug', file=sys.stderr)\n"
        assert codes(src) == []


# ---------------------------------------------------------------------------
# RPR005 — hand-rolled rng normalization
# ---------------------------------------------------------------------------


class TestRPR005:
    def test_fires_on_not_isinstance_block(self):
        src = (
            "import numpy as np\n"
            "def f(rng=None):\n"
            "    if not isinstance(rng, np.random.Generator):\n"
            "        rng = np.random.default_rng(rng)\n"
            "    return rng\n"
        )
        assert codes(src) == ["RPR005"]

    def test_fires_on_conditional_expression_form(self):
        src = (
            "import numpy as np\n"
            "def f(rng):\n"
            "    return rng if isinstance(rng, np.random.Generator) "
            "else np.random.default_rng(rng)\n"
        )
        assert codes(src) == ["RPR005"]

    def test_silent_on_ensure_rng(self):
        src = (
            "from repro.parallel.seeding import ensure_rng\n"
            "def f(rng=None):\n"
            "    return ensure_rng(rng, 'fixture')\n"
        )
        assert codes(src) == []

    def test_silent_on_unrelated_isinstance(self):
        src = "def f(x):\n    if not isinstance(x, int):\n        x = int(x)\n    return x\n"
        assert codes(src) == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_line_suppression_silences_one_rule(self):
        src = "import os\nv = os.environ.get('X')  # repro-lint: disable=RPR003\n"
        assert codes(src) == []

    def test_suppression_is_line_scoped(self):
        src = (
            "import os\n"
            "a = os.environ.get('X')  # repro-lint: disable=RPR003\n"
            "b = os.environ.get('Y')\n"
        )
        findings = check_source(src, "lib.py")
        assert [(f.rule, f.line) for f in findings] == [("RPR003", 3)]

    def test_suppression_is_rule_scoped(self):
        src = "import os\nprint(os.environ['X'])  # repro-lint: disable=RPR003\n"
        assert codes(src) == ["RPR004"]

    def test_multi_code_suppression(self):
        src = "import os\nprint(os.environ['X'])  # repro-lint: disable=RPR003,RPR004\n"
        assert codes(src) == []

    def test_parser_reads_comment_tokens(self):
        lines = suppressed_lines("x = 1\ny = 2  # repro-lint: disable=RPR001, RPR005\n")
        assert lines == {2: {"RPR001", "RPR005"}}


# ---------------------------------------------------------------------------
# Engine: rendering, walking, and the repo-wide gate
# ---------------------------------------------------------------------------


class TestEngine:
    def test_render_human_lists_location_and_code(self):
        findings = check_source("print('x')\n", "pkg/mod.py")
        text = render_human(findings, checked=1)
        assert "pkg/mod.py:1:0: RPR004" in text
        assert "1 finding(s)" in text

    def test_render_human_clean(self):
        assert "clean" in render_human([], checked=3)

    def test_render_json_round_trips(self):
        findings = check_source("import random\n", "pkg/mod.py")
        payload = json.loads(render_json(findings, checked=1))
        assert payload["total"] == 1
        assert payload["by_rule"] == {"RPR002": 1}
        assert payload["findings"][0]["path"] == "pkg/mod.py"
        assert payload["rules"] == [rule.code for rule in ALL_RULES]

    def test_iter_python_files_walks_and_dedupes(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "b.py").write_text("y = 2\n")
        (sub / "__pycache__").mkdir()
        (sub / "__pycache__" / "c.py").write_text("z = 3\n")
        files = list(iter_python_files([tmp_path, tmp_path / "a.py"]))
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_run_paths_reports_violations_in_tree(self, tmp_path):
        (tmp_path / "bad.py").write_text("import numpy as np\nr = np.random.default_rng()\n")
        findings = run_paths([tmp_path])
        assert [f.rule for f in findings] == ["RPR001"]

    def test_every_rule_has_positive_and_negative_fixture(self):
        # Meta-test: the classes above cover each registered rule.
        covered = {rule.code for rule in ALL_RULES}
        assert covered == {"RPR001", "RPR002", "RPR003", "RPR004", "RPR005"}


@pytest.mark.parametrize("rule", [rule.code for rule in ALL_RULES])
def test_repo_is_clean(rule):
    """The enforcement gate: the shipped package has zero findings."""
    findings = [f for f in run_paths([default_target()]) if f.rule == rule]
    assert findings == [], "\n".join(f.format() for f in findings)


def test_cli_lint_exits_zero_and_reports_json(capsys):
    from repro.__main__ import main

    assert main(["lint", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == 0
    assert payload["files_checked"] > 50


def test_cli_lint_nonzero_on_finding(tmp_path, capsys):
    from repro.__main__ import main

    bad = tmp_path / "bad.py"
    bad.write_text("import os\nv = os.environ.get('REPRO_LOG')\n")
    assert main(["lint", "--paths", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RPR003" in out


def test_cli_list_rules(capsys):
    from repro.__main__ import main

    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.code in out
