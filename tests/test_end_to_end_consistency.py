"""Cross-cutting consistency tests: the library's invariants as a whole.

Checks that hold across module boundaries — the kind of thing a
downstream user relies on without reading the code.
"""

import numpy as np
import pytest

from repro import (
    IDEAL,
    MEI,
    MEIConfig,
    NonIdealFactors,
    Topology,
    TrainConfig,
    TraditionalRCS,
    make_benchmark,
)
from repro.cost.power import savings
from repro.experiments.table1 import calibrated_params

FAST = TrainConfig(epochs=25, batch_size=64, learning_rate=0.02, shuffle_seed=0)


def _toy_data(rng, n=300):
    x = rng.uniform(0, 1, (n, 2))
    y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
    return x, y


class TestDeterminism:
    """Same seeds in, same numbers out — end to end."""

    def test_mei_fully_deterministic(self, rng):
        x, y = _toy_data(rng)
        a = MEI(MEIConfig(2, 1, 8), seed=5).train(x, y, FAST).predict(x[:30])
        b = MEI(MEIConfig(2, 1, 8), seed=5).train(x, y, FAST).predict(x[:30])
        assert np.array_equal(a, b)

    def test_rcs_fully_deterministic(self, rng):
        x, y = _toy_data(rng)
        a = TraditionalRCS(Topology(2, 8, 1), seed=5).train(x, y, FAST).predict(x[:30])
        b = TraditionalRCS(Topology(2, 8, 1), seed=5).train(x, y, FAST).predict(x[:30])
        assert np.array_equal(a, b)

    def test_noise_trials_independent_of_call_order(self, rng):
        x, y = _toy_data(rng)
        mei = MEI(MEIConfig(2, 1, 8), seed=5).train(x, y, FAST)
        noise = NonIdealFactors(sigma_pv=0.2, sigma_sf=0.1, seed=3)
        forward_order = [mei.predict(x[:10], noise, t) for t in (0, 1, 2)]
        reverse_order = [mei.predict(x[:10], noise, t) for t in (2, 1, 0)]
        for a, b in zip(forward_order, reversed(reverse_order)):
            assert np.array_equal(a, b)

    def test_benchmark_datasets_stable_across_processes(self):
        """Seeded dataset hashes shouldn't drift with refactors."""
        data = make_benchmark("fft").dataset(n_train=50, n_test=10, seed=0)
        assert data.x_train[0, 0] == pytest.approx(data.x_train[0, 0])
        # Deterministic fingerprint of the sample values.
        fingerprint = float(np.sum(data.x_train) + np.sum(data.y_train))
        again = make_benchmark("fft").dataset(n_train=50, n_test=10, seed=0)
        assert float(np.sum(again.x_train) + np.sum(again.y_train)) == fingerprint


class TestUnitIntervalContract:
    """Architectures promise unit-interval outputs everywhere."""

    @pytest.mark.parametrize("noise", [IDEAL, NonIdealFactors(0.3, 0.3, seed=1)])
    def test_mei_outputs_bounded(self, noise, rng):
        x, y = _toy_data(rng)
        mei = MEI(MEIConfig(2, 1, 8), seed=0).train(x, y, FAST)
        pred = mei.predict(x, noise)
        assert np.all((pred >= 0.0) & (pred < 1.0))

    @pytest.mark.parametrize("noise", [IDEAL, NonIdealFactors(0.3, 0.3, seed=1)])
    def test_rcs_outputs_bounded(self, noise, rng):
        x, y = _toy_data(rng)
        rcs = TraditionalRCS(Topology(2, 8, 1), seed=0).train(x, y, FAST)
        pred = rcs.predict(x, noise)
        assert np.all((pred >= 0.0) & (pred < 1.0))


class TestCostConsistency:
    """The cost model agrees with the deployed hardware's bookkeeping."""

    def test_analog_device_count_matches_topology(self, rng):
        x, y = _toy_data(rng)
        mei = MEI(MEIConfig(2, 1, 8), seed=0).train(x, y, FAST)
        assert mei.analog.device_count == mei.topology().rram_devices

    def test_rcs_device_count_matches_eq6(self, rng):
        x, y = _toy_data(rng)
        topo = Topology(2, 8, 1)
        rcs = TraditionalRCS(topo, seed=0).train(x, y, FAST)
        assert rcs.analog.device_count == topo.rram_devices

    def test_pruned_view_counts_fewer_devices(self, rng):
        x, y = _toy_data(rng)
        mei = MEI(MEIConfig(2, 1, 8), seed=0).train(x, y, FAST)
        pruned = mei.pruned(in_bits=4, out_bits=4)
        assert pruned.topology().rram_devices < mei.topology().rram_devices

    def test_all_six_benchmarks_save_cost_on_paper_topologies(self):
        """The headline claim, via the calibrated model."""
        from repro.workloads.registry import BENCHMARK_NAMES, PAPER_TABLE1

        params = calibrated_params()
        for name in BENCHMARK_NAMES:
            topo = make_benchmark(name).spec.topology
            mei = PAPER_TABLE1[name].pruned_mei
            assert savings(topo, mei, params["area"]).saved_fraction > 0.5
            assert savings(topo, mei, params["power"]).saved_fraction > 0.5
