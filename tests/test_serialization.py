"""Tests for save/load of trained systems."""

import numpy as np
import pytest

from repro.core.mei import MEI, MEIConfig
from repro.core.rcs import TraditionalRCS
from repro.core.saab import SAAB, SAABConfig
from repro.cost.area import Topology
from repro.nn.network import MLP
from repro.nn.trainer import TrainConfig
from repro.serialization import (
    load_mei,
    load_mlp,
    load_rcs,
    load_saab,
    save_mei,
    save_mlp,
    save_rcs,
    save_saab,
)

FAST = TrainConfig(epochs=20, batch_size=64, learning_rate=0.02, shuffle_seed=0)


def _toy_data(rng, n=300):
    x = rng.uniform(0, 1, (n, 2))
    y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
    return x, y


class TestMLPRoundtrip:
    def test_predictions_identical(self, rng, tmp_path):
        net = MLP((3, 7, 2), hidden_activation="tanh", rng=0)
        path = tmp_path / "net.npz"
        save_mlp(net, path)
        restored = load_mlp(path)
        x = rng.uniform(0, 1, (10, 3))
        assert np.array_equal(restored.predict(x), net.predict(x))
        assert restored.layers[0].activation.name == "tanh"

    def test_kind_mismatch_rejected(self, rng, tmp_path):
        net = MLP((2, 3, 1), rng=0)
        path = tmp_path / "net.npz"
        save_mlp(net, path)
        with pytest.raises(ValueError):
            load_mei(path)


class TestMEIRoundtrip:
    def test_full_roundtrip(self, rng, tmp_path):
        x, y = _toy_data(rng)
        mei = MEI(MEIConfig(2, 1, 8, msb_weighted=True, weight_decay_ratio=1.5),
                  seed=0).train(x, y, FAST)
        path = tmp_path / "mei.npz"
        save_mei(mei, path)
        restored = load_mei(path)
        assert np.array_equal(restored.predict(x[:30]), mei.predict(x[:30]))
        assert restored.config == mei.config

    def test_pruning_masks_survive(self, rng, tmp_path):
        x, y = _toy_data(rng)
        mei = MEI(MEIConfig(2, 1, 8), seed=0).train(x, y, FAST)
        pruned = mei.pruned(in_bits=5, out_bits=6)
        path = tmp_path / "pruned.npz"
        save_mei(pruned, path)
        restored = load_mei(path)
        assert restored.in_bits == 5
        assert restored.out_bits == 6
        assert np.array_equal(restored.predict(x[:20]), pruned.predict(x[:20]))

    def test_restored_is_deployed(self, rng, tmp_path):
        x, y = _toy_data(rng)
        mei = MEI(MEIConfig(2, 1, 8), seed=0).train(x, y, FAST)
        path = tmp_path / "mei.npz"
        save_mei(mei, path)
        restored = load_mei(path)
        assert restored.analog is not None


class TestRCSRoundtrip:
    def test_full_roundtrip(self, rng, tmp_path):
        x, y = _toy_data(rng)
        rcs = TraditionalRCS(Topology(2, 8, 1, bits=6), seed=0).train(x, y, FAST)
        path = tmp_path / "rcs.npz"
        save_rcs(rcs, path)
        restored = load_rcs(path)
        assert np.array_equal(restored.predict(x[:30]), rcs.predict(x[:30]))
        assert restored.topology == rcs.topology


class TestSAABRoundtrip:
    def test_full_roundtrip(self, rng, tmp_path):
        x, y = _toy_data(rng)
        saab = SAAB(
            lambda k: MEI(MEIConfig(2, 1, 8), seed=30 + k),
            SAABConfig(n_learners=2, compare_bits=4, seed=0),
        ).train(x, y, FAST)
        path = tmp_path / "ensemble.npz"
        written = save_saab(saab, path)
        assert len(written) == 3  # index + 2 members
        restored = load_saab(path)
        assert len(restored) == 2
        assert np.allclose(restored.alphas, saab.alphas)
        assert np.array_equal(restored.predict(x[:20]), saab.predict(x[:20]))

    def test_untrained_rejected(self, tmp_path):
        saab = SAAB(lambda k: MEI(MEIConfig(1, 1, 4), seed=k), SAABConfig(n_learners=1))
        with pytest.raises(ValueError):
            save_saab(saab, tmp_path / "x.npz")
