"""Tests for the Monte-Carlo robustness evaluation loop."""

import numpy as np
import pytest

from repro.device.variation import IDEAL, NonIdealFactors
from repro.metrics.robustness import (
    evaluate_under_noise,
    noise_sweep,
    robustness_index,
)


def _noisy_predictor(x, noise, trial):
    """A fake system whose output degrades with sigma."""
    rng = noise.rng(trial)
    scale = noise.sigma_pv + noise.sigma_sf
    return x + rng.normal(0.0, scale + 1e-12, x.shape)


def _mae(pred, true):
    return float(np.mean(np.abs(pred - true)))


class TestEvaluateUnderNoise:
    def test_ideal_noise_runs_single_trial(self, rng):
        x = rng.uniform(0, 1, (20, 2))
        result = evaluate_under_noise(_noisy_predictor, x, x, _mae, IDEAL, trials=50)
        assert result.trials == 1
        assert result.mean == pytest.approx(0.0, abs=1e-9)

    def test_statistics_fields(self, rng):
        x = rng.uniform(0, 1, (30, 2))
        noise = NonIdealFactors(sigma_pv=0.1, seed=0)
        result = evaluate_under_noise(_noisy_predictor, x, x, _mae, noise, trials=10)
        assert result.trials == 10
        assert len(result.values) == 10
        assert result.worst >= result.mean >= 0
        assert result.std >= 0

    def test_trials_use_distinct_draws(self, rng):
        x = rng.uniform(0, 1, (30, 2))
        noise = NonIdealFactors(sigma_pv=0.2, seed=0)
        result = evaluate_under_noise(_noisy_predictor, x, x, _mae, noise, trials=5)
        assert len(np.unique(result.values)) > 1

    def test_rejects_zero_trials(self, rng):
        x = rng.uniform(0, 1, (5, 1))
        with pytest.raises(ValueError):
            evaluate_under_noise(_noisy_predictor, x, x, _mae, IDEAL, trials=0)


class TestNoiseSweep:
    def test_error_grows_with_sigma(self, rng):
        x = rng.uniform(0, 1, (50, 2))
        noises = [NonIdealFactors(sigma_pv=s, seed=0) for s in (0.01, 0.1, 0.5)]
        results = noise_sweep(_noisy_predictor, x, x, _mae, noises, trials=10)
        means = [r.mean for r in results]
        assert means == sorted(means)

    def test_one_result_per_level(self, rng):
        x = rng.uniform(0, 1, (10, 1))
        noises = [NonIdealFactors(sigma_pv=s, seed=0) for s in (0.0, 0.1)]
        assert len(noise_sweep(_noisy_predictor, x, x, _mae, noises, trials=3)) == 2


class TestRobustnessIndex:
    def test_perfectly_robust(self):
        assert robustness_index(0.1, 0.1) == 1.0

    def test_zero_noisy_error(self):
        assert robustness_index(0.0, 0.0) == 1.0

    def test_fragile_when_clean_is_zero(self):
        assert robustness_index(0.0, 0.5) == 0.0

    def test_capped_at_one(self):
        # Noise accidentally improving the metric still caps at 1.
        assert robustness_index(0.2, 0.1) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            robustness_index(-0.1, 0.1)
