"""Tests for the Monte-Carlo robustness evaluation loop."""

import numpy as np
import pytest

from repro.core.mei import MEI, MEIConfig
from repro.core.rcs import TraditionalRCS
from repro.core.saab import SAAB, SAABConfig
from repro.cost.area import Topology
from repro.device.variation import IDEAL, NonIdealFactors
from repro.metrics.robustness import (
    evaluate_under_noise,
    noise_sweep,
    robustness_index,
)


def _noisy_predictor(x, noise, trial):
    """A fake system whose output degrades with sigma."""
    rng = noise.rng(trial)
    scale = noise.sigma_pv + noise.sigma_sf
    return x + rng.normal(0.0, scale + 1e-12, x.shape)


def _mae(pred, true):
    return float(np.mean(np.abs(pred - true)))


class TestEvaluateUnderNoise:
    def test_ideal_noise_runs_single_trial(self, rng):
        x = rng.uniform(0, 1, (20, 2))
        result = evaluate_under_noise(_noisy_predictor, x, x, _mae, IDEAL, trials=50)
        assert result.trials == 1
        assert result.mean == pytest.approx(0.0, abs=1e-9)

    def test_statistics_fields(self, rng):
        x = rng.uniform(0, 1, (30, 2))
        noise = NonIdealFactors(sigma_pv=0.1, seed=0)
        result = evaluate_under_noise(_noisy_predictor, x, x, _mae, noise, trials=10)
        assert result.trials == 10
        assert len(result.values) == 10
        assert result.worst >= result.mean >= 0
        assert result.std >= 0

    def test_trials_use_distinct_draws(self, rng):
        x = rng.uniform(0, 1, (30, 2))
        noise = NonIdealFactors(sigma_pv=0.2, seed=0)
        result = evaluate_under_noise(_noisy_predictor, x, x, _mae, noise, trials=5)
        assert len(np.unique(result.values)) > 1

    def test_rejects_zero_trials(self, rng):
        x = rng.uniform(0, 1, (5, 1))
        with pytest.raises(ValueError):
            evaluate_under_noise(_noisy_predictor, x, x, _mae, IDEAL, trials=0)


class TestNoiseSweep:
    def test_error_grows_with_sigma(self, rng):
        x = rng.uniform(0, 1, (50, 2))
        noises = [NonIdealFactors(sigma_pv=s, seed=0) for s in (0.01, 0.1, 0.5)]
        results = noise_sweep(_noisy_predictor, x, x, _mae, noises, trials=10)
        means = [r.mean for r in results]
        assert means == sorted(means)

    def test_one_result_per_level(self, rng):
        x = rng.uniform(0, 1, (10, 1))
        noises = [NonIdealFactors(sigma_pv=s, seed=0) for s in (0.0, 0.1)]
        assert len(noise_sweep(_noisy_predictor, x, x, _mae, noises, trials=3)) == 2


def _train_data(rng, n=200):
    x = rng.uniform(0, 1, (n, 2))
    y = 0.25 + 0.5 * x.mean(axis=1, keepdims=True)
    return x, y


class TestVectorizedEquivalence:
    """The batched predict_trials path must match the serial loop bit
    for bit — the tentpole invariant of the performance layer."""

    NOISE = NonIdealFactors(sigma_pv=0.1, sigma_sf=0.05, seed=7)

    def test_mei_stack_matches_serial_trials(self, rng, fast_train):
        x, y = _train_data(rng)
        mei = MEI(MEIConfig(2, 1, 8), seed=0).train(x, y, fast_train)
        stack = mei.predict_trials(x[:40], self.NOISE, trials=4)
        assert stack.shape[0] == 4
        for t in range(4):
            assert np.array_equal(stack[t], mei.predict(x[:40], self.NOISE, trial=t))

    def test_rcs_stack_matches_serial_trials(self, rng, fast_train):
        x, y = _train_data(rng)
        rcs = TraditionalRCS(Topology(2, 8, 1), seed=0).train(x, y, fast_train)
        stack = rcs.predict_trials(x[:40], self.NOISE, trials=3)
        for t in range(3):
            assert np.array_equal(stack[t], rcs.predict(x[:40], self.NOISE, trial=t))

    def test_saab_stack_matches_serial_trials(self, rng, fast_train):
        x, y = _train_data(rng)
        saab = SAAB(
            lambda i: MEI(MEIConfig(2, 1, 8), seed=10 + i),
            SAABConfig(n_learners=2, compare_bits=4, seed=0),
        ).train(x, y, fast_train)
        stack = saab.predict_trials(x[:30], self.NOISE, trials=3)
        for t in range(3):
            assert np.array_equal(stack[t], saab.predict(x[:30], self.NOISE, trial=t))

    def test_evaluate_vectorized_matches_loop(self, rng, fast_train):
        x, y = _train_data(rng)
        mei = MEI(MEIConfig(2, 1, 8), seed=0).train(x, y, fast_train)
        metric = lambda p, t: float(np.mean(np.abs(p - t)))
        vectorized = evaluate_under_noise(mei, x[:40], y[:40], metric, self.NOISE, trials=5)
        looped = evaluate_under_noise(
            mei, x[:40], y[:40], metric, self.NOISE, trials=5, vectorize=False
        )
        assert np.array_equal(vectorized.values, looped.values)

    def test_explicit_batch_predictor(self, rng, fast_train):
        x, y = _train_data(rng)
        mei = MEI(MEIConfig(2, 1, 8), seed=0).train(x, y, fast_train)
        metric = lambda p, t: float(np.mean(np.abs(p - t)))
        explicit = evaluate_under_noise(
            mei.predict, x[:30], y[:30], metric, self.NOISE, trials=3,
            batch_predictor=mei.predict_trials,
        )
        looped = evaluate_under_noise(
            mei.predict, x[:30], y[:30], metric, self.NOISE, trials=3, vectorize=False
        )
        assert np.array_equal(explicit.values, looped.values)

    def test_system_object_ideal_noise(self, rng, fast_train):
        x, y = _train_data(rng)
        mei = MEI(MEIConfig(2, 1, 8), seed=0).train(x, y, fast_train)
        metric = lambda p, t: float(np.mean(np.abs(p - t)))
        result = evaluate_under_noise(mei, x[:20], y[:20], metric, IDEAL, trials=10)
        assert result.trials == 1
        assert result.values[0] == pytest.approx(metric(mei.predict(x[:20]), y[:20]))


class TestRobustnessIndex:
    def test_perfectly_robust(self):
        assert robustness_index(0.1, 0.1) == 1.0

    def test_zero_noisy_error(self):
        assert robustness_index(0.0, 0.0) == 1.0

    def test_fragile_when_clean_is_zero(self):
        assert robustness_index(0.0, 0.5) == 0.0

    def test_capped_at_one(self):
        # Noise accidentally improving the metric still caps at 1.
        assert robustness_index(0.2, 0.1) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            robustness_index(-0.1, 0.1)
