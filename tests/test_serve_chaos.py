"""Chaos tests for the serve path (the PR-5 fault-injection patterns).

Three injected failure modes against :class:`repro.serve.MicroBatcher`:

* a **flaky** engine (fails, then recovers) — failed batches retry
  with backoff and every response is still delivered exactly once;
* a **stalled** engine (hangs past ``RetryPolicy.timeout``) — the
  isolated evaluation pool is abandoned and rebuilt, the batch is
  re-evaluated on the fresh pool, and the late straggler result is
  discarded rather than double-completing a future;
* a **killed** worker (``SystemExit`` escaping the evaluation — the
  in-process analogue of a dead worker process) — the dispatcher's
  crash guard resubmits the in-flight requests without dropping or
  duplicating any response, bounded by the retry budget, and the
  batcher keeps serving afterwards.

The corrupted-artifact chaos case (digest mismatch refused loudly)
lives with the other storage semantics in
``tests/test_serve_artifact.py::TestIntegrity``.
"""

import threading
import time

import numpy as np
import pytest

from repro.obs import metrics as obs_metrics
from repro.parallel.resilient import RetryPolicy
from repro.serve import BatchPolicy, MicroBatcher, ServeError


def _reference(batch):
    return np.asarray(batch) * 2.0 + 0.25


class _ChaosEngine:
    """Injects a scripted failure on the first ``failures`` calls."""

    def __init__(self, failures, make_error, delay=0.0):
        self.failures = failures
        self.make_error = make_error
        self.delay = delay
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, batch):
        with self._lock:
            self.calls += 1
            call = self.calls
        if call <= self.failures:
            if self.delay:
                time.sleep(self.delay)
            if self.make_error is not None:
                raise self.make_error()
        return _reference(batch)


def _requests(count=3, dim=3, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.uniform(0.0, 1.0, (rows, dim)) for rows in range(1, count + 1)]


class TestFlakyEngine:
    def test_failed_batches_retry_and_deliver_exactly_once(self):
        engine = _ChaosEngine(failures=2, make_error=lambda: RuntimeError("injected"))
        retry = RetryPolicy(timeout=None, retries=3, backoff=0.0)
        requests = _requests()
        with MicroBatcher(engine, BatchPolicy(max_batch=64, max_delay=0.01),
                          retry=retry) as batcher:
            futures = [batcher.submit(r) for r in requests]
            results = [f.result(30) for f in futures]
        for request, result in zip(requests, results):
            assert np.array_equal(result, _reference(request))
        counters = obs_metrics.snapshot()["counters"]
        assert counters["serve_retries"] >= 2.0
        # exactly once: one response per request, none dropped or repeated
        assert counters["serve_responses"] == float(len(requests))

    def test_retry_budget_exhaustion_fails_loudly_then_recovers(self):
        engine = _ChaosEngine(failures=10 ** 6,
                              make_error=lambda: RuntimeError("injected"))
        retry = RetryPolicy(timeout=None, retries=1, backoff=0.0)
        with MicroBatcher(engine, BatchPolicy(max_batch=4, max_delay=0.0),
                          retry=retry) as batcher:
            doomed = batcher.submit(_requests(count=1)[0])
            with pytest.raises(ServeError):
                doomed.result(30)
            engine.failures = 0  # the engine heals; the batcher must too
            healed = _requests(count=1, seed=5)[0]
            assert np.array_equal(batcher.submit(healed).result(30),
                                  _reference(healed))


class TestStalledWorker:
    def test_stall_rebuilds_pool_and_reevaluates(self):
        engine = _ChaosEngine(failures=1, make_error=None, delay=0.8)
        retry = RetryPolicy(timeout=0.1, retries=2, backoff=0.0)
        request = _requests(count=1, seed=2)[0]
        with MicroBatcher(engine, BatchPolicy(max_batch=4, max_delay=0.0),
                          retry=retry) as batcher:
            begin = time.monotonic()
            result = batcher.submit(request).result(30)
            elapsed = time.monotonic() - begin
        assert np.array_equal(result, _reference(request))
        assert elapsed < 0.8  # served by the rebuilt pool, not the straggler
        counters = obs_metrics.snapshot()["counters"]
        assert counters["serve_worker_restarts"] >= 1.0
        assert counters["serve_responses"] == 1.0


class TestKilledWorker:
    def test_systemexit_resubmits_without_drop_or_duplicate(self):
        engine = _ChaosEngine(failures=1, make_error=lambda: SystemExit("killed"))
        retry = RetryPolicy(timeout=None, retries=2, backoff=0.0)
        requests = _requests(count=3, seed=3)
        with MicroBatcher(engine, BatchPolicy(max_batch=64, max_delay=0.01),
                          retry=retry) as batcher:
            futures = [batcher.submit(r) for r in requests]
            results = [f.result(30) for f in futures]
        for request, result in zip(requests, results):
            assert np.array_equal(result, _reference(request))
        counters = obs_metrics.snapshot()["counters"]
        assert counters["serve_worker_restarts"] >= 1.0
        assert counters["serve_responses"] == float(len(requests))
        assert counters["serve_requests"] == float(len(requests))

    def test_repeated_kills_exhaust_budget_with_serve_error(self):
        engine = _ChaosEngine(failures=10 ** 6, make_error=lambda: SystemExit("killed"))
        retry = RetryPolicy(timeout=None, retries=1, backoff=0.0)
        request = _requests(count=1, seed=4)[0]
        with MicroBatcher(engine, BatchPolicy(max_batch=4, max_delay=0.0),
                          retry=retry) as batcher:
            future = batcher.submit(request)
            with pytest.raises(ServeError, match="retry budget"):
                future.result(30)
