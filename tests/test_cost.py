"""Unit tests for the cost models: Eq. 6/7, Fig. 2, Eq. 9, calibration."""

import numpy as np
import pytest

from repro.cost.area import MEITopology, Topology, cost_mei, cost_traditional
from repro.cost.breakdown import breakdown
from repro.cost.calibration import calibration_residuals, fit_cost_params
from repro.cost.params import LITERATURE_AREA, LITERATURE_POWER, CostParams
from repro.cost.power import cost_ratio, max_saab_learners, savings
from repro.workloads.registry import BENCHMARK_NAMES, PAPER_TABLE1, make_benchmark


class TestTopology:
    def test_rram_device_count_eq6(self):
        # 2 (I + O) H devices for the differential pairs.
        assert Topology(2, 8, 2).rram_devices == 2 * 4 * 8

    def test_str(self):
        assert str(Topology(64, 16, 64)) == "64x16x64"

    def test_validation(self):
        with pytest.raises(ValueError):
            Topology(0, 8, 2)
        with pytest.raises(ValueError):
            Topology(2, 8, 2, bits=0)


class TestMEITopology:
    def test_from_analog_unpruned(self):
        mei = MEITopology.from_analog(Topology(2, 8, 2, bits=8))
        assert mei.in_ports == 16 and mei.out_ports == 16
        assert mei.in_bits == 8 and mei.out_bits == 8

    def test_rram_device_count_eq7(self):
        mei = MEITopology(in_ports=16, hidden=32, out_ports=16)
        assert mei.rram_devices == 2 * 32 * 32

    def test_paper_notation_str(self):
        mei = MEITopology(in_ports=384, hidden=64, out_ports=448, in_groups=64, out_groups=64)
        assert str(mei) == "(64.6)x64x(64.7)"

    def test_validation(self):
        with pytest.raises(ValueError):
            MEITopology(in_ports=0, hidden=4, out_ports=4)
        with pytest.raises(ValueError):
            MEITopology(in_ports=7, hidden=4, out_ports=4, in_groups=2)


class TestCosts:
    def test_eq6_formula(self):
        params = CostParams(dac=10.0, adc=20.0, periphery=3.0, rram=0.5)
        topo = Topology(2, 8, 2)
        expected = 2 * 10 + 2 * 20 + 8 * 3 + 64 * 0.5
        assert cost_traditional(topo, params) == expected

    def test_eq7_formula(self):
        params = CostParams(dac=10.0, adc=20.0, periphery=3.0, rram=0.5)
        mei = MEITopology(in_ports=16, hidden=32, out_ports=16)
        expected = 32 * 3 + 2 * 32 * 32 * 0.5
        assert cost_mei(mei, params) == expected

    def test_eq7_has_no_converter_terms(self):
        costly_converters = CostParams(dac=1e9, adc=1e9, periphery=1.0, rram=1.0)
        mei = MEITopology(in_ports=8, hidden=8, out_ports=8)
        assert cost_mei(mei, costly_converters) < 1e6

    def test_savings_report(self):
        report = savings(
            Topology(2, 8, 2), MEITopology(16, 32, 16), LITERATURE_AREA
        )
        assert 0 < report.saved_fraction < 1
        assert np.isclose(report.ratio, 1 / (1 - report.saved_fraction))

    def test_max_saab_learners_eq9(self):
        topo = Topology(2, 8, 2)
        mei = MEITopology(16, 32, 16)
        k = max_saab_learners(topo, mei, LITERATURE_AREA, LITERATURE_POWER)
        manual = min(
            cost_ratio(topo, mei, LITERATURE_AREA),
            cost_ratio(topo, mei, LITERATURE_POWER),
        )
        assert k == max(1, int(manual))

    def test_max_saab_at_least_one(self):
        # A giant MEI still yields K_max = 1 (never zero).
        huge = MEITopology(in_ports=512, hidden=256, out_ports=512)
        assert max_saab_learners(Topology(1, 2, 1), huge,
                                 LITERATURE_AREA, LITERATURE_POWER) == 1

    def test_params_validation(self):
        with pytest.raises(ValueError):
            CostParams(dac=-1, adc=1, periphery=1, rram=1)
        with pytest.raises(ValueError):
            CostParams(dac=1, adc=1, periphery=1, rram=0)


class TestBreakdown:
    def test_fractions_sum_to_one(self):
        b = breakdown(Topology(2, 8, 2), LITERATURE_AREA)
        assert np.isclose(sum(b.fractions.values()), 1.0)

    def test_paper_fig2_shape(self):
        """AD/DA > 85% of area and power; RRAM around one percent."""
        topo = Topology(2, 8, 2, bits=8)
        for params in (LITERATURE_AREA, LITERATURE_POWER):
            b = breakdown(topo, params)
            assert b.interface_fraction > 0.85
            assert b.fractions["rram"] < 0.02

    def test_rows_ordering(self):
        b = breakdown(Topology(2, 8, 2), LITERATURE_AREA)
        names = [row[0] for row in b.rows()]
        assert names == ["dac", "adc", "periphery", "rram"]


class TestCalibration:
    @pytest.fixture(scope="class")
    def paper_pairs(self):
        return (
            [
                (make_benchmark(n).spec.topology, PAPER_TABLE1[n].pruned_mei)
                for n in BENCHMARK_NAMES
            ],
            [PAPER_TABLE1[n].area_saved for n in BENCHMARK_NAMES],
            [PAPER_TABLE1[n].power_saved for n in BENCHMARK_NAMES],
        )

    def test_area_fit_reproduces_table1(self, paper_pairs):
        pairs, area_saved, _ = paper_pairs
        params = fit_cost_params(pairs, area_saved, metric="area")
        residuals = calibration_residuals(pairs, area_saved, params)
        assert np.max(np.abs(residuals)) < 0.02

    def test_power_fit_reproduces_table1(self, paper_pairs):
        pairs, _, power_saved = paper_pairs
        params = fit_cost_params(pairs, power_saved, metric="power")
        residuals = calibration_residuals(pairs, power_saved, params)
        assert np.max(np.abs(residuals)) < 0.02

    def test_fit_is_nonnegative(self, paper_pairs):
        pairs, area_saved, _ = paper_pairs
        params = fit_cost_params(pairs, area_saved)
        assert params.dac >= 0 and params.adc >= 0 and params.periphery >= 0

    def test_fit_recovers_synthetic_params(self):
        """Savings generated from known params must be fit back exactly."""
        truth = CostParams(dac=500.0, adc=1200.0, periphery=40.0, rram=1.0)
        pairs = [
            (Topology(2, 8, 2), MEITopology(16, 16, 16)),
            (Topology(4, 10, 2), MEITopology(32, 24, 16)),
            (Topology(8, 12, 4), MEITopology(48, 32, 24)),
            (Topology(3, 6, 3), MEITopology(20, 12, 20)),
        ]
        saved = [
            1 - cost_mei(m, truth) / cost_traditional(t, truth) for t, m in pairs
        ]
        fitted = fit_cost_params(pairs, saved, rram_unit=1.0)
        assert np.isclose(fitted.dac, truth.dac, rtol=1e-4)
        assert np.isclose(fitted.adc, truth.adc, rtol=1e-4)
        assert np.isclose(fitted.periphery, truth.periphery, rtol=1e-4)

    def test_validation(self, paper_pairs):
        pairs, area_saved, _ = paper_pairs
        with pytest.raises(ValueError):
            fit_cost_params(pairs[:2], area_saved[:2])
        with pytest.raises(ValueError):
            fit_cost_params(pairs, [1.5] * len(pairs))
        with pytest.raises(ValueError):
            fit_cost_params(pairs, area_saved[:-1])


class TestBreakdownMEI:
    def test_no_converter_components(self):
        from repro.cost.breakdown import breakdown_mei

        b = breakdown_mei(MEITopology(16, 32, 16), LITERATURE_AREA)
        assert set(b.components) == {"periphery", "rram"}
        assert b.interface_fraction == 0.0

    def test_total_matches_eq7(self):
        from repro.cost.area import cost_mei
        from repro.cost.breakdown import breakdown_mei

        topo = MEITopology(24, 16, 8)
        b = breakdown_mei(topo, LITERATURE_POWER)
        assert np.isclose(b.total, cost_mei(topo, LITERATURE_POWER))

    def test_fractions_sum_to_one(self):
        from repro.cost.breakdown import breakdown_mei

        b = breakdown_mei(MEITopology(8, 8, 8), LITERATURE_AREA)
        assert np.isclose(sum(b.fractions.values()), 1.0)


class TestInitializers:
    def test_xavier_uniform_bounds(self):
        from repro.nn.initializers import xavier_uniform

        rng = np.random.default_rng(0)
        w = xavier_uniform(rng, 10, 20)
        limit = np.sqrt(6.0 / 30)
        assert w.shape == (10, 20)
        assert np.all(np.abs(w) <= limit)

    def test_xavier_normal_scale(self):
        from repro.nn.initializers import xavier_normal

        rng = np.random.default_rng(0)
        w = xavier_normal(rng, 100, 100)
        assert abs(float(np.std(w)) - np.sqrt(2.0 / 200)) < 0.01

    def test_uniform_scale(self):
        from repro.nn.initializers import uniform

        rng = np.random.default_rng(0)
        w = uniform(rng, 5, 5, scale=0.3)
        assert np.all(np.abs(w) <= 0.3)

    def test_zeros(self):
        from repro.nn.initializers import zeros

        assert not zeros(np.random.default_rng(0), 3, 4).any()
