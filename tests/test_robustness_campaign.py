"""Tests for the fault-injection campaign engine and its mitigations."""

import json

import numpy as np
import pytest

from repro.core.mei import MEIConfig
from repro.device.faults import FaultModel
from repro.experiments.fig_faults import CAMPAIGN_SCALES, campaign_scale, run_fig_faults
from repro.experiments.runner import ExperimentScale
from repro.robustness import CampaignConfig, run_campaign
from repro.robustness.campaign import MITIGATIONS
from repro.robustness.mitigation import FaultedMEI, chip_fault_model, fault_aware_saab

MICRO_SCALE = ExperimentScale(name="micro", n_train=60, n_test=30, epochs=2,
                              noise_trials=1)
MICRO_CONFIG = CampaignConfig(
    benchmarks=("sobel",), saf_rates=(0.0, 0.08), seeds=(0,), ensemble_k=2
)


@pytest.fixture(scope="module")
def micro_result():
    """One tiny serial campaign shared by the structural assertions."""
    return run_campaign(config=MICRO_CONFIG, scale=MICRO_SCALE, seed=0,
                        workers=1, kind="serial")


class TestCampaignConfig:
    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmarks"):
            CampaignConfig(benchmarks=("sobel", "nonesuch"))

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(saf_rates=())
        with pytest.raises(ValueError):
            CampaignConfig(seeds=())

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(saf_rates=(1.5,))
        with pytest.raises(ValueError):
            CampaignConfig(sa1_fraction=1.2)
        with pytest.raises(ValueError):
            CampaignConfig(spare_columns=-1)
        with pytest.raises(ValueError):
            CampaignConfig(ensemble_k=0)

    def test_fault_model_splits_by_sa1_fraction(self):
        config = CampaignConfig(sa1_fraction=0.25)
        model = config.fault_model(0.08, seed=3)
        assert model.stuck_on_rate == pytest.approx(0.02)
        assert model.stuck_off_rate == pytest.approx(0.06)
        assert model.seed == 3

    def test_to_dict_json_safe(self):
        json.dumps(MICRO_CONFIG.to_dict())


class TestCampaignResult:
    def test_row_grid_complete(self, micro_result):
        expected = (len(MICRO_CONFIG.benchmarks) * len(MICRO_CONFIG.saf_rates)
                    * len(MICRO_CONFIG.seeds) * len(MITIGATIONS))
        assert len(micro_result.rows) == expected
        combos = {(r.benchmark, r.saf_rate, r.defect_seed, r.mitigation)
                  for r in micro_result.rows}
        assert len(combos) == expected

    def test_zero_rate_unmitigated_equals_clean(self, micro_result):
        for row in micro_result.rows:
            if row.saf_rate == 0.0 and row.mitigation in ("none", "remap"):
                assert row.error == pytest.approx(row.clean_error)
                assert row.faulty_cells == 0

    def test_faulty_rows_record_defect_seeds(self, micro_result):
        faulty = [r for r in micro_result.rows if r.saf_rate > 0]
        assert faulty
        for row in faulty:
            assert row.total_cells > 0
            assert row.defect_seeds  # manifest replay contract
            assert all(isinstance(s, int) for s in row.defect_seeds)

    def test_mitigation_table_shape(self, micro_result):
        table = micro_result.mitigation_table()
        assert len(table) == len(MICRO_CONFIG.benchmarks) * len(MICRO_CONFIG.saf_rates)
        for entry in table:
            for mitigation in MITIGATIONS:
                assert f"error_{mitigation}" in entry
            assert "recovery_remap" in entry
            assert "recovery_retrain" in entry

    def test_metrics_keys(self, micro_result):
        metrics = micro_result.metrics()
        assert "faults.sobel.r0.08.none" in metrics
        assert "faults.sobel.r0.retrain" in metrics
        assert all(isinstance(v, float) for v in metrics.values())

    def test_render_mentions_resilience(self, micro_result):
        text = micro_result.render()
        assert "err none" in text
        assert "resilience:" in text

    def test_to_dict_is_json_safe_manifest_payload(self, micro_result):
        payload = json.loads(json.dumps(micro_result.to_dict()))
        assert payload["scale"] == "micro"
        assert payload["resilience"]["tasks"] == 2
        assert len(payload["rows"]) == len(micro_result.rows)
        row = next(r for r in payload["rows"] if r["saf_rate"] > 0)
        assert row["defect_seeds"]

    def test_mean_error_unknown_cell_raises(self, micro_result):
        with pytest.raises(KeyError):
            micro_result.mean_error("sobel", 0.42, "none")


class TestChaosCampaign:
    def test_campaign_survives_forced_worker_crash(self, tmp_path):
        marker = tmp_path / "campaign-chaos"
        result = run_campaign(
            config=MICRO_CONFIG, scale=MICRO_SCALE, seed=0,
            workers=2, kind="process", chaos=True, chaos_marker=str(marker),
        )
        assert result.resilience is not None
        assert result.resilience.crashes >= 1
        assert not result.resilience.degraded
        expected = (len(MICRO_CONFIG.saf_rates) * len(MICRO_CONFIG.seeds)
                    * len(MITIGATIONS))
        assert len(result.rows) == expected

    def test_serial_chaos_refuses_to_kill_parent(self, tmp_path):
        # In-parent execution must skip the SIGKILL and still finish.
        marker = tmp_path / "parent-chaos"
        result = run_campaign(
            config=MICRO_CONFIG, scale=MICRO_SCALE, seed=0,
            workers=1, kind="serial", chaos=True, chaos_marker=str(marker),
        )
        assert len(result.rows) == 6
        assert not marker.exists()


class TestMitigationPrimitives:
    def test_chip_fault_model_derives_distinct_seeds(self):
        model = FaultModel(stuck_on_rate=0.05, seed=7)
        seeds = {chip_fault_model(model, k).seed for k in range(4)}
        assert len(seeds) == 4
        assert model.seed not in seeds

    def test_chip_fault_model_unseeded_passthrough(self):
        model = FaultModel(stuck_on_rate=0.05, seed=None)
        assert chip_fault_model(model, 2) is model

    def test_faulted_mei_defects_survive_redeploy(self, rng, fast_train):
        x = rng.uniform(0, 1, (150, 2))
        y = 0.2 + 0.6 * x[:, :1]
        mei = FaultedMEI(
            MEIConfig(2, 1, 8),
            FaultModel(stuck_on_rate=0.05, stuck_off_rate=0.05, seed=4),
            seed=0,
        ).train(x, y, fast_train)
        first = [d.copy() for d in mei.last_injection.defect_maps]
        mei.deploy()  # the chip's defects are permanent
        assert all(np.array_equal(a, b)
                   for a, b in zip(first, mei.last_injection.defect_maps))

    def test_fault_aware_saab_learners_carry_injections(self, rng, fast_train):
        x = rng.uniform(0, 1, (150, 2))
        y = 0.2 + 0.6 * x[:, :1]
        saab = fault_aware_saab(
            MEIConfig(2, 1, 8),
            FaultModel(stuck_on_rate=0.05, stuck_off_rate=0.05, seed=4),
            n_learners=2, seed=0, compare_bits=4,
        ).train(x, y, fast_train)
        injections = [lr.last_injection for lr in saab.learners]
        assert all(report is not None for report in injections)
        seeds = {report.model.seed for report in injections}
        assert len(seeds) == 2  # one chip, one defect map

    def test_fault_aware_saab_rejects_bad_k(self):
        with pytest.raises(ValueError):
            fault_aware_saab(MEIConfig(2, 1, 8), FaultModel(seed=0), 0)

    def test_repair_with_spares_validates_lengths(self, rng, fast_train):
        x = rng.uniform(0, 1, (120, 2))
        y = 0.2 + 0.6 * x[:, :1]
        mei = FaultedMEI(
            MEIConfig(2, 1, 8),
            FaultModel(stuck_on_rate=0.1, seed=1),
            seed=0,
        ).train(x, y, fast_train)
        snapshot = mei.analog.conductance_snapshot()
        maps = mei.last_injection.defect_maps
        with pytest.raises(ValueError):
            mei.analog.repair_with_spares(maps[:-1], snapshot, 2)
        with pytest.raises(ValueError):
            mei.analog.repair_with_spares(maps, snapshot[:-1], 2)


class TestFigFaultsDriver:
    def test_campaign_scale_names(self):
        assert set(CAMPAIGN_SCALES) == {"fast", "quick", "full"}
        assert campaign_scale("fast").name == "fast"
        with pytest.raises(ValueError, match="unknown campaign scale"):
            campaign_scale("warp")

    def test_run_fig_faults_micro(self):
        result = run_fig_faults(
            scale=MICRO_SCALE, seed=0, benchmarks=("sobel",),
            saf_rates=(0.0, 0.08), defect_seeds=(0,), ensemble_k=2,
            workers=1, kind="serial",
        )
        assert result.scale.name == "micro"
        assert result.config.benchmarks == ("sobel",)
        assert len(result.rows) == 6
