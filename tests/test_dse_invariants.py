"""Additional invariants of the DSE flow's outputs."""

import numpy as np
import pytest

from repro.core.dse import DSEConfig, explore
from repro.core.mei import MEI
from repro.cost.area import Topology
from repro.nn.trainer import TrainConfig

FAST = TrainConfig(epochs=20, batch_size=64, learning_rate=0.02, shuffle_seed=0)


@pytest.fixture(scope="module")
def toy():
    rng = np.random.default_rng(5)
    x = rng.uniform(0, 1, (500, 2))
    y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
    return x[:-100], y[:-100], x[-100:], y[-100:]


def _metric(pred, target):
    return float(np.mean(np.abs(pred - target)))


class TestDSEOutputs:
    def test_result_is_reproducible(self, toy):
        x_tr, y_tr, x_te, y_te = toy
        config = DSEConfig(error_requirement=0.2, initial_hidden=8, max_hidden=16,
                           prune=True, seed=0)
        a = explore(Topology(2, 8, 1), x_tr, y_tr, x_te, y_te, _metric, config, FAST)
        b = explore(Topology(2, 8, 1), x_tr, y_tr, x_te, y_te, _metric, config, FAST)
        assert a.error == b.error
        assert str(a.topology) == str(b.topology)
        assert a.hidden == b.hidden

    def test_history_errors_positive(self, toy):
        x_tr, y_tr, x_te, y_te = toy
        config = DSEConfig(error_requirement=0.2, initial_hidden=4, max_hidden=16,
                           prune=False, seed=0)
        result = explore(Topology(2, 8, 1), x_tr, y_tr, x_te, y_te, _metric,
                         config, FAST)
        assert all(e > 0 for _, e in result.hidden_history)
        assert result.hidden in [h for h, _ in result.hidden_history]

    def test_log_is_humanly_readable(self, toy):
        x_tr, y_tr, x_te, y_te = toy
        config = DSEConfig(error_requirement=0.2, initial_hidden=8, max_hidden=8,
                           prune=False, seed=0)
        result = explore(Topology(2, 8, 1), x_tr, y_tr, x_te, y_te, _metric,
                         config, FAST)
        assert any("hidden search" in line for line in result.log)
        assert any("K_max" in line for line in result.log)

    def test_pruned_system_is_the_returned_system(self, toy):
        """result.error must describe result.system, post-pruning."""
        x_tr, y_tr, x_te, y_te = toy
        config = DSEConfig(error_requirement=0.2, initial_hidden=8, max_hidden=8,
                           prune=True, seed=0)
        result = explore(Topology(2, 8, 1), x_tr, y_tr, x_te, y_te, _metric,
                         config, FAST)
        assert isinstance(result.system, MEI)
        recomputed = _metric(result.system.predict(x_te), y_te)
        assert recomputed == pytest.approx(result.error)

    def test_meets_requirements_property(self, toy):
        x_tr, y_tr, x_te, y_te = toy
        config = DSEConfig(error_requirement=0.5, initial_hidden=8, max_hidden=8,
                           prune=False, seed=0)
        result = explore(Topology(2, 8, 1), x_tr, y_tr, x_te, y_te, _metric,
                         config, FAST)
        assert result.meets_requirements == (result.status == "ok")
