"""Unit tests for bit-array helpers (MSB weights, hardening, matching)."""

import numpy as np
import pytest

from repro.quant.binarray import bit_error_rate, harden, msb_match, msb_weights


class TestMsbWeights:
    def test_paper_example(self):
        # 8-bit array: MSB weight 2^0, LSB weight 2^-7 (Sec. 3.1).
        w = msb_weights(8)
        assert w[0] == 1.0
        assert w[-1] == 2.0**-7

    def test_tiled_per_group(self):
        w = msb_weights(4, groups=3)
        assert w.shape == (12,)
        assert np.allclose(w[:4], w[4:8])
        assert np.allclose(w[:4], w[8:])

    def test_custom_decay(self):
        w = msb_weights(3, decay=10.0)
        assert np.allclose(w, [1.0, 0.1, 0.01])

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            msb_weights(0)
        with pytest.raises(ValueError):
            msb_weights(4, groups=0)
        with pytest.raises(ValueError):
            msb_weights(4, decay=0.0)


class TestHarden:
    def test_threshold(self):
        assert np.array_equal(harden(np.array([0.49, 0.5, 0.51])), [0.0, 1.0, 1.0])

    def test_custom_threshold(self):
        assert np.array_equal(harden(np.array([0.3, 0.8]), threshold=0.9), [0.0, 0.0])

    def test_output_is_float_binary(self):
        out = harden(np.random.default_rng(0).uniform(0, 1, (4, 7)))
        assert out.dtype == float
        assert set(np.unique(out)) <= {0.0, 1.0}


class TestMsbMatch:
    def test_exact_match(self):
        bits = np.array([[1, 0, 1, 1, 0, 0, 1, 0]], dtype=float)
        assert msb_match(bits, bits, bits=8, compare_bits=8)[0]

    def test_lsb_mismatch_ignored(self):
        a = np.array([[1, 0, 1, 0, 0, 0, 0, 0]], dtype=float)
        b = np.array([[1, 0, 1, 0, 1, 1, 1, 1]], dtype=float)
        assert msb_match(a, b, bits=8, compare_bits=4)[0]
        assert not msb_match(a, b, bits=8, compare_bits=5)[0]

    def test_all_groups_must_match(self):
        a = np.array([[1, 0, 0, 0]], dtype=float)  # two 2-bit groups
        b = np.array([[1, 0, 1, 0]], dtype=float)
        assert not msb_match(a, b, bits=2, compare_bits=1)[0]

    def test_batch_shape(self):
        a = np.zeros((7, 16))
        assert msb_match(a, a, bits=8, compare_bits=4).shape == (7,)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            msb_match(np.zeros((2, 8)), np.zeros((3, 8)), bits=8, compare_bits=4)

    def test_rejects_bad_compare_bits(self):
        a = np.zeros((1, 8))
        with pytest.raises(ValueError):
            msb_match(a, a, bits=8, compare_bits=0)
        with pytest.raises(ValueError):
            msb_match(a, a, bits=8, compare_bits=9)

    def test_rejects_misaligned_ports(self):
        a = np.zeros((1, 10))
        with pytest.raises(ValueError):
            msb_match(a, a, bits=8, compare_bits=4)


class TestBitErrorRate:
    def test_zero_on_identical(self):
        bits = np.ones((3, 8))
        assert bit_error_rate(bits, bits) == 0.0

    def test_one_on_complement(self):
        bits = np.ones((3, 8))
        assert bit_error_rate(bits, 1 - bits) == 1.0

    def test_fractional(self):
        a = np.array([[1, 1, 0, 0]], dtype=float)
        b = np.array([[1, 0, 0, 1]], dtype=float)
        assert bit_error_rate(a, b) == 0.5

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            bit_error_rate(np.zeros(4), np.zeros(5))
