"""Unit tests for behavioural AD/DA converters and analog periphery."""

import numpy as np
import pytest

from repro.analog.converters import ADC, DAC
from repro.analog.periphery import Comparator, SigmoidNeuron


class TestDAC:
    def test_quantizes_to_grid(self, rng):
        dac = DAC(bits=8)
        out = dac.convert(rng.uniform(0, 1, 100))
        assert np.allclose(out * 256, np.round(out * 256))

    def test_error_bounded_by_lsb(self, rng):
        dac = DAC(bits=8)
        x = rng.uniform(0, 0.99, 200)
        assert np.all(np.abs(dac.convert(x) - x) < 2.0**-8)

    def test_noise_perturbs_output(self, rng):
        noisy = DAC(bits=8, noise_lsb=2.0)
        x = rng.uniform(0.2, 0.8, 50)
        a = noisy.convert(x, np.random.default_rng(0))
        b = DAC(bits=8).convert(x)
        assert not np.allclose(a, b)

    def test_noise_stays_in_rails(self, rng):
        noisy = DAC(bits=4, noise_lsb=10.0)
        out = noisy.convert(rng.uniform(0, 1, 500), np.random.default_rng(0))
        assert np.all(out >= 0.0)
        assert np.all(out <= 1.0 - 2.0**-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            DAC(bits=0)
        with pytest.raises(ValueError):
            DAC(noise_lsb=-1.0)


class TestADC:
    def test_quantizes_and_clips(self):
        adc = ADC(bits=8)
        out = adc.convert(np.array([-0.5, 0.3, 1.7]))
        assert out[0] == 0.0
        assert out[2] == 255 / 256
        assert np.isclose(out[1] * 256, np.round(out[1] * 256))

    def test_more_bits_less_error(self, rng):
        x = rng.uniform(0, 0.99, 500)
        err4 = np.mean(np.abs(ADC(bits=4).convert(x) - x))
        err10 = np.mean(np.abs(ADC(bits=10).convert(x) - x))
        assert err10 < err4

    def test_input_referred_noise(self, rng):
        x = rng.uniform(0.2, 0.8, 100)
        noisy = ADC(bits=8, noise_lsb=3.0).convert(x, np.random.default_rng(1))
        clean = ADC(bits=8).convert(x)
        assert not np.allclose(noisy, clean)

    def test_validation(self):
        with pytest.raises(ValueError):
            ADC(bits=40)
        with pytest.raises(ValueError):
            ADC(noise_lsb=-0.1)


class TestSigmoidNeuron:
    def test_applies_gain_bias_sigmoid(self):
        neuron = SigmoidNeuron(gain=2.0, bias=np.array([1.0]))
        out = neuron.apply(np.array([[0.5]]))
        assert np.isclose(out[0, 0], 1.0 / (1.0 + np.exp(-2.0)))

    def test_output_in_unit_interval(self, rng):
        neuron = SigmoidNeuron(gain=5.0, bias=np.zeros(4))
        out = neuron.apply(rng.normal(0, 10, (20, 4)))
        # Saturated outputs may round to exactly 0.0/1.0 in float64.
        assert np.all((out >= 0) & (out <= 1))

    def test_static_mismatch_is_frozen(self, rng):
        neuron = SigmoidNeuron(
            gain=1.0, bias=np.zeros(3), offset_sigma=0.2, rng=np.random.default_rng(0)
        )
        x = rng.normal(size=(2, 3))
        assert np.allclose(neuron.apply(x), neuron.apply(x))

    def test_mismatch_differs_between_instances(self, rng):
        x = rng.normal(size=(2, 3))
        n1 = SigmoidNeuron(gain=1.0, bias=np.zeros(3), offset_sigma=0.3,
                           rng=np.random.default_rng(1))
        n2 = SigmoidNeuron(gain=1.0, bias=np.zeros(3), offset_sigma=0.3,
                           rng=np.random.default_rng(2))
        assert not np.allclose(n1.apply(x), n2.apply(x))

    def test_no_overflow_on_extreme_inputs(self):
        neuron = SigmoidNeuron(gain=1e6, bias=np.zeros(1))
        assert np.all(np.isfinite(neuron.apply(np.array([[1e6], [-1e6]]))))

    def test_validation(self):
        with pytest.raises(ValueError):
            SigmoidNeuron(gain=1.0, bias=np.zeros(2), offset_sigma=-1.0)


class TestComparator:
    def test_thresholds_at_half(self):
        comp = Comparator()
        out = comp.apply(np.array([0.2, 0.5, 0.8]))
        assert np.array_equal(out, [0.0, 1.0, 1.0])

    def test_custom_threshold(self):
        comp = Comparator(threshold=0.9)
        assert comp.apply(np.array([0.85]))[0] == 0.0

    def test_offset_noise_flips_marginal_bits(self):
        comp = Comparator(offset_sigma=0.2)
        marginal = np.full(2000, 0.5)
        out = comp.apply(marginal, np.random.default_rng(0))
        # Roughly half flip each way under a symmetric offset.
        assert 0.3 < out.mean() < 0.7

    def test_strong_levels_are_stable(self):
        comp = Comparator(offset_sigma=0.05)
        out = comp.apply(np.concatenate([np.zeros(100), np.ones(100)]),
                         np.random.default_rng(0))
        assert np.array_equal(out[:100], np.zeros(100))
        assert np.array_equal(out[100:], np.ones(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            Comparator(threshold=0.0)
        with pytest.raises(ValueError):
            Comparator(offset_sigma=-0.1)
