"""Tests for tiled crossbars (tall-matrix realization)."""

import numpy as np
import pytest

from repro.device.rram import RRAMDevice
from repro.device.variation import NonIdealFactors
from repro.xbar.mapping import DifferentialCrossbar, MappingConfig
from repro.xbar.tiling import TiledDifferentialCrossbar


class TestTiling:
    def test_matches_untiled_product(self, rng):
        weights = rng.normal(0, 1, (50, 6))
        tiled = TiledDifferentialCrossbar(weights, max_rows=16)
        x = rng.uniform(0, 1, (7, 50))
        ideal = x @ weights
        scale = max(float(np.max(np.abs(ideal))), 1e-12)
        assert np.max(np.abs(tiled.apply(x) - ideal)) / scale < 1e-9

    def test_tile_count(self, rng):
        tiled = TiledDifferentialCrossbar(rng.normal(size=(50, 4)), max_rows=16)
        assert tiled.n_tiles == 4  # 16+16+16+2

    def test_single_tile_when_small(self, rng):
        tiled = TiledDifferentialCrossbar(rng.normal(size=(8, 4)), max_rows=16)
        assert tiled.n_tiles == 1

    def test_device_count_preserved(self, rng):
        weights = rng.normal(size=(40, 5))
        tiled = TiledDifferentialCrossbar(weights, max_rows=16)
        untiled = DifferentialCrossbar(weights)
        assert tiled.device_count == untiled.device_count

    def test_enables_otherwise_infeasible_arrays(self, rng):
        """A fan-in that blows the column-sum headroom works tiled."""
        config = MappingConfig(g_s=1e-3, row_sum_headroom=0.5,
                               coefficient_ceiling=0.05)
        device = RRAMDevice(r_on=1e4, r_off=1e5)  # base coeff 1e-2/row
        weights = rng.normal(size=(100, 3))
        with pytest.raises(ValueError):
            DifferentialCrossbar(weights, config=config, device=device)
        tiled = TiledDifferentialCrossbar(weights, max_rows=20, config=config,
                                          device=device)
        x = rng.uniform(0, 1, (4, 100))
        ideal = x @ weights
        scale = float(np.max(np.abs(ideal)))
        assert np.max(np.abs(tiled.apply(x) - ideal)) / scale < 1e-9

    def test_ceiling_exhaustion_raises_clearly(self, rng):
        """Base coefficient at the ceiling must error, not emit NaNs."""
        config = MappingConfig(g_s=1e-3, coefficient_ceiling=0.01)
        device = RRAMDevice(r_on=1e4, r_off=1e5)  # base = ceiling = 0.01
        with pytest.raises(ValueError, match="ceiling"):
            DifferentialCrossbar(rng.normal(size=(4, 2)), config=config,
                                 device=device)

    def test_noise_propagates_to_tiles(self, rng):
        weights = rng.normal(size=(30, 4))
        tiled = TiledDifferentialCrossbar(weights, max_rows=10)
        x = rng.uniform(0, 1, (3, 30))
        noise = NonIdealFactors(sigma_pv=0.2, seed=1)
        assert not np.allclose(tiled.apply(x, noise, noise.rng()), tiled.apply(x))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            TiledDifferentialCrossbar(rng.normal(size=(10,)), max_rows=4)
        with pytest.raises(ValueError):
            TiledDifferentialCrossbar(rng.normal(size=(10, 2)), max_rows=0)
        tiled = TiledDifferentialCrossbar(rng.normal(size=(10, 2)), max_rows=4)
        with pytest.raises(ValueError):
            tiled.apply(np.zeros((1, 7)))
