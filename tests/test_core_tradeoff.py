"""Tests for the trade-off enumeration and Pareto analysis."""

import numpy as np
import pytest

from repro.core.tradeoff import DesignPoint, enumerate_tradeoffs, pareto_front
from repro.cost.area import Topology
from repro.nn.trainer import TrainConfig


class TestDominance:
    def test_strict_dominance(self):
        better = DesignPoint(8, 1, 8, error=0.1, area_saved=0.8, power_saved=0.8)
        worse = DesignPoint(16, 1, 8, error=0.2, area_saved=0.7, power_saved=0.7)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_tradeoff_points_incomparable(self):
        accurate = DesignPoint(32, 2, 8, error=0.05, area_saved=0.5, power_saved=0.5)
        cheap = DesignPoint(8, 1, 8, error=0.2, area_saved=0.9, power_saved=0.9)
        assert not accurate.dominates(cheap)
        assert not cheap.dominates(accurate)

    def test_equal_points_do_not_dominate(self):
        p = DesignPoint(8, 1, 8, error=0.1, area_saved=0.8, power_saved=0.8)
        q = DesignPoint(8, 1, 8, error=0.1, area_saved=0.8, power_saved=0.8)
        assert not p.dominates(q)


class TestParetoFront:
    def test_front_excludes_dominated(self):
        points = [
            DesignPoint(8, 1, 8, error=0.1, area_saved=0.8, power_saved=0.8),
            DesignPoint(16, 1, 8, error=0.2, area_saved=0.7, power_saved=0.7),
            DesignPoint(32, 2, 8, error=0.05, area_saved=0.5, power_saved=0.5),
        ]
        front = pareto_front(points)
        assert len(front) == 2
        assert front[0].error == 0.05
        assert all(p.error != 0.2 for p in front)

    def test_front_sorted_by_error(self):
        points = [
            DesignPoint(8, 1, 8, error=0.3, area_saved=0.95, power_saved=0.95),
            DesignPoint(16, 1, 8, error=0.1, area_saved=0.8, power_saved=0.8),
            DesignPoint(32, 1, 8, error=0.05, area_saved=0.6, power_saved=0.6),
        ]
        front = pareto_front(points)
        assert [p.error for p in front] == sorted(p.error for p in front)

    def test_empty_input(self):
        assert pareto_front([]) == []


class TestEnumeration:
    @pytest.fixture(scope="class")
    def toy(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, (500, 2))
        y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
        return x[:-100], y[:-100], x[-100:], y[-100:]

    def test_grid_is_complete(self, toy):
        x_tr, y_tr, x_te, y_te = toy
        metric = lambda p, t: float(np.mean(np.abs(p - t)))
        result = enumerate_tradeoffs(
            Topology(2, 8, 1), x_tr, y_tr, x_te, y_te, metric,
            hidden_sizes=(4, 8), ensemble_sizes=(1, 2), bit_lengths=(8,),
            train_config=TrainConfig(epochs=20, batch_size=64, shuffle_seed=0),
        )
        assert len(result.points) == 4
        labels = {p.label for p in result.points}
        assert "H=4 K=1 B=8" in labels and "H=8 K=2 B=8" in labels

    def test_bigger_systems_save_less(self, toy):
        x_tr, y_tr, x_te, y_te = toy
        metric = lambda p, t: float(np.mean(np.abs(p - t)))
        result = enumerate_tradeoffs(
            Topology(2, 8, 1), x_tr, y_tr, x_te, y_te, metric,
            hidden_sizes=(4,), ensemble_sizes=(1, 2), bit_lengths=(8,),
            train_config=TrainConfig(epochs=15, batch_size=64, shuffle_seed=0),
        )
        by_k = {p.k: p for p in result.points}
        assert by_k[2].area_saved < by_k[1].area_saved

    def test_render_marks_pareto(self, toy):
        x_tr, y_tr, x_te, y_te = toy
        metric = lambda p, t: float(np.mean(np.abs(p - t)))
        result = enumerate_tradeoffs(
            Topology(2, 8, 1), x_tr, y_tr, x_te, y_te, metric,
            hidden_sizes=(4,), ensemble_sizes=(1,), bit_lengths=(8,),
            train_config=TrainConfig(epochs=10, batch_size=64, shuffle_seed=0),
        )
        assert "*" in result.render()
