"""Tests for the experiment harnesses (tiny scales, shape checks only)."""

import pytest

from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.runner import (
    FULL_SCALE,
    QUICK_SCALE,
    ExperimentScale,
    default_scale,
    format_table,
    train_config,
)
from repro.experiments.table1 import calibrated_params, run_benchmark_row

TINY = ExperimentScale(name="tiny", n_train=400, n_test=100, epochs=25, noise_trials=2)


class TestRunner:
    def test_scales_valid(self):
        assert QUICK_SCALE.n_train < FULL_SCALE.n_train
        with pytest.raises(ValueError):
            ExperimentScale(name="bad", n_train=0, n_test=1, epochs=1, noise_trials=1)

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert default_scale() is QUICK_SCALE
        monkeypatch.setenv("REPRO_FULL", "1")
        assert default_scale() is FULL_SCALE

    def test_train_config_sized_by_scale(self):
        cfg = train_config(TINY, seed=3)
        assert cfg.epochs == TINY.epochs
        assert cfg.shuffle_seed == 3

    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 0.125]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "2.5000" in out and "0.1250" in out


class TestFig2:
    def test_matches_paper_shape(self):
        result = run_fig2()
        assert result.area.interface_fraction > 0.85
        assert result.power.interface_fraction > 0.85
        assert result.area.fractions["rram"] < 0.02
        assert result.power.fractions["rram"] < 0.02

    def test_render_contains_components(self):
        text = run_fig2().render()
        for component in ("dac", "adc", "periphery", "rram"):
            assert component in text


class TestFig3:
    def test_sweep_structure(self):
        result = run_fig3(hidden_sizes=(2, 4), scale=TINY, seed=0)
        assert len(result.points) == 2
        assert result.points[0].hidden == 2
        assert all(p.error_adda > 0 for p in result.points)
        assert "hidden" in result.render()

    def test_weighted_loss_beats_plain_in_weak_training_regime(self):
        """The Eq. 5 headline of Fig. 3.

        The MSB-weighted loss wins when the training budget is small
        (the paper's 2015 regime).  With a fully-converged Adam run the
        plain loss catches up on smooth kernels — a deviation we
        document in EXPERIMENTS.md and quantify in the loss-ablation
        bench.
        """
        from repro.core.mei import MEI, MEIConfig
        from repro.nn.trainer import TrainConfig
        from repro.workloads.expfit import ExpFitBenchmark

        bench = ExpFitBenchmark()
        data = bench.dataset(n_train=1500, n_test=300, seed=0)
        cfg = TrainConfig(epochs=10, batch_size=128, learning_rate=0.01, shuffle_seed=0)
        errors = {}
        for weighted in (False, True):
            mei = MEI(MEIConfig(1, 1, 8, msb_weighted=weighted), seed=0)
            mei.train(data.x_train, data.y_train, cfg)
            errors[weighted] = bench.error_normalized(mei.predict(data.x_test), data.y_test)
        assert errors[True] < errors[False]


class TestTable1:
    def test_calibrated_params_reproduce_savings(self):
        from repro.cost.power import savings
        from repro.workloads.registry import BENCHMARK_NAMES, PAPER_TABLE1, make_benchmark

        params = calibrated_params()
        for name in BENCHMARK_NAMES:
            topo = make_benchmark(name).spec.topology
            paper = PAPER_TABLE1[name]
            area = savings(topo, paper.pruned_mei, params["area"]).saved_fraction
            power = savings(topo, paper.pruned_mei, params["power"]).saved_fraction
            assert abs(area - paper.area_saved) < 0.02
            assert abs(power - paper.power_saved) < 0.02

    def test_row_structure_sobel(self):
        row = run_benchmark_row("sobel", TINY, seed=0)
        assert row.name == "sobel"
        assert 0 < row.error_mei < 1
        assert 0 < row.error_adda < 1
        assert row.pruned_topology.in_bits <= 8
        assert 0 < row.area_saved_measured < 1
        assert 0 < row.power_saved_measured < 1

    def test_row_paper_reference_attached(self):
        row = run_benchmark_row("fft", TINY, seed=0)
        assert row.paper.name == "fft"
        assert row.paper.area_saved == pytest.approx(0.7424)


class TestFig4:
    def test_single_benchmark_row(self):
        result = run_fig4(names=("sobel",), scale=TINY, seed=0, max_k=2)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.k_used == 2
        for acc in (row.accuracy_digital, row.accuracy_adda, row.accuracy_mei,
                    row.accuracy_saab):
            assert 0 <= acc <= 1
        assert "SAAB" in result.render()


class TestFig5:
    def test_curve_structure(self):
        result = run_fig5(names=("sobel",), sigmas=(0.0, 0.2), scale=TINY, seed=0, k=2)
        # 4 systems x 2 noise types.
        assert len(result.curves) == 8
        curve = result.curve("sobel", "mei", "pv")
        assert curve.sigmas == [0.0, 0.2]
        assert len(curve.errors) == 2

    def test_error_grows_with_noise(self):
        result = run_fig5(names=("sobel",), sigmas=(0.0, 0.4), scale=TINY, seed=0, k=2)
        curve = result.curve("sobel", "adda", "pv")
        assert curve.errors[1] > curve.errors[0]

    def test_unknown_curve_raises(self):
        result = run_fig5(names=("sobel",), sigmas=(0.0,), scale=TINY, seed=0, k=2)
        with pytest.raises(KeyError):
            result.curve("sobel", "nonexistent", "pv")
