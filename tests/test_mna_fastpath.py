"""The banded Cholesky fast path of the MNA solver.

Contract: the banded factorization is an internal detail — every
solver choice produces the same terminal voltages (to factorization
round-off), and ``solver="auto"`` picks banded only where it wins.
"""

import numpy as np
import pytest

from repro.xbar.mna import BANDED_AUTO_MAX_SHORT_SIDE, MNA_SOLVERS, MNACrossbar

G_S = 1e-3


def _conductances(n, m, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(1e-7, 1e-4, (n, m))


@pytest.mark.parametrize("shape", [(1, 1), (1, 5), (5, 1), (2, 2), (4, 7), (16, 8), (8, 64)])
def test_banded_matches_lu(shape):
    g = _conductances(*shape)
    v = np.random.default_rng(1).uniform(0.0, 1.0, (3, shape[0]))
    lu = MNACrossbar(g, G_S, solver="lu").solve(v)
    banded = MNACrossbar(g, G_S, solver="banded").solve(v)
    # Both factorizations of the same SPD matrix; agreement is limited
    # only by round-off (measured ~1e-12 relative).
    assert np.allclose(banded, lu, rtol=1e-9, atol=1e-15)


def test_solver_used_reports_choice():
    g = _conductances(4, 4)
    assert MNACrossbar(g, G_S, solver="lu").solver_used == "lu"
    assert MNACrossbar(g, G_S, solver="banded").solver_used == "banded"


def test_auto_picks_banded_for_small_crossbars():
    g = _conductances(8, 8)
    xbar = MNACrossbar(g, G_S)  # default solver="auto"
    assert xbar.solver_used == "banded"
    assert xbar.bandwidth is not None and xbar.bandwidth > 0


def test_auto_picks_lu_beyond_threshold():
    side = BANDED_AUTO_MAX_SHORT_SIDE + 1
    g = _conductances(side, side)
    xbar = MNACrossbar(g, G_S, solver="auto")
    assert xbar.solver_used == "lu"


def test_auto_uses_short_side_not_long_side():
    # A tall skinny crossbar has a small bandwidth no matter how many
    # rows it has — banded must still be chosen.
    g = _conductances(BANDED_AUTO_MAX_SHORT_SIDE + 20, 4)
    assert MNACrossbar(g, G_S, solver="auto").solver_used == "banded"


def test_invalid_solver_rejected():
    with pytest.raises(ValueError, match="solver"):
        MNACrossbar(_conductances(2, 2), G_S, solver="qr")


def test_solver_catalogue():
    assert set(MNA_SOLVERS) == {"auto", "lu", "banded"}


def test_bandwidth_bounded_by_short_side():
    for shape in [(3, 9), (9, 3), (6, 6)]:
        xbar = MNACrossbar(_conductances(*shape), G_S, solver="banded")
        assert xbar.bandwidth <= 2 * min(shape) + 1


def test_batch_matches_single_under_banded():
    g = _conductances(5, 6)
    xbar = MNACrossbar(g, G_S, solver="banded")
    v = np.random.default_rng(2).uniform(0.0, 1.0, (4, 5))
    batched = xbar.solve(v)
    singles = np.stack([xbar.solve(row)[0] for row in v])
    assert np.array_equal(batched, singles)


def test_banded_converges_to_ideal_with_low_wire_resistance():
    g = _conductances(6, 4)
    xbar = MNACrossbar(g, G_S, wire_resistance=1e-6, solver="banded")
    v = np.eye(6)[:3]
    assert np.allclose(xbar.solve(v), xbar.ideal_outputs(v), rtol=1e-4)


def test_dead_devices_handled():
    # All-off column exercises the empty-source-chunk guard.
    g = _conductances(4, 3)
    g[:, 1] = 0.0
    lu = MNACrossbar(g, G_S, solver="lu").solve(np.ones(4))
    banded = MNACrossbar(g, G_S, solver="banded").solve(np.ones(4))
    assert np.allclose(banded, lu, rtol=1e-9, atol=1e-15)


def test_single_column_all_dead():
    g = np.zeros((3, 1))
    out = MNACrossbar(g, G_S, solver="banded").solve(np.ones(3))
    assert np.allclose(out, 0.0)


def test_banded_counts_factorizations():
    from repro.obs import metrics as obs_metrics

    before = obs_metrics.counter("mna_banded_factorizations").value
    MNACrossbar(_conductances(3, 3), G_S, solver="banded")
    assert obs_metrics.counter("mna_banded_factorizations").value == before + 1
