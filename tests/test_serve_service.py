"""HTTP front of the serving layer: routes, errors, metrics exposure.

Differential bit-identity over HTTP is covered in
``tests/test_serve_differential.py``; this file owns the protocol
surface — payload validation to 400s, the health/model routes and the
OpenMetrics exposition of the ``serve_*`` families.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.mei import MEI, MEIConfig
from repro.nn.trainer import TrainConfig
from repro.obs import openmetrics
from repro.serve import BackgroundServer, load_artifact, save_artifact

TINY = MEIConfig(in_groups=2, out_groups=1, hidden=6, bits=4)


@pytest.fixture(scope="module")
def model(tmp_path_factory):
    rng = np.random.default_rng(0)
    mei = MEI(TINY, seed=0).train(
        rng.uniform(0.0, 1.0, (32, TINY.in_groups)),
        rng.uniform(0.0, 1.0, (32, TINY.out_groups)),
        TrainConfig(epochs=3, batch_size=16, learning_rate=0.02, shuffle_seed=0),
    )
    path = tmp_path_factory.mktemp("serve") / "model.npz"
    save_artifact(mei, path, benchmark="fft")
    return load_artifact(path)


@pytest.fixture
def server(model):
    with BackgroundServer(model, port=0) as running:
        yield running


def _request(url, method="GET", payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestPredictRoute:
    def test_predict_matches_in_process_engine(self, server):
        probe = np.random.default_rng(1).uniform(0.0, 1.0, (3, TINY.in_groups))
        status, body = _request(server.url + "/v1/predict", "POST",
                                {"inputs": probe.tolist()})
        assert status == 200
        payload = json.loads(body)
        assert payload["samples"] == 3
        expected = server.service.engine.predict(probe)
        assert np.array_equal(np.asarray(payload["outputs"]), expected)

    def test_flat_sample_is_one_request(self, server):
        status, body = _request(server.url + "/v1/predict", "POST",
                                {"inputs": [0.25, 0.75]})
        assert status == 200
        assert json.loads(body)["samples"] == 1

    @pytest.mark.parametrize("payload", [
        {"inputs": "garbage"},
        {"inputs": [[0.1, 0.2, 0.3]]},     # wrong width
        {"inputs": [[0.1, 2.5]]},          # outside the unit interval
        {"inputs": [[0.1, float("nan")]]},
        {"wrong_key": [[0.1, 0.2]]},
    ])
    def test_malformed_payload_is_400(self, server, payload):
        body = json.loads(json.dumps(payload))  # NaN -> "NaN" survives dumps
        status, raw = _request(server.url + "/v1/predict", "POST", body)
        assert status == 400
        assert "error" in json.loads(raw)

    def test_non_json_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/predict", data=b"not json {", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400


class TestOtherRoutes:
    def test_healthz(self, server):
        status, body = _request(server.url + "/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok", "system": "mei"}

    def test_model_summary(self, server):
        status, body = _request(server.url + "/model")
        assert status == 200
        summary = json.loads(body)
        assert summary["system"] == "mei"
        assert summary["benchmark"] == "fft"
        assert summary["interface"] == {"B_I": TINY.bits, "B_O": TINY.bits,
                                        "B_N": TINY.bits}
        assert summary["members"] == 1
        assert summary["digest"]

    def test_unknown_route_is_404(self, server):
        status, _ = _request(server.url + "/nope")
        assert status == 404

    def test_metrics_exposition_carries_serve_families(self, server):
        probe = [[0.5, 0.5]]
        assert _request(server.url + "/v1/predict", "POST",
                        {"inputs": probe})[0] == 200
        status, body = _request(server.url + "/metrics")
        assert status == 200
        text = body.decode()
        openmetrics.validate(text)
        for family in ("serve_requests", "serve_responses", "serve_batches",
                       "serve_queue_depth", "serve_batch_size",
                       "serve_request_latency_seconds"):
            assert family in text
