"""Tests for the runtime sanitizer (``repro.sanitize``).

Two obligations, mirroring the CI legs:

* a clean pipeline run under ``REPRO_SANITIZE=1`` produces **zero**
  findings (the guards must not cry wolf on healthy numerics);
* every guard demonstrably fires on an injected fault — NaN training
  data, out-of-window conductances, a mutated SHM segment, a generator
  shared across worker threads.
"""

import threading

import numpy as np
import pytest

import repro.sanitize as sanitize
from repro.core.deploy import AnalogMLP
from repro.nn.network import MLP
from repro.nn.trainer import TrainConfig, Trainer
from repro.obs import metrics as obs_metrics
from repro.parallel.seeding import ensure_rng
from repro.sanitize import guards, rng as sanitize_rng
from repro.xbar.mapping import DifferentialCrossbar, clear_mapping_cache


@pytest.fixture(autouse=True)
def clean_sanitizer():
    """Arm the sanitizer for each test and restore knob-driven state after."""
    sanitize.reset()
    sanitize.set_enabled(True)
    yield
    sanitize.reset()


def kinds():
    return [f.kind for f in sanitize.findings()]


def stages():
    return [f.stage for f in sanitize.findings()]


class TestSwitch:
    def test_disabled_guards_are_silent(self):
        sanitize.set_enabled(False)
        assert guards.check_finite("t", "x", np.array([np.nan]))
        assert guards.check_range("t", "x", np.array([10.0]), 0.0, 1.0)
        assert sanitize_rng.note_rng(np.random.default_rng(0))
        assert sanitize.findings() == []

    def test_enabled_resolves_from_knob(self, monkeypatch):
        monkeypatch.setenv(sanitize.SANITIZE_ENV, "1")
        sanitize.set_enabled(None)
        assert sanitize.enabled()
        monkeypatch.setenv(sanitize.SANITIZE_ENV, "0")
        sanitize.set_enabled(None)
        assert not sanitize.enabled()

    def test_record_increments_metric_and_caps_list(self):
        before = obs_metrics.snapshot()["counters"].get("sanitize_findings", 0.0)
        sanitize.record("t", "non-finite", "injected")
        after = obs_metrics.snapshot()["counters"]["sanitize_findings"]
        assert after == before + 1
        assert sanitize.findings()[-1].format() == "[t] non-finite: injected"


class TestGuards:
    def test_check_finite_clean_and_dirty(self):
        assert guards.check_finite("t", "x", np.ones(4))
        assert sanitize.findings() == []
        assert not guards.check_finite("t", "x", np.array([1.0, np.nan, np.inf]))
        (finding,) = sanitize.findings()
        assert finding.kind == "non-finite"
        assert "2/3" in finding.detail

    def test_check_finite_ignores_non_numeric(self):
        assert guards.check_finite("t", "x", np.array(["a", "b"]))
        assert sanitize.findings() == []

    def test_check_range_flags_excursions_with_edge_slack(self):
        window = np.array([1e-6, 1e-4])
        assert guards.check_range("t", "g", window * (1 + 1e-12), 1e-6, 1e-4)
        assert not guards.check_range("t", "g", np.array([2e-4]), 1e-6, 1e-4)
        (finding,) = sanitize.findings()
        assert finding.kind == "range"

    def test_watch_verify_buffer_detects_mutation(self):
        data = np.arange(8.0)
        guards.watch_buffer("t", "buf", data)
        assert guards.verify_buffer("t", "buf", data)
        data[3] = -1.0
        assert not guards.verify_buffer("t", "buf", data)
        assert kinds() == ["shm-mutated"]

    def test_verify_unwatched_buffer_is_silent(self):
        assert guards.verify_buffer("t", "never-watched", np.ones(2))
        assert sanitize.findings() == []


class TestRngRaceDetector:
    def test_two_worker_threads_sharing_one_generator_fire(self):
        shared = np.random.default_rng(0)

        def use():
            ensure_rng(shared, "test")

        for t in [threading.Thread(target=use), threading.Thread(target=use)]:
            t.start()
            t.join()
        assert kinds() == ["rng-shared"]
        # reported once per generator, not once per use
        threading.Thread(target=use).start()
        assert kinds() == ["rng-shared"]

    def test_main_to_worker_handoff_is_allowed(self):
        shared = np.random.default_rng(0)
        ensure_rng(shared, "main-side")
        worker = threading.Thread(target=lambda: ensure_rng(shared, "worker-side"))
        worker.start()
        worker.join()
        assert sanitize.findings() == []

    def test_scan_items_flags_generator_in_two_payloads(self):
        shared = np.random.default_rng(0)
        items = [(0, shared), (1, shared), (2, np.random.default_rng(1))]
        assert not sanitize_rng.scan_items("thread-executor", items)
        (finding,) = sanitize.findings()
        assert finding.kind == "rng-shared"
        assert "2 of 3" in finding.detail

    def test_scan_items_accepts_disjoint_generators(self):
        items = [np.random.default_rng(s) for s in range(3)]
        assert sanitize_rng.scan_items("thread-executor", items)
        assert sanitize.findings() == []


class TestInjectedFaults:
    def test_nan_training_data_trips_the_trainer_guard(self):
        x = np.full((16, 3), np.nan)
        y = np.zeros((16, 1))
        Trainer(config=TrainConfig(epochs=1, batch_size=8, shuffle_seed=0)).fit(
            MLP((3, 4, 1), rng=0), x, y
        )
        assert "trainer" in stages()
        assert "non-finite" in kinds()

    def test_out_of_window_conductances_trip_the_crossbar_guard(self):
        clear_mapping_cache()
        pair = DifferentialCrossbar(np.full((3, 2), 0.5))
        # discretize() clipped at construction; simulate post-program
        # drift (what a fault campaign or a bug would produce)
        pair.positive.conductances[0, 0] = pair.device.g_max * 10
        pair.apply(np.ones(3))
        assert "crossbar" in stages()
        assert "range" in kinds()

    def test_shm_segment_mutation_is_detected_at_close(self):
        shm = pytest.importorskip("repro.parallel.shm")
        session = shm.ShmSession()
        ref = session.share(np.arange(16384.0))
        view = np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=session._segments[0].buf
        )
        view[0] = -1.0
        session.close()
        assert kinds() == ["shm-mutated"]
        assert stages() == ["shm"]


class TestCleanPipeline:
    def test_quick_deploy_and_forward_is_finding_free(self, rng):
        clear_mapping_cache()
        net = MLP((4, 6, 2), rng=0)
        x = rng.uniform(0, 1, (32, 4))
        y = rng.uniform(0, 1, (32, 2))
        Trainer(config=TrainConfig(epochs=3, batch_size=8, shuffle_seed=0)).fit(
            net, x, y
        )
        deployed = AnalogMLP(net)
        out = deployed.forward(x)
        assert np.all(np.isfinite(out))
        assert sanitize.findings() == [], [f.format() for f in sanitize.findings()]
