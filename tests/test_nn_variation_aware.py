"""Tests for variation-aware (noise-injection) training."""

import numpy as np
import pytest

from repro.core.mei import MEI, MEIConfig
from repro.device.variation import NonIdealFactors
from repro.nn.network import MLP
from repro.nn.trainer import TrainConfig, Trainer


class TestWeightNoiseConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(weight_noise_sigma=-0.1)

    def test_zero_sigma_matches_plain_training(self, rng):
        x = rng.uniform(0, 1, (200, 2))
        y = 0.3 + 0.4 * x[:, :1]
        cfg = TrainConfig(epochs=20, batch_size=32, shuffle_seed=0)
        cfg_noisy = TrainConfig(epochs=20, batch_size=32, shuffle_seed=0,
                                weight_noise_sigma=0.0)
        a = MLP((2, 4, 1), rng=0)
        b = MLP((2, 4, 1), rng=0)
        Trainer(config=cfg).fit(a, x, y)
        Trainer(config=cfg_noisy).fit(b, x, y)
        assert np.allclose(a.predict(x), b.predict(x))


class TestVariationAwareTraining:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 1, (800, 2))
        y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
        return x, y

    def test_still_converges(self, data):
        x, y = data
        net = MLP((2, 8, 1), rng=0)
        cfg = TrainConfig(epochs=100, batch_size=32, shuffle_seed=0,
                          weight_noise_sigma=0.05)
        result = Trainer(config=cfg).fit(net, x, y)
        assert result.final_train_loss < 0.01

    def test_weights_not_left_perturbed(self, data):
        """After fit() the stored weights are the clean (updated) ones:
        two identical runs must produce identical weights."""
        x, y = data
        cfg = TrainConfig(epochs=5, batch_size=64, shuffle_seed=0,
                          weight_noise_sigma=0.2)
        a = MLP((2, 4, 1), rng=0)
        b = MLP((2, 4, 1), rng=0)
        Trainer(config=cfg).fit(a, x, y)
        Trainer(config=cfg).fit(b, x, y)
        for la, lb in zip(a.layers, b.layers):
            assert np.array_equal(la.weights, lb.weights)

    def test_improves_pv_robustness_of_deployed_mei(self, data):
        """The point of the feature: smaller accuracy loss under PV."""
        x, y = data
        noise = NonIdealFactors(sigma_pv=0.25, seed=7)

        def degradation(weight_noise):
            cfg = TrainConfig(epochs=120, batch_size=32, shuffle_seed=0,
                              weight_noise_sigma=weight_noise)
            mei = MEI(MEIConfig(2, 1, 16), seed=0).train(x, y, cfg)
            clean = np.mean(np.abs(mei.predict(x) - y))
            noisy = np.mean([
                np.mean(np.abs(mei.predict(x, noise, t) - y)) for t in range(5)
            ])
            return clean, noisy - clean

        clean_plain, deg_plain = degradation(0.0)
        clean_vat, deg_vat = degradation(0.15)
        # Variation-aware training may cost a little clean accuracy but
        # must not degrade more under PV than plain training.
        assert deg_vat <= deg_plain + 0.005
        assert clean_vat < 0.1
