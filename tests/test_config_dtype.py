"""The ``REPRO_DTYPE`` knob: resolution, caching, and data-path effect."""

import numpy as np
import pytest

from repro.config import dtype as cfg_dtype
from repro.nn import MLP, TrainConfig, Trainer


@pytest.fixture(autouse=True)
def _reset_dtype(monkeypatch):
    """Every test starts from an unset knob and a cold cache."""
    monkeypatch.delenv("REPRO_DTYPE", raising=False)
    cfg_dtype.set_active_dtype(None)
    yield
    cfg_dtype.set_active_dtype(None)


class TestResolution:
    def test_default_is_float64(self):
        assert cfg_dtype.active_dtype() == np.float64
        assert cfg_dtype.astype([1, 2]).dtype == np.float64

    def test_knob_selects_float32(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPE", "float32")
        cfg_dtype.set_active_dtype(None)
        assert cfg_dtype.active_dtype() == np.float32
        assert cfg_dtype.astype([1.5]).dtype == np.float32

    def test_unknown_name_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPE", "float16")
        with pytest.raises(ValueError):
            cfg_dtype.resolve_dtype()

    def test_active_dtype_is_cached_until_reset(self, monkeypatch):
        assert cfg_dtype.active_dtype() == np.float64
        monkeypatch.setenv("REPRO_DTYPE", "float32")
        # Still cached: the data path must not flip dtype mid-run.
        assert cfg_dtype.active_dtype() == np.float64
        cfg_dtype.set_active_dtype(None)
        assert cfg_dtype.active_dtype() == np.float32

    def test_explicit_set_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPE", "float32")
        cfg_dtype.set_active_dtype("float64")
        assert cfg_dtype.active_dtype() == np.float64

    def test_astype_passthrough_preserves_buffer(self):
        x = np.arange(4, dtype=np.float64)
        assert cfg_dtype.astype(x) is x


def _train(seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, (64, 3))
    y = np.hstack([x.sum(axis=1, keepdims=True), x[:, :1] ** 2])
    model = MLP((3, 8, 2), rng=1)
    result = Trainer(config=TrainConfig(epochs=8, batch_size=16, shuffle_seed=2)).fit(
        model, x, y
    )
    return model, result


class TestDataPath:
    def test_float32_threads_through_training(self):
        cfg_dtype.set_active_dtype("float32")
        model, _ = _train()
        for layer in model.layers:
            assert layer.weights.dtype == np.float32
            assert layer.bias.dtype == np.float32
        assert model.forward(np.zeros((2, 3))).dtype == np.float32

    def test_float32_tracks_float64_within_tolerance(self):
        cfg_dtype.set_active_dtype("float64")
        model64, res64 = _train()
        cfg_dtype.set_active_dtype("float32")
        model32, res32 = _train()
        pred64 = model64.forward(np.linspace(-1, 1, 12).reshape(4, 3))
        pred32 = model32.forward(np.linspace(-1, 1, 12).reshape(4, 3))
        # Documented contract: float32 is a memory/bandwidth trade at
        # ~1e-6 relative accuracy; a short training run stays well
        # within a loose bound.
        assert np.allclose(pred32, pred64, rtol=1e-3, atol=1e-4)
        assert res32.train_losses[-1] == pytest.approx(res64.train_losses[-1], rel=1e-3)
