"""Edge-case tests: boundary conditions users will eventually hit."""

import numpy as np

from repro.core.mei import MEI, MEIConfig
from repro.core.rcs import TraditionalRCS
from repro.cost.area import Topology
from repro.nn.network import MLP
from repro.nn.trainer import TrainConfig, Trainer
from repro.quant.fixedpoint import FixedPointCodec

FAST = TrainConfig(epochs=15, batch_size=16, learning_rate=0.02, shuffle_seed=0)


class TestSingleBitInterface:
    """B = 1: the minimal interface (one comparator per value)."""

    def test_mei_one_bit_trains(self, rng):
        x = rng.uniform(0, 1, (200, 2))
        y = (x[:, :1] > 0.5).astype(float) * 0.9 + 0.05
        mei = MEI(MEIConfig(2, 1, 8, bits=1), seed=0).train(x, y, FAST)
        pred = mei.predict(x)
        assert set(np.unique(pred)) <= {0.0, 0.5}

    def test_codec_one_bit(self):
        codec = FixedPointCodec(1)
        bits = codec.encode(np.array([[0.3, 0.7]]))
        assert np.array_equal(bits, [[0.0, 1.0]])
        assert np.array_equal(codec.decode(bits), [[0.0, 0.5]])


class TestSingleSampleBatches:
    def test_mei_predicts_single_row(self, rng):
        x = rng.uniform(0, 1, (100, 2))
        y = 0.3 + 0.4 * x[:, :1]
        mei = MEI(MEIConfig(2, 1, 8), seed=0).train(x, y, FAST)
        pred = mei.predict(x[:1])
        assert pred.shape == (1, 1)

    def test_rcs_predicts_single_row(self, rng):
        x = rng.uniform(0, 1, (100, 2))
        y = 0.3 + 0.4 * x[:, :1]
        rcs = TraditionalRCS(Topology(2, 4, 1), seed=0).train(x, y, FAST)
        assert rcs.predict(x[:1]).shape == (1, 1)

    def test_trainer_batch_larger_than_data(self, rng):
        x = rng.uniform(0, 1, (10, 1))
        y = 0.5 * x
        net = MLP((1, 4, 1), rng=0)
        cfg = TrainConfig(epochs=5, batch_size=64, shuffle_seed=0)
        result = Trainer(config=cfg).fit(net, x, y)
        assert result.epochs_run == 5


class TestMinimalTopologies:
    def test_one_by_one_by_one(self, rng):
        x = rng.uniform(0, 1, (100, 1))
        y = 0.2 + 0.6 * x
        rcs = TraditionalRCS(Topology(1, 1, 1), seed=0).train(x, y, FAST)
        assert rcs.predict(x[:5]).shape == (5, 1)

    def test_mei_single_group_single_hidden(self, rng):
        x = rng.uniform(0, 1, (100, 1))
        y = 0.2 + 0.6 * x
        mei = MEI(MEIConfig(1, 1, 1), seed=0).train(x, y, FAST)
        assert mei.predict(x[:5]).shape == (5, 1)


class TestExtremeValues:
    def test_mei_handles_boundary_inputs(self, rng):
        x = rng.uniform(0, 1, (100, 2))
        y = 0.3 + 0.4 * x[:, :1]
        mei = MEI(MEIConfig(2, 1, 8), seed=0).train(x, y, FAST)
        boundary = np.array([[0.0, 0.0], [0.999, 0.999], [0.0, 0.999]])
        pred = mei.predict(boundary)
        assert np.all(np.isfinite(pred))

    def test_rcs_clips_out_of_range_inputs(self, rng):
        x = rng.uniform(0, 1, (100, 2))
        y = 0.3 + 0.4 * x[:, :1]
        rcs = TraditionalRCS(Topology(2, 4, 1), seed=0).train(x, y, FAST)
        wild = np.array([[-5.0, 10.0]])
        pred = rcs.predict(wild)
        assert np.all(np.isfinite(pred))
        assert np.all((pred >= 0) & (pred < 1))

    def test_constant_targets_learnable(self, rng):
        x = rng.uniform(0, 1, (100, 2))
        y = np.full((100, 1), 0.4)
        net = MLP((2, 4, 1), rng=0)
        Trainer(config=TrainConfig(epochs=60, batch_size=32, shuffle_seed=0)).fit(net, x, y)
        assert np.allclose(net.predict(x), 0.4, atol=0.05)


class TestCodecWideWords:
    def test_sixteen_bit_roundtrip(self, rng):
        codec = FixedPointCodec(16)
        values = rng.uniform(0, 1, (20, 2))
        decoded = codec.decode(codec.encode(values))
        assert np.all(np.abs(decoded - values) < 2.0**-16)

    def test_thirty_two_bit_limit(self):
        codec = FixedPointCodec(32)
        assert codec.resolution == 2.0**-32
        bits = codec.encode(np.array([[0.5]]))
        assert bits.shape == (1, 32)
