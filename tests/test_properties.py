"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cost.area import MEITopology, Topology, cost_mei, cost_traditional
from repro.cost.params import CostParams
from repro.metrics.robustness import robustness_index
from repro.quant.binarray import harden, msb_match, msb_weights
from repro.quant.fixedpoint import FixedPointCodec, quantize_unit
from repro.xbar.crossbar import coefficients_from_conductance
from repro.xbar.mapping import DifferentialCrossbar

unit_values = st.floats(min_value=0.0, max_value=0.999999, allow_nan=False)


class TestCodecProperties:
    @given(bits=st.integers(1, 16), value=unit_values)
    def test_roundtrip_error_below_lsb(self, bits, value):
        codec = FixedPointCodec(bits)
        decoded = codec.decode(codec.encode(np.array([[value]])))
        assert abs(decoded[0, 0] - value) < codec.resolution

    @given(bits=st.integers(1, 12), value=unit_values)
    def test_decode_never_exceeds_input(self, bits, value):
        """Truncating quantization always rounds toward zero."""
        codec = FixedPointCodec(bits)
        decoded = codec.decode(codec.encode(np.array([[value]])))
        assert decoded[0, 0] <= value + 1e-12

    @given(
        bits=st.integers(1, 10),
        values=arrays(float, (3, 2), elements=unit_values),
    )
    def test_quantize_idempotent(self, bits, values):
        q = quantize_unit(values, bits)
        assert np.array_equal(quantize_unit(q, bits), q)

    @given(bits=st.integers(1, 10), a=unit_values, b=unit_values)
    def test_encoding_preserves_order(self, bits, a, b):
        """Monotone: a <= b implies decode(enc(a)) <= decode(enc(b))."""
        codec = FixedPointCodec(bits)
        da = codec.decode(codec.encode(np.array([[a]])))[0, 0]
        db = codec.decode(codec.encode(np.array([[b]])))[0, 0]
        if a <= b:
            assert da <= db
        else:
            assert da >= db


class TestBitArrayProperties:
    @given(bits=st.integers(1, 12), groups=st.integers(1, 5), decay=st.floats(1.0, 4.0))
    def test_msb_weights_monotone_within_group(self, bits, groups, decay):
        w = msb_weights(bits, groups, decay)
        per_group = w.reshape(groups, bits)
        assert np.all(np.diff(per_group, axis=1) <= 1e-15)
        assert np.all(per_group[:, 0] == 1.0)

    @given(arrays(float, (4, 8), elements=st.floats(0, 1)))
    def test_harden_idempotent(self, soft):
        hard = harden(soft)
        assert np.array_equal(harden(hard), hard)

    @given(
        arrays(float, (3, 8), elements=st.sampled_from([0.0, 1.0])),
        st.integers(1, 8),
    )
    def test_msb_match_reflexive(self, bits_arr, compare):
        assert np.all(msb_match(bits_arr, bits_arr, bits=8, compare_bits=compare))

    @given(
        a=arrays(float, (3, 8), elements=st.sampled_from([0.0, 1.0])),
        b=arrays(float, (3, 8), elements=st.sampled_from([0.0, 1.0])),
    )
    def test_msb_match_monotone_in_compare_bits(self, a, b):
        """Matching on more bits can only fail more often."""
        previous = np.ones(3, dtype=bool)
        for compare in range(1, 9):
            current = msb_match(a, b, bits=8, compare_bits=compare)
            assert np.all(current <= previous)
            previous = current


class TestCrossbarProperties:
    conductances = arrays(
        float, (6, 4), elements=st.floats(1e-7, 1e-4, allow_nan=False)
    )

    @given(conductances)
    def test_coefficients_are_contractive(self, g):
        """Column coefficient sums are strictly below one (passivity)."""
        c = coefficients_from_conductance(g, g_s=1e-3)
        assert np.all(c >= 0)
        assert np.all(c.sum(axis=0) < 1.0)

    @given(
        weights=arrays(float, (5, 3), elements=st.floats(-2, 2, allow_nan=False)),
        x=arrays(float, (2, 5), elements=st.floats(0, 1, allow_nan=False)),
    )
    @settings(max_examples=25, deadline=None)
    def test_differential_mapping_exact(self, weights, x):
        pair = DifferentialCrossbar(weights)
        ideal = x @ weights
        scale = max(float(np.max(np.abs(ideal))), 1.0)
        assert np.max(np.abs(pair.apply(x) - ideal)) / scale < 1e-9

    @given(
        weights=arrays(float, (4, 2), elements=st.floats(-1, 1, allow_nan=False)),
        x=arrays(float, (1, 4), elements=st.floats(0, 1, allow_nan=False)),
        scale=st.floats(0.1, 2.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_crossbar_linearity(self, weights, x, scale):
        """The analog matrix product is linear in the input."""
        pair = DifferentialCrossbar(weights)
        assert np.allclose(pair.apply(x * scale), pair.apply(x) * scale, atol=1e-9)


class TestCostProperties:
    topologies = st.builds(
        Topology,
        inputs=st.integers(1, 64),
        hidden=st.integers(1, 64),
        outputs=st.integers(1, 64),
        bits=st.integers(1, 12),
    )
    params = st.builds(
        CostParams,
        dac=st.floats(0, 1e4),
        adc=st.floats(0, 1e4),
        periphery=st.floats(0, 1e3),
        rram=st.floats(0.01, 10),
    )

    @given(topology=topologies, params=params)
    def test_traditional_cost_positive(self, topology, params):
        assert cost_traditional(topology, params) > 0

    @given(topology=topologies, params=params)
    def test_unpruned_mei_cost_formula(self, topology, params):
        """Eq. 7 with B folded into ports equals the explicit B form."""
        mei = MEITopology.from_analog(topology)
        explicit = (
            mei.hidden * params.periphery
            + topology.bits * 2 * (topology.inputs + topology.outputs)
            * mei.hidden * params.rram
        )
        assert np.isclose(cost_mei(mei, params), explicit)

    @given(topology=topologies, params=params, keep=st.integers(1, 8))
    def test_pruning_never_increases_cost(self, topology, params, keep):
        full = MEITopology.from_analog(topology)
        keep = min(keep, topology.bits)
        pruned = MEITopology(
            in_ports=topology.inputs * keep,
            hidden=topology.hidden,
            out_ports=topology.outputs * keep,
            in_groups=topology.inputs,
            out_groups=topology.outputs,
        )
        assert cost_mei(pruned, params) <= cost_mei(full, params)


class TestRobustnessProperties:
    @given(clean=st.floats(0, 10), noisy=st.floats(0, 10))
    def test_index_in_unit_interval(self, clean, noisy):
        gamma = robustness_index(clean, noisy)
        assert 0.0 <= gamma <= 1.0

    @given(error=st.floats(1e-6, 10))
    def test_no_degradation_is_fully_robust(self, error):
        assert robustness_index(error, error) == 1.0

    @given(clean=st.floats(0.01, 1), factor=st.floats(1.0, 100.0))
    def test_more_degradation_less_robust(self, clean, factor):
        worse = robustness_index(clean, clean * factor * 2)
        better = robustness_index(clean, clean * factor)
        assert worse <= better
