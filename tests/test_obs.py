"""Tests for the observability layer (``repro.obs``).

Covers span nesting/ordering, JSONL log schema round-trips, metrics
accounting (including cross-process merge through the
``ProcessExecutor``), run manifests, the CLI wiring, and the
disabled-path overhead bound.
"""

import json
import logging
import sys
import time

import numpy as np
import pytest

from repro.__main__ import main
from repro.experiments.runner import ExperimentScale
from repro.experiments.table1 import run_benchmark_row
from repro.nn.network import MLP
from repro.nn.trainer import TrainConfig, Trainer
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import runinfo
from repro.obs import trace as obs_trace
from repro.obs.trace import span
from repro.parallel import ProcessExecutor

TINY = ExperimentScale(name="tiny", n_train=300, n_test=80, epochs=15, noise_trials=2)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Isolate the process-wide trace/metrics state per test."""
    was_enabled = obs_trace.enabled()
    obs_trace.clear()
    obs_metrics.clear()
    yield
    obs_trace.enable(was_enabled)
    obs_trace.clear()
    obs_metrics.clear()


def _tiny_data(n=40, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, (n, 2))
    y = 0.3 + 0.4 * x[:, :1]
    return x, y


class TestSpans:
    def test_disabled_by_default_returns_noop(self):
        assert not obs_trace.enabled()
        with span("anything", k=1) as sp:
            sp.set(more=2)
        assert obs_trace.get_records() == []

    def test_nesting_records_slash_paths(self):
        obs_trace.enable(True)
        with span("outer", a=1):
            with span("inner"):
                pass
            with span("inner"):
                pass
        paths = [r.path for r in obs_trace.get_records()]
        # Children close before the parent (completion order).
        assert paths == ["outer/inner", "outer/inner", "outer"]

    def test_attrs_and_error_capture(self):
        obs_trace.enable(True)
        with pytest.raises(ValueError):
            with span("work", stage="demo") as sp:
                sp.set(progress=0.5)
                raise ValueError("boom")
        (record,) = obs_trace.get_records()
        assert record.attrs["stage"] == "demo"
        assert record.attrs["progress"] == 0.5
        assert record.attrs["error"] == "ValueError"
        assert record.duration >= 0.0

    def test_span_tree_merges_siblings(self):
        obs_trace.enable(True)
        with span("sweep"):
            for _ in range(3):
                with span("round"):
                    pass
        tree = obs_trace.span_tree()
        sweep = tree["children"][0]
        assert sweep["name"] == "sweep"
        assert sweep["children"][0]["name"] == "round"
        assert sweep["children"][0]["count"] == 3
        rendered = obs_trace.render_tree()
        assert "round x3" in rendered

    def test_set_context_seeds_nesting(self):
        obs_trace.enable(True)
        obs_trace.set_context("parent/child")
        try:
            with span("leaf"):
                pass
        finally:
            obs_trace.set_context("")
        (record,) = obs_trace.get_records()
        assert record.path == "parent/child/leaf"

    def test_records_round_trip_to_dict(self):
        obs_trace.enable(True)
        with span("x", n=3):
            pass
        d = obs_trace.get_records()[0].to_dict()
        # JSON-safe and self-describing.
        parsed = json.loads(json.dumps(d))
        assert parsed["name"] == "x"
        assert parsed["attrs"] == {"n": 3}
        assert parsed["pid"] > 0


class TestRenderTree:
    """Output formatting of ``render_tree`` (sibling merge, totals)."""

    def _record(self, path, duration, seq):
        return obs_trace.SpanRecord(
            name=path.rsplit("/", 1)[-1],
            path=path,
            start=float(seq),
            duration=duration,
            seq=seq,
        )

    def test_empty_tree_renders_empty_string(self):
        assert obs_trace.render_tree(obs_trace.span_tree([])) == ""

    def test_sibling_merge_accumulates_count_and_seconds(self):
        records = [
            self._record("bench", 0.5, 0),
            self._record("bench/round", 1.0, 1),
            self._record("bench/round", 2.0, 2),
            self._record("bench/round", 3.0, 3),
        ]
        tree = obs_trace.span_tree(records)
        bench = tree["children"][0]
        merged = bench["children"][0]
        assert merged["count"] == 3
        assert merged["total_seconds"] == pytest.approx(6.0)
        rendered = obs_trace.render_tree(tree)
        lines = rendered.splitlines()
        assert lines[0] == "bench  0.500s"
        assert lines[1] == "  round x3  6.000s"

    def test_singletons_omit_count_suffix(self):
        records = [self._record("solo", 0.25, 0)]
        rendered = obs_trace.render_tree(obs_trace.span_tree(records))
        assert rendered == "solo  0.250s"
        assert "x1" not in rendered

    def test_nesting_indents_by_depth(self):
        records = [
            self._record("a", 0.1, 0),
            self._record("a/b", 0.1, 1),
            self._record("a/b/c", 0.1, 2),
        ]
        rendered = obs_trace.render_tree(obs_trace.span_tree(records))
        lines = rendered.splitlines()
        assert lines[0].startswith("a")
        assert lines[1].startswith("  b")
        assert lines[2].startswith("    c")

    def test_custom_indent_string(self):
        records = [self._record("a", 0.1, 0), self._record("a/b", 0.2, 1)]
        rendered = obs_trace.render_tree(obs_trace.span_tree(records), indent="....")
        assert "....b  0.200s" in rendered

    def test_seconds_rounded_to_three_decimals(self):
        records = [self._record("x", 1.23456789, 0)]
        assert obs_trace.render_tree(obs_trace.span_tree(records)) == "x  1.235s"


class TestLogging:
    def test_get_logger_names_under_repro(self):
        assert obs_log.get_logger("nn.trainer").name == "repro.nn.trainer"
        assert obs_log.get_logger("repro.cli").name == "repro.cli"

    def test_jsonl_sink_round_trips_fields(self, tmp_path):
        sink = tmp_path / "log.jsonl"
        obs_log.configure(level=logging.DEBUG, json_path=str(sink), force=True)
        try:
            log = obs_log.get_logger("test.jsonl")
            log.info("hello", extra={"fields": {"epoch": 3, "loss": 0.25}})
        finally:
            obs_log.configure(force=True)  # restore env-driven defaults
        lines = sink.read_text().strip().splitlines()
        payload = json.loads(lines[-1])
        assert payload["message"] == "hello"
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.test.jsonl"
        assert payload["fields"] == {"epoch": 3, "loss": 0.25}
        assert isinstance(payload["ts"], float)
        assert payload["pid"] > 0

    def test_diagnostics_go_to_stderr_not_stdout(self, capsys):
        obs_log.configure(level=logging.INFO, stream=sys.stderr, force=True)
        try:
            obs_log.get_logger("test.stderr").info("to stderr")
        finally:
            obs_log.configure(force=True)
        captured = capsys.readouterr()
        assert "to stderr" in captured.err
        assert captured.out == ""


class TestMetrics:
    def test_counter_gauge_histogram(self):
        obs_metrics.counter("c").inc()
        obs_metrics.counter("c").inc(4)
        obs_metrics.gauge("g").set(0.5)
        obs_metrics.histogram("h").observe_many([1.0, 3.0])
        snap = obs_metrics.snapshot()
        assert snap["counters"]["c"] == 5.0
        assert snap["gauges"]["g"] == 0.5
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["mean"] == 2.0

    def test_counters_reject_negative(self):
        with pytest.raises(ValueError):
            obs_metrics.counter("c").inc(-1)

    def test_diff_and_merge_round_trip(self):
        obs_metrics.counter("c").inc(2)
        obs_metrics.histogram("h").observe(1.0)
        before = obs_metrics.snapshot()
        obs_metrics.counter("c").inc(3)
        obs_metrics.histogram("h").observe(5.0)
        delta = obs_metrics.diff(before, obs_metrics.snapshot())
        assert delta["counters"] == {"c": 3.0}
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["sum"] == 5.0
        registry = obs_metrics.MetricsRegistry()
        registry.merge(delta)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 3.0
        assert snap["histograms"]["h"]["count"] == 1


def _worker_task(item):
    """Module-level (picklable) task: produces a span and a counter."""
    with span(f"task:{item}", item=item):
        obs_metrics.counter("worker_widgets").inc(10)
    return item * 2


class TestCrossProcessMerge:
    def test_process_executor_ships_spans_and_metrics_home(self):
        obs_trace.enable(True)
        results = ProcessExecutor(2).map(_worker_task, [1, 2, 3])
        assert results == [2, 4, 6]
        records = obs_trace.get_records()
        paths = sorted(r.path for r in records)
        # Worker spans nest under the sweep's parallel_map span.
        assert "parallel_map/task:1" in paths
        assert "parallel_map/task:2" in paths
        assert "parallel_map/task:3" in paths
        assert "parallel_map" in paths
        snap = obs_metrics.snapshot()
        assert snap["counters"]["worker_widgets"] == 30.0
        assert snap["counters"]["executor_tasks"] == 3.0
        assert snap["histograms"]["executor_task_seconds"]["count"] == 3
        assert snap["histograms"]["executor_queue_wait_seconds"]["count"] == 3
        assert 0.0 <= snap["gauges"]["executor_utilization"]

    def test_executor_metrics_flow_without_tracing(self):
        assert not obs_trace.enabled()
        results = ProcessExecutor(2).map(_worker_task, [4, 5])
        assert results == [8, 10]
        assert obs_trace.get_records() == []
        snap = obs_metrics.snapshot()
        assert snap["counters"]["worker_widgets"] == 20.0


class TestTrainerTiming:
    def test_epoch_seconds_and_total(self):
        x, y = _tiny_data()
        mlp = MLP((2, 4, 1), rng=0)
        result = Trainer(config=TrainConfig(epochs=5, batch_size=8)).fit(mlp, x, y)
        assert len(result.epoch_seconds) == 5
        assert all(s >= 0.0 for s in result.epoch_seconds)
        assert result.total_seconds == pytest.approx(sum(result.epoch_seconds))
        assert result.total_seconds > 0.0

    def test_early_stop_times_every_run_epoch(self):
        x, y = _tiny_data()
        x_val, y_val = _tiny_data(n=12, seed=1)
        mlp = MLP((2, 4, 1), rng=0)
        cfg = TrainConfig(epochs=50, batch_size=8, patience=2, min_delta=1e9)
        result = Trainer(config=cfg).fit(mlp, x, y, x_val=x_val, y_val=y_val)
        assert result.stopped_early
        assert len(result.epoch_seconds) == result.epochs_run

    def test_train_span_records_per_epoch_timings(self):
        obs_trace.enable(True)
        x, y = _tiny_data()
        Trainer(config=TrainConfig(epochs=3, batch_size=8)).fit(MLP((2, 4, 1), rng=0), x, y)
        train = [r for r in obs_trace.get_records() if r.name == "train"]
        assert len(train) == 1
        assert len(train[0].attrs["epoch_seconds"]) == 3
        assert train[0].attrs["epochs_run"] == 3


class TestRunInfo:
    def test_environment_info_shape(self):
        info = runinfo.environment_info()
        assert info["hostname"]
        assert info["python"]
        assert isinstance(info["repro_env"], dict)
        # The repo checkout is a git repository.
        assert info["git_sha"] is None or len(info["git_sha"]) == 40

    def test_provenance_header_carries_extra(self):
        header = runinfo.provenance_header(workers=4)
        assert header["workers"] == 4
        assert "created" in header and "hostname" in header

    def test_write_manifest(self, tmp_path):
        obs_trace.enable(True)
        with span("demo"):
            obs_metrics.counter("demo_events").inc()
        path = runinfo.write_manifest(
            "demo-exp", run_dir=tmp_path, seed=7, scale=TINY, argv=["demo-exp"]
        )
        assert path.parent == tmp_path
        manifest = json.loads(path.read_text())
        assert manifest["experiment"] == "demo-exp"
        assert manifest["seed"] == 7
        assert manifest["scale"]["name"] == "tiny"
        assert manifest["metrics"]["counters"]["demo_events"] == 1.0
        assert manifest["span_tree"]["children"][0]["name"] == "demo"
        assert manifest["spans"][0]["name"] == "demo"

    def test_manifest_filenames_never_collide(self, tmp_path):
        first = runinfo.write_manifest("exp", run_dir=tmp_path)
        second = runinfo.write_manifest("exp", run_dir=tmp_path)
        assert first != second
        assert first.exists() and second.exists()


class TestCLIObservability:
    def test_trace_flag_writes_manifest(self, tmp_path, capsys):
        assert main(["fig2", "--trace", "--run-dir", str(tmp_path)]) == 0
        manifests = list(tmp_path.glob("*-fig2.json"))
        assert len(manifests) == 1
        manifest = json.loads(manifests[0].read_text())
        assert manifest["experiment"] == "fig2"
        names = [c["name"] for c in manifest["span_tree"]["children"]]
        assert "fig2" in names
        # The rendered table is still alone on stdout.
        out = capsys.readouterr().out
        assert "AD/DA total" in out
        json.loads(manifests[0].read_text())  # stays valid JSON

    def test_no_manifest_without_trace_or_run_dir(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["fig2"]) == 0
        capsys.readouterr()
        assert not (tmp_path / "runs").exists()


class TestDisabledOverhead:
    def test_noop_span_cost_is_negligible(self):
        """Disabled spans must cost well under 5% of one benchmark row.

        ``run_benchmark_row`` issues on the order of a couple hundred
        observability calls; we bound 2,000 no-op spans (~10x the
        row's actual call count) against 5% of the measured tiny-scale
        row time.
        """
        assert not obs_trace.enabled()
        t0 = time.perf_counter()
        run_benchmark_row("fft", TINY, seed=0)
        row_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        for _ in range(2_000):
            with span("noop", k=1):
                pass
        noop_seconds = time.perf_counter() - t0
        assert noop_seconds < 0.05 * row_seconds
