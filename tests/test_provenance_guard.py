"""Benchmark provenance staleness guards (dirty / unknown git state)."""

import json
import subprocess

import pytest

from repro import __main__ as cli
from repro.experiments import bench
from repro.experiments.runner import ExperimentScale
from repro.obs import runinfo

TINY = ExperimentScale(name="tiny", n_train=60, n_test=20, epochs=3, noise_trials=1)


class TestGitDirty:
    def test_clean_checkout(self, tmp_path):
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        subprocess.run(["git", "-C", str(tmp_path), "config", "user.email", "t@t"],
                       check=True)
        subprocess.run(["git", "-C", str(tmp_path), "config", "user.name", "t"],
                       check=True)
        (tmp_path / "a.txt").write_text("x")
        subprocess.run(["git", "-C", str(tmp_path), "add", "."], check=True)
        subprocess.run(["git", "-C", str(tmp_path), "commit", "-qm", "init"],
                       check=True)
        assert runinfo.git_dirty(str(tmp_path)) is False
        (tmp_path / "a.txt").write_text("y")
        assert runinfo.git_dirty(str(tmp_path)) is True

    def test_not_a_repo_is_unknown(self, tmp_path):
        assert runinfo.git_dirty(str(tmp_path)) is None


class TestEnvironmentInfo:
    def test_records_dirty_flag_and_executor_provenance(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        info = runinfo.environment_info()
        assert "git_dirty" in info
        assert info["executor_workers"] == 3
        assert info["executor_kind"] == "thread"

    def test_serial_when_single_worker(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        info = runinfo.environment_info()
        assert info["executor_workers"] == 1
        assert info["executor_kind"] == "serial"


class TestStalenessWarning:
    def _run(self, tmp_path, monkeypatch, sha, dirty):
        monkeypatch.setattr(bench.runinfo, "git_sha", lambda cwd=None: sha)
        monkeypatch.setattr(bench.runinfo, "git_dirty", lambda cwd=None: dirty)
        return bench.run_bench(
            names=["fft"], scale=TINY, seed=0,
            history_path=tmp_path / "h.jsonl", out_dir=tmp_path / "out",
        )

    def test_dirty_checkout_warns(self, tmp_path, monkeypatch):
        with pytest.warns(RuntimeWarning, match="provenance is stale.*dirty"):
            self._run(tmp_path, monkeypatch, sha="abc123", dirty=True)

    def test_unknown_checkout_warns(self, tmp_path, monkeypatch):
        with pytest.warns(RuntimeWarning, match="provenance is stale.*unknown"):
            self._run(tmp_path, monkeypatch, sha=None, dirty=None)

    def test_clean_checkout_is_silent(self, tmp_path, monkeypatch, recwarn):
        entry, _ = self._run(tmp_path, monkeypatch, sha="abc123", dirty=False)
        assert not [w for w in recwarn if "provenance" in str(w.message)]
        assert entry["git_sha"] == "abc123"

    def test_entry_still_appended_when_dirty(self, tmp_path, monkeypatch):
        with pytest.warns(RuntimeWarning):
            entry, history_file = self._run(tmp_path, monkeypatch, "abc", True)
        assert entry is not None
        lines = (tmp_path / "h.jsonl").read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["git_sha"] == "abc"


class TestBaselineRefusal:
    """The CLI layer: dirty/unknown git state refuses ``--write-baseline``."""

    def _cli(self, tmp_path, monkeypatch, sha, dirty, extra=()):
        # The expensive run and the baseline write are both stubbed;
        # under test here is only the CLI's refusal logic.
        entry = {"git_sha": sha, "metrics": {"m": 1.0}}
        written = []
        monkeypatch.setattr(bench, "run_bench",
                            lambda **kw: (entry, tmp_path / "h.jsonl"))
        monkeypatch.setattr(bench, "render_bench_entry", lambda e: "entry")
        monkeypatch.setattr(bench, "write_baseline",
                            lambda e: written.append(e) or tmp_path / "baseline.json")
        monkeypatch.setattr(runinfo, "git_dirty", lambda cwd=None: dirty)
        argv = ["bench", "--bench", "fft", "--write-baseline", *extra]
        return cli.main(argv), written

    def test_dirty_refuses_write_baseline(self, tmp_path, monkeypatch, capsys):
        rc, written = self._cli(tmp_path, monkeypatch, sha="abc", dirty=True)
        assert rc == 2
        assert "refusing --write-baseline" in capsys.readouterr().err
        assert written == []

    def test_unknown_sha_refuses(self, tmp_path, monkeypatch, capsys):
        rc, written = self._cli(tmp_path, monkeypatch, sha=None, dirty=False)
        assert rc == 2
        assert written == []

    def test_allow_dirty_overrides(self, tmp_path, monkeypatch):
        rc, written = self._cli(tmp_path, monkeypatch, sha="abc", dirty=True,
                                extra=("--allow-dirty",))
        assert rc == 0
        assert len(written) == 1

    def test_clean_checkout_writes(self, tmp_path, monkeypatch):
        rc, written = self._cli(tmp_path, monkeypatch, sha="abc", dirty=False)
        assert rc == 0
        assert len(written) == 1
