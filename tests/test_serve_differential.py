"""Differential suite: serving an artifact == serving the live system.

For every registered AxBench workload, both system kinds: train a
(tiny-budget) system on the benchmark's real topology, snapshot it
through ``save_artifact``/``load_artifact``, and assert the restored
system's predictions are **bit-identical** (``np.array_equal``, no
tolerance) to the in-process system on the held-out split — through
the raw ``predict_trials`` path, through :class:`InferenceEngine`, and
(for one workload) over HTTP through the full service stack.

Accuracy is irrelevant here — bit-faithful restoration of whatever was
trained is the contract — so the training budgets are minimal.

The ``REPRO_DTYPE=float32`` leg proves the artifact honours the
data-path dtype end to end: arrays are stored at the deployed dtype
and the round-trip stays bit-identical under the same dtype.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro import serialization
from repro.config import dtype as cfg_dtype
from repro.core.mei import MEI, MEIConfig
from repro.core.saab import SAAB, SAABConfig
from repro.nn.trainer import TrainConfig
from repro.serve import (
    ARTIFACT_KIND,
    BackgroundServer,
    InferenceEngine,
    load_artifact,
    save_artifact,
)
from repro.workloads.registry import BENCHMARK_NAMES, make_benchmark


def _train_tiny(name, system, seed=0):
    bench = make_benchmark(name)
    data = bench.dataset(n_train=48, n_test=16, seed=seed)
    topology = bench.spec.topology
    config = MEIConfig(
        in_groups=topology.inputs,
        out_groups=topology.outputs,
        hidden=4,
        bits=topology.bits,
    )
    train = TrainConfig(epochs=2, batch_size=16, learning_rate=0.02, shuffle_seed=seed)
    if system == "saab":
        trained = SAAB(
            lambda k: MEI(config, seed=seed + k),
            SAABConfig(n_learners=2, compare_bits=3, seed=seed),
        )
        trained.train(data.x_train, data.y_train, train)
    else:
        trained = MEI(config, seed=seed).train(data.x_train, data.y_train, train)
    return trained, data


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
@pytest.mark.parametrize("system", ["mei", "saab"])
def test_artifact_serving_is_bit_identical(name, system, tmp_path):
    trained, data = _train_tiny(name, system)
    probe = data.x_test[:8]
    expected = trained.predict_trials(probe, trials=1)[0]

    loaded = load_artifact(
        save_artifact(trained, tmp_path / f"{name}-{system}.npz", benchmark=name)
    )
    assert loaded.kind == system
    assert np.array_equal(loaded.system.predict_trials(probe, trials=1)[0], expected)

    engine = InferenceEngine(loaded.system)
    assert engine.in_dim == probe.shape[1]
    assert np.array_equal(engine.predict(probe), expected)


def test_artifact_serving_over_http_is_bit_identical(tmp_path):
    """The full stack — artifact, micro-batcher, asyncio HTTP front,
    JSON wire format — returns the exact floats the live system does
    (JSON float serialization is round-trip exact)."""
    trained, data = _train_tiny("fft", "mei", seed=3)
    probe = np.clip(data.x_test[:6], 0.0, 1.0)
    expected = trained.predict_trials(probe, trials=1)[0]
    model = load_artifact(save_artifact(trained, tmp_path / "fft.npz", benchmark="fft"))
    with BackgroundServer(model, port=0) as server:
        request = urllib.request.Request(
            server.url + "/v1/predict",
            data=json.dumps({"inputs": probe.tolist()}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            payload = json.loads(response.read())
    assert payload["samples"] == probe.shape[0]
    assert np.array_equal(np.asarray(payload["outputs"]), expected)


class TestFloat32Leg:
    @pytest.fixture
    def float32(self, monkeypatch):
        monkeypatch.setenv(cfg_dtype.DTYPE_ENV, "float32")
        cfg_dtype.set_active_dtype("float32")
        yield
        cfg_dtype.set_active_dtype(None)

    @pytest.mark.parametrize("system", ["mei", "saab"])
    def test_float32_roundtrip_is_bit_identical(self, float32, system, tmp_path):
        trained, data = _train_tiny("inversek2j", system, seed=5)
        probe = data.x_test[:8]
        expected = trained.predict_trials(probe, trials=1)[0]
        path = save_artifact(trained, tmp_path / f"f32-{system}.npz")
        loaded = load_artifact(path)
        assert np.array_equal(loaded.system.predict_trials(probe, trials=1)[0], expected)

    def test_arrays_stored_at_deployed_dtype(self, float32, tmp_path):
        trained, _ = _train_tiny("fft", "mei", seed=5)
        path = save_artifact(trained, tmp_path / "f32.npz")
        _, arrays = serialization.read_archive(path, ARTIFACT_KIND)
        conductances = {k: v for k, v in arrays.items() if "_g_" in k}
        assert conductances
        assert all(v.dtype == np.float32 for v in conductances.values())
