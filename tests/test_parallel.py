"""Tests for the repro.parallel executor layer and seed derivation.

The subsystem's core guarantee — serial and parallel runs of a sweep
return bit-identical results — is exercised here at every level:
executor maps, seed repeats, noise sweeps and the DSE ladder.
"""

import functools
import warnings

import numpy as np
import pytest

from repro.core.dse import DSEConfig, _make_candidate_mei, search_hidden_size
from repro.device.variation import NonIdealFactors
from repro.experiments.runner import repeat_with_seeds
from repro.metrics.robustness import noise_sweep
from repro.nn.trainer import TrainConfig
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    derive_seed,
    derive_seeds,
    get_executor,
    parallel_map,
    resolve_workers,
)
from repro.parallel.executor import EXECUTOR_ENV, WORKERS_ENV


def _square(v):
    """Module-level so process pools can pickle it."""
    return v * v


def _seeded_value(seed):
    """A deterministic per-seed scalar (stands in for an experiment)."""
    return float(np.random.default_rng(seed).normal())


def _noisy_identity(x, noise, trial):
    """A fake per-trial system: identity plus seeded noise."""
    rng = noise.rng(trial)
    return x + rng.normal(0.0, noise.sigma_pv + noise.sigma_sf + 1e-12, x.shape)


def _mae(pred, true):
    return float(np.mean(np.abs(pred - true)))


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert resolve_workers(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert resolve_workers() == 4

    def test_bad_env_warns_and_runs_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.warns(RuntimeWarning, match="non-integer"):
            assert resolve_workers() == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestGetExecutor:
    def test_one_worker_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert isinstance(get_executor(), SerialExecutor)
        assert isinstance(get_executor(1), SerialExecutor)

    def test_default_multiworker_kind_is_process(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert isinstance(get_executor(2), ProcessExecutor)

    def test_kind_argument(self):
        assert isinstance(get_executor(2, kind="thread"), ThreadExecutor)
        assert isinstance(get_executor(2, kind="serial"), SerialExecutor)

    def test_kind_from_env(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "thread")
        assert isinstance(get_executor(2), ThreadExecutor)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            get_executor(2, kind="gpu")


class TestExecutorEquivalence:
    ITEMS = [3, 1, 4, 1, 5, 9, 2, 6]

    def test_serial_preserves_order(self):
        assert SerialExecutor().map(_square, self.ITEMS) == [v * v for v in self.ITEMS]

    def test_thread_matches_serial(self):
        serial = SerialExecutor().map(_square, self.ITEMS)
        assert ThreadExecutor(4).map(_square, self.ITEMS) == serial

    def test_process_matches_serial(self):
        serial = SerialExecutor().map(_square, self.ITEMS)
        assert ProcessExecutor(2).map(_square, self.ITEMS) == serial

    def test_process_lambda_falls_back_to_serial(self):
        offset = 10
        with pytest.warns(RuntimeWarning, match="not picklable"):
            result = ProcessExecutor(2).map(lambda v: v + offset, [1, 2, 3])
        assert result == [11, 12, 13]

    def test_single_item_skips_pool(self):
        # No pool spin-up (and no pickling requirement) for one task.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ProcessExecutor(4).map(lambda v: v + 1, [41]) == [42]

    def test_parallel_map_helper(self):
        assert parallel_map(_square, self.ITEMS, workers=1) == [
            v * v for v in self.ITEMS
        ]
        assert parallel_map(
            _square, self.ITEMS, executor=ThreadExecutor(2)
        ) == [v * v for v in self.ITEMS]


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(7, 3) == derive_seed(7, 3)

    def test_distinct_across_indices(self):
        seeds = derive_seeds(0, 64)
        assert len(set(seeds)) == 64

    def test_distinct_across_bases(self):
        assert derive_seed(0, 0) != derive_seed(1, 0)

    def test_none_base_allowed(self):
        assert derive_seed(None, 2) == derive_seed(None, 2)

    def test_matches_elementwise_derivation(self):
        assert derive_seeds(5, 4) == [derive_seed(5, i) for i in range(4)]

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            derive_seed(0, -1)

    def test_rejects_empty_count(self):
        with pytest.raises(ValueError):
            derive_seeds(0, 0)


class TestRepeatWithSeeds:
    def test_statistics(self):
        mean, std, values = repeat_with_seeds(_seeded_value, range(5))
        assert len(values) == 5
        assert mean == pytest.approx(float(values.mean()))
        assert std == pytest.approx(float(values.std()))

    def test_parallel_matches_serial(self):
        _, _, serial = repeat_with_seeds(_seeded_value, range(6))
        _, _, threaded = repeat_with_seeds(
            _seeded_value, range(6), executor=ThreadExecutor(3)
        )
        _, _, processed = repeat_with_seeds(
            _seeded_value, range(6), executor=ProcessExecutor(2)
        )
        assert np.array_equal(serial, threaded)
        assert np.array_equal(serial, processed)

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError):
            repeat_with_seeds(_seeded_value, [])


class TestNoiseSweepExecutors:
    def test_parallel_sweep_matches_serial(self, rng):
        x = rng.uniform(0, 1, (40, 2))
        noises = [NonIdealFactors(sigma_pv=s, seed=3) for s in (0.02, 0.1, 0.3)]
        serial = noise_sweep(_noisy_identity, x, x, _mae, noises, trials=6)
        threaded = noise_sweep(
            _noisy_identity, x, x, _mae, noises, trials=6,
            executor=ThreadExecutor(3),
        )
        for a, b in zip(serial, threaded):
            assert np.array_equal(a.values, b.values)

    def test_workers_argument(self, rng, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "thread")
        x = rng.uniform(0, 1, (20, 2))
        noises = [NonIdealFactors(sigma_pv=s, seed=3) for s in (0.05, 0.2)]
        serial = noise_sweep(_noisy_identity, x, x, _mae, noises, trials=4)
        parallel = noise_sweep(_noisy_identity, x, x, _mae, noises, trials=4, workers=2)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.values, b.values)


class TestFaultedTrialEquivalence:
    """Differential tests: the vectorized Monte-Carlo path must stay
    bit-identical to the serial loop when hard faults are injected —
    stuck cells change the conductances, never the trial seeding."""

    def _faulted_mei(self, rng, fast_train):
        from repro.core.mei import MEI, MEIConfig
        from repro.device.faults import FaultModel, inject_faults_analog_report

        x = rng.uniform(0, 1, (200, 2))
        y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
        mei = MEI(MEIConfig(2, 1, 12), seed=0).train(x, y, fast_train)
        inject_faults_analog_report(
            mei.analog,
            FaultModel(stuck_on_rate=0.04, stuck_off_rate=0.04,
                       row_failure_rate=0.02, col_failure_rate=0.02, seed=9),
        )
        return mei, x

    def test_forward_trials_matches_serial_loop(self, rng, fast_train):
        mei, x = self._faulted_mei(rng, fast_train)
        noise = NonIdealFactors(sigma_pv=0.08, sigma_sf=0.05, seed=11)
        encoded = mei.encode_inputs(x)
        stacked = mei.analog.forward_trials(encoded, noise, trials=4)
        for trial in range(4):
            serial = mei.analog.forward(encoded, noise, trial=trial)
            assert np.array_equal(stacked[trial], serial)

    def test_predict_bits_trials_matches_serial_loop(self, rng, fast_train):
        mei, x = self._faulted_mei(rng, fast_train)
        noise = NonIdealFactors(sigma_pv=0.08, sigma_sf=0.05, seed=11)
        stacked = mei.predict_bits_trials(x, noise, trials=4)
        for trial in range(4):
            serial = mei.predict_bits(x, noise, trial=trial)
            assert np.array_equal(stacked[trial], serial)

    def test_faulted_saab_trials_match_serial_loop(self, rng, fast_train):
        from repro.core.mei import MEIConfig
        from repro.device.faults import FaultModel
        from repro.robustness.mitigation import fault_aware_saab

        x = rng.uniform(0, 1, (150, 2))
        y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
        saab = fault_aware_saab(
            MEIConfig(2, 1, 12),
            FaultModel(stuck_on_rate=0.03, stuck_off_rate=0.03, seed=5),
            n_learners=2, seed=0, compare_bits=4,
        ).train(x, y, fast_train)
        noise = NonIdealFactors(sigma_pv=0.05, sigma_sf=0.05, seed=2)
        stacked = saab.predict_bits_trials(x, noise, trials=3)
        for trial in range(3):
            serial = saab.predict_bits(x, noise, trial=trial)
            assert np.array_equal(stacked[trial], serial)


class TestDSEParallelLadder:
    def _setup(self, rng):
        x = rng.uniform(0, 1, (120, 2))
        y = 0.3 + 0.4 * x.mean(axis=1, keepdims=True)
        make_mei = functools.partial(_make_candidate_mei, 2, 1, 8)
        config = DSEConfig(
            error_requirement=0.5, initial_hidden=2, max_hidden=8, seed=0
        )
        train = TrainConfig(
            epochs=8, batch_size=32, shuffle_seed=0, track_train_loss=False
        )
        return x, y, make_mei, config, train

    def test_parallel_ladder_matches_serial(self, rng):
        x, y, make_mei, config, train = self._setup(rng)
        mei_s, hidden_s, hist_s = search_hidden_size(
            make_mei, x, y, x, y, _mae, config, train, executor=SerialExecutor()
        )
        mei_p, hidden_p, hist_p = search_hidden_size(
            make_mei, x, y, x, y, _mae, config, train, executor=ThreadExecutor(3)
        )
        assert hidden_s == hidden_p
        assert hist_s == hist_p
        assert np.array_equal(mei_s.predict(x), mei_p.predict(x))
