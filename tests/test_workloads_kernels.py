"""Unit tests for the workload oracle kernels (the rebuilt substrates)."""

import numpy as np
import pytest

from repro.workloads.expfit import gaussian_kernel
from repro.workloads.fft import approximate_fft, radix2_fft, twiddle
from repro.workloads.inversek2j import LINK1, LINK2, forward_kinematics, inverse_kinematics
from repro.workloads.jmeint import triangles_intersect
from repro.workloads.jpeg import (
    block_dct,
    block_idct,
    blocks_to_image,
    codec_roundtrip,
    image_to_blocks,
    quantization_table,
    synthetic_image,
    zigzag_indices,
)
from repro.workloads.kmeans import (
    KMeansClusterer,
    rgb_distance,
    segment_image,
    synthetic_rgb_image,
)
from repro.workloads.sobel import extract_windows, sobel_image, sobel_window


class TestFFTKernel:
    def test_matches_numpy_fft(self, rng):
        for n in (1, 2, 8, 64):
            signal = rng.normal(size=n) + 1j * rng.normal(size=n)
            assert np.allclose(radix2_fft(signal), np.fft.fft(signal))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            radix2_fft(np.zeros(6))
        with pytest.raises(ValueError):
            radix2_fft(np.zeros(0))

    def test_twiddle_unit_circle(self, rng):
        tw = twiddle(rng.uniform(0, 1, 50))
        assert np.allclose(tw[:, 0] ** 2 + tw[:, 1] ** 2, 1.0)

    def test_twiddle_known_angles(self):
        tw = twiddle(np.array([0.0, 0.25]))
        assert np.allclose(tw[0], [1.0, 0.0], atol=1e-12)
        assert np.allclose(tw[1], [0.0, -1.0], atol=1e-12)

    def test_approximate_fft_with_exact_twiddles(self, rng):
        signal = rng.normal(size=16)
        assert np.allclose(approximate_fft(signal, twiddle), np.fft.fft(signal))

    def test_approximate_fft_degrades_gracefully(self, rng):
        signal = rng.normal(size=16)

        def noisy_twiddle(fractions):
            return twiddle(fractions) + 0.01

        approx = approximate_fft(signal, noisy_twiddle)
        exact = np.fft.fft(signal)
        rel = np.abs(approx - exact).max() / np.abs(exact).max()
        assert 0 < rel < 0.2


class TestInverseK2J:
    def test_roundtrip(self, rng):
        theta = rng.uniform(0.0, np.pi / 2, (200, 2))
        recovered = inverse_kinematics(forward_kinematics(theta))
        assert np.allclose(recovered, theta, atol=1e-9)

    def test_full_extension(self):
        pos = forward_kinematics(np.array([[0.0, 0.0]]))
        assert np.allclose(pos, [[LINK1 + LINK2, 0.0]])

    def test_ik_clips_unreachable(self):
        # A point outside the reach maps to a fully-extended arm.
        theta = inverse_kinematics(np.array([[5.0, 0.0]]))
        assert np.isclose(theta[0, 1], 0.0)

    def test_fk_respects_link_lengths(self, rng):
        theta = rng.uniform(0, np.pi / 2, (100, 2))
        pos = forward_kinematics(theta)
        dist = np.linalg.norm(pos, axis=1)
        assert np.all(dist <= LINK1 + LINK2 + 1e-9)
        assert np.all(dist >= abs(LINK1 - LINK2) - 1e-9)


class TestJmeint:
    def _pair(self, t1, t2):
        return np.concatenate([np.ravel(t1), np.ravel(t2)])[None, :]

    def test_identical_triangles_intersect(self):
        t = [[0, 0, 0], [1, 0, 0], [0, 1, 0]]
        assert triangles_intersect(self._pair(t, t))[0]

    def test_far_triangles_miss(self):
        t1 = [[0, 0, 0], [1, 0, 0], [0, 1, 0]]
        t2 = [[5, 5, 5], [6, 5, 5], [5, 6, 5]]
        assert not triangles_intersect(self._pair(t1, t2))[0]

    def test_piercing_triangles_intersect(self):
        # t2 pierces t1's plane through its interior.
        t1 = [[0, 0, 0], [2, 0, 0], [0, 2, 0]]
        t2 = [[0.5, 0.5, -1], [0.5, 0.5, 1], [1.5, 0.5, 0.5]]
        assert triangles_intersect(self._pair(t1, t2))[0]

    def test_parallel_planes_miss(self):
        t1 = [[0, 0, 0], [1, 0, 0], [0, 1, 0]]
        t2 = [[0, 0, 1], [1, 0, 1], [0, 1, 1]]
        assert not triangles_intersect(self._pair(t1, t2))[0]

    def test_coplanar_overlapping_intersect(self):
        t1 = [[0, 0, 0], [2, 0, 0], [0, 2, 0]]
        t2 = [[0.5, 0.5, 0], [1.5, 0.5, 0], [0.5, 1.5, 0]]
        assert triangles_intersect(self._pair(t1, t2))[0]

    def test_coplanar_disjoint_miss(self):
        t1 = [[0, 0, 0], [1, 0, 0], [0, 1, 0]]
        t2 = [[3, 3, 0], [4, 3, 0], [3, 4, 0]]
        assert not triangles_intersect(self._pair(t1, t2))[0]

    def test_crossing_plane_but_outside_miss(self):
        # t2 crosses t1's plane but far from t1 itself.
        t1 = [[0, 0, 0], [1, 0, 0], [0, 1, 0]]
        t2 = [[5, 5, -1], [5, 6, 1], [6, 5, 1]]
        assert not triangles_intersect(self._pair(t1, t2))[0]

    def test_batch_shape_and_validation(self, rng):
        rows = rng.uniform(0, 1, (7, 18))
        assert triangles_intersect(rows).shape == (7,)
        with pytest.raises(ValueError):
            triangles_intersect(np.zeros((2, 17)))

    def test_symmetry(self, rng):
        rows = rng.uniform(0, 1, (50, 18))
        swapped = np.concatenate([rows[:, 9:], rows[:, :9]], axis=1)
        assert np.array_equal(triangles_intersect(rows), triangles_intersect(swapped))


class TestJPEG:
    def test_dct_orthonormal(self, rng):
        blocks = rng.uniform(0, 255, (4, 8, 8))
        assert np.allclose(block_idct(block_dct(blocks)), blocks)

    def test_dct_dc_coefficient(self):
        flat = np.full((1, 8, 8), 100.0)
        coeffs = block_dct(flat)
        assert np.isclose(coeffs[0, 0, 0], 800.0)  # 8 * mean
        assert np.allclose(coeffs[0].reshape(-1)[1:], 0.0, atol=1e-10)

    def test_quantization_table_quality(self):
        q10 = quantization_table(10)
        q90 = quantization_table(90)
        assert np.all(q10 >= q90)
        with pytest.raises(ValueError):
            quantization_table(0)

    def test_roundtrip_error_drops_with_quality(self, rng):
        img = synthetic_image(32, 32, rng)
        blocks = image_to_blocks(img)
        err_low = np.abs(codec_roundtrip(blocks, 10) - blocks).mean()
        err_high = np.abs(codec_roundtrip(blocks, 90) - blocks).mean()
        assert err_high < err_low

    def test_roundtrip_clipped_to_pixel_range(self, rng):
        blocks = rng.uniform(0, 255, (3, 8, 8))
        recon = codec_roundtrip(blocks, 50)
        assert recon.min() >= 0.0 and recon.max() <= 255.0

    def test_zigzag_is_permutation(self):
        idx = zigzag_indices()
        assert sorted(idx.tolist()) == list(range(64))
        assert idx[0] == 0 and idx[1] == 1  # starts (0,0) -> (0,1)

    def test_block_tiling_roundtrip(self, rng):
        img = synthetic_image(24, 40, rng)
        blocks = image_to_blocks(img)
        assert blocks.shape == (3 * 5, 8, 8)
        assert np.allclose(blocks_to_image(blocks, 24, 40), img)

    def test_tiling_crops_to_block_multiple(self, rng):
        img = synthetic_image(20, 20, rng)
        assert image_to_blocks(img).shape == (4, 8, 8)


class TestKMeans:
    def test_distance_kernel(self):
        pairs = np.array([[0, 0, 0, 3, 4, 0]], dtype=float)
        assert np.isclose(rgb_distance(pairs)[0, 0], 5.0)

    def test_distance_validation(self):
        with pytest.raises(ValueError):
            rgb_distance(np.zeros((1, 5)))

    def test_clusterer_recovers_separated_clusters(self, rng):
        centers = np.array([[10.0, 10, 10], [240.0, 240, 240]])
        points = np.concatenate(
            [centers[0] + rng.normal(0, 2, (50, 3)), centers[1] + rng.normal(0, 2, (50, 3))]
        )
        clusterer = KMeansClusterer(k=2).fit(points, rng=0)
        found = clusterer.centroids[np.argsort(clusterer.centroids[:, 0])]
        assert np.allclose(found, centers, atol=3.0)

    def test_assign_consistent_with_fit(self, rng):
        points = rng.uniform(0, 255, (60, 3))
        clusterer = KMeansClusterer(k=3).fit(points, rng=0)
        labels = clusterer.assign(points)
        assert labels.shape == (60,)
        assert set(labels) <= {0, 1, 2}

    def test_assign_requires_fit(self):
        with pytest.raises(RuntimeError):
            KMeansClusterer(k=2).assign(np.zeros((3, 3)))

    def test_custom_distance_fn_is_used(self, rng):
        calls = []

        def spy(pairs):
            calls.append(len(pairs))
            return rgb_distance(pairs)

        KMeansClusterer(k=2, distance_fn=spy, max_iterations=2).fit(
            rng.uniform(0, 255, (20, 3)), rng=0
        )
        assert calls  # the pluggable kernel ran

    def test_segment_image_paints_centroids(self, rng):
        img = synthetic_rgb_image(16, 16, rng)
        seg = segment_image(img, k=3, rng=0, max_iterations=5)
        assert seg.shape == img.shape
        # Each pixel equals one of at most 3 distinct colors.
        colors = np.unique(seg.reshape(-1, 3), axis=0)
        assert len(colors) <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            KMeansClusterer(k=0)
        with pytest.raises(ValueError):
            KMeansClusterer(k=5).fit(np.zeros((2, 3)))


class TestSobel:
    def test_flat_window_zero_gradient(self):
        assert sobel_window(np.full((1, 9), 100.0))[0, 0] == 0.0

    def test_vertical_edge(self):
        window = np.array([[0, 0, 255, 0, 0, 255, 0, 0, 255]], dtype=float)
        assert sobel_window(window)[0, 0] == 255.0  # clamped

    def test_magnitude_clamped(self, rng):
        windows = rng.uniform(0, 255, (100, 9))
        mags = sobel_window(windows)
        assert np.all((mags >= 0) & (mags <= 255))

    def test_window_validation(self):
        with pytest.raises(ValueError):
            sobel_window(np.zeros((1, 8)))

    def test_extract_windows_center_pixel(self, rng):
        img = rng.uniform(0, 255, (6, 7))
        windows = extract_windows(img)
        assert windows.shape == (42, 9)
        # Window center (index 4) is the pixel itself.
        assert np.allclose(windows[:, 4].reshape(6, 7), img)

    def test_sobel_image_highlights_edges(self):
        img = np.zeros((10, 10))
        img[:, 5:] = 200.0
        edges = sobel_image(img)
        assert edges[:, 4:6].mean() > 50
        assert edges[:, :3].mean() < 1e-9

    def test_pluggable_window_fn(self):
        img = np.zeros((5, 5))
        out = sobel_image(img, window_fn=lambda w: np.full((len(w), 1), 7.0))
        assert np.all(out == 7.0)


class TestExpFit:
    def test_kernel_values(self):
        x = np.array([[0.0], [1.0]])
        y = gaussian_kernel(x)
        assert np.isclose(y[0, 0], 1.0)
        assert np.isclose(y[1, 0], np.exp(-1.0))
