"""Tests for the PSNR and SSIM image quality metrics."""

import numpy as np
import pytest

from repro.metrics.image import psnr, ssim
from repro.workloads.jpeg import codec_roundtrip, image_to_blocks, synthetic_image


class TestPSNR:
    def test_identical_is_infinite(self, rng):
        img = rng.uniform(0, 255, (16, 16))
        assert psnr(img, img) == float("inf")

    def test_known_value(self):
        a = np.zeros((8, 8))
        b = np.full((8, 8), 16.0)  # mse = 256 -> psnr = 10 log10(255^2/256)
        assert psnr(a, b) == pytest.approx(10 * np.log10(255**2 / 256))

    def test_more_noise_lower_psnr(self, rng):
        img = rng.uniform(0, 255, (32, 32))
        small = img + rng.normal(0, 2, img.shape)
        large = img + rng.normal(0, 20, img.shape)
        assert psnr(img, small) > psnr(img, large)

    def test_validation(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((4, 4)), np.zeros((4, 5)))
        with pytest.raises(ValueError):
            psnr(np.zeros((4, 4)), np.zeros((4, 4)), data_range=0.0)


class TestSSIM:
    def test_identical_is_one(self, rng):
        img = rng.uniform(0, 255, (24, 24))
        assert ssim(img, img) == pytest.approx(1.0)

    def test_noise_reduces_similarity(self, rng):
        img = synthetic_image(32, 32, rng)
        noisy = np.clip(img + rng.normal(0, 40, img.shape), 0, 255)
        assert ssim(img, noisy) < 0.95

    def test_ordering_matches_degradation(self, rng):
        img = synthetic_image(32, 32, rng)
        q90 = codec_roundtrip(image_to_blocks(img), 90)
        q10 = codec_roundtrip(image_to_blocks(img), 10)
        from repro.workloads.jpeg import blocks_to_image

        high = ssim(img, blocks_to_image(q90, 32, 32))
        low = ssim(img, blocks_to_image(q10, 32, 32))
        assert high > low

    def test_rgb_averaged(self, rng):
        img = rng.uniform(0, 255, (16, 16, 3))
        assert ssim(img, img) == pytest.approx(1.0)

    def test_bounded(self, rng):
        a = rng.uniform(0, 255, (24, 24))
        b = rng.uniform(0, 255, (24, 24))
        assert -1.0 <= ssim(a, b) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((16, 16)), np.zeros((16, 15)))
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4)), np.zeros((4, 4)), window=8)  # too small
        with pytest.raises(ValueError):
            ssim(np.zeros((16, 16)), np.zeros((16, 16)), window=1)
        with pytest.raises(ValueError):
            ssim(np.zeros(16), np.zeros(16))
