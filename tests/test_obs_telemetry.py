"""Tests for the live-telemetry layer.

Covers the streaming quantile sketches (bucket histogram + P²), metric
registry thread safety and cross-process histogram merge, the
telemetry sampler/ring/alerts, the OpenMetrics exposition renderer and
validator, the HTTP endpoint, the dashboard renderers, and the CLI
smoke path that scrapes a live run.
"""

import io
import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.__main__ import main
from repro.obs import dashboard as obs_dashboard
from repro.obs import metrics as obs_metrics
from repro.obs import openmetrics as obs_openmetrics
from repro.obs import telemetry as obs_telemetry
from repro.obs import trace as obs_trace
from repro.obs.trace import span
from repro.parallel import ProcessExecutor, ThreadExecutor, parallel_map


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Isolate the process-wide trace/metrics state per test."""
    was_enabled = obs_trace.enabled()
    obs_trace.clear()
    obs_metrics.clear()
    yield
    obs_trace.enable(was_enabled)
    obs_trace.clear()
    obs_metrics.clear()


class TestQuantileSketch:
    def test_bucket_quantiles_track_numpy(self):
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-3.0, sigma=1.0, size=20_000)
        hist = obs_metrics.Histogram()
        hist.observe_many(samples)
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = float(np.quantile(samples, q))
            estimate = hist.quantile(q)
            # Bucket resolution is 1-2.5-5 per decade: the estimate
            # must land within the right bucket (~2.5x), and in
            # practice interpolation keeps it far tighter.
            assert estimate == pytest.approx(exact, rel=0.25)

    def test_quantiles_named_keys_and_bounds(self):
        hist = obs_metrics.Histogram()
        hist.observe_many([0.01] * 50 + [0.02] * 50)
        qs = hist.quantiles()
        assert set(qs) == {"p50", "p95", "p99"}
        assert 0.01 <= qs["p50"] <= qs["p95"] <= qs["p99"] <= 0.02

    def test_empty_histogram_quantile_is_nan(self):
        assert np.isnan(obs_metrics.Histogram().quantile(0.5))

    def test_summary_carries_buckets(self):
        hist = obs_metrics.Histogram()
        hist.observe(0.3)
        summary = hist.summary()
        assert sum(summary["buckets"]) == 1
        assert len(summary["buckets"]) == len(obs_metrics.BUCKET_BOUNDS)

    def test_sketchless_summary_falls_back_to_extrema(self):
        legacy = {"count": 10, "sum": 5.0, "min": 0.1, "max": 0.9}
        assert obs_metrics.quantile_from_summary(legacy, 0.5) == 0.1
        assert obs_metrics.quantile_from_summary(legacy, 0.99) == 0.9

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            obs_metrics.quantile_from_summary({"count": 1}, 1.5)

    def test_p2_estimator_tracks_numpy(self):
        rng = np.random.default_rng(3)
        samples = rng.normal(10.0, 2.0, size=5_000)
        p2 = obs_metrics.P2Quantile(0.95)
        for value in samples:
            p2.observe(value)
        assert p2.value == pytest.approx(float(np.quantile(samples, 0.95)), rel=0.02)

    def test_p2_exact_under_five_samples(self):
        p2 = obs_metrics.P2Quantile(0.5)
        assert np.isnan(p2.value)
        for value in (3.0, 1.0, 2.0):
            p2.observe(value)
        assert p2.value == 2.0

    def test_p2_rejects_degenerate_quantile(self):
        with pytest.raises(ValueError):
            obs_metrics.P2Quantile(0.0)


class TestRegistryThreadSafety:
    def test_concurrent_observe_and_inc_lose_nothing(self):
        registry = obs_metrics.MetricsRegistry()
        per_thread, threads = 2_000, 8
        barrier = threading.Barrier(threads)

        def hammer(thread_index: int) -> None:
            barrier.wait()
            counter = registry.counter("hits")
            hist = registry.histogram("lat")
            gauge = registry.gauge("depth")
            for i in range(per_thread):
                counter.inc()
                hist.observe(0.001 * ((thread_index + i) % 10 + 1))
                gauge.add(1)
                gauge.add(-1)

        workers = [
            threading.Thread(target=hammer, args=(t,)) for t in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        snap = registry.snapshot()
        total = per_thread * threads
        assert snap["counters"]["hits"] == total
        assert snap["histograms"]["lat"]["count"] == total
        assert sum(snap["histograms"]["lat"]["buckets"]) == total
        assert snap["gauges"]["depth"] == 0.0


def _latency_task(args):
    """Worker task observing synthetic latencies (module-level: picklable)."""
    index, values = args
    hist = obs_metrics.histogram("task_latency_seconds")
    for value in values:
        hist.observe(value)
    return index


class TestCrossProcessHistogramMerge:
    def test_worker_buckets_merge_home_exactly(self):
        """Mirror of the span-merge test for histogram sketches."""
        values = [[0.001 * (i + 1)] * 5 for i in range(4)]
        results = ProcessExecutor(2).map(
            _latency_task, list(enumerate(values))
        )
        assert sorted(results) == [0, 1, 2, 3]
        summary = obs_metrics.snapshot()["histograms"]["task_latency_seconds"]
        assert summary["count"] == 20
        assert sum(summary["buckets"]) == 20
        assert summary["min"] == pytest.approx(0.001)
        assert summary["max"] == pytest.approx(0.004)
        # The merged sketch answers quantiles just like a serial run.
        assert 0.001 <= obs_metrics.quantile_from_summary(summary, 0.5) <= 0.004

    def test_serial_and_parallel_sketches_agree(self):
        values = [[0.01 * (i + 1)] for i in range(6)]
        ProcessExecutor(2).map(_latency_task, list(enumerate(values)))
        parallel_summary = obs_metrics.snapshot()["histograms"][
            "task_latency_seconds"
        ]
        obs_metrics.clear()
        for task in enumerate(values):
            _latency_task(task)
        serial_summary = obs_metrics.snapshot()["histograms"][
            "task_latency_seconds"
        ]
        assert parallel_summary["buckets"] == serial_summary["buckets"]
        assert parallel_summary["count"] == serial_summary["count"]


class TestQueueDepthGauge:
    def test_depth_settles_to_zero_after_map(self):
        parallel_map(_noop_task, list(range(6)), workers=2, executor=ThreadExecutor(2))
        snap = obs_metrics.snapshot()
        assert snap["gauges"]["executor_queue_depth"] == 0.0
        assert snap["counters"]["executor_tasks"] == 6.0


def _noop_task(x):
    return x


class TestAlerts:
    def test_rule_fires_clears_and_counts(self):
        rule = obs_telemetry.AlertRule(
            "depth", "gauges.executor_queue_depth", ">", 10.0, "too deep"
        )
        evaluator = obs_telemetry.AlertEvaluator([rule])
        states = evaluator.evaluate({"gauges": {"executor_queue_depth": 50}})
        assert states == {"depth": True}
        assert obs_metrics.snapshot()["counters"]["telemetry_alerts_fired"] == 1.0
        states = evaluator.evaluate({"gauges": {"executor_queue_depth": 2}})
        assert states == {"depth": False}
        # Re-clearing is not a transition: the counter stays at 1.
        evaluator.evaluate({"gauges": {"executor_queue_depth": 1}})
        assert obs_metrics.snapshot()["counters"]["telemetry_alerts_fired"] == 1.0

    def test_missing_field_never_fires(self):
        rule = obs_telemetry.AlertRule("rss", "process.rss_bytes", ">", 1.0, "x")
        assert not rule.firing({"process": {}})
        assert not rule.firing({})

    def test_bad_comparator_rejected(self):
        with pytest.raises(ValueError):
            obs_telemetry.AlertRule("x", "a.b", "!=", 0.0, "x")

    def test_default_rules_cover_issue_conditions(self):
        fields = {rule.field for rule in obs_telemetry.DEFAULT_ALERTS}
        assert "gauges.executor_queue_depth" in fields
        assert "derived.resilient_retry_rate" in fields
        assert "process.rss_bytes" in fields


class TestTelemetrySampler:
    def test_sample_shape_and_jsonl_file(self, tmp_path):
        obs_metrics.histogram("forward_latency_seconds").observe(0.01)
        obs_metrics.counter("mapping_cache_hits").inc(3)
        obs_metrics.counter("mapping_cache_misses").inc(1)
        sampler = obs_telemetry.TelemetrySampler(
            interval=0.05, path=tmp_path / "t.jsonl", experiment="unit"
        )
        first = sampler.sample_once()
        second = sampler.sample_once()
        assert first["experiment"] == "unit"
        assert first["process"]["cpu_seconds"] >= 0.0
        assert first["histograms"]["forward_latency_seconds"]["count"] == 1.0
        assert first["derived"]["mapping_cache_hit_rate"] == pytest.approx(0.75)
        assert "resilient_retry_rate" in second["derived"]
        lines = (tmp_path / "t.jsonl").read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["experiment"] == "unit"

    def test_campaign_progress_and_eta(self, tmp_path):
        obs_metrics.gauge("campaign_cells_total").set(10)
        obs_metrics.gauge("campaign_started_unixtime").set(time.time() - 5.0)
        obs_metrics.counter("campaign_cells").inc(5)
        sampler = obs_telemetry.TelemetrySampler(
            interval=1.0, path=tmp_path / "t.jsonl"
        )
        derived = sampler.sample_once()["derived"]
        assert derived["campaign_progress"] == pytest.approx(0.5)
        assert derived["campaign_eta_seconds"] == pytest.approx(5.0, rel=0.3)

    def test_background_thread_fills_ring(self, tmp_path):
        sampler = obs_telemetry.TelemetrySampler(
            interval=0.02, path=tmp_path / "t.jsonl", ring_size=4
        )
        with sampler:
            time.sleep(0.15)
        assert 2 <= len(sampler.samples()) <= 4  # ring is bounded
        assert sampler.latest() is not None

    def test_active_spans_visible_in_sample(self, tmp_path):
        obs_trace.enable(True)
        sampler = obs_telemetry.TelemetrySampler(
            interval=1.0, path=tmp_path / "t.jsonl"
        )
        with span("outer"), span("inner"):
            sample = sampler.sample_once()
        paths = [info["path"] for info in sample["active_spans"]]
        assert paths == ["outer", "outer/inner"]
        assert sampler.sample_once()["active_spans"] == []

    def test_rejects_nonpositive_interval(self, tmp_path):
        with pytest.raises(ValueError):
            obs_telemetry.TelemetrySampler(interval=0.0, path=tmp_path / "t.jsonl")

    def test_process_probes(self):
        rss = obs_telemetry.process_rss_bytes()
        assert rss is None or rss > 0
        assert obs_telemetry.process_cpu_seconds() >= 0.0


class TestOpenMetricsRender:
    def test_render_validates_and_contains_families(self):
        obs_metrics.counter("executor_tasks").inc(5)
        obs_metrics.gauge("executor_queue_depth").set(3)
        hist = obs_metrics.histogram("forward_latency_seconds")
        hist.observe_many([0.002, 0.004, 0.03])
        text = obs_openmetrics.render(alert_states={"rss-ceiling": False})
        obs_openmetrics.validate(text)
        assert "repro_executor_tasks_total 5" in text
        assert "repro_executor_queue_depth 3" in text
        assert 'repro_forward_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_forward_latency_seconds_count 3" in text
        assert 'repro_forward_latency_seconds_quantiles{quantile="0.5"}' in text
        assert 'repro_forward_latency_seconds_quantiles{quantile="0.99"}' in text
        assert 'repro_alert_state{alert="rss-ceiling"} 0' in text
        assert text.endswith("# EOF\n")

    def test_bucket_series_is_cumulative(self):
        hist = obs_metrics.histogram("lat")
        hist.observe_many([0.001, 0.001, 5000.0])
        text = obs_openmetrics.render()
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_lat_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_name_sanitization(self):
        assert obs_openmetrics.metric_name("a b-c.d") == "repro_a_b_c_d"

    def test_validator_rejects_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            obs_openmetrics.validate("# TYPE repro_x counter\nrepro_x_total 1\n")

    def test_validator_rejects_undeclared_family(self):
        with pytest.raises(ValueError, match="no TYPE"):
            obs_openmetrics.validate("repro_x_total 1\n# EOF\n")

    def test_validator_rejects_counter_without_total(self):
        bad = "# TYPE repro_x counter\nrepro_x 1\n# EOF\n"
        with pytest.raises(ValueError, match="_total"):
            obs_openmetrics.validate(bad)

    def test_validator_rejects_garbage_line(self):
        bad = "# TYPE repro_x gauge\nrepro_x one\n# EOF\n"
        with pytest.raises(ValueError, match="malformed"):
            obs_openmetrics.validate(bad)


class TestTelemetryServer:
    def test_endpoints(self, tmp_path):
        obs_metrics.gauge("executor_queue_depth").set(4)
        obs_metrics.histogram("forward_latency_seconds").observe(0.01)
        sampler = obs_telemetry.TelemetrySampler(
            interval=1.0, path=tmp_path / "t.jsonl", experiment="srv"
        )
        sampler.sample_once()
        with obs_openmetrics.TelemetryServer(port=0, sampler=sampler) as server:
            with urllib.request.urlopen(server.url + "/metrics", timeout=5) as rsp:
                assert rsp.headers["Content-Type"] == obs_openmetrics.CONTENT_TYPE
                body = rsp.read().decode("utf-8")
            obs_openmetrics.validate(body)
            assert "repro_executor_queue_depth 4" in body
            assert "repro_process_cpu_seconds" in body
            ring = json.loads(
                urllib.request.urlopen(
                    server.url + "/telemetry.json", timeout=5
                ).read()
            )
            assert len(ring) == 1 and ring[0]["experiment"] == "srv"
            html = urllib.request.urlopen(server.url + "/", timeout=5).read()
            assert b"<svg" in html and b"repro" in html
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(server.url + "/nope", timeout=5)

    def test_ephemeral_port_allocation(self):
        with obs_openmetrics.TelemetryServer(port=0) as server:
            assert server.port > 0


class TestDashboard:
    def _sampler(self, tmp_path):
        obs_metrics.gauge("executor_queue_depth").set(2)
        obs_metrics.histogram("forward_latency_seconds").observe(0.02)
        sampler = obs_telemetry.TelemetrySampler(
            interval=1.0, path=tmp_path / "t.jsonl", experiment="dash"
        )
        sampler.sample_once()
        sampler.sample_once()
        return sampler

    def test_top_text_frame(self, tmp_path):
        frame = obs_dashboard.render_top_text(
            self._sampler(tmp_path).samples(), clear=False
        )
        assert "repro top — dash" in frame
        assert "queue depth" in frame
        assert "forward_latency_seconds" in frame
        assert "alerts: none" in frame

    def test_top_text_empty_ring(self):
        assert "no telemetry samples yet" in obs_dashboard.render_top_text(
            [], clear=False
        )

    def test_html_dashboard(self, tmp_path):
        html = obs_dashboard.render_dashboard_html(
            self._sampler(tmp_path).samples(), refresh_seconds=3
        )
        assert "http-equiv='refresh' content='3'" in html
        assert "<svg" in html
        assert "forward_latency_seconds" in html

    def test_run_top_once_writes_one_frame(self, tmp_path):
        buf = io.StringIO()
        obs_dashboard.run_top(
            buf, sampler=self._sampler(tmp_path), iterations=1
        )
        assert buf.getvalue().count("repro top") == 1
        assert "\x1b[2J" not in buf.getvalue()  # --once doesn't clear

    def test_run_top_requires_source(self):
        with pytest.raises(ValueError):
            obs_dashboard.run_top(io.StringIO())


class TestCLI:
    def test_metrics_server_once_prints_valid_payload(self, capsys, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path))
        obs_metrics.counter("executor_tasks").inc()
        assert main(["metrics-server", "--once"]) == 0
        out = capsys.readouterr().out
        obs_openmetrics.validate(out)
        assert "repro_executor_tasks_total" in out

    def test_top_once_against_live_server(self, capsys, tmp_path):
        sampler = obs_telemetry.TelemetrySampler(
            interval=1.0, path=tmp_path / "t.jsonl", experiment="cli"
        )
        sampler.sample_once()
        with obs_openmetrics.TelemetryServer(port=0, sampler=sampler) as server:
            assert main(["top", "--once", "--url", server.url]) == 0
        out = capsys.readouterr().out
        assert "repro top — cli" in out


def _sleepy_task(seconds):
    time.sleep(seconds)
    obs_metrics.histogram("forward_latency_seconds").observe(seconds)
    return seconds


class TestLiveScrapeSmoke:
    def test_smoke_scrape_during_traced_run(self, tmp_path):
        """The acceptance-criteria drill, compressed for CI.

        A traced sweep runs on the thread executor while the
        exposition endpoint is scraped mid-flight: the payload must be
        valid OpenMetrics text carrying the executor queue-depth gauge
        and live latency quantile series.
        """
        obs_trace.enable(True)
        sampler = obs_telemetry.TelemetrySampler(
            interval=0.05, path=tmp_path / "t.jsonl", experiment="smoke"
        )
        with sampler, obs_openmetrics.TelemetryServer(
            port=0, sampler=sampler
        ) as server:
            sweep = threading.Thread(
                target=parallel_map,
                args=(_sleepy_task, [0.05] * 8),
                kwargs={"executor": ThreadExecutor(2)},
            )
            sweep.start()
            time.sleep(0.1)  # scrape mid-run
            body = urllib.request.urlopen(
                server.url + "/metrics", timeout=5
            ).read().decode("utf-8")
            sweep.join()
        obs_openmetrics.validate(body)
        assert "repro_executor_queue_depth" in body
        # After the run the full latency histogram is scrapeable with
        # live p50/p99 series.
        done = obs_openmetrics.render()
        obs_openmetrics.validate(done)
        assert 'repro_forward_latency_seconds_quantiles{quantile="0.5"}' in done
        assert 'repro_forward_latency_seconds_quantiles{quantile="0.99"}' in done
