"""Tests for L2 weight decay in the trainer."""

import numpy as np
import pytest

from repro.nn.network import MLP
from repro.nn.trainer import TrainConfig, Trainer


def _data(rng, n=300):
    x = rng.uniform(0, 1, (n, 2))
    y = 0.3 + 0.4 * x[:, :1]
    return x, y


class TestL2:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(l2=-0.1)

    def test_zero_l2_matches_plain(self, rng):
        x, y = _data(rng)
        a = MLP((2, 6, 1), rng=0)
        b = MLP((2, 6, 1), rng=0)
        Trainer(config=TrainConfig(epochs=15, batch_size=32, shuffle_seed=0)).fit(a, x, y)
        Trainer(config=TrainConfig(epochs=15, batch_size=32, shuffle_seed=0, l2=0.0)).fit(
            b, x, y
        )
        assert np.allclose(a.predict(x), b.predict(x))

    def test_decay_shrinks_weight_norm(self, rng):
        x, y = _data(rng)

        def weight_norm(l2):
            net = MLP((2, 12, 1), rng=0)
            cfg = TrainConfig(epochs=80, batch_size=32, shuffle_seed=0, l2=l2)
            Trainer(config=cfg).fit(net, x, y)
            return sum(float(np.sum(l.weights**2)) for l in net.layers)

        assert weight_norm(0.01) < weight_norm(0.0)

    def test_still_fits_with_mild_decay(self, rng):
        x, y = _data(rng)
        net = MLP((2, 8, 1), rng=0)
        cfg = TrainConfig(epochs=100, batch_size=32, shuffle_seed=0, l2=1e-4)
        result = Trainer(config=cfg).fit(net, x, y)
        assert result.final_train_loss < 1e-3

    def test_biases_not_decayed(self, rng):
        """Heavy decay crushes weights but biases can still move."""
        x, y = _data(rng)
        net = MLP((2, 4, 1), rng=0)
        cfg = TrainConfig(epochs=120, batch_size=64, shuffle_seed=0, l2=1.0)
        Trainer(config=cfg).fit(net, x, y)
        weight_scale = max(float(np.abs(l.weights).max()) for l in net.layers)
        bias_scale = max(float(np.abs(l.bias).max()) for l in net.layers)
        assert weight_scale < 0.2
        assert bias_scale > weight_scale
