"""Tests for static variation freezing and ICE inline calibration."""

import numpy as np
import pytest

from repro.core.calibration import ice_calibrate
from repro.core.deploy import AnalogMLP
from repro.core.mei import MEI, MEIConfig
from repro.device.variation import NonIdealFactors
from repro.nn.network import MLP
from repro.nn.trainer import TrainConfig, Trainer


def _trained_net(rng, shape=(3, 8, 2)):
    net = MLP(shape, rng=0)
    x = rng.uniform(0, 1, (400, shape[0]))
    y = np.column_stack([
        0.2 + 0.5 * x[:, :1].mean(axis=1),
        0.3 + 0.4 * (x**2).mean(axis=1),
    ])[:, : shape[-1]]
    Trainer(config=TrainConfig(epochs=80, batch_size=64, shuffle_seed=0)).fit(net, x, y)
    return net, x, y


class TestFreezeVariation:
    def test_freeze_changes_outputs(self, rng):
        net, x, _ = _trained_net(rng)
        chip = AnalogMLP(net)
        before = chip.forward(x[:20])
        chip.freeze_variation(NonIdealFactors(sigma_pv=0.3, seed=1))
        after = chip.forward(x[:20])
        assert not np.allclose(before, after)

    def test_freeze_is_static(self, rng):
        net, x, _ = _trained_net(rng)
        chip = AnalogMLP(net).freeze_variation(NonIdealFactors(sigma_pv=0.3, seed=1))
        assert np.array_equal(chip.forward(x[:10]), chip.forward(x[:10]))

    def test_freeze_noop_without_pv(self, rng):
        net, x, _ = _trained_net(rng)
        chip = AnalogMLP(net)
        before = chip.forward(x[:10])
        chip.freeze_variation(NonIdealFactors(sigma_sf=0.5, seed=1))
        assert np.array_equal(chip.forward(x[:10]), before)

    def test_distinct_trials_give_distinct_chips(self, rng):
        net, x, _ = _trained_net(rng)
        noise = NonIdealFactors(sigma_pv=0.3, seed=1)
        a = AnalogMLP(net).freeze_variation(noise, trial=0).forward(x[:10])
        b = AnalogMLP(net).freeze_variation(noise, trial=1).forward(x[:10])
        assert not np.array_equal(a, b)


class TestIceCalibrate:
    def test_reduces_static_deviation(self, rng):
        net, x, _ = _trained_net(rng)
        reference = net.predict(x)
        chip = AnalogMLP(net).freeze_variation(NonIdealFactors(sigma_pv=0.3, seed=2))
        report = ice_calibrate(chip, reference, x)
        assert report.error_after < report.error_before
        assert 0 < report.improvement <= 1

    def test_correction_applied_at_inference(self, rng):
        net, x, _ = _trained_net(rng)
        chip = AnalogMLP(net).freeze_variation(NonIdealFactors(sigma_pv=0.3, seed=2))
        uncorrected = chip.forward(x[:30])
        ice_calibrate(chip, net.predict(x), x)
        corrected = chip.forward(x[:30])
        reference = net.predict(x[:30])
        assert np.mean(np.abs(corrected - reference)) < np.mean(
            np.abs(uncorrected - reference)
        )

    def test_ideal_chip_needs_no_correction(self, rng):
        net, x, _ = _trained_net(rng)
        chip = AnalogMLP(net)
        report = ice_calibrate(chip, net.predict(x), x)
        assert report.error_before < 1e-8
        assert np.allclose(report.gain, 1.0, atol=1e-4)
        assert np.allclose(report.offset, 0.0, atol=1e-4)

    def test_recalibration_discards_old_correction(self, rng):
        net, x, _ = _trained_net(rng)
        chip = AnalogMLP(net).freeze_variation(NonIdealFactors(sigma_pv=0.2, seed=3))
        first = ice_calibrate(chip, net.predict(x), x)
        second = ice_calibrate(chip, net.predict(x), x)
        # Same chip, same data: the fits must agree (not compound).
        assert np.allclose(first.gain, second.gain)
        assert np.allclose(first.offset, second.offset)

    def test_validation(self, rng):
        net, x, _ = _trained_net(rng)
        chip = AnalogMLP(net)
        with pytest.raises(ValueError):
            ice_calibrate(chip, net.predict(x)[:10], x)
        with pytest.raises(ValueError):
            ice_calibrate(chip, net.predict(x[:1]), x[:1])

    def test_mei_end_to_end_calibration(self, rng):
        """Calibrating a frozen MEI chip improves decoded accuracy."""
        x = rng.uniform(0, 1, (600, 2))
        y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
        mei = MEI(MEIConfig(2, 1, 16), seed=0).train(
            x, y, TrainConfig(epochs=60, batch_size=64, shuffle_seed=0)
        )
        mei.analog.freeze_variation(NonIdealFactors(sigma_pv=0.4, seed=5))
        before = np.mean(np.abs(mei.predict(x) - y))
        bits = mei.encode_inputs(x)
        reference = mei.network.predict(bits)
        ice_calibrate(mei.analog, reference, bits)
        after = np.mean(np.abs(mei.predict(x) - y))
        assert after <= before + 1e-9
