"""Tests for SAAB's two distribution-delivery modes (Line 4 variants)."""

import numpy as np
import pytest

from repro.core.mei import MEI, MEIConfig
from repro.core.saab import SAAB, SAABConfig
from repro.nn.trainer import TrainConfig

FAST = TrainConfig(epochs=25, batch_size=64, learning_rate=0.02, shuffle_seed=0)


def _toy_data(rng, n=400):
    x = rng.uniform(0, 1, (n, 2))
    y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
    return x, y


def _factory(seed_base=40, hidden=12):
    return lambda k: MEI(MEIConfig(2, 1, hidden), seed=seed_base + k)


class TestSamplingModes:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SAABConfig(n_learners=1, sampling="bagging")

    def test_weighted_first_learner_equals_standalone(self, rng):
        """With uniform initial weights, weighted-mode learner 0 trains
        exactly like a standalone MEI of the same seed."""
        x, y = _toy_data(rng)
        saab = SAAB(_factory(), SAABConfig(n_learners=1, sampling="weighted", seed=0))
        saab.train(x, y, FAST)
        standalone = MEI(MEIConfig(2, 1, 12), seed=40).train(x, y, FAST)
        assert np.array_equal(
            saab.learners[0].predict(x[:50]), standalone.predict(x[:50])
        )

    def test_resample_first_learner_differs_from_standalone(self, rng):
        x, y = _toy_data(rng)
        saab = SAAB(_factory(), SAABConfig(n_learners=1, sampling="resample", seed=0))
        saab.train(x, y, FAST)
        standalone = MEI(MEIConfig(2, 1, 12), seed=40).train(x, y, FAST)
        assert not np.array_equal(
            saab.learners[0].predict(x[:50]), standalone.predict(x[:50])
        )

    @pytest.mark.parametrize("sampling", ["weighted", "resample"])
    def test_both_modes_train_full_ensembles(self, sampling, rng):
        x, y = _toy_data(rng)
        saab = SAAB(_factory(), SAABConfig(n_learners=3, sampling=sampling, seed=0))
        saab.train(x, y, FAST)
        assert len(saab) == 3
        bits = saab.predict_bits(x[:10])
        assert set(np.unique(bits)) <= {0.0, 1.0}

    def test_weighted_mode_is_default(self):
        assert SAABConfig(n_learners=1).sampling == "weighted"

    def test_weighted_second_learner_sees_hard_samples(self, rng):
        """After round 1, the weight distribution is non-uniform, so
        learner 2's training differs from learner 1's."""
        x, y = _toy_data(rng)
        factory = lambda k: MEI(MEIConfig(2, 1, 12), seed=99)  # same seed!
        saab = SAAB(factory, SAABConfig(n_learners=2, sampling="weighted",
                                        compare_bits=3, seed=0))
        saab.train(x, y, FAST)
        a = saab.learners[0].predict(x[:50])
        b = saab.learners[1].predict(x[:50])
        # Identical seeds but different sample weights -> different nets
        # (unless round 1 was perfect, in which case weights stay uniform).
        if saab.rounds[0].error > 1e-6:
            assert not np.array_equal(a, b)
