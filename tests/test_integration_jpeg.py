"""Integration: whole-image JPEG codec approximation on the RCS."""

import numpy as np
import pytest

from repro import MEI, MEIConfig, TrainConfig, make_benchmark
from repro.workloads.jpeg import (
    blocks_to_image,
    codec_roundtrip,
    image_to_blocks,
    synthetic_image,
)

TRAIN = TrainConfig(epochs=60, batch_size=64, learning_rate=0.01, shuffle_seed=0)


class TestJPEGPipeline:
    @pytest.fixture(scope="class")
    def trained(self):
        bench = make_benchmark("jpeg")
        data = bench.dataset(n_train=2000, n_test=300, seed=0)
        mei = MEI(MEIConfig(64, 64, 64), seed=0).train(data.x_train, data.y_train, TRAIN)
        return bench, mei

    def test_block_error_in_paper_band(self, trained):
        bench, mei = trained
        data = bench.dataset(n_train=100, n_test=200, seed=9)
        error = bench.error_normalized(mei.predict(data.x_test), data.y_test)
        assert error < 0.12  # paper: 9.73%

    def test_whole_image_reconstruction(self, trained):
        bench, mei = trained
        in_scaler, out_scaler = bench.scalers()
        img = synthetic_image(32, 32, np.random.default_rng(4))
        blocks = image_to_blocks(img)
        exact = codec_roundtrip(blocks, 50)

        unit = in_scaler.transform(blocks.reshape(-1, 64))
        approx = out_scaler.inverse(mei.predict(unit)).reshape(-1, 8, 8)
        approx_img = blocks_to_image(np.clip(approx, 0, 255), 32, 32)
        exact_img = blocks_to_image(exact, 32, 32)

        # The RCS reconstruction tracks the exact codec's output.
        diff_vs_exact = np.mean(np.abs(approx_img - exact_img)) / 255.0
        assert diff_vs_exact < 0.12
        # And it still resembles the original image (lossy but sane).
        diff_vs_source = np.mean(np.abs(approx_img - img)) / 255.0
        assert diff_vs_source < 0.15
