"""Tests for SAAB (Algorithm 1) and LSB pruning (Algorithm 2, Line 22)."""

import numpy as np
import pytest

from repro.core.mei import MEI, MEIConfig
from repro.core.pruning import prune_input_bits, prune_lsbs, prune_output_bits
from repro.core.saab import SAAB, SAABConfig
from repro.device.variation import NonIdealFactors


def _toy_data(rng, n=400):
    x = rng.uniform(0, 1, (n, 2))
    y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
    return x, y


def _mei_factory(seed_base=100, hidden=12):
    return lambda k: MEI(MEIConfig(2, 1, hidden), seed=seed_base + k)


class TestSAABConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SAABConfig(n_learners=0)
        with pytest.raises(ValueError):
            SAABConfig(n_learners=1, compare_bits=0)


class TestSAAB:
    def test_trains_requested_learners(self, rng, fast_train):
        x, y = _toy_data(rng)
        saab = SAAB(_mei_factory(), SAABConfig(n_learners=3, seed=0))
        saab.train(x, y, fast_train)
        assert len(saab) == 3
        assert len(saab.alphas) == 3
        assert len(saab.rounds) == 3

    def test_predict_requires_training(self):
        saab = SAAB(_mei_factory(), SAABConfig(n_learners=2))
        with pytest.raises(RuntimeError):
            saab.predict_bits(np.zeros((1, 2)))

    def test_extend_continues_state(self, rng, fast_train):
        x, y = _toy_data(rng)
        saab = SAAB(_mei_factory(), SAABConfig(n_learners=1, seed=0))
        saab.extend(x, y, 1, fast_train)
        saab.extend(x, y, 2, fast_train)
        assert len(saab) == 3

    def test_extend_rejects_different_set(self, rng, fast_train):
        x, y = _toy_data(rng)
        saab = SAAB(_mei_factory(), SAABConfig(n_learners=1, seed=0))
        saab.extend(x, y, 1, fast_train)
        with pytest.raises(ValueError):
            saab.extend(x[:10], y[:10], 1, fast_train)

    def test_alpha_sign_tracks_error(self, rng, fast_train):
        x, y = _toy_data(rng)
        saab = SAAB(_mei_factory(hidden=16), SAABConfig(n_learners=2, compare_bits=2, seed=0))
        saab.train(x, y, fast_train)
        for round_info in saab.rounds:
            if round_info.error < 0.5:
                assert round_info.alpha > 0
            else:
                assert round_info.alpha < 0

    def test_ensemble_not_worse_than_single(self, rng, fast_train):
        """Boosting should not degrade accuracy materially."""
        x, y = _toy_data(rng, n=600)
        saab = SAAB(_mei_factory(hidden=16), SAABConfig(n_learners=3, compare_bits=3, seed=0))
        saab.train(x, y, fast_train)
        single = np.mean(np.abs(saab.learners[0].predict(x) - y))
        voted = np.mean(np.abs(saab.predict(x) - y))
        assert voted <= single * 1.1

    def test_vote_is_binary(self, rng, fast_train):
        x, y = _toy_data(rng)
        saab = SAAB(_mei_factory(), SAABConfig(n_learners=3, seed=0)).train(x, y, fast_train)
        bits = saab.predict_bits(x[:5])
        assert set(np.unique(bits)) <= {0.0, 1.0}

    def test_unanimous_vote_passes_through(self, rng, fast_train):
        """If all learners agree, the vote must return their output."""
        x, y = _toy_data(rng)
        saab = SAAB(_mei_factory(), SAABConfig(n_learners=3, seed=0)).train(x, y, fast_train)
        outs = [l.predict_bits(x[:20]) for l in saab.learners]
        agree = np.all(outs[0] == outs[1], axis=1) & np.all(outs[1] == outs[2], axis=1)
        if agree.any():
            voted = saab.predict_bits(x[:20])
            assert np.array_equal(voted[agree], outs[0][agree])

    def test_noise_aware_evaluation_runs(self, rng, fast_train):
        x, y = _toy_data(rng)
        noise = NonIdealFactors(sigma_pv=0.05, sigma_sf=0.05, seed=1)
        saab = SAAB(_mei_factory(), SAABConfig(n_learners=2, noise=noise, seed=0))
        saab.train(x, y, fast_train)
        assert len(saab) == 2

    def test_hard_samples_get_upweighted(self, rng, fast_train):
        x, y = _toy_data(rng)
        saab = SAAB(_mei_factory(hidden=8), SAABConfig(n_learners=1, compare_bits=4, seed=0))
        saab.extend(x, y, 1, fast_train)
        learner = saab.learners[0]
        from repro.quant.binarray import msb_match

        correct = msb_match(
            learner.predict_bits(x), learner.target_bits(y), 8, 4
        )
        if correct.any() and (~correct).any() and saab.alphas[0] > 0:
            assert saab._weights[~correct].mean() > saab._weights[correct].mean()


class TestPruning:
    @pytest.fixture
    def trained_mei(self, rng, fast_train):
        x, y = _toy_data(rng, n=500)
        mei = MEI(MEIConfig(2, 1, 16), seed=0).train(x, y, fast_train)
        return mei, x, y

    def _error_fn(self, x, y):
        return lambda mei: float(np.mean(np.abs(mei.predict(x) - y)))

    def test_input_pruning_respects_budget(self, trained_mei):
        mei, x, y = trained_mei
        error_fn = self._error_fn(x, y)
        base = error_fn(mei)
        result = prune_input_bits(mei, error_fn, max_error=base * 1.2)
        assert result.error <= base * 1.2
        assert 1 <= result.mei.in_bits <= 8

    def test_generous_budget_prunes_more(self, trained_mei):
        mei, x, y = trained_mei
        error_fn = self._error_fn(x, y)
        base = error_fn(mei)
        tight = prune_input_bits(mei, error_fn, max_error=base * 1.01)
        loose = prune_input_bits(mei, error_fn, max_error=0.5)
        assert loose.mei.in_bits <= tight.mei.in_bits

    def test_output_pruning_threshold_rule(self, trained_mei):
        """Only bits below the sqrt(mse) floor are candidates."""
        mei, x, y = trained_mei
        error_fn = self._error_fn(x, y)
        # With an (artificially) tiny MSE no bit qualifies for pruning.
        result = prune_output_bits(mei, error_fn, max_error=1.0, mse=1e-12)
        assert result.mei.out_bits == 8
        assert result.steps == 0

    def test_output_pruning_with_large_mse(self, trained_mei):
        mei, x, y = trained_mei
        error_fn = self._error_fn(x, y)
        result = prune_output_bits(mei, error_fn, max_error=0.5, mse=2.0**-10)
        assert result.mei.out_bits < 8

    def test_output_pruning_rejects_negative_mse(self, trained_mei):
        mei, x, y = trained_mei
        with pytest.raises(ValueError):
            prune_output_bits(mei, self._error_fn(x, y), max_error=0.5, mse=-1.0)

    def test_combined_pass_order(self, trained_mei):
        mei, x, y = trained_mei
        error_fn = self._error_fn(x, y)
        base = error_fn(mei)
        result = prune_lsbs(mei, error_fn, max_error=max(base * 1.1, 0.05),
                            mse=mei.mse(x, y))
        assert result.mei.in_bits <= 8
        assert result.mei.out_bits <= 8
        assert result.error <= max(base * 1.1, 0.05)

    def test_pruning_never_removes_all_bits(self, trained_mei):
        mei, x, y = trained_mei
        result = prune_lsbs(mei, lambda m: 0.0, max_error=1.0, mse=1.0)
        assert result.mei.in_bits >= 1
        assert result.mei.out_bits >= 1
