"""API quality gates: docstrings, __all__ consistency, examples compile.

These tests keep the library releasable: every public item documented,
every advertised name importable, every example at least syntactically
sound.
"""

import importlib
import inspect
import pathlib
import py_compile

import pytest

PACKAGES = [
    "repro",
    "repro.quant",
    "repro.nn",
    "repro.device",
    "repro.xbar",
    "repro.analog",
    "repro.cost",
    "repro.workloads",
    "repro.core",
    "repro.metrics",
    "repro.experiments",
    "repro.serialization",
]

MODULES = [
    "repro.quant.fixedpoint",
    "repro.quant.binarray",
    "repro.nn.activations",
    "repro.nn.layers",
    "repro.nn.losses",
    "repro.nn.network",
    "repro.nn.optimizers",
    "repro.nn.trainer",
    "repro.nn.datasets",
    "repro.device.rram",
    "repro.device.variation",
    "repro.device.programming",
    "repro.device.faults",
    "repro.device.dynamics",
    "repro.xbar.crossbar",
    "repro.xbar.mapping",
    "repro.xbar.mna",
    "repro.xbar.ir_drop",
    "repro.xbar.netlist",
    "repro.xbar.compensation",
    "repro.xbar.tiling",
    "repro.analog.converters",
    "repro.analog.periphery",
    "repro.cost.params",
    "repro.cost.area",
    "repro.cost.power",
    "repro.cost.breakdown",
    "repro.cost.calibration",
    "repro.cost.timing",
    "repro.workloads.base",
    "repro.workloads.fft",
    "repro.workloads.inversek2j",
    "repro.workloads.jmeint",
    "repro.workloads.jpeg",
    "repro.workloads.kmeans",
    "repro.workloads.sobel",
    "repro.workloads.expfit",
    "repro.workloads.registry",
    "repro.core.deploy",
    "repro.core.rcs",
    "repro.core.mei",
    "repro.core.saab",
    "repro.core.pruning",
    "repro.core.dse",
    "repro.core.tradeoff",
    "repro.core.calibration",
    "repro.metrics.error",
    "repro.metrics.image",
    "repro.metrics.robustness",
    "repro.experiments.runner",
    "repro.experiments.fig2",
    "repro.experiments.fig3",
    "repro.experiments.table1",
    "repro.experiments.fig4",
    "repro.experiments.fig5",
    "repro.experiments.bitlength",
    "repro.serialization",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    """Every name in __all__ must actually exist."""
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} does not declare __all__"
    for item in exported:
        assert hasattr(module, item), f"{name}.__all__ lists missing {item!r}"


@pytest.mark.parametrize("name", MODULES)
def test_public_callables_documented(name):
    """Public classes and functions defined in the module have docstrings."""
    module = importlib.import_module(name)
    for attr_name in getattr(module, "__all__", []):
        obj = getattr(module, attr_name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", None) != name:
                continue  # re-exported constant/class
            assert obj.__doc__ and obj.__doc__.strip(), (
                f"{name}.{attr_name} lacks a docstring"
            )


def test_examples_compile():
    examples = sorted(pathlib.Path("examples").glob("*.py"))
    assert len(examples) >= 3, "the repo promises at least three examples"
    for path in examples:
        py_compile.compile(str(path), doraise=True)


def test_examples_have_main_guard():
    for path in sorted(pathlib.Path("examples").glob("*.py")):
        source = path.read_text()
        assert '__name__ == "__main__"' in source, f"{path} lacks a main guard"
        assert source.lstrip().startswith('"""'), f"{path} lacks a module docstring"


def test_version_consistency():
    import repro

    pyproject = pathlib.Path("pyproject.toml").read_text()
    assert f'version = "{repro.__version__}"' in pyproject
