"""Tests for tiled deployment through AnalogMLP and MEI."""

import numpy as np
import pytest

from repro.core.deploy import AnalogMLP
from repro.core.mei import MEI, MEIConfig
from repro.device.faults import FaultModel, inject_faults_analog
from repro.device.programming import ProgrammingConfig
from repro.device.variation import NonIdealFactors
from repro.nn.network import MLP
from repro.nn.trainer import TrainConfig
from repro.xbar.mapping import MappingConfig
from repro.xbar.tiling import TiledDifferentialCrossbar


class TestTiledDeployment:
    def test_tall_layers_get_tiled(self):
        net = MLP((40, 8, 2), rng=0)
        analog = AnalogMLP(net, mapping_config=MappingConfig(max_rows_per_tile=16))
        assert isinstance(analog.crossbars[0], TiledDifferentialCrossbar)
        # The 8-row second layer stays untiled.
        assert not isinstance(analog.crossbars[1], TiledDifferentialCrossbar)

    def test_tiled_matches_software_network(self, rng):
        net = MLP((40, 8, 2), rng=0)
        analog = AnalogMLP(net, mapping_config=MappingConfig(max_rows_per_tile=16))
        x = rng.uniform(0, 1, (10, 40))
        assert np.allclose(analog.forward(x), net.predict(x), atol=1e-8)

    def test_freeze_variation_covers_tiles(self, rng):
        net = MLP((40, 8, 2), rng=0)
        analog = AnalogMLP(net, mapping_config=MappingConfig(max_rows_per_tile=16))
        x = rng.uniform(0, 1, (5, 40))
        before = analog.forward(x)
        analog.freeze_variation(NonIdealFactors(sigma_pv=0.3, seed=2))
        assert not np.allclose(analog.forward(x), before)

    def test_programming_covers_tiles(self, rng):
        net = MLP((40, 8, 2), rng=0)
        config = MappingConfig(max_rows_per_tile=16)
        ideal = AnalogMLP(net, mapping_config=config)
        programmed = AnalogMLP(
            net,
            mapping_config=config,
            programming=ProgrammingConfig(pulse_sigma=0.1, tolerance=0.05,
                                          max_iterations=2, seed=0),
        )
        a = ideal.crossbars[0].tiles[0].positive.conductances
        b = programmed.crossbars[0].tiles[0].positive.conductances
        assert not np.allclose(a, b)

    def test_fault_injection_covers_tiles(self):
        net = MLP((40, 8, 2), rng=0)
        analog = AnalogMLP(net, mapping_config=MappingConfig(max_rows_per_tile=16))
        count = inject_faults_analog(
            analog, FaultModel(stuck_on_rate=0.05, stuck_off_rate=0.05, seed=0)
        )
        assert count > 0

    def test_mei_trains_and_predicts_tiled(self, rng):
        x = rng.uniform(0, 1, (300, 4))
        y = 0.3 + 0.4 * x.mean(axis=1, keepdims=True)
        mei = MEI(
            MEIConfig(4, 1, 8),  # 32 input ports
            mapping_config=MappingConfig(max_rows_per_tile=16),
            seed=0,
        ).train(x, y, TrainConfig(epochs=25, batch_size=64, shuffle_seed=0))
        assert isinstance(mei.analog.crossbars[0], TiledDifferentialCrossbar)
        pred = mei.predict(x[:20])
        assert np.mean(np.abs(pred - y[:20])) < 0.15

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MappingConfig(max_rows_per_tile=0)
