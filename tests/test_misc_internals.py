"""Targeted tests for internals: MNA analytics, DSE topology, runner."""

import numpy as np
import pytest

from repro.core.dse import _topology_of
from repro.core.mei import MEI, MEIConfig
from repro.core.saab import SAAB, SAABConfig
from repro.cost.area import MEITopology
from repro.experiments.runner import QUICK_SCALE, train_samples_for
from repro.nn.trainer import TrainConfig
from repro.xbar.mna import MNACrossbar


class TestMNAAnalytical:
    def test_single_cell_series_circuit(self):
        """A 1x1 crossbar is a 3-element series divider.

        source -- g (device) -- g_w (bitline wire) -- [T] -- g_s -- gnd
        => V_T = V * (1/g_s) / (1/g + 1/g_w + 1/g_s)
        """
        g, g_w, g_s, v = 5e-5, 1.0 / 3.0, 1e-3, 0.8
        mna = MNACrossbar(np.array([[g]]), g_s=g_s, wire_resistance=1.0 / g_w)
        expected = v * (1 / g_s) / (1 / g + 1 / g_w + 1 / g_s)
        solved = mna.solve(np.array([v]))[0, 0]
        assert solved == pytest.approx(expected, rel=1e-9)

    def test_zero_conductance_cell_passes_nothing(self):
        mna = MNACrossbar(np.array([[0.0]]), g_s=1e-3, wire_resistance=1.0)
        assert mna.solve(np.array([1.0]))[0, 0] == pytest.approx(0.0, abs=1e-15)

    def test_two_cell_column_superposes(self):
        """With huge wire conductance, two rows share one divider node."""
        g1, g2, g_s = 2e-5, 7e-5, 1e-3
        mna = MNACrossbar(np.array([[g1], [g2]]), g_s=g_s, wire_resistance=1e-9)
        v = np.array([0.5, 0.9])
        expected = (g1 * v[0] + g2 * v[1]) / (g_s + g1 + g2)
        assert mna.solve(v)[0, 0] == pytest.approx(expected, rel=1e-4)


class TestDSETopologyOf:
    def test_single_mei(self):
        mei = MEI(MEIConfig(2, 1, 8), seed=0)
        topo = _topology_of(mei)
        assert topo.in_ports == 16 and topo.hidden == 8

    def test_saab_scales_hidden(self, rng):
        x = rng.uniform(0, 1, (200, 2))
        y = 0.3 + 0.4 * x[:, :1]
        saab = SAAB(
            lambda k: MEI(MEIConfig(2, 1, 8), seed=k),
            SAABConfig(n_learners=2, seed=0),
        ).train(x, y, TrainConfig(epochs=5, batch_size=64, shuffle_seed=0))
        topo = _topology_of(saab)
        assert topo.hidden == 16  # 2 learners x 8
        assert topo.in_ports == 16

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            _topology_of(object())


class TestRunnerHelpers:
    def test_jmeint_gets_more_samples(self):
        assert train_samples_for("jmeint", QUICK_SCALE) == 4 * QUICK_SCALE.n_train

    def test_others_unchanged(self):
        for name in ("fft", "sobel", "jpeg"):
            assert train_samples_for(name, QUICK_SCALE) == QUICK_SCALE.n_train


class TestMEITopologyEdge:
    def test_single_bit_groups(self):
        topo = MEITopology(in_ports=3, hidden=4, out_ports=2, in_groups=3, out_groups=2)
        assert topo.in_bits == 1 and topo.out_bits == 1
        assert str(topo) == "(3.1)x4x(2.1)"


class TestRepeatWithSeeds:
    def test_statistics(self):
        from repro.experiments.runner import repeat_with_seeds

        mean, std, values = repeat_with_seeds(lambda s: float(s * 2), [1, 2, 3])
        assert mean == 4.0
        assert len(values) == 3
        assert std > 0

    def test_requires_seeds(self):
        import pytest as _pytest

        from repro.experiments.runner import repeat_with_seeds

        with _pytest.raises(ValueError):
            repeat_with_seeds(lambda s: 0.0, [])
