"""Error-budget attribution: hardware hooks and the harness itself.

Covers the counterfactual plumbing added for the stage-attribution
harness — first-order IR drop in the crossbar, the exact (noise-capable
but quantization-free) mapping, seeded periphery — and then the harness
invariants: the additivity identity, stage completeness, metric
publication, and the compare-gate story (a deliberately doubled
``sigma_pv`` must move its own budget line).
"""

import functools

import numpy as np
import pytest

from repro.analog.converters import ADC, DAC
from repro.analog.periphery import Comparator
from repro.analysis.errorbudget import (
    STAGES,
    ErrorBudgetConfig,
    ErrorBudgetResult,
    StageKnobs,
    attribute_error,
    publish_metrics,
)
from repro.core.mei import MEI, MEIConfig
from repro.core.saab import SAAB, SAABConfig
from repro.device.variation import NonIdealFactors
from repro.nn.trainer import TrainConfig
from repro.obs import metrics as obs_metrics
from repro.xbar.crossbar import Crossbar, effective_conductances
from repro.xbar.mapping import (
    DifferentialCrossbar,
    ExactDifferentialCrossbar,
    MappingConfig,
)


def _toy_data(n=48, seed=3):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.05, 0.95, size=(n, 2))
    y = x.mean(axis=1, keepdims=True)
    return x, y


@functools.lru_cache(maxsize=1)
def _trained_mei():
    x, y = _toy_data()
    mei = MEI(MEIConfig(in_groups=2, out_groups=1, hidden=6, bits=4), seed=0)
    mei.train(x, y, TrainConfig(epochs=15, batch_size=16, learning_rate=0.05,
                                shuffle_seed=0))
    return mei


def _mean_abs(predicted, target):
    return float(np.mean(np.abs(predicted - target)))


@functools.lru_cache(maxsize=1)
def _toy_result():
    x, y = _toy_data()
    return attribute_error(
        _trained_mei(), x, y, _mean_abs,
        ErrorBudgetConfig(trials=3, seed=0), benchmark="toy",
    )


class TestEffectiveConductances:
    def test_zero_resistance_is_identity(self):
        g = np.random.default_rng(0).uniform(1e-6, 1e-4, size=(4, 3))
        assert effective_conductances(g, 0.0) is g

    def test_resistance_strictly_reduces_conductance(self):
        g = np.full((4, 4), 5e-5)
        eff = effective_conductances(g, 2.0)
        assert np.all(eff < g)

    def test_far_corner_degrades_most(self):
        g = np.full((4, 4), 5e-5)
        eff = effective_conductances(g, 2.0)
        # path length grows with i+j, so [0,0] sees the least drop
        assert eff[0, 0] == eff.max()
        assert eff[-1, -1] == eff.min()

    def test_trial_stacks_match_per_slice(self):
        rng = np.random.default_rng(1)
        g = rng.uniform(1e-6, 1e-4, size=(3, 4, 2))
        stacked = effective_conductances(g, 2.0)
        for t in range(3):
            np.testing.assert_array_equal(
                stacked[t], effective_conductances(g[t], 2.0)
            )

    def test_negative_resistance_rejected(self):
        with pytest.raises(ValueError):
            effective_conductances(np.ones((2, 2)), -1.0)


class TestCrossbarWireResistance:
    def test_zero_keeps_legacy_coefficients(self):
        g = np.random.default_rng(2).uniform(1e-6, 1e-4, size=(3, 2))
        plain = Crossbar(g, g_s=1e-4)
        wired = Crossbar(g, g_s=1e-4, wire_resistance=0.0)
        np.testing.assert_array_equal(plain.coefficients(), wired.coefficients())

    def test_nonzero_changes_coefficients(self):
        g = np.random.default_rng(2).uniform(1e-6, 1e-4, size=(6, 3))
        plain = Crossbar(g, g_s=1e-4)
        wired = Crossbar(g, g_s=1e-4, wire_resistance=2.0)
        assert not np.array_equal(plain.coefficients(), wired.coefficients())

    def test_mapping_config_threads_resistance(self):
        w = np.random.default_rng(4).uniform(-1.0, 1.0, size=(4, 2))
        x = np.random.default_rng(5).uniform(0.0, 1.0, size=(8, 4))
        clean = DifferentialCrossbar(w, config=MappingConfig())
        wired = DifferentialCrossbar(w, config=MappingConfig(wire_resistance=2.0))
        assert not np.array_equal(clean.apply(x), wired.apply(x))

    def test_mapping_config_rejects_negative_resistance(self):
        with pytest.raises(ValueError):
            MappingConfig(wire_resistance=-0.5)


class TestExactDifferentialCrossbar:
    def test_noise_free_apply_is_exact_matmul(self):
        w = np.random.default_rng(6).uniform(-1.0, 1.0, size=(4, 3))
        x = np.random.default_rng(7).uniform(0.0, 1.0, size=(10, 4))
        xbar = ExactDifferentialCrossbar(w)
        np.testing.assert_allclose(xbar.apply(x), x @ w, rtol=0, atol=1e-15)

    def test_trials_match_serial_apply_under_noise(self):
        w = np.random.default_rng(8).uniform(-1.0, 1.0, size=(3, 2))
        x = np.random.default_rng(9).uniform(0.0, 1.0, size=(5, 3))
        noise = NonIdealFactors(sigma_pv=0.2, sigma_sf=0.1, seed=11)
        xbar = ExactDifferentialCrossbar(w)
        x3 = np.broadcast_to(x, (3,) + x.shape).copy()
        stacked = xbar.apply_trials(x3, noise, [noise.rng(t) for t in range(3)])
        serial = np.stack([xbar.apply(x, noise, noise.rng(t)) for t in range(3)])
        np.testing.assert_allclose(stacked, serial, rtol=0, atol=1e-12)

    def test_pv_shapes_match_differential_pair(self):
        w = np.random.default_rng(10).uniform(-1.0, 1.0, size=(4, 3))
        exact = ExactDifferentialCrossbar(w)
        real = DifferentialCrossbar(w, config=MappingConfig())
        assert [tuple(s) for s in exact.pv_shapes()] == [
            tuple(s) for s in real.pv_shapes()
        ]

    def test_snapshots_weights(self):
        w = np.ones((2, 2))
        xbar = ExactDifferentialCrossbar(w)
        w[:] = 5.0
        np.testing.assert_array_equal(
            xbar.apply(np.eye(2)), np.ones((2, 2))
        )


class TestSeededPeriphery:
    def test_comparator_instance_rng_is_deterministic(self):
        x = np.linspace(0.0, 1.0, 32)
        a = Comparator(offset_sigma=0.1, seed=5).apply(x)
        b = Comparator(offset_sigma=0.1, seed=5).apply(x)
        np.testing.assert_array_equal(a, b)

    def test_explicit_rng_still_wins(self):
        x = np.linspace(0.0, 1.0, 32)
        comparator = Comparator(offset_sigma=0.1, seed=5)
        a = comparator.apply(x, rng=np.random.default_rng(9))
        b = Comparator(offset_sigma=0.1, seed=99).apply(
            x, rng=np.random.default_rng(9)
        )
        np.testing.assert_array_equal(a, b)

    def test_converters_accept_seed(self):
        x = np.linspace(0.0, 1.0, 16)
        a = DAC(bits=4, noise_lsb=0.5, seed=3).convert(x)
        b = DAC(bits=4, noise_lsb=0.5, seed=3).convert(x)
        np.testing.assert_array_equal(a, b)
        c = ADC(bits=4, noise_lsb=0.5, seed=3).convert(x)
        d = ADC(bits=4, noise_lsb=0.5, seed=3).convert(x)
        np.testing.assert_array_equal(c, d)

    def test_idealized_factors_zero_selected_sigmas(self):
        noise = NonIdealFactors(sigma_pv=0.2, sigma_sf=0.1, seed=7)
        no_pv = noise.idealized(pv=True)
        assert no_pv.sigma_pv == 0.0 and no_pv.sigma_sf == 0.1
        assert no_pv.seed == noise.seed
        clean = noise.idealized(pv=True, sf=True)
        assert clean.sigma_pv == 0.0 and clean.sigma_sf == 0.0


class TestDeployVariant:
    def test_all_ideal_variant_matches_digital(self):
        mei = _trained_mei()
        x, _ = _toy_data()
        knobs = StageKnobs(
            in_bits=mei.in_bits, out_bits=mei.out_bits, exact_mapping=True,
            sigma_pv=0.0, sigma_sf=0.0, comparator_offset=0.0,
            wire_resistance=0.0,
        )
        variant = mei.deploy_variant(
            mapping_config=MappingConfig(wire_resistance=0.0),
            exact_mapping=True,
            comparator=Comparator(offset_sigma=0.0, seed=0),
        )
        np.testing.assert_allclose(
            variant.predict(x), mei.predict_digital(x), rtol=0, atol=1e-12
        )
        assert knobs.substituting("pv", knobs) == knobs

    def test_variant_does_not_mutate_original(self):
        mei = _trained_mei()
        x, _ = _toy_data()
        before = mei.predict(x).copy()
        mei.deploy_variant(
            in_bits=2, out_bits=2,
            mapping_config=MappingConfig(wire_resistance=2.0),
        )
        np.testing.assert_array_equal(mei.predict(x), before)

    def test_exact_mapping_conflicts_with_programming(self):
        from repro.core.deploy import AnalogMLP
        from repro.device.programming import ProgrammingConfig

        mei = _trained_mei()
        with pytest.raises(ValueError):
            AnalogMLP(
                mei.network,
                MappingConfig(),
                mei.device,
                programming=ProgrammingConfig(),
                exact_mapping=True,
            )

    def test_saab_remapped_preserves_boosting_state(self):
        x, y = _toy_data()
        saab = SAAB(
            lambda k: MEI(MEIConfig(in_groups=2, out_groups=1, hidden=4, bits=4),
                          seed=k),
            SAABConfig(n_learners=2, seed=0),
        ).train(x, y, TrainConfig(epochs=5, batch_size=16, learning_rate=0.05,
                                  shuffle_seed=0))
        clone = saab.remapped(lambda learner: learner)
        assert clone.alphas == saab.alphas
        assert clone is not saab
        np.testing.assert_array_equal(clone.predict(x), saab.predict(x))

    def test_saab_remapped_requires_training(self):
        saab = SAAB(
            lambda k: MEI(MEIConfig(in_groups=2, out_groups=1, hidden=4, bits=4),
                          seed=k),
            SAABConfig(n_learners=2, seed=0),
        )
        with pytest.raises(RuntimeError):
            saab.remapped(lambda learner: learner)


class TestAttributeError:
    def test_additivity_identity_is_exact(self):
        result = _toy_result()
        total = sum(stage.delta for stage in result.stages)
        assert abs(result.total_gap - (total + result.residual)) < 1e-12

    def test_every_stage_attributed(self):
        result = _toy_result()
        assert tuple(s.stage for s in result.stages) == STAGES

    def test_counterfactual_deltas_consistent(self):
        result = _toy_result()
        for stage in result.stages:
            assert stage.delta == pytest.approx(
                result.err_real - stage.counterfactual_error
            )
            assert stage.leave_one_in_delta == pytest.approx(
                stage.leave_one_in_error - result.err_ideal
            )

    def test_bit_planes_cover_out_bits(self):
        result = _toy_result()
        assert len(result.bit_plane_rates) == _trained_mei().out_bits
        assert all(0.0 <= r <= 1.0 for r in result.bit_plane_rates)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ErrorBudgetConfig(trials=0)
        with pytest.raises(ValueError):
            ErrorBudgetConfig(sigma_pv=-0.1)
        with pytest.raises(ValueError):
            ErrorBudgetConfig(stages=("nonsense",))

    def test_metrics_namespace(self):
        metrics = _toy_result().metrics()
        assert "errorbudget.toy.total_gap" in metrics
        assert "errorbudget.toy.stage.pv.delta" in metrics
        assert "errorbudget.toy.bitplane.bit0" in metrics

    def test_publish_metrics_fills_registry(self):
        publish_metrics(_toy_result())
        gauges = obs_metrics.snapshot()["gauges"]
        assert "error_budget_toy_total_gap" in gauges
        assert "error_budget_toy_pv_delta" in gauges

    def test_result_roundtrips_to_dict(self):
        payload = _toy_result().as_dict()
        assert payload["name"] == "toy"
        assert len(payload["stages"]) == len(STAGES)

    def test_saab_system_supported(self):
        x, y = _toy_data()
        saab = SAAB(
            lambda k: MEI(MEIConfig(in_groups=2, out_groups=1, hidden=4, bits=4),
                          seed=k),
            SAABConfig(n_learners=2, seed=0),
        ).train(x, y, TrainConfig(epochs=5, batch_size=16, learning_rate=0.05,
                                  shuffle_seed=0))
        result = attribute_error(
            saab, x, y, _mean_abs, ErrorBudgetConfig(trials=2, seed=0),
            benchmark="saab_toy",
        )
        assert isinstance(result, ErrorBudgetResult)
        total = sum(stage.delta for stage in result.stages)
        assert abs(result.total_gap - (total + result.residual)) < 1e-12


class TestCompareGate:
    def test_doubled_sigma_pv_moves_its_own_budget_line(self):
        from repro.obs.compare import compare_metrics

        x, y = _toy_data()
        mei = _trained_mei()
        baseline = attribute_error(
            mei, x, y, _mean_abs,
            ErrorBudgetConfig(sigma_pv=0.3, trials=4, seed=0), benchmark="toy",
        )
        perturbed = attribute_error(
            mei, x, y, _mean_abs,
            ErrorBudgetConfig(sigma_pv=0.6, trials=4, seed=0), benchmark="toy",
        )
        result = compare_metrics(baseline.metrics(), perturbed.metrics())
        verdicts = {v.name: v for v in result.verdicts}
        pv_line = verdicts["errorbudget.toy.stage.pv.delta"]
        # doubling PV must visibly worsen the PV budget line...
        assert pv_line.status == "regressed"
        # ...and untouched stage knobs must not regress with it
        truncation = verdicts["errorbudget.toy.stage.output_truncation.delta"]
        assert truncation.status != "regressed"


class TestBaselineGuard:
    def test_refuses_dirty_checkout(self, monkeypatch):
        from repro.experiments import errorbudget as driver

        monkeypatch.setattr(driver.runinfo, "git_dirty", lambda: True)
        entry = {"git_sha": "abc123"}
        message = driver.baseline_guard(entry)
        assert message is not None and "dirty" in message

    def test_refuses_unknown_sha(self, monkeypatch):
        from repro.experiments import errorbudget as driver

        monkeypatch.setattr(driver.runinfo, "git_dirty", lambda: None)
        assert driver.baseline_guard({"git_sha": None}) is not None

    def test_allows_clean_checkout(self, monkeypatch):
        from repro.experiments import errorbudget as driver

        monkeypatch.setattr(driver.runinfo, "git_dirty", lambda: False)
        assert driver.baseline_guard({"git_sha": "abc123"}) is None

    def test_allow_dirty_overrides(self, monkeypatch):
        from repro.experiments import errorbudget as driver

        monkeypatch.setattr(driver.runinfo, "git_dirty", lambda: True)
        assert driver.baseline_guard({"git_sha": "abc"}, allow_dirty=True) is None

    def test_write_baseline_roundtrip(self, tmp_path):
        import json

        from repro.experiments.errorbudget import write_errorbudget_baseline

        entry = {"kind": "errorbudget", "metrics": {"errorbudget.toy.total_gap": 0.1}}
        target = write_errorbudget_baseline(entry, tmp_path / "eb.json")
        assert json.loads(target.read_text()) == entry


class TestHistoryAndReport:
    def test_entries_of_kind_defaults_seed_era_to_bench(self):
        from repro.obs.history import entries_of_kind

        history = [
            {"metrics": {}},
            {"kind": "bench", "metrics": {}},
            {"kind": "errorbudget", "metrics": {}},
        ]
        assert len(entries_of_kind(history, "bench")) == 2
        assert len(entries_of_kind(history, "errorbudget")) == 1

    def test_report_renders_stacked_budget(self):
        from repro.obs.report import errorbudget_breakdown, stacked_budget_svg

        history = [
            {
                "kind": "errorbudget",
                "created": "2026-01-01T00:00:00",
                "metrics": {
                    "errorbudget.fft.total_gap": 0.08,
                    "errorbudget.fft.residual": 0.01,
                    "errorbudget.fft.err_real": 0.2,
                    "errorbudget.fft.err_ideal": 0.12,
                    "errorbudget.fft.stage.pv.delta": 0.06,
                    "errorbudget.fft.stage.input_codec.delta": 0.01,
                },
            }
        ]
        breakdown = errorbudget_breakdown(history)
        assert "fft" in breakdown
        stages = breakdown["fft"]["stages"]
        assert stages[0][0] == "pv"
        svg = stacked_budget_svg(stages)
        assert svg.startswith("<svg") and "pv" in svg

    def test_dashboard_parses_published_gauges(self):
        from repro.obs.dashboard import errorbudget_from_gauges

        publish_metrics(_toy_result())
        gauges = obs_metrics.snapshot()["gauges"]
        budgets = errorbudget_from_gauges(gauges)
        assert "toy" in budgets
        assert {stage for stage, _ in budgets["toy"]} == set(STAGES)
