"""SAAB over TraditionalRCS learners (the protocol's second implementor)."""

import numpy as np

from repro.core.rcs import TraditionalRCS
from repro.core.saab import SAAB, SAABConfig
from repro.cost.area import Topology
from repro.nn.trainer import TrainConfig
from repro.xbar.mapping import MappingConfig

FAST = TrainConfig(epochs=30, batch_size=64, learning_rate=0.02, shuffle_seed=0)


def _toy_data(rng, n=400):
    x = rng.uniform(0, 1, (n, 2))
    y = 0.2 + 0.5 * (0.6 * x[:, :1] + 0.4 * x[:, 1:] ** 2)
    return x, y


class TestSAABOverRCS:
    def test_trains_and_votes(self, rng):
        x, y = _toy_data(rng)
        saab = SAAB(
            lambda k: TraditionalRCS(Topology(2, 8, 1), seed=60 + k),
            SAABConfig(n_learners=3, compare_bits=4, seed=0),
        ).train(x, y, FAST)
        assert len(saab) == 3
        pred = saab.predict(x[:40])
        assert pred.shape == (40, 1)
        # Decoded through the generic codec path: unit-interval values.
        assert np.all((pred >= 0) & (pred < 1))

    def test_vote_accuracy_reasonable(self, rng):
        x, y = _toy_data(rng, n=600)
        saab = SAAB(
            lambda k: TraditionalRCS(Topology(2, 8, 1), seed=60 + k),
            SAABConfig(n_learners=3, compare_bits=4, seed=0),
        ).train(x, y, FAST)
        error = float(np.mean(np.abs(saab.predict(x) - y)))
        assert error < 0.1

    def test_mixed_architectures_rejected_gracefully(self, rng):
        """Nothing stops mixing learner types structurally — the vote
        just needs consistent port counts.  Same topology works."""
        from repro.core.mei import MEI, MEIConfig

        x, y = _toy_data(rng)

        def factory(k):
            if k % 2 == 0:
                return TraditionalRCS(Topology(2, 8, 1), seed=k)
            return MEI(MEIConfig(2, 1, 8), seed=k)

        saab = SAAB(factory, SAABConfig(n_learners=2, compare_bits=4, seed=0))
        saab.train(x, y, FAST)
        # Both emit 8 bits per output group, so voting is well-defined.
        bits = saab.predict_bits(x[:10])
        assert bits.shape == (10, 8)

    def test_rcs_with_custom_mapping_config(self, rng):
        x, y = _toy_data(rng)
        rcs = TraditionalRCS(
            Topology(2, 8, 1),
            mapping_config=MappingConfig(input_nonlinearity=1.0),
            seed=0,
        ).train(x, y, FAST)
        assert rcs.analog.crossbars[0].positive.nonlinearity == 1.0
        pred = rcs.predict(x[:20])
        assert pred.shape == (20, 1)
