"""Tests for IR-drop compensation."""

import numpy as np
import pytest

from repro.device.rram import HFOX_DEVICE
from repro.xbar.compensation import (
    compensate_ir_drop,
    effective_coefficients,
)
from repro.xbar.crossbar import coefficients_from_conductance


@pytest.fixture
def array(rng):
    return rng.uniform(HFOX_DEVICE.g_min, HFOX_DEVICE.g_max / 2, (16, 16))


class TestEffectiveCoefficients:
    def test_matches_ideal_without_wire_loss(self, array):
        effective = effective_coefficients(array, g_s=1e-3, wire_resistance=1e-9)
        ideal = coefficients_from_conductance(array, 1e-3)
        assert np.allclose(effective, ideal, rtol=1e-3, atol=1e-6)

    def test_wire_loss_shrinks_coefficients_on_average(self, array):
        """IR drop reduces the bulk of the coefficients.  A few small
        cells can slightly *gain* (their column's reduced loading lifts
        the shared terminal voltage), so the check is aggregate."""
        effective = effective_coefficients(array, g_s=1e-3, wire_resistance=10.0)
        ideal = coefficients_from_conductance(array, 1e-3)
        assert np.mean(ideal - effective) > 0
        assert np.mean(effective <= ideal + 1e-12) > 0.9


class TestCompensation:
    def test_reduces_coefficient_error(self, array):
        report = compensate_ir_drop(array, g_s=1e-3, wire_resistance=7.0)
        assert report.error_after < report.error_before
        assert report.improvement > 0.5

    def test_moderate_ir_drop_nearly_eliminated(self, array):
        report = compensate_ir_drop(array, g_s=1e-3, wire_resistance=3.0,
                                    iterations=4)
        assert report.error_after < 0.01

    def test_extreme_ir_drop_saturates(self, rng):
        """At very high wire resistance cells pin at g_max and the
        residual error stays large — the paper's reason to stay at
        90nm for big arrays."""
        g = rng.uniform(HFOX_DEVICE.g_min, HFOX_DEVICE.g_max / 2, (32, 32))
        report = compensate_ir_drop(g, g_s=1e-3, wire_resistance=26.0)
        assert report.saturated_fraction > 0.01
        assert report.improvement < 0.7

    def test_output_within_device_window(self, array):
        report = compensate_ir_drop(array, g_s=1e-3, wire_resistance=7.0)
        assert np.all(report.conductances >= HFOX_DEVICE.g_min)
        assert np.all(report.conductances <= HFOX_DEVICE.g_max)

    def test_custom_target(self, array):
        target = coefficients_from_conductance(array, 1e-3) * 0.9
        report = compensate_ir_drop(array, g_s=1e-3, wire_resistance=5.0,
                                    target=target)
        effective = effective_coefficients(report.conductances, 1e-3, 5.0)
        scale = np.max(np.abs(target))
        assert np.max(np.abs(effective - target)) / scale < 0.05

    def test_more_iterations_not_worse(self, array):
        one = compensate_ir_drop(array, g_s=1e-3, wire_resistance=7.0, iterations=1)
        four = compensate_ir_drop(array, g_s=1e-3, wire_resistance=7.0, iterations=4)
        assert four.error_after <= one.error_after * 1.05

    def test_validation(self, array):
        with pytest.raises(ValueError):
            compensate_ir_drop(array, g_s=1e-3, wire_resistance=5.0, iterations=0)
        with pytest.raises(ValueError):
            compensate_ir_drop(array, g_s=1e-3, wire_resistance=5.0,
                               target=np.zeros((2, 2)))
