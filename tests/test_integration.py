"""Integration tests: full pipelines across modules.

These exercise the public API end to end the way the examples and the
paper's evaluation do — workload -> architecture -> deployment ->
noise -> metric — at small but honest scales.
"""

import numpy as np
import pytest

from repro import (
    MEI,
    SAAB,
    DSEConfig,
    MEIConfig,
    NonIdealFactors,
    SAABConfig,
    TraditionalRCS,
    explore,
    make_benchmark,
)
from repro.nn.trainer import TrainConfig
from repro.workloads.fft import approximate_fft
from repro.workloads.kmeans import segment_image, synthetic_rgb_image
from repro.workloads.sobel import sobel_image

FAST = TrainConfig(epochs=60, batch_size=128, learning_rate=0.01, shuffle_seed=0)
# FFT's bit mapping (zero crossings in cos/sin) needs a longer budget.
FFT_TRAIN = TrainConfig(
    epochs=250, batch_size=128, learning_rate=0.01, shuffle_seed=0,
    lr_decay=0.5, lr_decay_every=80,
)


class TestEndToEndFFT:
    """The approximate-computing story: an RCS inside a real FFT."""

    @pytest.fixture(scope="class")
    def trained_mei(self):
        bench = make_benchmark("fft")
        data = bench.dataset(n_train=2500, n_test=300, seed=0)
        mei = MEI(MEIConfig(1, 2, 32), seed=0).train(data.x_train, data.y_train, FFT_TRAIN)
        return bench, data, mei

    def test_mei_approximates_twiddle(self, trained_mei):
        bench, data, mei = trained_mei
        error = bench.error_normalized(mei.predict(data.x_test), data.y_test)
        assert error < 0.35

    def test_fft_with_mei_twiddles(self, trained_mei):
        bench, _, mei = trained_mei
        in_scaler, out_scaler = bench.scalers()

        def mei_twiddle(fractions):
            unit = mei.predict(in_scaler.transform(fractions))
            return out_scaler.inverse(unit)

        signal = np.sin(np.linspace(0, 4 * np.pi, 64))
        approx = approximate_fft(signal, mei_twiddle)
        exact = np.fft.fft(signal)
        rel = np.abs(approx - exact).max() / np.abs(exact).max()
        assert rel < 0.5  # approximate computing: degraded but usable


class TestEndToEndSobel:
    def test_full_image_pipeline(self):
        bench = make_benchmark("sobel")
        data = bench.dataset(n_train=2500, n_test=300, seed=0)
        mei = MEI(MEIConfig(9, 1, 32), seed=0).train(data.x_train, data.y_train, FAST)
        in_scaler, out_scaler = bench.scalers()

        def mei_window(windows):
            return out_scaler.inverse(mei.predict(in_scaler.transform(windows)))

        from repro.workloads.jpeg import synthetic_image

        img = synthetic_image(24, 24, np.random.default_rng(3))
        approx_edges = sobel_image(img, window_fn=mei_window)
        exact_edges = sobel_image(img)
        diff = np.mean(np.abs(approx_edges - exact_edges)) / 255.0
        assert diff < 0.25


class TestEndToEndKMeans:
    def test_segmentation_with_approximate_distance(self):
        bench = make_benchmark("kmeans")
        data = bench.dataset(n_train=2500, n_test=300, seed=0)
        mei = MEI(MEIConfig(6, 1, 32), seed=0).train(data.x_train, data.y_train, FAST)
        in_scaler, out_scaler = bench.scalers()

        def mei_distance(pairs):
            return out_scaler.inverse(mei.predict(in_scaler.transform(pairs)))

        img = synthetic_rgb_image(12, 12, np.random.default_rng(1), n_regions=3)
        approx_seg = segment_image(img, k=3, distance_fn=mei_distance, rng=0,
                                   max_iterations=4)
        exact_seg = segment_image(img, k=3, rng=0, max_iterations=4)
        # Approximate distances still yield a segmentation close to exact.
        diff = np.mean(np.abs(approx_seg - exact_seg)) / 255.0
        assert diff < 0.35


class TestNoiseRobustnessShape:
    """Fig. 5's qualitative claims at integration level."""

    @pytest.fixture(scope="class")
    def systems(self):
        bench = make_benchmark("sobel")
        data = bench.dataset(n_train=2000, n_test=300, seed=0)
        rcs = TraditionalRCS(bench.spec.topology, seed=0).train(
            data.x_train, data.y_train, FAST
        )
        mei = MEI(MEIConfig(9, 1, 16), seed=0).train(data.x_train, data.y_train, FAST)
        return bench, data, rcs, mei

    def test_error_monotone_in_pv(self, systems):
        bench, data, rcs, _ = systems
        errors = []
        for sigma in (0.0, 0.15, 0.4):
            noise = NonIdealFactors(sigma_pv=sigma, seed=1)
            trials = [
                bench.error_normalized(rcs.predict(data.x_test, noise, t), data.y_test)
                for t in range(3)
            ]
            errors.append(np.mean(trials))
        assert errors[0] <= errors[1] <= errors[2] * 1.05

    def test_mei_more_robust_to_sf_than_adda(self, systems):
        bench, data, rcs, mei = systems
        noise = NonIdealFactors(sigma_sf=0.3, seed=2)
        adda_clean = bench.error_normalized(rcs.predict(data.x_test), data.y_test)
        mei_clean = bench.error_normalized(mei.predict(data.x_test), data.y_test)
        adda_noisy = np.mean([
            bench.error_normalized(rcs.predict(data.x_test, noise, t), data.y_test)
            for t in range(5)
        ])
        mei_noisy = np.mean([
            bench.error_normalized(mei.predict(data.x_test, noise, t), data.y_test)
            for t in range(5)
        ])
        assert (mei_noisy - mei_clean) < (adda_noisy - adda_clean)


class TestSAABOnBenchmark:
    def test_boost_improves_or_holds_fft(self):
        bench = make_benchmark("fft")
        data = bench.dataset(n_train=2500, n_test=300, seed=0)
        saab = SAAB(
            lambda k: MEI(MEIConfig(1, 2, 32), seed=100 + k),
            SAABConfig(n_learners=3, compare_bits=4, seed=0),
        ).train(data.x_train, data.y_train, FFT_TRAIN)
        single = bench.error_normalized(saab.learners[0].predict(data.x_test), data.y_test)
        boosted = bench.error_normalized(saab.predict(data.x_test), data.y_test)
        assert boosted <= single * 1.05


class TestDSEOnBenchmark:
    def test_explore_sobel_end_to_end(self):
        bench = make_benchmark("sobel")
        data = bench.dataset(n_train=1500, n_test=300, seed=0)
        config = DSEConfig(
            error_requirement=0.25,
            initial_hidden=8,
            max_hidden=32,
            prune=True,
            seed=0,
        )
        result = explore(
            bench.spec.topology,
            data.x_train,
            data.y_train,
            data.x_test,
            data.y_test,
            bench.error_normalized,
            config,
            FAST,
        )
        assert result.status == "ok"
        assert result.error <= 0.25
        assert 0 < result.area_saved < 1
