"""Unit tests for the RRAM device, variation and programming models."""

import numpy as np
import pytest

from repro.device.programming import ProgrammingConfig, program_conductances
from repro.device.rram import HFOX_DEVICE, RRAMDevice
from repro.device.variation import IDEAL, NonIdealFactors, lognormal_factors


class TestRRAMDevice:
    def test_default_device_bounds(self):
        assert HFOX_DEVICE.g_min == 1e-7
        assert HFOX_DEVICE.g_max == 1e-4
        assert HFOX_DEVICE.dynamic_range == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            RRAMDevice(r_on=-1)
        with pytest.raises(ValueError):
            RRAMDevice(r_on=1e6, r_off=1e4)
        with pytest.raises(ValueError):
            RRAMDevice(levels=-1)

    def test_cell_area_4f2(self):
        device = RRAMDevice(feature_nm=90.0)
        assert np.isclose(device.cell_area_um2, 4 * 0.09 * 0.09)

    def test_clip_conductance(self):
        g = HFOX_DEVICE.clip_conductance(np.array([0.0, 1.0]))
        assert g[0] == HFOX_DEVICE.g_min
        assert g[1] == HFOX_DEVICE.g_max

    def test_discretize_continuous_passthrough(self, rng):
        g = rng.uniform(HFOX_DEVICE.g_min, HFOX_DEVICE.g_max, 20)
        assert np.allclose(HFOX_DEVICE.discretize(g), g)

    def test_discretize_levels(self):
        device = RRAMDevice(levels=3)
        mid = (device.g_min + device.g_max) / 2
        snapped = device.discretize(np.array([device.g_min, mid, device.g_max]))
        assert np.allclose(snapped, [device.g_min, mid, device.g_max])
        # An off-grid value lands on a grid point.
        off = device.discretize(np.array([device.g_min * 1.5]))
        step = (device.g_max - device.g_min) / 2
        assert np.isclose((off[0] - device.g_min) % step, 0.0, atol=1e-15)

    def test_discretize_single_level(self):
        device = RRAMDevice(levels=1)
        assert np.all(device.discretize(np.array([1e-5, 5e-5])) == device.g_min)

    def test_weight_to_conductance_range(self):
        g = HFOX_DEVICE.weight_to_conductance(np.array([0.0, 0.5, 1.0, 2.0]))
        assert g[0] == HFOX_DEVICE.g_min
        assert g[2] == HFOX_DEVICE.g_max
        assert g[3] == HFOX_DEVICE.g_max  # clipped
        assert HFOX_DEVICE.g_min < g[1] < HFOX_DEVICE.g_max


class TestNonIdealFactors:
    def test_ideal_flag(self):
        assert IDEAL.is_ideal
        assert not NonIdealFactors(sigma_pv=0.1).is_ideal

    def test_validation(self):
        with pytest.raises(ValueError):
            NonIdealFactors(sigma_pv=-0.1)

    def test_zero_sigma_identity(self, rng):
        g = rng.uniform(1e-6, 1e-4, (4, 5))
        assert np.array_equal(IDEAL.perturb_conductance(g), g)
        assert np.array_equal(IDEAL.perturb_signal(g), g)

    def test_seeded_trials_reproducible(self, rng):
        noise = NonIdealFactors(sigma_pv=0.2, seed=5)
        g = rng.uniform(1e-6, 1e-4, (4, 5))
        a = noise.perturb_conductance(g, noise.rng(trial=3))
        b = noise.perturb_conductance(g, noise.rng(trial=3))
        c = noise.perturb_conductance(g, noise.rng(trial=4))
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_lognormal_median_near_one(self):
        factors = lognormal_factors(100_000, sigma=0.3, rng=0)
        assert np.isclose(np.median(factors), 1.0, atol=0.02)

    def test_lognormal_sigma_scales_spread(self):
        small = lognormal_factors(50_000, sigma=0.05, rng=0)
        large = lognormal_factors(50_000, sigma=0.4, rng=0)
        assert np.std(np.log(large)) > np.std(np.log(small))

    def test_lognormal_validation(self):
        with pytest.raises(ValueError):
            lognormal_factors(10, sigma=-0.1)

    def test_multiplicative_noise_preserves_zero(self):
        noise = NonIdealFactors(sigma_sf=0.5, seed=0)
        signal = np.zeros((10, 10))
        assert np.array_equal(noise.perturb_signal(signal), signal)

    def test_with_seed(self):
        noise = NonIdealFactors(sigma_pv=0.1, seed=1)
        assert noise.with_seed(9).seed == 9
        assert noise.with_seed(9).sigma_pv == 0.1


class TestProgramming:
    def test_converges_to_targets(self, rng):
        targets = rng.uniform(HFOX_DEVICE.g_min * 10, HFOX_DEVICE.g_max, (8, 8))
        result = program_conductances(targets, HFOX_DEVICE, ProgrammingConfig(seed=0))
        assert result.yield_fraction > 0.9
        assert result.max_relative_error < 0.2

    def test_tighter_tolerance_needs_more_pulses(self, rng):
        targets = rng.uniform(HFOX_DEVICE.g_min * 10, HFOX_DEVICE.g_max, (10, 10))
        loose = program_conductances(targets, HFOX_DEVICE,
                                     ProgrammingConfig(tolerance=0.1, seed=0))
        tight = program_conductances(targets, HFOX_DEVICE,
                                     ProgrammingConfig(tolerance=0.005, seed=0))
        assert tight.mean_iterations > loose.mean_iterations

    def test_respects_device_window(self, rng):
        targets = rng.uniform(HFOX_DEVICE.g_min, HFOX_DEVICE.g_max, (5, 5))
        result = program_conductances(targets, HFOX_DEVICE, ProgrammingConfig(seed=1))
        assert np.all(result.conductances >= HFOX_DEVICE.g_min)
        assert np.all(result.conductances <= HFOX_DEVICE.g_max)

    def test_zero_pulse_noise_converges_immediately(self, rng):
        targets = rng.uniform(HFOX_DEVICE.g_min * 10, HFOX_DEVICE.g_max, (4, 4))
        result = program_conductances(
            targets, HFOX_DEVICE, ProgrammingConfig(pulse_sigma=0.0, seed=0)
        )
        assert result.yield_fraction == 1.0
        assert np.all(result.iterations <= 1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ProgrammingConfig(tolerance=0.0)
        with pytest.raises(ValueError):
            ProgrammingConfig(max_iterations=0)
        with pytest.raises(ValueError):
            ProgrammingConfig(pulse_sigma=-1.0)
