"""Unit tests for the NN substrate: activations, layers, network, losses.

Includes a numerical gradient check of the full backprop path — the
single most load-bearing test of the training substrate.
"""

import numpy as np
import pytest

from repro.nn.activations import Identity, Relu, Sigmoid, Tanh, get_activation
from repro.nn.layers import DenseLayer
from repro.nn.losses import WeightedMSE, mse
from repro.nn.network import MLP


class TestActivations:
    @pytest.mark.parametrize("name", ["sigmoid", "tanh", "relu", "identity"])
    def test_registry(self, name):
        assert get_activation(name).name == name

    def test_registry_rejects_unknown(self):
        with pytest.raises(ValueError):
            get_activation("softmax")

    def test_sigmoid_range(self, rng):
        x = rng.normal(0, 10, 100)
        y = Sigmoid().forward(x)
        assert np.all((y > 0) & (y < 1))

    def test_sigmoid_midpoint(self):
        assert Sigmoid().forward(np.array([0.0]))[0] == 0.5

    def test_sigmoid_no_overflow(self):
        y = Sigmoid().forward(np.array([-1e6, 1e6]))
        assert np.all(np.isfinite(y))

    @pytest.mark.parametrize("cls", [Sigmoid, Tanh, Relu, Identity])
    def test_derivative_matches_finite_difference(self, cls, rng):
        act = cls()
        x = rng.normal(0, 2, 50)
        x = x[np.abs(x) > 1e-3]  # keep away from ReLU's kink
        h = 1e-6
        numeric = (act.forward(x + h) - act.forward(x - h)) / (2 * h)
        assert np.allclose(act.backward(x), numeric, atol=1e-4)


class TestDenseLayer:
    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            DenseLayer(0, 3)

    def test_forward_shape(self, rng):
        layer = DenseLayer(4, 7, rng=rng)
        assert layer.forward(rng.normal(size=(5, 4))).shape == (5, 7)

    def test_backward_requires_forward(self, rng):
        layer = DenseLayer(2, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_copy_is_independent(self, rng):
        layer = DenseLayer(3, 3, rng=rng)
        clone = layer.copy()
        layer.weights += 1.0
        assert not np.allclose(layer.weights, clone.weights)

    def test_gradient_check(self, rng):
        """Numerical gradient check of weights, bias and input grads."""
        layer = DenseLayer(3, 2, activation="sigmoid", rng=rng)
        x = rng.normal(size=(4, 3))
        target = rng.uniform(0, 1, (4, 2))
        loss = WeightedMSE()

        def f():
            return loss.value(layer.forward(x, train=True), target)

        base = f()
        grad = loss.gradient(layer.forward(x, train=True), target)
        layer.backward(grad)
        h = 1e-6
        for arr, g in ((layer.weights, layer.grad_weights), (layer.bias, layer.grad_bias)):
            it = np.nditer(arr, flags=["multi_index"])
            for _ in it:
                idx = it.multi_index
                old = arr[idx]
                arr[idx] = old + h
                plus = f()
                arr[idx] = old - h
                minus = f()
                arr[idx] = old
                numeric = (plus - minus) / (2 * h)
                assert np.isclose(g[idx], numeric, atol=1e-5), f"{idx}: {g[idx]} vs {numeric}"


class TestMLP:
    def test_rejects_too_few_layers(self):
        with pytest.raises(ValueError):
            MLP((4,))

    def test_layer_sizes(self):
        net = MLP((2, 8, 3), rng=0)
        assert net.in_dim == 2 and net.out_dim == 3
        assert len(net.layers) == 2

    def test_deep_network(self, rng):
        net = MLP((2, 4, 4, 1), rng=0)
        assert net.predict(rng.uniform(0, 1, (5, 2))).shape == (5, 1)

    def test_seed_reproducibility(self, rng):
        x = rng.uniform(0, 1, (5, 2))
        assert np.allclose(MLP((2, 4, 1), rng=7).predict(x), MLP((2, 4, 1), rng=7).predict(x))

    def test_copy_detached(self, rng):
        net = MLP((2, 4, 1), rng=0)
        clone = net.copy()
        net.layers[0].weights += 1.0
        x = rng.uniform(0, 1, (3, 2))
        assert not np.allclose(net.predict(x), clone.predict(x))

    def test_parameter_count(self):
        net = MLP((2, 8, 2), rng=0)
        assert net.parameter_count() == (2 * 8 + 8) + (8 * 2 + 2)

    def test_full_backprop_gradient_check(self, rng):
        """End-to-end numerical gradient check through two layers."""
        net = MLP((3, 5, 2), rng=0)
        x = rng.uniform(0, 1, (6, 3))
        target = rng.uniform(0, 1, (6, 2))
        loss = WeightedMSE(port_weights=np.array([1.0, 0.5]))

        pred = net.forward(x, train=True)
        net.backward(loss.gradient(pred, target))
        grads = [(l, l.grad_weights.copy(), l.grad_bias.copy()) for l in net.layers]

        h = 1e-6
        for layer, gw, gb in grads:
            for arr, g in ((layer.weights, gw), (layer.bias, gb)):
                flat = arr.reshape(-1)
                for idx in range(0, flat.size, max(1, flat.size // 5)):
                    old = flat[idx]
                    flat[idx] = old + h
                    plus = loss.value(net.predict(x), target)
                    flat[idx] = old - h
                    minus = loss.value(net.predict(x), target)
                    flat[idx] = old
                    numeric = (plus - minus) / (2 * h)
                    assert np.isclose(g.reshape(-1)[idx], numeric, atol=1e-5)


class TestLosses:
    def test_mse_zero_on_identical(self, rng):
        x = rng.normal(size=(4, 3))
        assert mse(x, x) == 0.0

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_uniform_weighted_equals_scaled_mse(self, rng):
        pred = rng.uniform(0, 1, (10, 4))
        target = rng.uniform(0, 1, (10, 4))
        # WeightedMSE sums squared port errors per sample, then means
        # over samples: equals mse * n_ports for uniform weights.
        assert np.isclose(WeightedMSE().value(pred, target), mse(pred, target) * 4)

    def test_port_weights_emphasize_msb(self):
        pred = np.zeros((1, 2))
        target = np.ones((1, 2))
        loss = WeightedMSE(port_weights=np.array([1.0, 0.0]))
        # Only the first port contributes.
        assert loss.value(pred, target) == 1.0

    def test_gradient_zero_for_zero_weight_port(self):
        pred = np.zeros((3, 2))
        target = np.ones((3, 2))
        grad = WeightedMSE(port_weights=np.array([1.0, 0.0])).gradient(pred, target)
        assert np.all(grad[:, 1] == 0.0)
        assert np.all(grad[:, 0] != 0.0)

    def test_sample_weights_scale_value(self, rng):
        pred = rng.uniform(0, 1, (4, 2))
        target = rng.uniform(0, 1, (4, 2))
        loss = WeightedMSE()
        doubled = loss.value(pred, target, sample_weights=np.full(4, 2.0))
        assert np.isclose(doubled, 2 * loss.value(pred, target))

    def test_rejects_negative_port_weights(self):
        with pytest.raises(ValueError):
            WeightedMSE(port_weights=np.array([-1.0]))

    def test_rejects_wrong_port_count(self):
        loss = WeightedMSE(port_weights=np.ones(3))
        with pytest.raises(ValueError):
            loss.value(np.zeros((2, 2)), np.zeros((2, 2)))
