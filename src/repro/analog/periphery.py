"""Analog peripheral circuits: sigmoid neuron, comparator, buffers.

The RCS realizes Eq. (3)'s nonlinearity with analog circuits (op-amp
sigmoid units); MEI replaces the output ADCs with 1-bit comparators or
flip-flop buffers (Sec. 3.1).  Both are modeled behaviourally here:

* :class:`SigmoidNeuron` applies gain/offset (restoring the crossbar
  mapping scale and the trained bias) and then the sigmoid transfer
  curve, with optional offset error per unit;
* :class:`Comparator` thresholds an analog level to a clean digital
  0/1, with optional input-referred offset noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config.dtype import astype as _astype
from repro.parallel.seeding import ensure_rng
from repro.sanitize import guards as sanitize_guards

__all__ = ["SigmoidNeuron", "Comparator"]


@dataclass
class SigmoidNeuron:
    """Analog sigmoid activation stage for one crossbar output bank.

    Parameters
    ----------
    gain:
        Voltage gain applied before the sigmoid; restores the
        weight-to-coefficient mapping scale (``DifferentialCrossbar.gain``).
    bias:
        Per-output offset realizing the trained bias vector.
    offset_sigma:
        Std-dev of a random per-unit input-referred offset (op-amp
        mismatch); drawn once at construction, i.e. static mismatch.
    rng:
        Generator for the mismatch draw.
    """

    gain: float
    bias: np.ndarray
    offset_sigma: float = 0.0
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        self.bias = np.atleast_1d(_astype(self.bias))
        if self.offset_sigma < 0:
            raise ValueError("offset_sigma must be >= 0")
        if self.offset_sigma > 0:
            rng = ensure_rng(self.rng, "analog.SigmoidNeuron")
            self._offsets = rng.normal(0.0, self.offset_sigma, self.bias.shape)
        else:
            self._offsets = np.zeros_like(self.bias)

    def apply(self, analog_in: np.ndarray) -> np.ndarray:
        """Gain, bias, static mismatch offset, then sigmoid."""
        analog_in = _astype(analog_in)
        sanitize_guards.check_finite("periphery", "neuron_in", analog_in)
        pre = self.gain * analog_in + self.bias + self._offsets
        pre = np.clip(pre, -60.0, 60.0)
        return 1.0 / (1.0 + np.exp(-pre))


@dataclass
class Comparator:
    """1-bit output stage (comparator / flip-flop buffer) for MEI.

    Parameters
    ----------
    threshold:
        Decision level on the unit interval.
    offset_sigma:
        Std-dev of the comparator's input-referred offset, drawn per
        conversion (dynamic noise); 0 = ideal.
    seed:
        When set, offset draws come from an instance-owned generator
        seeded here, so two comparators built with the same seed
        produce identical offset streams — the pairing the
        error-budget counterfactuals rely on.  An explicit ``rng``
        passed to :meth:`apply` still takes precedence.
    """

    threshold: float = 0.5
    offset_sigma: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {self.threshold}")
        if self.offset_sigma < 0:
            raise ValueError("offset_sigma must be >= 0")
        self._rng = np.random.default_rng(self.seed) if self.seed is not None else None

    def apply(self, analog_in: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Threshold analog levels into hard 0/1 bits."""
        analog_in = _astype(analog_in)
        sanitize_guards.check_finite("periphery", "comparator_in", analog_in)
        threshold = self.threshold
        if self.offset_sigma > 0:
            rng = ensure_rng(rng if rng is not None else self._rng, "analog.Comparator")
            threshold = threshold + rng.normal(0.0, self.offset_sigma, analog_in.shape)
        return _astype(analog_in >= threshold)
