"""Behavioural analog periphery: AD/DA converters, neurons, comparators."""

from repro.analog.converters import ADC, DAC
from repro.analog.periphery import Comparator, SigmoidNeuron

__all__ = ["ADC", "DAC", "SigmoidNeuron", "Comparator"]
