"""Behavioural AD/DA converter models.

The traditional RCS (the paper's baseline) wraps the crossbar in B-bit
DACs on the inputs and B-bit ADCs on the outputs.  We model them
behaviourally:

* quantization to ``2**B`` uniform levels over the unit interval;
* optional input-referred noise (in LSBs) capturing the effective
  number of bits of a real converter;
* saturation at the rails.

These models carry the accuracy impact of the interface; their area
and power live in :mod:`repro.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config.dtype import astype as _astype
from repro.parallel.seeding import ensure_rng
from repro.quant.fixedpoint import quantize_unit
from repro.sanitize import guards as sanitize_guards

__all__ = ["DAC", "ADC"]


@dataclass(frozen=True)
class DAC:
    """B-bit digital-to-analog converter over the unit interval.

    Parameters
    ----------
    bits:
        Resolution.
    noise_lsb:
        RMS output noise in LSBs (0 = ideal).
    seed:
        When set, noise draws come from an instance-owned generator
        seeded here, giving two converters with the same seed identical
        noise streams (paired error-budget counterfactuals).  An
        explicit ``rng`` passed to :meth:`convert` takes precedence.
    """

    bits: int = 8
    noise_lsb: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {self.bits}")
        if self.noise_lsb < 0:
            raise ValueError("noise_lsb must be >= 0")
        # Not a dataclass field: the frozen eq/hash stay seed-based.
        object.__setattr__(
            self,
            "_rng",
            np.random.default_rng(self.seed) if self.seed is not None else None,
        )

    def convert(self, digital: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Digital codes (as unit-interval values) -> analog voltages."""
        sanitize_guards.check_finite("dac", "digital_in", np.asarray(digital))
        analog = quantize_unit(digital, self.bits)
        if self.noise_lsb > 0:
            rng = ensure_rng(rng if rng is not None else self._rng, "analog.DAC")
            analog = analog + rng.normal(0.0, self.noise_lsb * 2.0**-self.bits, analog.shape)
        return np.clip(analog, 0.0, 1.0 - 2.0**-self.bits)


@dataclass(frozen=True)
class ADC:
    """B-bit analog-to-digital converter over the unit interval.

    Parameters
    ----------
    bits:
        Resolution.
    noise_lsb:
        RMS input-referred noise in LSBs (0 = ideal).
    seed:
        Instance-owned generator seed (see :class:`DAC`); ``None``
        keeps the context-seeded behaviour.
    """

    bits: int = 8
    noise_lsb: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {self.bits}")
        if self.noise_lsb < 0:
            raise ValueError("noise_lsb must be >= 0")
        object.__setattr__(
            self,
            "_rng",
            np.random.default_rng(self.seed) if self.seed is not None else None,
        )

    def convert(self, analog: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Analog voltages -> quantized unit-interval digital values."""
        analog = _astype(analog)
        sanitize_guards.check_finite("adc", "analog_in", analog)
        if self.noise_lsb > 0:
            rng = ensure_rng(rng if rng is not None else self._rng, "analog.ADC")
            analog = analog + rng.normal(0.0, self.noise_lsb * 2.0**-self.bits, analog.shape)
        return quantize_unit(analog, self.bits)
