"""Save/load trained systems as ``.npz`` archives.

Deployment flows train once and evaluate many times (noise sweeps,
DSE, ensembling), so trained architectures need durable storage.  One
``.npz`` file holds the arrays plus a JSON metadata blob:

* :func:`save_mlp` / :func:`load_mlp` — bare networks;
* :func:`save_mei` / :func:`load_mei` — MEI with config + pruning masks;
* :func:`save_rcs` / :func:`load_rcs` — traditional AD/DA RCS;
* :func:`save_saab` / :func:`load_saab` — a boosted ensemble (alphas +
  every member), stored as sibling files.

Loading re-deploys onto fresh (ideal) crossbars; chip-instance state
(frozen variation, calibration corrections, injected faults) is
intentionally not persisted — it belongs to a physical array, not to
the trained model.  (The serving layer's model artifact is the
exception: :mod:`repro.serve.artifact` persists programmed
conductances on top of these primitives.)

Every archive written here carries a content digest (BLAKE2b over the
canonical metadata JSON plus every array's name/dtype/shape/bytes).
Reads recompute it and refuse a mismatch with :class:`IntegrityError`;
digest-less archives from older versions still load.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.core.mei import MEI, MEIConfig
from repro.core.rcs import TraditionalRCS
from repro.core.saab import SAAB, SAABConfig
from repro.cost.area import Topology
from repro.nn.network import MLP

__all__ = [
    "IntegrityError",
    "content_digest",
    "read_archive",
    "write_archive",
    "save_mlp",
    "load_mlp",
    "save_mei",
    "load_mei",
    "save_rcs",
    "load_rcs",
    "save_saab",
    "load_saab",
]

_FORMAT_VERSION = 1


class IntegrityError(ValueError):
    """An archive's content digest does not match its payload."""


def content_digest(meta: Mapping[str, object], arrays: Mapping[str, np.ndarray]) -> str:
    """BLAKE2b hex digest of an archive's logical content.

    Covers the canonical (sorted-key) JSON of ``meta`` minus any
    embedded ``digest`` field, then every array in name order as
    ``name / dtype / shape / raw bytes`` — so the digest is stable
    across save/load round-trips and independent of zip-member order.
    """
    h = hashlib.blake2b(digest_size=16)
    clean = {k: v for k, v in meta.items() if k != "digest"}
    h.update(json.dumps(clean, sort_keys=True).encode())
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def _network_arrays(net: MLP) -> dict:
    arrays = {}
    for i, layer in enumerate(net.layers):
        arrays[f"weights_{i}"] = layer.weights
        arrays[f"bias_{i}"] = layer.bias
    return arrays


def _network_meta(net: MLP) -> dict:
    return {
        "layer_sizes": list(net.layer_sizes),
        "activations": [layer.activation.name for layer in net.layers],
    }


def _restore_network(meta: dict, data) -> MLP:
    sizes = meta["layer_sizes"]
    activations = meta["activations"]
    net = MLP(
        sizes,
        hidden_activation=activations[0] if len(activations) > 1 else activations[-1],
        output_activation=activations[-1],
        rng=0,
    )
    for i, layer in enumerate(net.layers):
        layer.weights = np.array(data[f"weights_{i}"])
        layer.bias = np.array(data[f"bias_{i}"])
        layer.activation = __import__(
            "repro.nn.activations", fromlist=["get_activation"]
        ).get_activation(activations[i])
    return net


def _write(path, kind: str, meta: dict, arrays: dict) -> None:
    meta = dict(meta, kind=kind, format_version=_FORMAT_VERSION)
    meta["digest"] = content_digest(meta, arrays)
    np.savez(path, __meta__=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
             **arrays)


def _read(path, expected_kind: str):
    data = np.load(path)
    meta = json.loads(bytes(data["__meta__"]).decode())
    if meta.get("kind") != expected_kind:
        raise ValueError(
            f"{path} holds a {meta.get('kind')!r} archive, expected {expected_kind!r}"
        )
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported format version {meta.get('format_version')}")
    declared = meta.get("digest")
    if declared is not None:
        arrays = {name: data[name] for name in data.files if name != "__meta__"}
        actual = content_digest(meta, arrays)
        if actual != declared:
            raise IntegrityError(
                f"{path}: content digest mismatch (declared {declared}, "
                f"recomputed {actual}) — the archive is corrupt or was "
                "modified after writing; refusing to load it"
            )
    return meta, data


def write_archive(path, kind: str, meta: dict, arrays: Dict[str, np.ndarray]) -> None:
    """Write a digest-protected archive of ``kind`` (serving-layer API)."""
    _write(path, kind, meta, arrays)


def read_archive(path, kind: str) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Read + digest-verify an archive of ``kind``; returns (meta, arrays)."""
    meta, data = _read(path, kind)
    arrays = {name: np.array(data[name]) for name in data.files if name != "__meta__"}
    return meta, arrays


def save_mlp(net: MLP, path) -> None:
    """Persist a bare network."""
    _write(path, "mlp", _network_meta(net), _network_arrays(net))


def load_mlp(path) -> MLP:
    """Restore a bare network."""
    meta, data = _read(path, "mlp")
    return _restore_network(meta, data)


def save_mei(mei: MEI, path) -> None:
    """Persist an MEI (config, pruning masks, weights)."""
    config = mei.config
    meta = {
        "config": {
            "in_groups": config.in_groups,
            "out_groups": config.out_groups,
            "hidden": config.hidden,
            "bits": config.bits,
            "msb_weighted": config.msb_weighted,
            "weight_decay_ratio": config.weight_decay_ratio,
        },
        "in_bits": mei.in_bits,
        "out_bits": mei.out_bits,
        "network": _network_meta(mei.network),
    }
    _write(path, "mei", meta, _network_arrays(mei.network))


def load_mei(path) -> MEI:
    """Restore an MEI and re-deploy it onto ideal crossbars."""
    meta, data = _read(path, "mei")
    mei = MEI(MEIConfig(**meta["config"]), seed=0)
    mei.network = _restore_network(meta["network"], data)
    mei.in_bits = int(meta["in_bits"])
    mei.out_bits = int(meta["out_bits"])
    mei.deploy()
    return mei


def save_rcs(rcs: TraditionalRCS, path) -> None:
    """Persist a traditional RCS (topology + weights)."""
    topo = rcs.topology
    meta = {
        "topology": {
            "inputs": topo.inputs,
            "hidden": topo.hidden,
            "outputs": topo.outputs,
            "bits": topo.bits,
        },
        "network": _network_meta(rcs.network),
    }
    _write(path, "rcs", meta, _network_arrays(rcs.network))


def load_rcs(path) -> TraditionalRCS:
    """Restore a traditional RCS and re-deploy it."""
    meta, data = _read(path, "rcs")
    rcs = TraditionalRCS(Topology(**meta["topology"]), seed=0)
    rcs.network = _restore_network(meta["network"], data)
    rcs.deploy()
    return rcs


def save_saab(saab: SAAB, path) -> List[pathlib.Path]:
    """Persist an ensemble: an index file plus one file per member.

    ``path`` names the index archive; members land next to it as
    ``<stem>.member<k>.npz``.  Returns all written paths.
    """
    if not saab.is_trained:
        raise ValueError("cannot save an untrained ensemble")
    path = pathlib.Path(path)
    member_paths = []
    for k, learner in enumerate(saab.learners):
        if not isinstance(learner, MEI):
            raise TypeError("save_saab currently supports MEI learners only")
        member_path = path.with_suffix(f".member{k}.npz")
        save_mei(learner, member_path)
        member_paths.append(member_path)
    config = saab.config
    meta = {
        "alphas": list(map(float, saab.alphas)),
        "round_errors": [float(r.error) for r in saab.rounds],
        "members": [p.name for p in member_paths],
        "config": {
            "n_learners": config.n_learners,
            "compare_bits": config.compare_bits,
            "seed": config.seed,
        },
    }
    _write(path, "saab", meta, {})
    return [path, *member_paths]


def load_saab(path) -> SAAB:
    """Restore an ensemble saved by :func:`save_saab`."""
    path = pathlib.Path(path)
    meta, _ = _read(path, "saab")
    saab = SAAB(
        lambda k: (_ for _ in ()).throw(RuntimeError("loaded ensembles cannot extend")),
        SAABConfig(**meta["config"]),
    )
    from repro.core.saab import _BoostRound

    for name, alpha, error in zip(meta["members"], meta["alphas"], meta["round_errors"]):
        saab.learners.append(load_mei(path.parent / name))
        saab.alphas.append(float(alpha))
        saab.rounds.append(_BoostRound(error=float(error), alpha=float(alpha)))
    return saab
