"""Bit-array helpers: MSB loss weights, hard thresholding, bit metrics.

These utilities sit between the fixed-point codec and the MEI training
pipeline:

* :func:`msb_weights` builds the exponentially decaying per-port loss
  weights of Eq. (5) (MSB weight ``2**0`` down to LSB ``2**-(B-1)``).
* :func:`harden` models the 1-bit comparator / flip-flop output stage
  that converts continuous crossbar outputs into digital levels.
* :func:`msb_match` implements the relaxed comparison used by SAAB
  (Algorithm 1, Line 6): two bit arrays "agree" when their most
  significant ``B_C`` bits per group are identical.
"""

from __future__ import annotations

import numpy as np

from repro.config.dtype import astype as _astype

__all__ = ["msb_weights", "harden", "msb_match", "bit_error_rate"]


def msb_weights(bits: int, groups: int = 1, decay: float = 2.0) -> np.ndarray:
    """Per-port loss weights emphasizing MSBs (Eq. 5).

    Parameters
    ----------
    bits:
        Word length of each port group.
    groups:
        Number of values encoded side by side; the weight pattern is
        tiled per group.
    decay:
        Ratio between adjacent bit weights.  The paper's example uses
        2.0: an 8-bit group gets weights ``2**0 ... 2**-7``.

    Returns
    -------
    Array of shape ``(groups * bits,)`` with the MSB of each group at
    weight 1.0.
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if groups < 1:
        raise ValueError(f"groups must be >= 1, got {groups}")
    if decay <= 0:
        raise ValueError(f"decay must be positive, got {decay}")
    pattern = decay ** -_astype(np.arange(bits))
    return np.tile(pattern, groups)


def harden(soft_bits: np.ndarray, threshold: float = 0.5) -> np.ndarray:
    """Threshold continuous outputs to 0/1 levels (1-bit comparator)."""
    return _astype(np.asarray(soft_bits) >= threshold)


def msb_match(
    predicted: np.ndarray, target: np.ndarray, bits: int, compare_bits: int
) -> np.ndarray:
    """Relaxed equality on the top ``compare_bits`` of each bit group.

    Parameters
    ----------
    predicted, target:
        Hard 0/1 bit arrays of shape ``(n, groups * bits)``.
    bits:
        Word length of each group.
    compare_bits:
        ``B_C`` in Algorithm 1 — how many leading bits must agree.

    Returns
    -------
    Boolean array of shape ``(n,)``: True where every group's top
    ``compare_bits`` bits match.
    """
    predicted = np.asarray(predicted)
    target = np.asarray(target)
    if predicted.shape != target.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {target.shape}")
    if not 1 <= compare_bits <= bits:
        raise ValueError(f"compare_bits must be in [1, {bits}], got {compare_bits}")
    if predicted.shape[-1] % bits:
        raise ValueError(
            f"trailing axis {predicted.shape[-1]} is not a multiple of word length {bits}"
        )
    n_groups = predicted.shape[-1] // bits
    pred = predicted.reshape(*predicted.shape[:-1], n_groups, bits)[..., :compare_bits]
    targ = target.reshape(*target.shape[:-1], n_groups, bits)[..., :compare_bits]
    return np.all(pred == targ, axis=(-1, -2))


def bit_error_rate(predicted: np.ndarray, target: np.ndarray) -> float:
    """Fraction of individual bits that differ between two bit arrays."""
    predicted = np.asarray(predicted)
    target = np.asarray(target)
    if predicted.shape != target.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {target.shape}")
    return float(np.mean(predicted != target))
