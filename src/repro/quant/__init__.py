"""Fixed-point quantization and bit-array utilities for MEI."""

from repro.quant.binarray import bit_error_rate, harden, msb_match, msb_weights
from repro.quant.fixedpoint import FixedPointCodec, bit_place_values, quantize_unit

__all__ = [
    "FixedPointCodec",
    "bit_place_values",
    "quantize_unit",
    "msb_weights",
    "harden",
    "msb_match",
    "bit_error_rate",
]
