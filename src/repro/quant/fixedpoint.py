"""Fixed-point codecs between real values and binary bit arrays.

MEI (Sec. 3.1 of the paper) replaces the analog DAC/ADC interface with
one crossbar port per bit of the fixed-point representation.  This
module provides the value <-> bit-array codec used everywhere:

* Values are normalized to the unit interval ``[0, 1)`` before
  encoding (the workload layer owns the normalization to/from
  engineering units).
* A ``B``-bit code word is an unsigned fractional binary number
  ``b_1 b_2 ... b_B`` with value ``sum_i b_i * 2**-i``; ``b_1`` is the
  most significant bit (MSB), matching the paper's 8-bit AD/DA
  convention.

The codec is vectorized: encoding an ``(n, d)`` array of values yields
an ``(n, d * bits)`` array of bits, bit groups laid out per input
dimension, MSB first inside each group.  That port ordering is what the
pruning pass (Sec. 4.3) relies on when it strips LSB ports group by
group.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.dtype import astype as _astype

__all__ = ["FixedPointCodec", "quantize_unit", "bit_place_values"]


def bit_place_values(bits: int) -> np.ndarray:
    """Place values ``2**-1 ... 2**-bits`` of a ``bits``-bit fraction.

    The first entry corresponds to the MSB.
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return np.ldexp(1.0, -np.arange(1, bits + 1))


def quantize_unit(values: np.ndarray, bits: int) -> np.ndarray:
    """Quantize values in ``[0, 1)`` to a ``bits``-bit uniform grid.

    Values are clipped into the representable range first, so the
    function models an ideal saturating AD/DA converter.
    """
    values = _astype(values)
    levels = 2**bits
    codes = np.clip(np.floor(values * levels), 0, levels - 1)
    return codes / levels


@dataclass(frozen=True)
class FixedPointCodec:
    """Unsigned fixed-point codec for values normalized to ``[0, 1)``.

    Parameters
    ----------
    bits:
        Word length ``B``.  The paper uses ``B_r = 8`` to match the
        8-bit AD/DA baseline.
    """

    bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {self.bits}")

    @property
    def resolution(self) -> float:
        """Value of one LSB (the quantization step)."""
        return 2.0**-self.bits

    @property
    def place_values(self) -> np.ndarray:
        """Per-bit place values, MSB first."""
        return bit_place_values(self.bits)

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Encode values in ``[0, 1)`` into 0/1 bit arrays.

        An input of shape ``(..., d)`` produces bits of shape
        ``(..., d * bits)``; each value expands into a contiguous
        MSB-first group.
        """
        values = np.atleast_1d(_astype(values))
        levels = 2**self.bits
        codes = np.clip(np.floor(values * levels), 0, levels - 1)
        codes = codes.astype(np.int64)
        shifts = np.arange(self.bits - 1, -1, -1)
        bits = (codes[..., None] >> shifts) & 1
        return _astype(bits.reshape(*values.shape[:-1], values.shape[-1] * self.bits))

    def decode(self, bits: np.ndarray) -> np.ndarray:
        """Decode 0/1 bit arrays back into values in ``[0, 1)``.

        Accepts soft bits in ``[0, 1]`` as well (e.g. raw analog
        outputs before the comparator); they contribute fractionally.
        The trailing axis must be a multiple of ``self.bits``.
        """
        bits = _astype(bits)
        if bits.shape[-1] % self.bits:
            raise ValueError(
                f"trailing axis {bits.shape[-1]} is not a multiple of word length {self.bits}"
            )
        groups = bits.reshape(*bits.shape[:-1], bits.shape[-1] // self.bits, self.bits)
        return groups @ _astype(self.place_values)

    def ports(self, dims: int) -> int:
        """Number of crossbar ports needed for ``dims`` values."""
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        return dims * self.bits

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round-trip a value through the codec (ideal B-bit AD/DA)."""
        return quantize_unit(values, self.bits)
