"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro fig2                  # Fig. 2 cost breakdown
    python -m repro fig3                  # Fig. 3 hidden-size sweep
    python -m repro table1 [--bench fft]  # Table 1 (all or one row)
    python -m repro fig4                  # Fig. 4 method comparison
    python -m repro fig5                  # Fig. 5 robustness sweeps
    python -m repro bitlength             # MEI word-length extension
    python -m repro faults --scale fast   # stuck-at fault campaign
    python -m repro all                   # everything, in paper order

    python -m repro bench                 # bench suite -> runs/history.jsonl
    python -m repro errorbudget [--bench fft] [--json]    # stage attribution
    python -m repro compare [--baseline SHA] [--strict]   # regression gate
    python -m repro report                # trajectory report (md + HTML)
    python -m repro summary               # collate archived bench tables
    python -m repro lint [--json]         # repro-lint invariant checker
    python -m repro profile [--json]      # ranked span hot-spot report
    python -m repro metrics-server        # standalone OpenMetrics endpoint
    python -m repro top [--url URL]       # live terminal dashboard
    python -m repro serve [--bench fft]   # inference service (HTTP)
    python -m repro --version

Serving: ``serve`` trains (or loads, via ``--artifact``) a system,
wraps it in the micro-batched request path and answers value-domain
predictions over HTTP (``POST /v1/predict``), with the ``serve_*``
metric families on ``GET /metrics``.  ``--save-only`` just builds the
load-once model artifact; ``--smoke`` starts an ephemeral server,
drives a quick loadgen through it, differential-checks one response
against the in-process prediction and exits non-zero on any failure
(the CI serve-smoke step).  See ``docs/serving.md``.

Live telemetry: set ``REPRO_TELEMETRY=1`` to run any experiment with
the background sampler and the OpenMetrics endpoint attached (port
``REPRO_TELEMETRY_PORT``, default 9464) — then ``python -m repro top``
or a browser at ``http://127.0.0.1:9464/`` watches it live; see the
"Live telemetry" section of ``docs/observability.md``.

Add ``--full`` for the paper-scale budgets (10k train samples, 400
epochs, 100 noise trials); the default quick budgets finish in
minutes.

Observability: tables go to **stdout**, diagnostics to **stderr**, so
``python -m repro table1 > results.txt`` captures clean tables.  Use
``--log-level debug`` (or ``REPRO_LOG=debug``) for per-epoch progress,
``--trace`` (or ``REPRO_TRACE=1``) to record a span tree, and
``--run-dir DIR`` (or ``REPRO_RUN_DIR``) to choose where run manifests
land (default ``runs/``).  A manifest is written per experiment
whenever tracing is enabled or ``--run-dir`` is given; see
``docs/observability.md``.

Benchmark trajectory: ``bench`` appends a provenance-stamped metric
entry to the history store (``runs/history.jsonl`` or ``--history`` /
``REPRO_HISTORY``); ``compare`` gates the latest entry against a
baseline (``--baseline SHA`` resolves through history, falling back to
the committed ``benchmarks/baseline.json``) and exits non-zero on
regression; ``report`` renders the trajectory as markdown (stdout) and
a self-contained HTML page.  See ``docs/benchmarking.md``.

Error budget: ``errorbudget`` runs the counterfactual stage-attribution
harness (which pipeline stage — codec, mapping, PV, SF, IR drop,
comparator, truncation — costs how much accuracy), publishes
``error_budget_*`` metric families, appends a ``kind="errorbudget"``
history entry, and exports JSON/HTML; gate drift with ``compare --kind
errorbudget``.  See the "Error budget" section of
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys

from repro import __version__
from repro.experiments.bitlength import run_bitlength
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.runner import FULL_SCALE, QUICK_SCALE
from repro.experiments.table1 import run_benchmark_row, run_table1
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import runinfo
from repro.obs import trace as obs_trace
from repro.obs.trace import span
from repro.workloads.registry import BENCHMARK_NAMES

_log = obs_log.get_logger("cli")


def _table1(args, scale) -> str:
    if args.bench:
        with span("table1", benchmarks=[args.bench], seed=args.seed):
            row = run_benchmark_row(args.bench, scale, seed=args.seed)
        return (
            f"Table 1 row — {row.name}\n"
            f"pruned MEI topology: {row.pruned_topology}\n"
            f"err digital/adda/mei: {row.error_digital:.4f} / "
            f"{row.error_adda:.4f} / {row.error_mei:.4f}\n"
            f"area saved (measured): {row.area_saved_measured:.4f}\n"
            f"power saved (measured): {row.power_saved_measured:.4f}"
        )
    return run_table1(scale=scale, seed=args.seed).render()


def _summary() -> str:
    from repro.experiments.summary import collect_reports

    return collect_reports()


def _run_bench(args, scale) -> int:
    from repro.experiments.bench import render_bench_entry, run_bench, write_baseline

    names = [args.bench] if args.bench else list(BENCHMARK_NAMES)
    entry, history_file = run_bench(
        names=names, scale=scale, seed=args.seed, history_path=args.history
    )
    print(render_bench_entry(entry))
    if history_file is not None:
        _log.info(
            "history updated",
            extra={"fields": {"path": os.fspath(history_file)}},
        )
    if args.write_baseline:
        sha = entry.get("git_sha")
        dirty = runinfo.git_dirty()
        if (sha is None or dirty is not False) and not args.allow_dirty:
            state = "unknown" if sha is None or dirty is None else "dirty"
            print(
                f"refusing --write-baseline: git checkout is {state}, so the "
                f"baseline would not be attributable to a commit; commit your "
                f"changes or pass --allow-dirty",
                file=sys.stderr,
            )
            return 2
        baseline = write_baseline(entry)
        _log.info(
            "baseline snapshot written",
            extra={"fields": {"path": os.fspath(baseline)}},
        )
    return 0


def _run_errorbudget(args, scale) -> int:
    """Stage-attribution harness: counterfactual error budget per bench.

    Trials resolution: ``--trials`` > ``REPRO_ERRORBUDGET_TRIALS`` >
    the scale's noise-trial budget.  ``--check`` validates the
    in-process OpenMetrics exposition carries the published
    ``error_budget_*`` families (CI smoke).
    """
    from repro.analysis.errorbudget import ErrorBudgetConfig
    from repro.config import knobs
    from repro.experiments.errorbudget import (
        baseline_guard,
        render_errorbudget_html,
        run_errorbudget,
        write_errorbudget_baseline,
    )

    trials = args.trials
    if trials is None:
        trials = knobs.get_int("REPRO_ERRORBUDGET_TRIALS")
    if trials is None:
        trials = scale.noise_trials
    config = ErrorBudgetConfig(
        sigma_pv=args.sigma_pv,
        sigma_sf=args.sigma_sf,
        comparator_offset=args.comparator_offset,
        wire_resistance=args.wire_resistance,
        trials=trials,
        seed=args.seed,
    )
    names = [args.bench] if args.bench else list(BENCHMARK_NAMES)
    suite, entry, history_file = run_errorbudget(
        names=names,
        scale=scale,
        seed=args.seed,
        config=config,
        ensemble=args.ensemble,
        workers=args.workers,
        history_path=args.history,
    )
    if args.json:
        print(json.dumps(suite.payload(), indent=2, default=str))
    else:
        print(suite.render())
    if history_file is not None:
        _log.info(
            "history updated",
            extra={"fields": {"path": os.fspath(history_file)}},
        )
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_errorbudget_html(suite))
        _log.info("errorbudget html written", extra={"fields": {"path": args.html}})
    if args.write_baseline:
        refusal = baseline_guard(entry, allow_dirty=args.allow_dirty)
        if refusal is not None:
            print(refusal, file=sys.stderr)
            return 2
        baseline = write_errorbudget_baseline(entry)
        _log.info(
            "errorbudget baseline written",
            extra={"fields": {"path": os.fspath(baseline)}},
        )
    if args.check:
        from repro.obs import openmetrics

        if not suite.results:
            print(
                "errorbudget --check: no benchmark produced a result",
                file=sys.stderr,
            )
            return 2
        exposition = openmetrics.render()
        openmetrics.validate(exposition)
        if "error_budget_" not in exposition:
            print(
                "errorbudget --check: OpenMetrics exposition is missing the "
                "error_budget_* families",
                file=sys.stderr,
            )
            return 2
    return 0


def _run_compare(args) -> int:
    from repro.obs.compare import DEFAULT_BASELINE_FILE, compare_history

    # --kind errorbudget swaps in the kind's own committed snapshot
    # unless the user pointed at a specific file; the bench baseline
    # holds disjoint metric names and would compare as all-new.
    baseline_file = args.baseline_file
    if args.kind == "errorbudget" and baseline_file == DEFAULT_BASELINE_FILE:
        from repro.experiments.errorbudget import ERRORBUDGET_BASELINE_FILE

        baseline_file = ERRORBUDGET_BASELINE_FILE
    result = compare_history(
        history_path=args.history,
        baseline_sha=args.baseline,
        baseline_file=baseline_file,
        kind=args.kind,
    )
    if result is None:
        message = (
            "nothing to compare: need at least one history entry "
            "(run `python -m repro bench`) and a resolvable baseline"
        )
        print(message)
        return 2 if args.strict else 0
    if args.json:
        print(json.dumps(result.to_dict(strict=args.strict), indent=2))
    else:
        print(result.render(strict=args.strict))
    return result.exit_code(strict=args.strict)


def _run_report(args) -> int:
    from repro.obs.history import load_history
    from repro.obs.report import render_markdown, write_report

    history = load_history(args.history)
    out_dir = args.out or "runs"
    md_path, html_path = write_report(history, out_dir=out_dir)
    print(render_markdown(history))
    _log.info(
        "trajectory report written",
        extra={"fields": {"markdown": os.fspath(md_path),
                          "html": os.fspath(html_path)}},
    )
    return 0


def _run_faults(args) -> int:
    """The fault-injection campaign: always manifest-backed.

    Unlike the figure runners, ``faults`` writes a run manifest
    unconditionally — the manifest carries the defect-map seeds and
    the mitigation comparison table, which *are* the campaign's
    reproducibility contract (``docs/robustness.md``).
    """
    from repro.experiments.fig_faults import campaign_scale, run_fig_faults
    from repro.parallel.resilient import RetryPolicy

    scale = campaign_scale(args.scale)
    chaos = not args.no_chaos
    workers = args.workers if args.workers is not None else 2
    benchmarks = (args.bench,) if args.bench else None
    with span("faults", scale=scale.name, seed=args.seed, chaos=chaos):
        result = run_fig_faults(
            scale=scale,
            seed=args.seed,
            benchmarks=benchmarks,
            workers=workers,
            policy=RetryPolicy.from_env(),
            chaos=chaos,
        )
    print(result.render())
    path = runinfo.write_manifest(
        "faults",
        run_dir=args.run_dir,
        seed=args.seed,
        scale=scale,
        argv=sys.argv[1:],
        extra={"campaign": result.to_dict()},
        spans=obs_trace.get_records(),
        metrics_snapshot=obs_metrics.snapshot(),
    )
    _log.info(
        "wrote run manifest",
        extra={"fields": {"experiment": "faults", "path": os.fspath(path)}},
    )
    return 0


def _experiment_runners(args, scale):
    """Figure/table runners keyed by experiment name."""
    return {
        "fig2": lambda: run_fig2().render(),
        "fig3": lambda: run_fig3(scale=scale, seed=args.seed).render(),
        "table1": lambda: _table1(args, scale),
        "fig4": lambda: run_fig4(scale=scale, seed=args.seed).render(),
        "fig5": lambda: run_fig5(scale=scale, seed=args.seed).render(),
        "bitlength": lambda: run_bitlength(scale=scale, seed=args.seed).render(),
    }


def _run_profile(args, scale) -> int:
    """Build the ranked hot-spot report (``docs/performance.md``).

    Source resolution: ``--manifest`` > ``--fresh`` > newest
    span-bearing manifest in the run directory > latest history entry.
    Exits 2 when no span data can be found (or when ``--check`` finds
    the report unusable), so CI can smoke-test the profiling pipeline.
    """
    from repro.config import knobs
    from repro.obs import profile as obs_profile
    from repro.obs.history import latest_entry, load_history

    hotspots = []
    source = "none"
    experiment = None

    def _from_manifest(path) -> bool:
        nonlocal hotspots, source, experiment
        try:
            manifest = json.loads(open(path, encoding="utf-8").read())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"profile: cannot read manifest {path}: {exc}", file=sys.stderr)
            return False
        tree = manifest.get("span_tree") if isinstance(manifest, dict) else None
        if not isinstance(tree, dict):
            print(f"profile: {path} has no span_tree", file=sys.stderr)
            return False
        hotspots = obs_profile.hotspots_from_tree(tree)
        source = f"manifest:{path}"
        experiment = manifest.get("experiment")
        return True

    if args.manifest:
        if not _from_manifest(args.manifest):
            return 2
    elif args.fresh:
        obs_trace.enable(True)
        obs_trace.clear()
        obs_metrics.clear()
        runners = _experiment_runners(args, scale)
        with span("profile", experiment=args.fresh):
            runners[args.fresh]()
        hotspots = obs_profile.hotspots_from_records(obs_trace.get_records())
        source = f"fresh:{args.fresh}"
        experiment = args.fresh
    else:
        run_dir = args.run_dir or knobs.get_path("REPRO_RUN_DIR") or "runs"
        manifest_path = obs_profile.latest_manifest_path(run_dir)
        if manifest_path is not None:
            if not _from_manifest(manifest_path):
                return 2
        else:
            from repro.obs.history import history_path

            history = load_history(args.history)
            entry = latest_entry(history)
            if entry is not None:
                hotspots = obs_profile.hotspots_from_flat_metrics(
                    entry.get("metrics") or {}
                )
                source = (
                    f"history:{history_path(args.history)}"
                    f"@{str(entry.get('git_sha', ''))[:12]}"
                )
                experiment = str(entry.get("kind", "")) or None

    report = obs_profile.build_report(hotspots, source=source, experiment=experiment)
    if not hotspots:
        print(
            "profile: no span data found — run an experiment with --trace "
            "(or REPRO_TRACE=1), `python -m repro bench`, or pass --fresh/--manifest",
            file=sys.stderr,
        )
        return 2
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(obs_profile.render_html(report))
        _log.info("profile html written", extra={"fields": {"path": args.html}})
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(obs_profile.render_text(report, top=args.top))
    if args.check:
        top = report["hotspots"][0]
        if not top["path"] or float(report["total_seconds"]) <= 0.0:
            print(
                "profile --check: top span is unattributed or report has no "
                "wall time",
                file=sys.stderr,
            )
            return 2
    return 0


def _run_serve(args, scale) -> int:
    """The inference service: artifact -> micro-batched HTTP request path.

    Always materializes through the on-disk artifact (train -> save ->
    load) so every serving process exercises the exact path a
    production deploy would; ``--smoke`` additionally differential-
    checks a served response against the in-process prediction
    (``docs/serving.md``).
    """
    import pathlib

    import numpy as np

    from repro.config import knobs
    from repro.serve import load_artifact, save_artifact, train_serve_system

    artifact = args.artifact
    if artifact is None or not pathlib.Path(artifact).exists():
        name = args.bench or "fft"
        ensemble = args.ensemble if args.ensemble and args.ensemble > 1 else 0
        _log.info(
            "training serve system",
            extra={"fields": {"benchmark": name, "scale": scale.name,
                              "seed": args.seed, "ensemble": ensemble}},
        )
        with span("serve-train", benchmark=name, seed=args.seed):
            system, _ = train_serve_system(
                name, scale=scale, seed=args.seed, ensemble=ensemble
            )
        if artifact is None:
            run_dir = args.run_dir or knobs.get_path("REPRO_RUN_DIR") or "runs"
            pathlib.Path(run_dir).mkdir(parents=True, exist_ok=True)
            artifact = str(pathlib.Path(run_dir) / f"serve-{name}.npz")
        save_artifact(system, artifact, benchmark=name)
        print(f"model artifact written: {artifact}", file=sys.stderr)
    model = load_artifact(artifact)
    if args.save_only:
        return 0

    if args.smoke:
        import urllib.request

        from repro.obs import openmetrics
        from repro.serve.loadgen import run_loadgen
        from repro.serve.service import BackgroundServer

        failures = []
        with BackgroundServer(model, port=0) as server:
            with urllib.request.urlopen(server.url + "/healthz", timeout=10) as fh:
                health = json.loads(fh.read())
            if health.get("status") != "ok":
                failures.append(f"healthz: {health}")
            # Differential check: one served response must equal the
            # in-process prediction bit for bit.
            engine = server.service.engine
            rng = np.random.default_rng(args.seed)
            probe = rng.uniform(0.0, 1.0, size=(4, engine.in_dim))
            body = json.dumps({"inputs": probe.tolist()}).encode()
            request = urllib.request.Request(
                server.url + "/v1/predict", data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as fh:
                served = np.asarray(json.loads(fh.read())["outputs"])
            direct = model.system.predict(probe)
            if not np.array_equal(served, direct):
                failures.append("differential check: served != in-process prediction")
            result = run_loadgen(
                server.url, engine.in_dim, requests=40, concurrency=4,
                samples_per_request=2, seed=args.seed,
            )
            if result.ok != result.requests:
                failures.append(
                    f"loadgen: {result.ok}/{result.requests} ok "
                    f"({result.shed} shed, {result.errors} errors)"
                )
            with urllib.request.urlopen(server.url + "/metrics", timeout=10) as fh:
                exposition = fh.read().decode()
            openmetrics.validate(exposition)
            for family in ("serve_requests", "serve_request_latency_seconds",
                           "serve_queue_depth", "serve_batch_size"):
                if family not in exposition:
                    failures.append(f"/metrics missing the {family} family")
        summary = {
            "artifact": str(model.path),
            "system": model.kind,
            "interface": model.interface,
            "loadgen": result.as_dict(),
            "failures": failures,
        }
        print(json.dumps(summary, indent=2))
        if failures:
            for failure in failures:
                print(f"serve --smoke: {failure}", file=sys.stderr)
            return 2
        # Archive the smoke's loadgen numbers as one kind="serve"
        # history entry so serving throughput/latency has a trajectory
        # (the compare gate recognizes the kind; see KNOWN_KINDS).
        from repro.obs import history as obs_history

        entry = obs_history.build_entry(
            {f"loadgen.{k}": v for k, v in result.as_dict().items()},
            kind="serve",
            seed=args.seed,
            scale=scale.name,
            benchmark=model.meta.get("benchmark"),
        )
        history_file = obs_history.append_entry(entry, args.history)
        _log.info(
            "serve smoke archived",
            extra={"fields": {"path": os.fspath(history_file)}},
        )
        return 0

    from repro.serve.service import run_service

    port = args.port
    print(
        f"serving {model.kind} model ({model.meta.get('benchmark')}) — "
        f"POST /v1/predict, GET /metrics (Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        run_service(model, port=port)
    except KeyboardInterrupt:
        pass
    return 0


def _run_metrics_server(args) -> int:
    """Standalone exposition endpoint + sampler for this process.

    Mostly a demonstration / smoke target (the registry it serves is
    this process's own); experiment runs embed the same server via
    ``REPRO_TELEMETRY=1``.  ``--once`` renders one exposition payload
    to stdout and exits (no server), which the CI smoke step uses.
    """
    import time as _time

    from repro.obs import openmetrics, telemetry

    if args.once:
        sampler = telemetry.TelemetrySampler(
            interval=args.interval, experiment="metrics-server"
        )
        sampler.sample_once()
        server = openmetrics.TelemetryServer(sampler=sampler)
        print(server.render_metrics(), end="")
        return 0
    port = args.port if args.port is not None else telemetry.telemetry_port()
    sampler = telemetry.TelemetrySampler(
        interval=args.interval, experiment="metrics-server"
    ).start()
    server = openmetrics.TelemetryServer(port=port, sampler=sampler).start()
    print(f"serving {server.url}/metrics — dashboard at {server.url}/ "
          f"(Ctrl-C to stop)", file=sys.stderr)
    try:
        while True:
            _time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        sampler.stop()
    return 0


def _run_top(args) -> int:
    """Live terminal dashboard polling a telemetry endpoint."""
    from repro.obs import dashboard, telemetry

    url = args.url or f"http://127.0.0.1:{telemetry.telemetry_port()}"
    interval = args.interval if args.interval is not None else 1.0
    dashboard.run_top(
        sys.stdout,
        url=url,
        interval=interval,
        iterations=1 if args.once else None,
    )
    return 0


def _start_telemetry(experiment: str):
    """Embedded sampler + endpoint for a ``REPRO_TELEMETRY=1`` run."""
    from repro.obs import openmetrics, telemetry

    sampler = telemetry.TelemetrySampler(experiment=experiment).start()
    server = openmetrics.TelemetryServer(
        port=telemetry.telemetry_port(), sampler=sampler
    ).start()
    _log.info(
        "live telemetry attached",
        extra={"fields": {"url": server.url,
                          "telemetry_file": os.fspath(sampler.path)}},
    )
    return sampler, server


def _run_lint(args) -> int:
    from repro.lintrules import engine
    from repro.lintrules.program import ALL_PROGRAM_RULES
    from repro.lintrules.rules import ALL_RULES, rule_catalogue

    if args.list_rules:
        print(rule_catalogue(tuple(ALL_RULES) + tuple(ALL_PROGRAM_RULES)))
        return 0
    targets = args.paths if args.paths else [engine.default_target()]
    if args.graph:
        import ast as _ast

        from repro.lintrules.graph import REPRO_CONTRACT, build_graph

        parsed = []
        for path in engine.iter_python_files(targets):
            try:
                parsed.append((path, _ast.parse(path.read_text(encoding="utf-8"))))
            except SyntaxError:
                continue
        graph = build_graph(parsed)
        if args.graph == "dot":
            print(graph.to_dot(REPRO_CONTRACT))
        else:
            print(graph.to_svg(REPRO_CONTRACT))
        return 0
    findings = engine.run_paths(targets)
    files = list(engine.iter_python_files(targets))
    if args.json:
        print(engine.render_json(findings, checked=len(files)))
    else:
        print(engine.render_human(findings, checked=len(files)))
    return 1 if findings else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the tables/figures of 'Merging the Interface' (DAC 2015).",
    )
    parser.add_argument(
        "experiment",
        choices=["fig2", "fig3", "table1", "fig4", "fig5", "bitlength",
                 "faults", "bench", "errorbudget", "compare", "report",
                 "summary", "lint", "profile", "metrics-server", "top",
                 "serve", "all"],
        help="artifact to regenerate, or a trajectory command: 'faults' runs the "
             "stuck-at fault-injection campaign (manifest always written), 'bench' "
             "runs the benchmark suite and appends to the run history, "
             "'errorbudget' attributes the real-vs-ideal accuracy gap to pipeline "
             "stages via counterfactual idealization, 'compare' "
             "gates the latest entry against a baseline, 'report' renders the "
             "trajectory (markdown + HTML), 'summary' collates archived bench "
             "tables, 'lint' runs the repro-lint invariant checker over the package, "
             "'profile' ranks span hot-spots from manifests/history/a fresh run, "
             "'metrics-server' serves a standalone OpenMetrics endpoint, 'top' is "
             "the live terminal dashboard over a telemetry endpoint, 'serve' runs "
             "the micro-batched inference service over a model artifact",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale budgets instead of quick ones")
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument("--bench", choices=BENCHMARK_NAMES, default=None,
                        help="restrict table1/bench/errorbudget to one benchmark")
    parser.add_argument("--log-level", default=None,
                        choices=["debug", "info", "warning", "error"],
                        help="diagnostic verbosity on stderr (default: REPRO_LOG or info)")
    parser.add_argument("--trace", action="store_true",
                        help="record a span tree and write a run manifest "
                             "(same as REPRO_TRACE=1)")
    parser.add_argument("--run-dir", default=None, metavar="DIR",
                        help="directory for run manifests (default: REPRO_RUN_DIR or "
                             "'runs/'); implies writing a manifest")
    parser.add_argument("--history", default=None, metavar="PATH",
                        help="run-history store (default: REPRO_HISTORY or "
                             "'runs/history.jsonl')")
    parser.add_argument("--baseline", default=None, metavar="SHA",
                        help="compare: baseline commit (prefix ok); resolved through "
                             "history, falling back to benchmarks/baseline.json")
    parser.add_argument("--baseline-file", default="benchmarks/baseline.json",
                        metavar="PATH",
                        help="compare: committed baseline snapshot fallback")
    parser.add_argument("--strict", action="store_true",
                        help="compare: also fail on perf regressions and "
                             "vanished metrics")
    parser.add_argument("--kind", default=None, metavar="KIND",
                        help="compare: restrict both sides to history entries of "
                             "one kind (e.g. 'errorbudget', which also swaps in "
                             "benchmarks/errorbudget_baseline.json as the snapshot "
                             "fallback)")
    parser.add_argument("--json", action="store_true",
                        help="compare/lint/errorbudget: print the machine-readable "
                             "report as JSON")
    parser.add_argument("--paths", nargs="*", default=None, metavar="PATH",
                        help="lint: files/directories to check (default: the "
                             "installed repro package source)")
    parser.add_argument("--list-rules", action="store_true",
                        help="lint: print the RPR rule catalogue and exit")
    parser.add_argument("--graph", choices=["dot", "svg"], default=None,
                        help="lint: print the package import graph (layer "
                             "level, lazy edges dashed) instead of linting")
    parser.add_argument("--write-baseline", action="store_true",
                        help="bench/errorbudget: also write the entry to the kind's "
                             "committed baseline snapshot (refused on a "
                             "dirty/unknown git checkout)")
    parser.add_argument("--allow-dirty", action="store_true",
                        help="bench/errorbudget: let --write-baseline proceed "
                             "despite a dirty/unknown git checkout")
    parser.add_argument("--trials", type=int, default=None, metavar="N",
                        help="errorbudget: Monte-Carlo trials per variant "
                             "(default: REPRO_ERRORBUDGET_TRIALS or the scale's "
                             "noise-trial budget)")
    parser.add_argument("--ensemble", type=int, default=1, metavar="K",
                        help="errorbudget: SAAB ensemble size; 1 = single MEI "
                             "(default 1)")
    parser.add_argument("--sigma-pv", type=float, default=0.1, metavar="S",
                        help="errorbudget: lognormal process-variation sigma of "
                             "the 'real' system (default 0.1)")
    parser.add_argument("--sigma-sf", type=float, default=0.05, metavar="S",
                        help="errorbudget: signal-fluctuation sigma of the 'real' "
                             "system (default 0.05)")
    parser.add_argument("--comparator-offset", type=float, default=0.05,
                        metavar="S",
                        help="errorbudget: comparator offset sigma of the 'real' "
                             "system (default 0.05)")
    parser.add_argument("--wire-resistance", type=float, default=2.0,
                        metavar="OHMS",
                        help="errorbudget: per-segment wire resistance of the "
                             "'real' system (default 2.0, the 90nm node)")
    parser.add_argument("--scale", default="fast", choices=["fast", "quick", "full"],
                        help="faults: campaign budget (default fast; --full is "
                             "ignored by 'faults' in favour of this)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="faults/errorbudget: executor worker count (faults "
                             "defaults to 2 so the chaos drill has a process pool "
                             "to crash; errorbudget defaults to REPRO_WORKERS)")
    parser.add_argument("--no-chaos", action="store_true",
                        help="faults: skip the forced worker-crash drill")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="report: output directory for report.md/report.html "
                             "(default 'runs/')")
    parser.add_argument("--top", type=int, default=15, metavar="N",
                        help="profile: number of hot-spot rows to print (default 15)")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="profile: read spans from this run manifest")
    parser.add_argument("--fresh", default=None, metavar="EXPERIMENT",
                        choices=["fig2", "fig3", "table1", "fig4", "fig5", "bitlength"],
                        help="profile: run this experiment with tracing on and "
                             "profile its spans")
    parser.add_argument("--html", default=None, metavar="PATH",
                        help="profile/errorbudget: also write a self-contained "
                             "HTML report")
    parser.add_argument("--check", action="store_true",
                        help="profile: exit non-zero when the report is empty or "
                             "the top span is unattributed; errorbudget: exit "
                             "non-zero unless the OpenMetrics exposition carries "
                             "the error_budget_* families (CI smoke test)")
    parser.add_argument("--port", type=int, default=None, metavar="N",
                        help="metrics-server: listen port (default: "
                             "REPRO_TELEMETRY_PORT or 9464; 0 = ephemeral); "
                             "serve: listen port (default: REPRO_SERVE_PORT or "
                             "9600; 0 = ephemeral)")
    parser.add_argument("--artifact", default=None, metavar="PATH",
                        help="serve: model artifact to load; when the file does "
                             "not exist, a system is trained (--bench/--seed/"
                             "--ensemble) and the artifact written there first")
    parser.add_argument("--save-only", action="store_true",
                        help="serve: build/write the model artifact and exit "
                             "without starting the server")
    parser.add_argument("--smoke", action="store_true",
                        help="serve: self-test — serve on an ephemeral port, run "
                             "a quick loadgen, validate /metrics and the "
                             "differential check, then exit (non-zero on failure)")
    parser.add_argument("--url", default=None, metavar="URL",
                        help="top: telemetry endpoint to poll (default: "
                             "http://127.0.0.1:<REPRO_TELEMETRY_PORT>)")
    parser.add_argument("--interval", type=float, default=None, metavar="SECONDS",
                        help="top/metrics-server: refresh/sampling interval "
                             "(default: REPRO_TELEMETRY_INTERVAL or 1.0)")
    parser.add_argument("--once", action="store_true",
                        help="top: render a single frame and exit; "
                             "metrics-server: print one exposition payload and exit")
    args = parser.parse_args(argv)
    scale = FULL_SCALE if args.full else QUICK_SCALE

    # CLI runs default to info-level progress on stderr; --log-level
    # and REPRO_LOG override.
    obs_log.configure(
        level=args.log_level if args.log_level else obs_log.level_from_env(logging.INFO),
        force=True,
    )
    if args.trace:
        obs_trace.enable(True)

    if args.experiment == "metrics-server":
        return _run_metrics_server(args)
    if args.experiment == "top":
        return _run_top(args)

    # REPRO_TELEMETRY=1 attaches the live sampler + OpenMetrics
    # endpoint to whatever command runs below; stopped in the finally
    # so the last sample and the JSONL file survive even on errors.
    from repro.obs import telemetry as obs_telemetry

    sampler = server = None
    if obs_telemetry.telemetry_enabled():
        sampler, server = _start_telemetry(args.experiment)
    try:
        if args.experiment == "bench":
            return _run_bench(args, scale)
        if args.experiment == "errorbudget":
            return _run_errorbudget(args, scale)
        if args.experiment == "compare":
            return _run_compare(args)
        if args.experiment == "report":
            return _run_report(args)
        if args.experiment == "summary":
            print(_summary())
            return 0
        if args.experiment == "lint":
            return _run_lint(args)
        if args.experiment == "faults":
            return _run_faults(args)
        if args.experiment == "profile":
            return _run_profile(args, scale)
        if args.experiment == "serve":
            return _run_serve(args, scale)

        write_manifests = obs_trace.enabled() or args.run_dir is not None

        runners = _experiment_runners(args, scale)
        names = list(runners) if args.experiment == "all" else [args.experiment]
        for name in names:
            _log.info(
                "running experiment",
                extra={"fields": {"experiment": name, "scale": scale.name,
                                  "seed": args.seed, "trace": obs_trace.enabled()}},
            )
            obs_trace.clear()
            obs_metrics.clear()
            print(runners[name]())
            print()
            if write_manifests:
                path = runinfo.write_manifest(
                    name,
                    run_dir=args.run_dir,
                    seed=args.seed,
                    scale=scale,
                    argv=list(argv) if argv is not None else sys.argv[1:],
                    spans=obs_trace.get_records(),
                    metrics_snapshot=obs_metrics.snapshot(),
                )
                _log.info(
                    "wrote run manifest",
                    extra={"fields": {"experiment": name, "path": os.fspath(path)}},
                )
        return 0
    finally:
        if server is not None:
            server.stop()
        if sampler is not None:
            sampler.stop()


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # `python -m repro ... | head` closes stdout early; swallow the
        # resulting write failure instead of dumping a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        sys.exit(1)
