"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro fig2                  # Fig. 2 cost breakdown
    python -m repro fig3                  # Fig. 3 hidden-size sweep
    python -m repro table1 [--bench fft]  # Table 1 (all or one row)
    python -m repro fig4                  # Fig. 4 method comparison
    python -m repro fig5                  # Fig. 5 robustness sweeps
    python -m repro bitlength             # MEI word-length extension
    python -m repro all                   # everything, in paper order

Add ``--full`` for the paper-scale budgets (10k train samples, 400
epochs, 100 noise trials); the default quick budgets finish in
minutes.

Observability: tables go to **stdout**, diagnostics to **stderr**, so
``python -m repro table1 > results.txt`` captures clean tables.  Use
``--log-level debug`` (or ``REPRO_LOG=debug``) for per-epoch progress,
``--trace`` (or ``REPRO_TRACE=1``) to record a span tree, and
``--run-dir DIR`` (or ``REPRO_RUN_DIR``) to choose where run manifests
land (default ``runs/``).  A manifest is written per experiment
whenever tracing is enabled or ``--run-dir`` is given; see
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys

from repro.experiments.bitlength import run_bitlength
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.runner import FULL_SCALE, QUICK_SCALE
from repro.experiments.table1 import run_benchmark_row, run_table1
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import runinfo
from repro.obs import trace as obs_trace
from repro.obs.trace import span
from repro.workloads.registry import BENCHMARK_NAMES

_log = obs_log.get_logger("cli")


def _table1(args, scale) -> str:
    if args.bench:
        with span("table1", benchmarks=[args.bench], seed=args.seed):
            row = run_benchmark_row(args.bench, scale, seed=args.seed)
        return (
            f"Table 1 row — {row.name}\n"
            f"pruned MEI topology: {row.pruned_topology}\n"
            f"err digital/adda/mei: {row.error_digital:.4f} / "
            f"{row.error_adda:.4f} / {row.error_mei:.4f}\n"
            f"area saved (measured): {row.area_saved_measured:.4f}\n"
            f"power saved (measured): {row.power_saved_measured:.4f}"
        )
    return run_table1(scale=scale, seed=args.seed).render()


def _report() -> str:
    from repro.experiments.summary import collect_reports

    return collect_reports()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the tables/figures of 'Merging the Interface' (DAC 2015).",
    )
    parser.add_argument(
        "experiment",
        choices=["fig2", "fig3", "table1", "fig4", "fig5", "bitlength", "report", "all"],
        help="which artifact to regenerate ('report' collates archived bench outputs)",
    )
    parser.add_argument("--full", action="store_true",
                        help="paper-scale budgets instead of quick ones")
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument("--bench", choices=BENCHMARK_NAMES, default=None,
                        help="restrict table1 to one benchmark")
    parser.add_argument("--log-level", default=None,
                        choices=["debug", "info", "warning", "error"],
                        help="diagnostic verbosity on stderr (default: REPRO_LOG or info)")
    parser.add_argument("--trace", action="store_true",
                        help="record a span tree and write a run manifest "
                             "(same as REPRO_TRACE=1)")
    parser.add_argument("--run-dir", default=None, metavar="DIR",
                        help="directory for run manifests (default: REPRO_RUN_DIR or "
                             "'runs/'); implies writing a manifest")
    args = parser.parse_args(argv)
    scale = FULL_SCALE if args.full else QUICK_SCALE

    # CLI runs default to info-level progress on stderr; --log-level
    # and REPRO_LOG override.
    obs_log.configure(
        level=args.log_level if args.log_level else obs_log.level_from_env(logging.INFO),
        force=True,
    )
    if args.trace:
        obs_trace.enable(True)
    write_manifests = obs_trace.enabled() or args.run_dir is not None

    runners = {
        "fig2": lambda: run_fig2().render(),
        "fig3": lambda: run_fig3(scale=scale, seed=args.seed).render(),
        "table1": lambda: _table1(args, scale),
        "fig4": lambda: run_fig4(scale=scale, seed=args.seed).render(),
        "fig5": lambda: run_fig5(scale=scale, seed=args.seed).render(),
        "bitlength": lambda: run_bitlength(scale=scale, seed=args.seed).render(),
        "report": _report,
    }
    if args.experiment == "all":
        names = [n for n in runners if n != "report"]
    else:
        names = [args.experiment]
    for name in names:
        _log.info(
            "running experiment",
            extra={"fields": {"experiment": name, "scale": scale.name,
                              "seed": args.seed, "trace": obs_trace.enabled()}},
        )
        obs_trace.clear()
        obs_metrics.clear()
        print(runners[name]())
        print()
        if write_manifests and name != "report":
            path = runinfo.write_manifest(
                name,
                run_dir=args.run_dir,
                seed=args.seed,
                scale=scale,
                argv=list(argv) if argv is not None else sys.argv[1:],
                spans=obs_trace.get_records(),
                metrics_snapshot=obs_metrics.snapshot(),
            )
            _log.info(
                "wrote run manifest",
                extra={"fields": {"experiment": name, "path": os.fspath(path)}},
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
