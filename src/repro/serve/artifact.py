"""Load-once model artifacts for the serving layer.

:func:`repro.serialization.load_mei` deliberately re-deploys onto
fresh ideal crossbars — chip state belongs to a physical array.  A
*serving* artifact is the opposite contract: it must reproduce the
exact system that was validated, so it persists the **programmed
conductances** (canonical :meth:`AnalogMLP.conductance_snapshot`
order) next to the network weights, the mapping config, the bit-codec
interface (``B_I/B_O/B_N``), ensemble vote weights and a provenance
header, in one ``.npz`` archive with a versioned schema and a content
digest (see :mod:`repro.serialization`).  A corrupted archive is
refused loudly at load time.

Schema (``kind="serve-model"``, ``schema_version=1``)::

    meta = {
      "schema_version": 1,
      "system": "mei" | "saab",
      "benchmark": str | null,
      "interface": {"B_I": int, "B_O": int, "B_N": int},
      "provenance": {...},            # repro.obs.runinfo.provenance_header()
      "members": [{config, in_bits, out_bits, mapping, network,
                   n_conductances}, ...],
      "saab": null | {"alphas": [...], "round_errors": [...],
                      "config": {n_learners, compare_bits, seed}},
    }
    arrays = {"m<k>_weights_<i>", "m<k>_bias_<i>", "m<k>_g_<j>"}

Arrays keep the dtype they were deployed under (``REPRO_DTYPE``), so a
loaded artifact is bit-faithful when served under the same dtype.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro import serialization
from repro.core.mei import MEI, MEIConfig
from repro.core.runner import (
    ExperimentScale,
    default_scale,
    train_config,
    train_samples_for,
)
from repro.core.saab import SAAB, SAABConfig
from repro.nn.activations import get_activation
from repro.nn.network import MLP
from repro.obs.log import get_logger
from repro.obs.runinfo import provenance_header
from repro.workloads.registry import PAPER_TABLE1, make_benchmark
from repro.xbar.mapping import MappingConfig

__all__ = [
    "ARTIFACT_KIND",
    "ARTIFACT_SCHEMA_VERSION",
    "LoadedModel",
    "load_artifact",
    "save_artifact",
    "train_serve_system",
]

ARTIFACT_KIND = "serve-model"
ARTIFACT_SCHEMA_VERSION = 1

_log = get_logger("serve.artifact")


@dataclass
class LoadedModel:
    """A system restored from a serving artifact, ready to serve."""

    system: Union[MEI, SAAB]
    kind: str
    """``"mei"`` or ``"saab"``."""
    meta: Dict[str, object]
    path: pathlib.Path

    @property
    def interface(self) -> Dict[str, int]:
        """The bit interface: ``{"B_I": .., "B_O": .., "B_N": ..}``."""
        return dict(self.meta["interface"])  # type: ignore[call-overload]


def _mapping_meta(config: Optional[MappingConfig]) -> Optional[Dict[str, object]]:
    if config is None:
        return None
    return {
        "g_s": config.g_s,
        "row_sum_headroom": config.row_sum_headroom,
        "coefficient_ceiling": config.coefficient_ceiling,
        "input_nonlinearity": config.input_nonlinearity,
        "max_rows_per_tile": config.max_rows_per_tile,
        "wire_resistance": config.wire_resistance,
    }


def _mapping_from(meta: Optional[Dict[str, object]]) -> Optional[MappingConfig]:
    if meta is None:
        return None
    return MappingConfig(**meta)  # type: ignore[arg-type]


def _member_meta(mei: MEI, n_conductances: int) -> Dict[str, object]:
    config = mei.config
    net = mei.network
    return {
        "config": {
            "in_groups": config.in_groups,
            "out_groups": config.out_groups,
            "hidden": config.hidden,
            "bits": config.bits,
            "msb_weighted": config.msb_weighted,
            "weight_decay_ratio": config.weight_decay_ratio,
        },
        "in_bits": mei.in_bits,
        "out_bits": mei.out_bits,
        "mapping": _mapping_meta(mei.mapping_config),
        "network": {
            "layer_sizes": list(net.layer_sizes),
            "activations": [layer.activation.name for layer in net.layers],
        },
        "n_conductances": n_conductances,
    }


def _member_arrays(mei: MEI, prefix: str) -> Dict[str, np.ndarray]:
    arrays: Dict[str, np.ndarray] = {}
    for i, layer in enumerate(mei.network.layers):
        arrays[f"{prefix}weights_{i}"] = layer.weights
        arrays[f"{prefix}bias_{i}"] = layer.bias
    assert mei.analog is not None
    for j, g in enumerate(mei.analog.conductance_snapshot()):
        arrays[f"{prefix}g_{j}"] = g
    return arrays


def _restore_member(member: Dict[str, object], arrays: Dict[str, np.ndarray],
                    prefix: str) -> MEI:
    net_meta: Dict[str, object] = member["network"]  # type: ignore[assignment]
    sizes: List[int] = list(net_meta["layer_sizes"])  # type: ignore[arg-type]
    activations: List[str] = list(net_meta["activations"])  # type: ignore[arg-type]
    net = MLP(
        sizes,
        hidden_activation=activations[0] if len(activations) > 1 else activations[-1],
        output_activation=activations[-1],
        rng=0,
    )
    for i, layer in enumerate(net.layers):
        layer.weights = np.array(arrays[f"{prefix}weights_{i}"])
        layer.bias = np.array(arrays[f"{prefix}bias_{i}"])
        layer.activation = get_activation(activations[i])
    mei = MEI(
        MEIConfig(**member["config"]),  # type: ignore[call-overload]
        mapping_config=_mapping_from(member["mapping"]),  # type: ignore[arg-type]
        seed=0,
    )
    mei.network = net
    mei.in_bits = int(member["in_bits"])  # type: ignore[arg-type]
    mei.out_bits = int(member["out_bits"])  # type: ignore[arg-type]
    mei.deploy()
    assert mei.analog is not None
    n = int(member["n_conductances"])  # type: ignore[arg-type]
    mei.analog.restore_conductances([arrays[f"{prefix}g_{j}"] for j in range(n)])
    return mei


def save_artifact(
    system: Union[MEI, SAAB],
    path: Union[str, pathlib.Path],
    benchmark: Optional[str] = None,
    extra_meta: Optional[Dict[str, object]] = None,
) -> pathlib.Path:
    """Serialize a deployed system into one load-once serving archive.

    Undeployed MEI members are deployed first (the artifact *is* the
    programmed chip).  Returns the written path.
    """
    path = pathlib.Path(path)
    if isinstance(system, SAAB):
        if not system.is_trained:
            raise ValueError("cannot build a serving artifact from an untrained ensemble")
        members: List[MEI] = []
        for learner in system.learners:
            if not isinstance(learner, MEI):
                raise TypeError("serving artifacts support MEI learners only")
            members.append(learner)
        saab_meta: Optional[Dict[str, object]] = {
            "alphas": [float(a) for a in system.alphas],
            "round_errors": [float(r.error) for r in system.rounds],
            "config": {
                "n_learners": system.config.n_learners,
                "compare_bits": system.config.compare_bits,
                "seed": system.config.seed,
            },
        }
        system_kind = "saab"
    else:
        members = [system]
        saab_meta = None
        system_kind = "mei"

    arrays: Dict[str, np.ndarray] = {}
    member_metas: List[Dict[str, object]] = []
    for k, mei in enumerate(members):
        if mei.analog is None:
            mei.deploy()
        member_arrays = _member_arrays(mei, f"m{k}_")
        n_conductances = sum(1 for name in member_arrays if name.startswith(f"m{k}_g_"))
        member_metas.append(_member_meta(mei, n_conductances))
        arrays.update(member_arrays)

    first = members[0]
    meta: Dict[str, object] = {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "system": system_kind,
        "benchmark": benchmark,
        "interface": {"B_I": first.in_bits, "B_O": first.out_bits, "B_N": first.bits},
        "provenance": provenance_header(),
        "members": member_metas,
        "saab": saab_meta,
    }
    if extra_meta:
        meta.update(extra_meta)
    serialization.write_archive(path, ARTIFACT_KIND, meta, arrays)
    _log.info(
        "serving artifact written",
        extra={"fields": {"path": str(path), "system": system_kind,
                          "members": len(members), "benchmark": benchmark}},
    )
    return path


def load_artifact(path: Union[str, pathlib.Path]) -> LoadedModel:
    """Load + digest-verify a serving artifact and rebuild its system.

    Raises :class:`repro.serialization.IntegrityError` when the
    archive's content digest does not match its payload, and
    ``ValueError`` on a wrong kind or an unsupported schema version.
    """
    path = pathlib.Path(path)
    meta, arrays = serialization.read_archive(path, ARTIFACT_KIND)
    version = meta.get("schema_version")
    if version != ARTIFACT_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported serving-artifact schema version {version!r} "
            f"(this build reads version {ARTIFACT_SCHEMA_VERSION})"
        )
    member_metas: List[Dict[str, object]] = meta["members"]
    members = [
        _restore_member(member, arrays, f"m{k}_")
        for k, member in enumerate(member_metas)
    ]
    if meta["system"] == "mei":
        system: Union[MEI, SAAB] = members[0]
    else:
        saab_meta: Dict[str, object] = meta["saab"]
        from repro.core.saab import _BoostRound

        saab = SAAB(
            lambda k: (_ for _ in ()).throw(
                RuntimeError("loaded ensembles cannot extend")
            ),
            SAABConfig(**saab_meta["config"]),  # type: ignore[call-overload]
        )
        alphas: List[float] = saab_meta["alphas"]  # type: ignore[assignment]
        errors: List[float] = saab_meta["round_errors"]  # type: ignore[assignment]
        for learner, alpha, error in zip(members, alphas, errors):
            saab.learners.append(learner)
            saab.alphas.append(float(alpha))
            saab.rounds.append(_BoostRound(error=float(error), alpha=float(alpha)))
        system = saab
    _log.info(
        "serving artifact loaded",
        extra={"fields": {"path": str(path), "system": str(meta["system"]),
                          "members": len(members)}},
    )
    return LoadedModel(system=system, kind=str(meta["system"]), meta=meta, path=path)


def train_serve_system(
    name: str,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    ensemble: int = 0,
) -> Tuple[Union[MEI, SAAB], object]:
    """Train a servable system on one AxBench workload.

    Uses the Table-1 recipe (paper pruned-MEI hidden width, standard
    training config at ``scale``).  ``ensemble > 1`` trains a SAAB of
    that many MEI learners instead of a single MEI.  Returns
    ``(system, dataset)`` so callers can run differential checks
    against the held-out split.
    """
    scale = scale if scale is not None else default_scale()
    bench = make_benchmark(name)
    data = bench.dataset(
        n_train=train_samples_for(name, scale), n_test=scale.n_test, seed=seed
    )
    cfg = train_config(scale, seed)
    topology = bench.spec.topology
    mei_config = MEIConfig(
        in_groups=topology.inputs,
        out_groups=topology.outputs,
        hidden=PAPER_TABLE1[name].pruned_mei.hidden,
        bits=topology.bits,
    )
    if ensemble > 1:
        saab = SAAB(
            lambda k: MEI(mei_config, seed=seed + k),
            SAABConfig(n_learners=ensemble, seed=seed),
        )
        saab.train(data.x_train, data.y_train, cfg)
        return saab, data
    mei = MEI(mei_config, seed=seed).train(data.x_train, data.y_train, cfg)
    return mei, data
