"""The micro-batched request path of the serving layer.

Concurrent value-domain requests are fused into single
``forward_trials`` calls on the deployed system — the vectorized
trials path is the batch engine the crossbar's parallelism pays off
on.  Because every output row of a crossbar pass is an independent
dot product (and the comparator hardens each bit against a 0.5
threshold), batching is invisible: a request decoded out of a fused
batch equals the request served alone.  The property suite in
``tests/test_serve_batcher.py`` proves this over arbitrary
interleavings.

Resilience reuses the :mod:`repro.parallel.resilient` policy: batch
evaluation runs on an isolated single-thread pool so a stalled worker
can be abandoned and rebuilt (``RetryPolicy.timeout``), failed batches
are retried with backoff, and a crashed dispatcher resubmits its
in-flight requests — every request's future completes exactly once.

Knobs (``repro.config.knobs``): ``REPRO_SERVE_MAX_BATCH``,
``REPRO_SERVE_MAX_DELAY_MS``, ``REPRO_SERVE_QUEUE_LIMIT``,
``REPRO_SERVE_DEADLINE_MS``.

Metrics (``repro.obs.metrics`` registry, exposed over OpenMetrics):
``serve_requests`` / ``serve_responses`` / ``serve_batches`` /
``serve_shed`` / ``serve_deadline_misses`` / ``serve_retries`` /
``serve_worker_restarts`` counters, ``serve_queue_depth`` /
``serve_batch_size`` / ``serve_batch_samples`` gauges and the
``serve_request_latency_seconds`` histogram (p50/p99 via
``Histogram.quantiles``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Union

import numpy as np

from repro.config import knobs
from repro.core.mei import MEI
from repro.core.saab import SAAB
from repro.device.variation import IDEAL, NonIdealFactors
from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.parallel.resilient import RetryPolicy

__all__ = [
    "BatchPolicy",
    "DeadlineExceeded",
    "InferenceEngine",
    "MicroBatcher",
    "QueueOverflow",
    "RequestError",
    "ServeError",
]

_log = get_logger("serve.batcher")


class ServeError(RuntimeError):
    """Base class for serving-path failures."""


class QueueOverflow(ServeError):
    """The request queue is full; the request was shed, not queued."""


class DeadlineExceeded(ServeError):
    """The request's deadline passed before it could be served."""


class RequestError(ValueError):
    """The request payload is malformed (shape, range or type)."""


class InferenceEngine:
    """Value-domain prediction on a deployed MEI or SAAB system.

    ``predict`` routes every batch through the system's
    ``predict_trials`` path — encode to bit arrays, one
    ``forward_trials`` crossbar pass, comparator hardening, decode —
    so a fused micro-batch costs a single analog evaluation.
    """

    def __init__(self, system: Union[MEI, SAAB],
                 noise: NonIdealFactors = IDEAL) -> None:
        self.system = system
        self.noise = noise

    @property
    def _first(self) -> MEI:
        if isinstance(self.system, SAAB):
            learner = self.system.learners[0]
            if not isinstance(learner, MEI):
                raise TypeError("serving supports MEI learners only")
            return learner
        return self.system

    @property
    def in_dim(self) -> int:
        return self._first.config.in_groups

    @property
    def out_dim(self) -> int:
        return self._first.config.out_groups

    def validate(self, values: object) -> np.ndarray:
        """Coerce one request to ``(samples, in_dim)`` unit values.

        A 1-D vector is treated as a single sample.  Raises
        :class:`RequestError` on wrong shapes, non-finite entries or
        values outside the codec's ``[0, 1]`` domain.
        """
        try:
            arr = np.asarray(values, dtype=float)
        except (TypeError, ValueError) as exc:
            raise RequestError(f"request is not numeric: {exc}") from exc
        if arr.ndim == 1:
            arr = arr[np.newaxis, :]
        if arr.ndim != 2 or arr.shape[0] < 1:
            raise RequestError(
                f"request must be one sample or a (samples, {self.in_dim}) "
                f"matrix, got shape {arr.shape}"
            )
        if arr.shape[1] != self.in_dim:
            raise RequestError(
                f"request has {arr.shape[1]} input values per sample, "
                f"model takes {self.in_dim}"
            )
        if not np.all(np.isfinite(arr)):
            raise RequestError("request contains non-finite values")
        if arr.min() < 0.0 or arr.max() > 1.0:
            raise RequestError("request values must lie in the unit interval [0, 1]")
        return arr

    def predict(self, batch: np.ndarray) -> np.ndarray:
        """One fused crossbar evaluation of a ``(samples, in_dim)`` batch."""
        return self.system.predict_trials(batch, self.noise, trials=1)[0]


@dataclass(frozen=True)
class BatchPolicy:
    """Micro-batching knobs (see the module docstring for the env names)."""

    max_batch: int = 64
    """Maximum total samples fused into one crossbar pass."""
    max_delay: float = 0.002
    """Seconds to hold an open batch for more requests (0 = no wait)."""
    queue_limit: int = 256
    """Requests queued beyond this are shed with :class:`QueueOverflow`."""
    deadline: Optional[float] = None
    """Per-request queue deadline in seconds (None = no deadline)."""

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")

    @classmethod
    def from_knobs(cls) -> "BatchPolicy":
        """The policy configured through the ``REPRO_SERVE_*`` knobs."""
        deadline_ms = knobs.get_float("REPRO_SERVE_DEADLINE_MS")
        return cls(
            max_batch=int(knobs.get_int("REPRO_SERVE_MAX_BATCH") or 64),
            max_delay=float(knobs.get_float("REPRO_SERVE_MAX_DELAY_MS") or 0.0) / 1000.0,
            queue_limit=int(knobs.get_int("REPRO_SERVE_QUEUE_LIMIT") or 256),
            deadline=None if deadline_ms is None else float(deadline_ms) / 1000.0,
        )


@dataclass
class _Request:
    values: np.ndarray
    samples: int
    future: "Future[np.ndarray]"
    enqueued: float
    deadline_at: Optional[float] = None
    attempts: int = 0
    extra: dict = field(default_factory=dict)


class MicroBatcher:
    """Fuses concurrent requests into single batched evaluations.

    ``submit`` returns a ``concurrent.futures.Future`` (wrap with
    ``asyncio.wrap_future`` from async code).  A dispatcher thread
    collects up to ``policy.max_batch`` samples within
    ``policy.max_delay`` of the first dequeue and evaluates them in one
    ``predict_fn`` call on an isolated evaluation pool.  Use as a
    context manager so shutdown is exception-safe.
    """

    def __init__(
        self,
        predict_fn: Callable[[np.ndarray], np.ndarray],
        policy: Optional[BatchPolicy] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._predict = predict_fn
        self.policy = policy if policy is not None else BatchPolicy.from_knobs()
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        self._cond = threading.Condition()
        self._queue: Deque[_Request] = deque()
        self._closed = False
        self._dispatcher: Optional[threading.Thread] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # -- request side ----------------------------------------------------

    def submit(self, values: np.ndarray) -> "Future[np.ndarray]":
        """Enqueue one validated ``(samples, in_dim)`` request.

        Raises :class:`QueueOverflow` immediately when the queue is at
        ``policy.queue_limit`` (overload shedding) and
        :class:`ServeError` after ``close()``.
        """
        arr = np.asarray(values)
        if arr.ndim != 2 or arr.shape[0] < 1:
            raise RequestError(f"submit takes a (samples, values) matrix, got {arr.shape}")
        with self._cond:
            if self._closed:
                raise ServeError("micro-batcher is closed")
            if len(self._queue) >= self.policy.queue_limit:
                obs_metrics.counter("serve_shed").inc()
                raise QueueOverflow(
                    f"request queue at its limit ({self.policy.queue_limit}); "
                    "request shed"
                )
            now = time.monotonic()
            request = _Request(
                values=arr,
                samples=int(arr.shape[0]),
                future=Future(),
                enqueued=now,
                deadline_at=(None if self.policy.deadline is None
                             else now + self.policy.deadline),
            )
            self._queue.append(request)
            obs_metrics.counter("serve_requests").inc()
            obs_metrics.gauge("serve_queue_depth").set(float(len(self._queue)))
            self._ensure_dispatcher_locked()
            self._cond.notify_all()
        return request.future

    # -- lifecycle -------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Drain the queue, stop the dispatcher and tear down the pool."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
            dispatcher = self._dispatcher
        if dispatcher is not None:
            dispatcher.join(timeout=timeout)
        with self._cond:
            while self._queue:  # dispatcher never started or died
                self._complete(self._queue.popleft(),
                               error=ServeError("micro-batcher closed"))
            obs_metrics.gauge("serve_queue_depth").set(0.0)
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- dispatcher ------------------------------------------------------

    def _ensure_dispatcher_locked(self) -> None:
        if self._dispatcher is None or not self._dispatcher.is_alive():
            self._dispatcher = threading.Thread(
                target=self._run, name="repro-serve-batcher", daemon=True
            )
            self._dispatcher.start()

    def _run(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            try:
                self._process(batch)
            except BaseException as exc:  # noqa: B036 - chaos guard: resubmit, never drop
                self._resubmit(batch, exc)

    def _collect(self) -> Optional[List[_Request]]:
        """Dequeue one batch: first request + fills within the delay window.

        Returns ``None`` once closed and drained.  A single request
        larger than ``max_batch`` still forms its own batch.
        """
        policy = self.policy
        with self._cond:
            while not self._queue:
                if self._closed:
                    return None
                self._cond.wait(0.1)
            batch = [self._queue.popleft()]
            total = batch[0].samples
            horizon = time.monotonic() + policy.max_delay
            while total < policy.max_batch:
                if self._queue:
                    if total + self._queue[0].samples > policy.max_batch:
                        break
                    request = self._queue.popleft()
                    batch.append(request)
                    total += request.samples
                    continue
                remaining = horizon - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._cond.wait(remaining)
            obs_metrics.gauge("serve_queue_depth").set(float(len(self._queue)))
        return batch

    def _process(self, batch: List[_Request]) -> None:
        now = time.monotonic()
        live: List[_Request] = []
        for request in batch:
            if request.deadline_at is not None and now > request.deadline_at:
                obs_metrics.counter("serve_deadline_misses").inc()
                self._complete(request, error=DeadlineExceeded(
                    f"request queued {now - request.enqueued:.3f}s, past its "
                    f"{self.policy.deadline}s deadline"
                ))
            else:
                live.append(request)
        if not live:
            return
        values = np.concatenate([r.values for r in live], axis=0)
        obs_metrics.gauge("serve_batch_size").set(float(len(live)))
        obs_metrics.gauge("serve_batch_samples").set(float(values.shape[0]))
        obs_metrics.counter("serve_batches").inc()
        outputs = self._evaluate(values)
        done = time.monotonic()
        latency = obs_metrics.histogram("serve_request_latency_seconds")
        offset = 0
        for request in live:
            self._complete(request, value=outputs[offset:offset + request.samples])
            offset += request.samples
            latency.observe(done - request.enqueued)
        obs_metrics.counter("serve_responses").inc(float(len(live)))

    def _resubmit(self, batch: List[_Request], cause: BaseException) -> None:
        """Crashed batch: requeue survivors (bounded by the retry budget)."""
        obs_metrics.counter("serve_worker_restarts").inc()
        _log.warning(
            "serve batch worker crashed; resubmitting its requests",
            extra={"fields": {"error": repr(cause), "requests": len(batch)}},
        )
        with self._cond:
            for request in reversed(batch):
                if request.future.done():
                    continue
                request.attempts += 1
                if request.attempts > self.retry.retries:
                    self._complete(request, error=ServeError(
                        f"batch worker crashed {request.attempts} times "
                        f"(last: {cause!r}); retry budget exhausted"
                    ))
                else:
                    self._queue.appendleft(request)
            obs_metrics.gauge("serve_queue_depth").set(float(len(self._queue)))
            self._cond.notify_all()

    # -- evaluation (stall-isolated, retried) ----------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                # Long-lived by design: one evaluation slot for the whole
                # server lifetime, torn down in close().
                self._pool = ThreadPoolExecutor(  # repro-lint: disable=RPR010
                    max_workers=1, thread_name_prefix="repro-serve-eval"
                )
            return self._pool

    def _abandon_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def _evaluate(self, values: np.ndarray) -> np.ndarray:
        """Evaluate one fused batch, retrying failures and stalls.

        A stall (no result within ``retry.timeout``) abandons the
        evaluation pool — its late result, if any, is discarded — and
        resubmits the batch on a fresh pool, mirroring the
        ``resilient_map`` pool-rebuild semantics.
        """
        policy = self.retry
        last_error: Optional[BaseException] = None
        for attempt in range(policy.retries + 1):
            future = self._ensure_pool().submit(self._predict, values)
            try:
                return future.result(timeout=policy.timeout)
            except FutureTimeoutError:
                obs_metrics.counter("serve_worker_restarts").inc()
                self._abandon_pool()
                last_error = ServeError(
                    f"batch evaluation stalled beyond {policy.timeout}s; "
                    "pool rebuilt"
                )
                _log.warning(
                    "serve batch evaluation stalled; pool rebuilt",
                    extra={"fields": {"timeout": policy.timeout, "attempt": attempt}},
                )
            except Exception as exc:
                obs_metrics.counter("serve_retries").inc()
                last_error = exc
                _log.warning(
                    "serve batch evaluation failed; retrying",
                    extra={"fields": {"error": repr(exc), "attempt": attempt}},
                )
            if attempt < policy.retries:
                time.sleep(policy.sleep_for(attempt))
        assert last_error is not None
        raise ServeError(f"batch evaluation failed terminally: {last_error!r}") \
            from last_error

    # -- exactly-once completion -----------------------------------------

    @staticmethod
    def _complete(
        request: _Request,
        value: Optional[np.ndarray] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        future = request.future
        if future.done():  # exactly-once: never overwrite a delivered response
            return
        try:
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(value)
        except Exception:  # cancelled by the caller between check and set
            pass
