"""The asyncio HTTP front of the serving layer.

A deliberately small stdlib-only server (mirroring
:class:`repro.obs.openmetrics.TelemetryServer`'s scope): it parses
one HTTP/1.1 request per connection and answers

* ``POST /v1/predict`` — body ``{"inputs": [[...], ...]}`` (or one
  flat sample); encoded, micro-batched through
  :class:`repro.serve.batcher.MicroBatcher` and decoded back to
  ``{"outputs": [...], "samples": n}``.  Overload returns 503,
  a missed deadline 504, a malformed payload 400;
* ``GET /healthz`` — liveness;
* ``GET /model`` — the loaded artifact's summary (system kind,
  benchmark, bit interface, schema version, digest);
* ``GET /metrics`` — the OpenMetrics exposition of the process-wide
  registry, including the ``serve_*`` families.

:class:`BackgroundServer` runs the same service on a daemon thread
with its own event loop — the harness used by the loadgen benchmark,
the CI smoke step and the tests.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Dict, Optional, Tuple

import numpy as np

from repro.config import knobs
from repro.obs import openmetrics
from repro.obs.log import get_logger
from repro.serve.artifact import LoadedModel
from repro.serve.batcher import (
    BatchPolicy,
    DeadlineExceeded,
    InferenceEngine,
    MicroBatcher,
    QueueOverflow,
    RequestError,
    ServeError,
)

__all__ = ["BackgroundServer", "InferenceService", "run_service"]

_log = get_logger("serve.service")

_MAX_BODY_BYTES = 8 * 1024 * 1024


class InferenceService:
    """One loaded model behind an asyncio HTTP endpoint."""

    def __init__(
        self,
        model: LoadedModel,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        policy: Optional[BatchPolicy] = None,
    ) -> None:
        self.model = model
        self.engine = InferenceEngine(model.system)
        self.batcher = MicroBatcher(self.engine.predict, policy=policy)
        self.host = host
        self.port = int(knobs.get_int("REPRO_SERVE_PORT") or 0) if port is None else port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "InferenceService":
        """Bind the listening socket (port 0 picks an ephemeral one)."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        _log.info(
            "inference service listening",
            extra={"fields": {"host": self.host, "port": self.port,
                              "system": self.model.kind,
                              "benchmark": self.model.meta.get("benchmark")}},
        )
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request handling ------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, reason, content_type, body = await self._respond(reader)
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode() + body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            writer.close()

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            return _json_error(400, "Bad Request", "malformed request line")
        method, target = parts[0], parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            return _json_error(413, "Payload Too Large",
                               f"body over {_MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""

        if method == "GET" and target == "/healthz":
            return _json_ok({"status": "ok", "system": self.model.kind})
        if method == "GET" and target == "/model":
            return _json_ok(self._model_summary())
        if method == "GET" and target == "/metrics":
            payload = openmetrics.render().encode()
            return 200, "OK", openmetrics.CONTENT_TYPE, payload
        if method == "POST" and target == "/v1/predict":
            return await self._predict(body)
        return _json_error(404, "Not Found", f"no route for {method} {target}")

    async def _predict(self, body: bytes) -> Tuple[int, str, str, bytes]:
        try:
            payload = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            return _json_error(400, "Bad Request", f"body is not JSON: {exc}")
        if not isinstance(payload, dict) or "inputs" not in payload:
            return _json_error(400, "Bad Request",
                               'body must be {"inputs": [[...], ...]}')
        try:
            values = self.engine.validate(payload["inputs"])
        except RequestError as exc:
            return _json_error(400, "Bad Request", str(exc))
        try:
            future = self.batcher.submit(values)
        except QueueOverflow as exc:
            return _json_error(503, "Service Unavailable", str(exc))
        except ServeError as exc:
            return _json_error(503, "Service Unavailable", str(exc))
        try:
            outputs = await asyncio.wrap_future(future)
        except DeadlineExceeded as exc:
            return _json_error(504, "Gateway Timeout", str(exc))
        except ServeError as exc:
            return _json_error(500, "Internal Server Error", str(exc))
        return _json_ok({
            "outputs": np.asarray(outputs).tolist(),
            "samples": int(values.shape[0]),
        })

    def _model_summary(self) -> Dict[str, object]:
        meta = self.model.meta
        return {
            "system": self.model.kind,
            "benchmark": meta.get("benchmark"),
            "interface": meta.get("interface"),
            "schema_version": meta.get("schema_version"),
            "digest": meta.get("digest"),
            "members": len(meta.get("members") or []),
            "path": str(self.model.path),
        }


def _json_ok(payload: Dict[str, object]) -> Tuple[int, str, str, bytes]:
    return 200, "OK", "application/json", json.dumps(payload).encode()


def _json_error(status: int, reason: str, detail: str) -> Tuple[int, str, str, bytes]:
    return status, reason, "application/json", json.dumps({"error": detail}).encode()


class BackgroundServer:
    """Run an :class:`InferenceService` on a daemon thread.

    Use as a context manager::

        with BackgroundServer(model, port=0) as server:
            ... requests against server.url ...
    """

    def __init__(
        self,
        model: LoadedModel,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: Optional[BatchPolicy] = None,
    ) -> None:
        self.service = InferenceService(model, host=host, port=port, policy=policy)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "BackgroundServer":
        loop = asyncio.new_event_loop()
        self._loop = loop
        started = threading.Event()
        failure: Dict[str, BaseException] = {}

        def _run() -> None:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.service.start())
            except BaseException as exc:  # noqa: B036 - surfaced to start()
                failure["error"] = exc
                started.set()
                return
            started.set()
            loop.run_forever()

        self._thread = threading.Thread(
            target=_run, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=30):
            raise ServeError("inference service did not start within 30s")
        if "error" in failure:
            raise ServeError(f"inference service failed to start: {failure['error']!r}")
        return self

    @property
    def url(self) -> str:
        return f"http://{self.service.host}:{self.service.port}"

    def stop(self, timeout: float = 10.0) -> None:
        loop, self._loop = self._loop, None
        if loop is not None:

            def _shutdown() -> None:
                asyncio.ensure_future(self.service.stop())
                loop.call_soon(loop.stop)

            loop.call_soon_threadsafe(_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        self.service.batcher.close()

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


async def _amain(service: InferenceService) -> None:
    await service.serve_forever()


def run_service(
    model: LoadedModel,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    policy: Optional[BatchPolicy] = None,
) -> None:
    """Blocking entry point used by ``python -m repro serve``."""
    service = InferenceService(model, host=host, port=port, policy=policy)
    try:
        asyncio.run(_amain(service))
    finally:
        service.batcher.close()
