"""Inference serving layer: model artifacts + micro-batched request path.

The paper's MEI system is ultimately an *inference engine* — a
deployed crossbar answering value-domain queries through bit codecs.
This package is the request path around it:

* :mod:`repro.serve.artifact` — compact load-once model artifacts
  (programmed conductances, bit-codec config ``B_I/B_O/B_N``, mapping
  config, ensemble weights, provenance) with a versioned schema and a
  content digest verified on load;
* :mod:`repro.serve.batcher` — the micro-batcher fusing concurrent
  requests into single ``forward_trials`` calls, with overload
  shedding, per-request deadlines and a resilient batch worker;
* :mod:`repro.serve.service` — the asyncio HTTP front
  (``python -m repro serve``) plus a background-thread harness for
  tests and benchmarks;
* :mod:`repro.serve.loadgen` — a closed-loop load generator used by
  the serve benchmark and the CI smoke step.

See ``docs/serving.md`` for the artifact format and the knob table.
"""

from repro.serve.artifact import (
    ARTIFACT_KIND,
    ARTIFACT_SCHEMA_VERSION,
    LoadedModel,
    load_artifact,
    save_artifact,
    train_serve_system,
)
from repro.serve.batcher import (
    BatchPolicy,
    DeadlineExceeded,
    InferenceEngine,
    MicroBatcher,
    QueueOverflow,
    RequestError,
    ServeError,
)
from repro.serve.loadgen import LoadgenResult, run_loadgen
from repro.serve.service import BackgroundServer, InferenceService

__all__ = [
    "ARTIFACT_KIND",
    "ARTIFACT_SCHEMA_VERSION",
    "BackgroundServer",
    "BatchPolicy",
    "DeadlineExceeded",
    "InferenceEngine",
    "InferenceService",
    "LoadedModel",
    "LoadgenResult",
    "MicroBatcher",
    "QueueOverflow",
    "RequestError",
    "ServeError",
    "load_artifact",
    "run_loadgen",
    "save_artifact",
    "train_serve_system",
]
