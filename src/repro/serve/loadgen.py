"""Closed-loop load generator for the inference service.

``run_loadgen`` drives ``POST /v1/predict`` from ``concurrency``
worker threads, each issuing requests back-to-back until the target
count is reached, and reports sustained requests/sec plus client-side
latency quantiles.  Used by ``benchmarks/test_bench_serve.py`` (the
``BENCH_serve.json`` gate) and the ``python -m repro serve --smoke``
CI step.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple
from urllib.parse import urlsplit

import numpy as np

from repro.obs.log import get_logger

__all__ = ["LoadgenResult", "run_loadgen"]

_log = get_logger("serve.loadgen")


@dataclass
class LoadgenResult:
    """Aggregate outcome of one load-generation run."""

    requests: int
    ok: int
    shed: int
    errors: int
    duration_seconds: float
    requests_per_second: float
    latency_p50_ms: float
    latency_p99_ms: float
    latencies_ms: List[float] = field(default_factory=list, repr=False)

    def as_dict(self) -> Dict[str, float]:
        """Flat JSON/history-ready metrics (latency list elided)."""
        return {
            "requests": float(self.requests),
            "ok": float(self.ok),
            "shed": float(self.shed),
            "errors": float(self.errors),
            "duration_seconds": self.duration_seconds,
            "requests_per_second": self.requests_per_second,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
        }


def _post_predict(host: str, port: int, inputs: List[List[float]],
                  timeout: float) -> Tuple[int, bytes]:
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps({"inputs": inputs})
        connection.request(
            "POST", "/v1/predict", body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def run_loadgen(
    url: str,
    in_dim: int,
    requests: int = 200,
    concurrency: int = 8,
    samples_per_request: int = 1,
    seed: int = 0,
    timeout: float = 30.0,
) -> LoadgenResult:
    """Drive the service at ``url`` and measure sustained throughput.

    Inputs are uniform unit-interval samples from a seeded generator,
    so runs are reproducible.  503 responses count as ``shed`` (the
    service protecting itself), anything else non-200 as ``errors``.
    """
    split = urlsplit(url)
    host, port = split.hostname or "127.0.0.1", split.port or 80
    rng = np.random.default_rng(seed)
    payloads = [
        rng.uniform(0.0, 1.0, size=(samples_per_request, in_dim)).tolist()
        for _ in range(requests)
    ]
    counter = {"next": 0}
    counter_lock = threading.Lock()
    latencies: List[float] = []
    outcomes = {"ok": 0, "shed": 0, "errors": 0}
    record_lock = threading.Lock()

    def _worker() -> None:
        while True:
            with counter_lock:
                index = counter["next"]
                if index >= requests:
                    return
                counter["next"] = index + 1
            begin = time.perf_counter()
            try:
                status, _ = _post_predict(host, port, payloads[index], timeout)
            except OSError as exc:
                _log.warning("loadgen request failed",
                             extra={"fields": {"error": repr(exc)}})
                with record_lock:
                    outcomes["errors"] += 1
                continue
            elapsed_ms = (time.perf_counter() - begin) * 1e3
            with record_lock:
                if status == 200:
                    outcomes["ok"] += 1
                    latencies.append(elapsed_ms)
                elif status == 503:
                    outcomes["shed"] += 1
                else:
                    outcomes["errors"] += 1

    threads = [
        threading.Thread(target=_worker, name=f"repro-loadgen-{i}", daemon=True)
        for i in range(max(1, concurrency))
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = max(time.perf_counter() - start, 1e-9)

    sorted_latencies = sorted(latencies)
    p50 = float(np.percentile(sorted_latencies, 50)) if sorted_latencies else float("nan")
    p99 = float(np.percentile(sorted_latencies, 99)) if sorted_latencies else float("nan")
    return LoadgenResult(
        requests=requests,
        ok=outcomes["ok"],
        shed=outcomes["shed"],
        errors=outcomes["errors"],
        duration_seconds=duration,
        requests_per_second=outcomes["ok"] / duration,
        latency_p50_ms=p50,
        latency_p99_ms=p99,
        latencies_ms=latencies,
    )
