"""ICE-style inline calibration for deployed crossbar networks.

The paper cites its companion work "ICE: inline calibration for
memristor crossbar-based computing engine" (Li et al., DATE'14, Ref.
[11]) as the standard remedy for static crossbar deviation.  This
module implements the behavioural equivalent:

1. fabricate a chip instance with *static* process variation
   (:meth:`repro.core.deploy.AnalogMLP.freeze_variation`);
2. drive a small calibration set through the physical chip and through
   the ideal software network;
3. fit a per-output-port affine correction (programmable gain/offset
   in the output periphery) by least squares;
4. install the correction on the chip (``output_correction``), so
   every subsequent inference is compensated.

An affine output correction cannot undo arbitrary hidden-layer
distortion, but static variation largely manifests as per-port gain
and offset error at the output stage, which is exactly what it fixes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.deploy import AnalogMLP

__all__ = ["CalibrationReport", "ice_calibrate"]


@dataclass(frozen=True)
class CalibrationReport:
    """Before/after deviation of the chip from its software reference."""

    error_before: float
    error_after: float
    gain: np.ndarray
    offset: np.ndarray

    @property
    def improvement(self) -> float:
        """Fraction of the pre-calibration deviation removed."""
        if self.error_before <= 1e-15:
            return 0.0
        return 1.0 - self.error_after / self.error_before


def ice_calibrate(
    analog: AnalogMLP,
    reference: np.ndarray,
    x_cal: np.ndarray,
) -> CalibrationReport:
    """Fit and install a per-port affine output correction.

    Parameters
    ----------
    analog:
        The deployed (and typically variation-frozen) chip.
    reference:
        The ideal outputs for ``x_cal`` — usually the software
        network's predictions, shape ``(n, out_dim)``.
    x_cal:
        Calibration inputs in the chip's input domain (analog voltages
        for an AD/DA RCS, bit arrays for MEI), shape ``(n, in_dim)``.

    The correction is fit on the *uncorrected* measured outputs; any
    previously installed correction is discarded first.
    """
    reference = np.asarray(reference, dtype=float)
    x_cal = np.asarray(x_cal, dtype=float)
    if reference.shape[0] != x_cal.shape[0]:
        raise ValueError("x_cal and reference lengths differ")
    if reference.shape[0] < 2:
        raise ValueError("need at least 2 calibration samples")

    analog.output_correction = None
    measured = analog.forward(x_cal)
    if measured.shape != reference.shape:
        raise ValueError(
            f"reference shape {reference.shape} does not match chip output "
            f"shape {measured.shape}"
        )

    n_ports = measured.shape[1]
    gain = np.ones(n_ports)
    offset = np.zeros(n_ports)
    for port in range(n_ports):
        m = measured[:, port]
        e = reference[:, port]
        variance = np.var(m)
        if variance < 1e-12:
            # A stuck port: only an offset can help.
            gain[port] = 1.0
            offset[port] = float(np.mean(e) - np.mean(m))
            continue
        covariance = np.mean((m - m.mean()) * (e - e.mean()))
        gain[port] = covariance / variance
        offset[port] = float(e.mean() - gain[port] * m.mean())

    error_before = float(np.mean(np.abs(measured - reference)))
    corrected = np.clip(gain * measured + offset, 0.0, 1.0)
    error_after = float(np.mean(np.abs(corrected - reference)))

    analog.output_correction = (gain, offset)
    return CalibrationReport(
        error_before=error_before,
        error_after=error_after,
        gain=gain,
        offset=offset,
    )
