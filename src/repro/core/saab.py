"""SAAB: Serial Array Adaptive Boosting (Sec. 3.2, Algorithm 1).

SAAB is an AdaBoost-style ensemble customized for RCS.  Differences
from textbook AdaBoost, all taken from the paper:

* the error of a learner is *relaxed* — only the most significant
  ``B_C`` bits of each output group are compared (Line 6's
  ``R_k(x, sigma)^{B_C} != y^{B_C}``), otherwise nearly every sample
  counts as "hard" and boosting collapses;
* the evaluation injects the non-ideal factors ``sigma``, so samples
  that are *sensitive to noise* get up-weighted alongside genuinely
  hard ones — this is what buys the robustness results of Fig. 5;
* the combined output is a weighted per-bit vote of the learners'
  hardened bit arrays (the hardware realization of Line 10's weighted
  voting, executable by the attached digital system).

The implementation is generic over the learner type: anything exposing
``train / predict_bits / target_bits / out_groups / bits_per_group``
works, so both :class:`repro.core.mei.MEI` and
:class:`repro.core.rcs.TraditionalRCS` learners can be boosted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol

import numpy as np

from repro.device.variation import IDEAL, NonIdealFactors, TrialSpec, trial_indices
from repro.nn.datasets import resample
from repro.nn.trainer import TrainConfig
from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.obs.trace import span
from repro.quant.binarray import msb_match

__all__ = ["BoostableLearner", "SAABConfig", "SAAB"]

_log = get_logger("core.saab")


class BoostableLearner(Protocol):
    """Structural interface SAAB requires of a learner."""

    out_groups: int
    bits_per_group: int

    def train(self, x: np.ndarray, y: np.ndarray, config: Optional[TrainConfig] = None): ...

    def predict_bits(
        self, x: np.ndarray, noise: NonIdealFactors = IDEAL, trial: int = 0
    ) -> np.ndarray: ...

    def target_bits(self, y: np.ndarray) -> np.ndarray: ...


@dataclass(frozen=True)
class SAABConfig:
    """Boosting hyper-parameters.

    Parameters
    ----------
    n_learners:
        Ensemble size ``K`` (bounded by Eq. 9 in the DSE flow).
    compare_bits:
        ``B_C`` — leading bits compared when judging a sample correct
        (the paper suggests 4-6 of an 8-bit array).
    noise:
        Non-ideal factors injected when evaluating each learner
        (Line 6); IDEAL reduces SAAB to plain relaxed AdaBoost.
    sample_size:
        Size of each learner's resampled training set (None = same as
        the input set); only used with ``sampling="resample"``.
    sampling:
        How the distribution ``p_n`` reaches each learner.
        ``"weighted"`` (default) trains on the full set with per-sample
        loss weights — the reweighting form of AdaBoost, equivalent in
        expectation to the paper's Line 4 but without bootstrap
        accuracy loss (visible at small sample budgets).
        ``"resample"`` draws a bootstrap set from ``p_n``, literally
        matching Line 4's "generate training samples s_k".
    seed:
        Seed for the resampling draws.
    """

    n_learners: int
    compare_bits: int = 5
    noise: NonIdealFactors = IDEAL
    sample_size: Optional[int] = None
    sampling: str = "weighted"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_learners < 1:
            raise ValueError(f"n_learners must be >= 1, got {self.n_learners}")
        if self.compare_bits < 1:
            raise ValueError(f"compare_bits must be >= 1, got {self.compare_bits}")
        if self.sampling not in ("weighted", "resample"):
            raise ValueError(
                f"sampling must be 'weighted' or 'resample', got {self.sampling!r}"
            )


@dataclass
class _BoostRound:
    """Diagnostics for one boosting round."""

    error: float
    alpha: float


class SAAB:
    """Serial Array Adaptive Boosting over RCS learners.

    Parameters
    ----------
    learner_factory:
        Callable ``k -> learner`` building the k-th untrained learner
        (use distinct seeds per ``k`` for diversity).
    config:
        Boosting hyper-parameters.
    """

    def __init__(self, learner_factory: Callable[[int], BoostableLearner], config: SAABConfig):
        self.factory = learner_factory
        self.config = config
        self.learners: List[BoostableLearner] = []
        self.alphas: List[float] = []
        self.rounds: List[_BoostRound] = []
        self._weights: Optional[np.ndarray] = None
        self._rng = np.random.default_rng(config.seed)

    # -- training (Algorithm 1) -------------------------------------------

    def train(
        self,
        x: np.ndarray,
        y: np.ndarray,
        train_config: Optional[TrainConfig] = None,
    ) -> "SAAB":
        """Run Algorithm 1 for ``config.n_learners`` rounds."""
        return self.extend(x, y, self.config.n_learners - len(self.learners), train_config)

    def extend(
        self,
        x: np.ndarray,
        y: np.ndarray,
        n_rounds: int,
        train_config: Optional[TrainConfig] = None,
    ) -> "SAAB":
        """Add ``n_rounds`` boosted learners, continuing the weight state.

        The DSE flow (Algorithm 2, Line 11's ``K++``) grows the
        ensemble one learner at a time, so the sample-weight
        distribution persists across calls.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(x) != len(y):
            raise ValueError(f"x and y lengths differ: {len(x)} vs {len(y)}")
        n = len(x)
        if self._weights is None:
            self._weights = np.full(n, 1.0 / n)  # Line 1
        elif len(self._weights) != n:
            raise ValueError("extend() must reuse the original training set")

        for _ in range(n_rounds):  # Line 2
            k = len(self.learners)
            with span("saab_round", k=k) as sp:
                probabilities = self._weights / self._weights.sum()  # Line 3
                learner = self.factory(k)
                effective_config = train_config
                if effective_config is None and hasattr(learner, "seed"):
                    # The learner's own default (shuffle by its seed), minus
                    # the per-epoch train-loss bookkeeping no boosting round
                    # reads — training results are unchanged.
                    effective_config = TrainConfig(
                        shuffle_seed=learner.seed, track_train_loss=False
                    )
                if self.config.sampling == "resample":
                    # Line 4 literally: bootstrap by the distribution.
                    xs, ys = resample(x, y, probabilities, self.config.sample_size, self._rng)
                    learner.train(xs, ys, effective_config)  # Line 5
                else:
                    # Reweighting form: full set, per-sample loss weights
                    # normalized to mean 1 so learning rates are unchanged.
                    learner.train(x, y, effective_config, sample_weights=probabilities * n)

                # Line 6: relaxed, noise-aware error on the *original* set.
                predicted = learner.predict_bits(x, self.config.noise, trial=k)
                correct = msb_match(
                    predicted,
                    learner.target_bits(y),
                    learner.bits_per_group,
                    min(self.config.compare_bits, learner.bits_per_group),
                )
                error = float(np.sum(probabilities[~correct]))
                error = float(np.clip(error, 1e-10, 1.0 - 1e-10))
                alpha = 0.5 * np.log((1.0 - error) / error)  # Line 7

                if error < 0.5:  # noqa: SIM108 -- branch comments are load-bearing
                    # Line 8: up-weight misclassified samples.
                    self._weights = self._weights * np.where(
                        correct, np.exp(-alpha), np.exp(alpha)
                    )
                else:
                    # AdaBoost's assumptions break for a worse-than-chance
                    # learner (the regime the paper's B_C relaxation is
                    # designed to avoid): updating weights with a negative
                    # alpha would *reinforce* the errors.  Standard
                    # AdaBoost.M1 practice: reset the distribution and
                    # keep the learner out of the vote (see predict_bits).
                    self._weights = np.full(n, 1.0 / n)

                self.learners.append(learner)
                self.alphas.append(alpha)
                self.rounds.append(_BoostRound(error=error, alpha=alpha))
                sp.set(error=error, alpha=float(alpha))
            obs_metrics.counter("saab_rounds").inc()
            _log.debug(
                "boost round done",
                extra={"fields": {"k": k, "error": round(error, 6),
                                  "alpha": round(float(alpha), 6)}},
            )
        return self

    @property
    def is_trained(self) -> bool:
        return bool(self.learners)

    def remapped(self, transform: "Callable[[BoostableLearner], BoostableLearner]") -> "SAAB":
        """Clone with every learner passed through ``transform``.

        The boosting state — alphas, round diagnostics, sample-weight
        distribution — is copied unchanged: the ensemble was *trained*
        once, and ``transform`` only re-deploys each learner under
        different interface assumptions (e.g.
        :meth:`repro.core.mei.MEI.deploy_variant` for the error-budget
        counterfactuals).  ``self`` is left untouched.
        """
        if not self.is_trained:
            raise RuntimeError("train() must run before remapped()")
        clone = SAAB(self.factory, self.config)
        clone.learners = [transform(learner) for learner in self.learners]
        clone.alphas = list(self.alphas)
        clone.rounds = list(self.rounds)
        clone._weights = None if self._weights is None else self._weights.copy()
        return clone

    # -- inference (Line 10) -------------------------------------------------

    def predict_bits(
        self,
        x: np.ndarray,
        noise: NonIdealFactors = IDEAL,
        trial: int = 0,
    ) -> np.ndarray:
        """Weighted per-bit majority vote of the learners' outputs.

        Each learner runs in parallel in hardware; the digital host
        computes the alpha-weighted vote (Line 10).  Per-bit voting is
        the bitwise realization of argmax voting over code words.

        Learners with non-positive alpha (worse than chance on the
        relaxed comparison) are excluded — anti-voting a bad learner's
        bits is not meaningful at the bit level.  If every learner is
        excluded, the ensemble degrades to bagging: an unweighted
        majority vote (after an epsilon >= 0.5 round the distribution
        was reset to uniform, so the members are plain bootstrap
        learners and majority voting still masks individual failures).
        """
        if not self.is_trained:
            raise RuntimeError("train() must run before predict_bits()")
        vote_weights = np.maximum(self.alphas, 0.0)
        if vote_weights.sum() <= 0:
            vote_weights = np.ones(len(self.learners))
        total = vote_weights.sum()
        votes = None
        for k, (learner, weight) in enumerate(zip(self.learners, vote_weights)):
            if weight == 0.0:
                continue
            bits = learner.predict_bits(x, noise, trial=trial * len(self.learners) + k)
            votes = weight * bits if votes is None else votes + weight * bits
        return (votes >= 0.5 * total).astype(float)

    def predict_bits_trials(
        self,
        x: np.ndarray,
        noise: NonIdealFactors = IDEAL,
        trials: TrialSpec = 1,
    ) -> np.ndarray:
        """Batched weighted vote over Monte-Carlo trials.

        Each learner pushes all its trials through the crossbars in one
        stacked pass (keeping the serial trial numbering
        ``trial * K + k``), and the alpha-weighted vote is taken over
        the whole ``(trials, samples, ports)`` stack at once.  Slice
        ``[t]`` is bit-identical to ``predict_bits(x, noise, trial=t)``.
        """
        if not self.is_trained:
            raise RuntimeError("train() must run before predict_bits_trials()")
        indices = trial_indices(trials)
        n_learners = len(self.learners)
        vote_weights = np.maximum(self.alphas, 0.0)
        if vote_weights.sum() <= 0:
            vote_weights = np.ones(n_learners)
        total = vote_weights.sum()
        votes = None
        for k, (learner, weight) in enumerate(zip(self.learners, vote_weights)):
            if weight == 0.0:
                continue
            learner_trials = [t * n_learners + k for t in indices]
            batched = getattr(learner, "predict_bits_trials", None)
            bits = (
                batched(x, noise, trials=learner_trials)
                if batched is not None
                else np.stack(
                    [learner.predict_bits(x, noise, trial=t) for t in learner_trials]
                )
            )
            votes = weight * bits if votes is None else votes + weight * bits
        return (votes >= 0.5 * total).astype(float)

    def predict(
        self,
        x: np.ndarray,
        noise: NonIdealFactors = IDEAL,
        trial: int = 0,
    ) -> np.ndarray:
        """Voted bits decoded to unit values via the first learner."""
        return self._decode(self.predict_bits(x, noise, trial))

    def predict_trials(
        self,
        x: np.ndarray,
        noise: NonIdealFactors = IDEAL,
        trials: TrialSpec = 1,
    ) -> np.ndarray:
        """Batched ensemble prediction: ``(trials, samples, values)``."""
        return self._decode(self.predict_bits_trials(x, noise, trials))

    def _decode(self, bits: np.ndarray) -> np.ndarray:
        """Decode hard vote bits to unit values via the first learner."""
        decode = getattr(self.learners[0], "decode_outputs", None)
        if decode is not None:
            return decode(bits)
        from repro.quant.fixedpoint import FixedPointCodec

        return FixedPointCodec(self.learners[0].bits_per_group).decode(bits)

    def __len__(self) -> int:
        return len(self.learners)
