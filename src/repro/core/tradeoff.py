"""Accuracy / area / power trade-off enumeration and Pareto analysis.

Sec. 4's closing promise is "trade-offs among accuracy, area, power
consumption and even robustness".  Algorithm 2 walks one path through
that space; this module enumerates a whole grid of MEI design points
(hidden size x ensemble size x word length), evaluates each, and
extracts the Pareto-optimal frontier — the view a designer would
actually use to pick an operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.mei import MEI, MEIConfig
from repro.core.saab import SAAB, SAABConfig
from repro.cost.area import MEITopology, Topology
from repro.cost.params import LITERATURE_AREA, LITERATURE_POWER, CostParams
from repro.cost.power import savings
from repro.nn.trainer import TrainConfig

__all__ = ["DesignPoint", "TradeoffResult", "enumerate_tradeoffs", "pareto_front"]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated MEI configuration."""

    hidden: int
    k: int
    bits: int
    error: float
    area_saved: float
    power_saved: float

    @property
    def label(self) -> str:
        return f"H={self.hidden} K={self.k} B={self.bits}"

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance: no worse everywhere, better somewhere.

        Objectives: minimize error, maximize area/power savings.
        """
        no_worse = (
            self.error <= other.error
            and self.area_saved >= other.area_saved
            and self.power_saved >= other.power_saved
        )
        better = (
            self.error < other.error
            or self.area_saved > other.area_saved
            or self.power_saved > other.power_saved
        )
        return no_worse and better


@dataclass
class TradeoffResult:
    """All evaluated points plus the Pareto subset."""

    points: List[DesignPoint] = field(default_factory=list)

    @property
    def pareto(self) -> List[DesignPoint]:
        return pareto_front(self.points)

    def render(self) -> str:
        from repro.core.runner import format_table

        frontier = {id(p) for p in self.pareto}
        rows = [
            [p.label, p.error, p.area_saved, p.power_saved,
             "*" if id(p) in frontier else ""]
            for p in sorted(self.points, key=lambda p: p.error)
        ]
        return (
            "Design space trade-offs (* = Pareto-optimal)\n"
            + format_table(["point", "error", "area saved", "power saved", ""], rows)
        )


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset, sorted by error."""
    front = [
        p for p in points if not any(q.dominates(p) for q in points if q is not p)
    ]
    return sorted(front, key=lambda p: p.error)


def enumerate_tradeoffs(
    traditional: Topology,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    metric,
    hidden_sizes: Sequence[int] = (8, 16, 32),
    ensemble_sizes: Sequence[int] = (1, 2),
    bit_lengths: Sequence[int] = (8,),
    train_config: Optional[TrainConfig] = None,
    area_params: CostParams = LITERATURE_AREA,
    power_params: CostParams = LITERATURE_POWER,
    seed: int = 0,
) -> TradeoffResult:
    """Train and cost every (hidden, K, bits) combination.

    Ensembles reuse the boosting state per (hidden, bits) cell: the
    K=2 point extends the K=1 point's SAAB rather than retraining.
    """
    result = TradeoffResult()
    for bits in bit_lengths:
        for hidden in hidden_sizes:
            config = MEIConfig(
                in_groups=traditional.inputs,
                out_groups=traditional.outputs,
                hidden=hidden,
                bits=bits,
            )
            saab = SAAB(
                lambda i: MEI(config, seed=seed + i),
                SAABConfig(n_learners=max(ensemble_sizes), compare_bits=4, seed=seed),
            )
            for k in sorted(ensemble_sizes):
                saab.extend(x_train, y_train, k - len(saab), train_config)
                system = saab.learners[0] if k == 1 else saab
                error = metric(system.predict(x_test), y_test)
                base = saab.learners[0].topology()
                topology = MEITopology(
                    in_ports=base.in_ports,
                    hidden=base.hidden * k,
                    out_ports=base.out_ports,
                    in_groups=base.in_groups,
                    out_groups=base.out_groups,
                )
                result.points.append(
                    DesignPoint(
                        hidden=hidden,
                        k=k,
                        bits=bits,
                        error=error,
                        area_saved=savings(traditional, topology, area_params).saved_fraction,
                        power_saved=savings(traditional, topology, power_params).saved_fraction,
                    )
                )
    return result
