"""Deployment of a trained MLP onto RRAM crossbar hardware.

:class:`AnalogMLP` is the bridge between the software substrate
(:mod:`repro.nn`) and the circuit substrate (:mod:`repro.xbar`,
:mod:`repro.analog`): each dense layer becomes a differential crossbar
pair (matrix) plus a bank of sigmoid neurons (activation + bias), which
is exactly the paper's RCS structure (Fig. 1(b), Sec. 2.1).

The forward pass accepts :class:`NonIdealFactors`; process variation
perturbs every crossbar's conductances and signal fluctuation perturbs
every analog signal entering a crossbar, each re-drawn per Monte-Carlo
trial.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from typing import TYPE_CHECKING

from repro.analog.periphery import SigmoidNeuron
from repro.device.rram import HFOX_DEVICE, RRAMDevice
from repro.device.variation import (
    IDEAL,
    NonIdealFactors,
    TrialSpec,
    lognormal_factor_stack,
    trial_indices,
)
from repro.nn.network import MLP
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.xbar.mapping import (
    DifferentialCrossbar,
    ExactDifferentialCrossbar,
    MappingConfig,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.device.programming import ProgrammingConfig

__all__ = ["AnalogMLP"]


class AnalogMLP:
    """A trained MLP realized as crossbars + analog sigmoid periphery.

    Parameters
    ----------
    mlp:
        Trained network; weights are copied at deployment (programming
        a chip snapshots the weights).
    mapping_config:
        Crossbar mapping policy.
    device:
        RRAM device model.
    digital_input:
        True when the first layer's ports are driven by digital 0/1
        levels (MEI).  The receiving buffers then *regenerate* a
        fluctuated input before it reaches the crossbar — the digital
        noise-margin effect behind the paper's observation that "as
        MEI only requires discrete inputs of 0/1 signals, [it]
        demonstrates much better robustness to the signal fluctuation"
        (Sec. 5.3).  A fluctuated level still flips when the noise
        crosses the threshold, so immunity is strong but not absolute.
        Internal (hidden-layer) analog signals see fluctuation either
        way.
    exact_mapping:
        Deploy every layer as an
        :class:`~repro.xbar.mapping.ExactDifferentialCrossbar` — the
        weight matrix realized exactly, no scale/base/discretization/
        wire loss.  This is the error-budget harness's "ideal mapping"
        counterfactual; incompatible with ``programming`` (there are no
        conductances to program).
    """

    def __init__(
        self,
        mlp: MLP,
        mapping_config: Optional[MappingConfig] = None,
        device: RRAMDevice = HFOX_DEVICE,
        digital_input: bool = False,
        programming: "Optional[ProgrammingConfig]" = None,
        exact_mapping: bool = False,
    ):
        if exact_mapping and programming is not None:
            raise ValueError(
                "exact_mapping deploys no conductances; programming does not apply"
            )
        self.digital_input = digital_input
        self.exact_mapping = exact_mapping
        self.layer_sizes = mlp.layer_sizes
        self.crossbars: List[DifferentialCrossbar] = []
        self.neurons: List[SigmoidNeuron] = []
        self.output_correction: "Optional[tuple]" = None
        """Optional per-port affine correction ``(gain, offset)`` set by
        ICE-style inline calibration (:mod:`repro.core.calibration`)."""
        tile_rows = mapping_config.max_rows_per_tile if mapping_config is not None else None
        with span(
            "deploy", layers=list(mlp.layer_sizes), digital_input=digital_input
        ) as sp:
            for index, layer in enumerate(mlp.layers):
                if exact_mapping:
                    xbar = ExactDifferentialCrossbar(
                        layer.weights, config=mapping_config, device=device
                    )
                elif tile_rows is not None and layer.weights.shape[0] > tile_rows:
                    from repro.xbar.tiling import TiledDifferentialCrossbar

                    xbar = TiledDifferentialCrossbar(
                        layer.weights, tile_rows, config=mapping_config, device=device
                    )
                else:
                    xbar = DifferentialCrossbar(
                        layer.weights, config=mapping_config, device=device
                    )
                if programming is not None:
                    self._program(xbar, programming, index)
                self.crossbars.append(xbar)
                # The crossbar's apply() restores the mapping gain, so the
                # neuron only contributes the trained bias and the sigmoid.
                self.neurons.append(SigmoidNeuron(gain=1.0, bias=layer.bias.copy()))
            sp.set(devices=self.device_count)
        obs_metrics.counter("deployments").inc()
        obs_metrics.counter("rram_devices_programmed").inc(self.device_count)

    @staticmethod
    def _arrays_of(xbar):
        """All single-ended arrays of a (possibly tiled) crossbar pair."""
        tiles = getattr(xbar, "tiles", None)
        pairs = tiles if tiles is not None else [xbar]
        for pair in pairs:
            yield pair.positive
            yield pair.negative

    def arrays(self):
        """Every single-ended array of the deployment, in layer order.

        This is the canonical enumeration order shared by fault
        injection (:mod:`repro.device.faults`), spare-column repair and
        the conductance snapshot/restore pair — index ``i`` always
        refers to the same physical array across all of them.
        """
        for xbar in self.crossbars:
            yield from self._arrays_of(xbar)

    def conductance_snapshot(self) -> "List[np.ndarray]":
        """Copies of every array's programmed conductances.

        Taken before fault injection, the snapshot is the set of
        programming *targets* that spare-column repair
        (:meth:`repair_with_spares`) steers onto healthy spares.
        """
        return [array.conductances.copy() for array in self.arrays()]

    def restore_conductances(self, snapshot: "List[np.ndarray]") -> None:
        """Reprogram every array from a :meth:`conductance_snapshot`."""
        arrays = list(self.arrays())
        if len(snapshot) != len(arrays):
            raise ValueError(
                f"snapshot has {len(snapshot)} arrays, deployment has {len(arrays)}"
            )
        for array, g in zip(arrays, snapshot):
            if g.shape != array.conductances.shape:
                raise ValueError("snapshot shape does not match deployment")
            array.conductances = g.copy()

    def repair_with_spares(
        self,
        defect_maps: "List[np.ndarray]",
        pristine: "List[np.ndarray]",
        spares_per_array: int,
    ) -> "List":
        """Spare-column repair across the whole deployment.

        Each single-ended array spends an independent budget of
        ``spares_per_array`` spare columns on its worst defective
        columns (see :func:`repro.xbar.redundancy.remap_spare_columns`).
        ``defect_maps`` and ``pristine`` must be in :meth:`arrays`
        order — exactly what
        :func:`repro.device.faults.inject_faults_analog_report` and
        :meth:`conductance_snapshot` return.  Returns the per-array
        :class:`~repro.xbar.redundancy.RemapReport` list.
        """
        from repro.xbar.redundancy import remap_spare_columns

        arrays = list(self.arrays())
        if not (len(defect_maps) == len(pristine) == len(arrays)):
            raise ValueError(
                f"got {len(defect_maps)} defect maps and {len(pristine)} "
                f"snapshots for {len(arrays)} arrays"
            )
        with span("spare_repair", arrays=len(arrays), spares=spares_per_array) as sp:
            reports = [
                remap_spare_columns(array, defects, targets, spares_per_array)
                for array, defects, targets in zip(arrays, defect_maps, pristine)
            ]
            sp.set(
                spares_used=sum(r.spares_used for r in reports),
                cells_repaired=sum(r.cells_repaired for r in reports),
            )
        return reports

    @classmethod
    def _program(cls, xbar, config: "ProgrammingConfig", index: int) -> None:
        """Replace ideal conductances with write-verify programmed states.

        Models the residual programming error of a real deployment
        (distinct from drift-style process variation, which is drawn
        per inference trial).  Each array gets its own pulse-noise
        stream.
        """
        import dataclasses

        from repro.device.programming import program_conductances

        for offset, array in enumerate(cls._arrays_of(xbar)):
            array_config = (
                config
                if config.seed is None
                else dataclasses.replace(config, seed=config.seed + 1000 * index + offset)
            )
            result = program_conductances(array.conductances, array.device, array_config)
            array.conductances = result.conductances

    @property
    def in_dim(self) -> int:
        return self.layer_sizes[0]

    @property
    def out_dim(self) -> int:
        return self.layer_sizes[-1]

    @property
    def device_count(self) -> int:
        """Total RRAM cells across all layers."""
        return sum(xbar.device_count for xbar in self.crossbars)

    def forward(
        self,
        x: np.ndarray,
        noise: NonIdealFactors = IDEAL,
        trial: int = 0,
    ) -> np.ndarray:
        """Analog forward pass under one Monte-Carlo noise draw.

        The raw output is the last sigmoid stage's analog level; the
        architecture layer (AD/DA's ADC or MEI's comparator) digitizes
        it.
        """
        out = np.atleast_2d(np.asarray(x, dtype=float))
        if out.shape[1] != self.in_dim:
            raise ValueError(f"input has {out.shape[1]} ports, network expects {self.in_dim}")
        # One analog MAC per RRAM cell per sample (Eq. 2's column sums).
        obs_metrics.counter("crossbar_macs").inc(self.device_count * out.shape[0])
        obs_metrics.counter("forward_passes").inc()
        t0 = time.perf_counter()
        rng = noise.rng(trial) if not noise.is_ideal else None
        # Signal fluctuation is *interface* noise (Sec. 5.3: "noise to
        # the electrical signal, such as the input signal"): it
        # corrupts the signals arriving at the accelerator's input
        # ports.  On-chip inter-layer wires are short and shielded;
        # device-level disturbance is covered by PV.
        if rng is not None and noise.sigma_sf > 0:
            fluctuated = noise.perturb_signal(out, rng)
            # Digital receivers regenerate 0/1 levels: only noise that
            # crosses the logic threshold survives — MEI's Fig. 5
            # advantage.
            out = (fluctuated >= 0.5).astype(float) if self.digital_input else fluctuated
        pv_only = None
        if rng is not None and noise.sigma_pv > 0:
            pv_only = NonIdealFactors(sigma_pv=noise.sigma_pv, sigma_sf=0.0, seed=noise.seed)
        for xbar, neuron in zip(self.crossbars, self.neurons):
            analog = xbar.apply(out, pv_only, rng)
            out = neuron.apply(analog)
        if self.output_correction is not None:
            gain, offset = self.output_correction
            out = np.clip(gain * out + offset, 0.0, 1.0)
        obs_metrics.histogram("forward_latency_seconds").observe(
            time.perf_counter() - t0
        )
        return out

    def forward_trials(
        self,
        x: np.ndarray,
        noise: NonIdealFactors = IDEAL,
        trials: TrialSpec = 1,
    ) -> np.ndarray:
        """Batched analog forward pass over many Monte-Carlo trials.

        Draws every trial's variation tensors up front (one generator
        per trial, consumed in the serial order) and pushes one
        ``(trials, samples, ports)`` stack through the layer chain, so
        the per-trial Python loop collapses into stacked matmuls.

        Parameters
        ----------
        x:
            Inputs of shape ``(samples, ports)`` (or ``(ports,)``).
        noise:
            Non-ideal factors shared by all trials.
        trials:
            Trial count ``n`` (trials ``0..n-1``) or explicit trial
            indices.

        Returns
        -------
        Stack of shape ``(trials, samples, out_dim)``; slice ``[t]`` is
        bit-identical to ``forward(x, noise, trial=t)``.
        """
        base = np.atleast_2d(np.asarray(x, dtype=float))
        if base.shape[1] != self.in_dim:
            raise ValueError(f"input has {base.shape[1]} ports, network expects {self.in_dim}")
        indices = trial_indices(trials)
        obs_metrics.counter("crossbar_macs").inc(
            self.device_count * base.shape[0] * len(indices)
        )
        t0 = time.perf_counter()
        if noise.is_ideal:
            out = self.forward(base)
            return np.broadcast_to(out, (len(indices),) + out.shape).copy()
        rngs = [noise.rng(t) for t in indices]
        if noise.sigma_sf > 0:
            fluctuated = base * lognormal_factor_stack(base.shape, noise.sigma_sf, rngs)
            out = (fluctuated >= 0.5).astype(float) if self.digital_input else fluctuated
        else:
            out = np.broadcast_to(base, (len(rngs),) + base.shape)
        pv_only = None
        pv_factor_args: "List" = [None] * len(self.crossbars)
        if noise.sigma_pv > 0:
            pv_only = NonIdealFactors(sigma_pv=noise.sigma_pv, sigma_sf=0.0, seed=noise.seed)
            # Consolidate the whole network's PV draws into ONE
            # generator call per trial: generator streams are
            # call-size-agnostic, so one draw of `total` factors equals
            # the serial per-array draw sequence bit for bit.  The flat
            # buffer is then split back into per-array stacks.
            shapes = [s for xbar in self.crossbars for s in xbar.pv_shapes()]
            sizes = [int(np.prod(s)) for s in shapes]
            total = int(sum(sizes))
            flat = np.empty((len(rngs), total))
            for t, rng in enumerate(rngs):
                flat[t] = rng.lognormal(mean=0.0, sigma=noise.sigma_pv, size=total)
            offsets = np.cumsum([0] + sizes)
            chunks = iter(
                flat[:, offsets[i]:offsets[i + 1]].reshape((len(rngs),) + tuple(shapes[i]))
                for i in range(len(shapes))
            )
            pv_factor_args = [xbar.consume_pv_factors(chunks) for xbar in self.crossbars]
        for xbar, neuron, pv_factors in zip(self.crossbars, self.neurons, pv_factor_args):
            analog = xbar.apply_trials(out, pv_only, rngs, pv_factors=pv_factors)
            out = neuron.apply(analog)
        if self.output_correction is not None:
            gain, offset = self.output_correction
            out = np.clip(gain * out + offset, 0.0, 1.0)
        obs_metrics.histogram("forward_trials_latency_seconds").observe(
            time.perf_counter() - t0
        )
        return out

    def freeze_variation(
        self, noise: NonIdealFactors, trial: int = 0
    ) -> "AnalogMLP":
        """Permanently apply one process-variation draw to this chip.

        Models *fabrication-time* variation: the programmed states of a
        physical array instance deviate statically from their targets
        (as opposed to per-inference drift, which ``forward`` draws per
        Monte-Carlo trial).  Inline calibration
        (:mod:`repro.core.calibration`) measures and corrects exactly
        this kind of static deviation.
        """
        if noise.sigma_pv <= 0:
            return self
        rng = noise.rng(trial)
        for xbar in self.crossbars:
            for array in self._arrays_of(xbar):
                perturbed = noise.perturb_conductance(array.conductances, rng)
                array.conductances = array.device.clip_conductance(perturbed)
        return self
