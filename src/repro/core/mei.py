"""MEI: MErging the Interface (Sec. 3.1) — the paper's core contribution.

A MEI RCS removes the AD/DA converters and exposes one crossbar port
per bit of the fixed-point interface.  Digital 0/1 levels drive the
input ports directly; output ports are binarized by 1-bit comparators.
The network *learns the mapping between bit arrays*, trained with the
MSB-weighted loss of Eq. (5) so most-significant-bit errors dominate
the gradient.

LSB pruning (Sec. 4.3, Algorithm 2 Line 22) is modeled with port
masks: a pruned input port is driven with a constant 0 and a pruned
output port is excluded from decoding.  For accuracy this is exactly
equivalent to physically removing the crossbar rows/columns and
re-mapping the remaining coefficients, while the cost model
(:class:`repro.cost.MEITopology`) counts only the kept ports.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analog.periphery import Comparator
from repro.core.deploy import AnalogMLP
from repro.cost.area import MEITopology, Topology
from repro.device.rram import HFOX_DEVICE, RRAMDevice
from repro.device.variation import IDEAL, NonIdealFactors, TrialSpec
from repro.nn.losses import WeightedMSE, mse
from repro.nn.network import MLP
from repro.nn.trainer import TrainConfig, Trainer
from repro.quant.binarray import msb_weights
from repro.quant.fixedpoint import FixedPointCodec
from repro.xbar.mapping import MappingConfig

__all__ = ["MEIConfig", "MEI"]


@dataclass(frozen=True)
class MEIConfig:
    """Static configuration of a MEI architecture.

    Parameters
    ----------
    in_groups, out_groups:
        Number of analog values on each side (the application's I/O
        dimensionality).
    hidden:
        Hidden layer size ``H'``.
    bits:
        Base interface bit length ``B_r`` (8 in the paper).
    msb_weighted:
        Use the Eq. (5) loss (True) or the plain Eq. (4) loss (False —
        the ablation of Fig. 3).
    weight_decay_ratio:
        Ratio between adjacent bit weights in Eq. (5); the paper's
        example uses 2 (MSB ``2**0`` down to LSB ``2**-(B-1)``).
    """

    in_groups: int
    out_groups: int
    hidden: int
    bits: int = 8
    msb_weighted: bool = True
    weight_decay_ratio: float = 2.0

    def __post_init__(self) -> None:
        if min(self.in_groups, self.out_groups, self.hidden) < 1:
            raise ValueError("in_groups, out_groups and hidden must be >= 1")
        if not 1 <= self.bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {self.bits}")
        if self.weight_decay_ratio <= 0:
            raise ValueError("weight_decay_ratio must be positive")


class MEI:
    """A MEI RCS: bit-array ports, weighted-loss training, comparators.

    Parameters
    ----------
    config:
        Architecture description.
    mapping_config, device:
        Crossbar deployment knobs.
    seed:
        Weight-init / training shuffle seed.
    """

    def __init__(
        self,
        config: MEIConfig,
        mapping_config: Optional[MappingConfig] = None,
        device: RRAMDevice = HFOX_DEVICE,
        seed: Optional[int] = None,
    ):
        self.config = config
        self.codec = FixedPointCodec(config.bits)
        self.comparator = Comparator()
        self.mapping_config = mapping_config
        self.device = device
        self.seed = seed
        in_ports = config.in_groups * config.bits
        out_ports = config.out_groups * config.bits
        self.network = MLP((in_ports, config.hidden, out_ports), rng=seed)
        self.analog: Optional[AnalogMLP] = None
        # Pruning masks: number of *kept* MSBs per group on each side.
        self.in_bits = config.bits
        self.out_bits = config.bits

    # -- port bookkeeping ------------------------------------------------

    @property
    def bits(self) -> int:
        return self.config.bits

    @property
    def in_ports_full(self) -> int:
        return self.config.in_groups * self.bits

    @property
    def out_ports_full(self) -> int:
        return self.config.out_groups * self.bits

    @property
    def in_ports(self) -> int:
        """Kept input ports after pruning."""
        return self.config.in_groups * self.in_bits

    @property
    def out_ports(self) -> int:
        """Kept output ports after pruning."""
        return self.config.out_groups * self.out_bits

    def _group_mask(self, groups: int, kept: int) -> np.ndarray:
        """Boolean mask over ``groups * bits`` ports keeping MSBs."""
        mask = np.zeros(groups * self.bits, dtype=bool)
        for g in range(groups):
            mask[g * self.bits : g * self.bits + kept] = True
        return mask

    @property
    def in_mask(self) -> np.ndarray:
        return self._group_mask(self.config.in_groups, self.in_bits)

    @property
    def out_mask(self) -> np.ndarray:
        return self._group_mask(self.config.out_groups, self.out_bits)

    def topology(self) -> MEITopology:
        """Cost-model topology of the (possibly pruned) architecture."""
        return MEITopology(
            in_ports=self.in_ports,
            hidden=self.config.hidden,
            out_ports=self.out_ports,
            in_groups=self.config.in_groups,
            out_groups=self.config.out_groups,
        )

    def pruned(self, in_bits: Optional[int] = None, out_bits: Optional[int] = None) -> "MEI":
        """Shallow copy with different pruning masks (shares weights)."""
        clone = copy.copy(self)
        if in_bits is not None:
            if not 1 <= in_bits <= self.bits:
                raise ValueError(f"in_bits must be in [1, {self.bits}], got {in_bits}")
            clone.in_bits = in_bits
        if out_bits is not None:
            if not 1 <= out_bits <= self.bits:
                raise ValueError(f"out_bits must be in [1, {self.bits}], got {out_bits}")
            clone.out_bits = out_bits
        return clone

    def deploy_variant(
        self,
        *,
        in_bits: Optional[int] = None,
        out_bits: Optional[int] = None,
        mapping_config: Optional[MappingConfig] = None,
        exact_mapping: bool = False,
        comparator: Optional[Comparator] = None,
    ) -> "MEI":
        """Deployment clone with selected interface stages swapped.

        Shares the trained software network with ``self`` (a shallow
        :meth:`pruned` copy) but redeploys the analog side under the
        given overrides — the counterfactual-variant constructor of the
        error-budget harness (:mod:`repro.analysis.errorbudget`):
        unprune a side by passing ``in_bits=self.bits``, idealize the
        conductance mapping with ``exact_mapping=True``, change the
        wire/mapping policy via ``mapping_config``, or swap the output
        stage via ``comparator``.  ``self`` is left untouched.
        """
        clone = self.pruned(in_bits, out_bits)
        if mapping_config is not None:
            clone.mapping_config = mapping_config
        if comparator is not None:
            clone.comparator = comparator
        clone.analog = AnalogMLP(
            clone.network,
            clone.mapping_config,
            clone.device,
            digital_input=True,
            exact_mapping=exact_mapping,
        )
        return clone

    # -- codecs ----------------------------------------------------------

    def encode_inputs(self, x: np.ndarray) -> np.ndarray:
        """Unit values -> full-width input bit array, pruned ports zeroed."""
        bits = self.codec.encode(np.asarray(x, dtype=float))
        if self.in_bits < self.bits:
            bits = bits * self.in_mask
        return bits

    def encode_targets(self, y: np.ndarray) -> np.ndarray:
        """Unit values -> full-width target bit array (no masking)."""
        return self.codec.encode(np.asarray(y, dtype=float))

    def decode_outputs(self, bits: np.ndarray) -> np.ndarray:
        """Output bit array -> unit values, pruned ports excluded."""
        bits = np.asarray(bits, dtype=float)
        if self.out_bits < self.bits:
            bits = bits * self.out_mask
        return self.codec.decode(bits)

    # -- training ----------------------------------------------------------

    def loss(self) -> WeightedMSE:
        """The training loss: Eq. (5) if MSB-weighted, else Eq. (4)."""
        if not self.config.msb_weighted:
            return WeightedMSE()
        weights = msb_weights(
            self.bits, self.config.out_groups, self.config.weight_decay_ratio
        )
        return WeightedMSE(port_weights=weights)

    def train(
        self,
        x: np.ndarray,
        y: np.ndarray,
        config: Optional[TrainConfig] = None,
        sample_weights: Optional[np.ndarray] = None,
    ) -> "MEI":
        """Train on bit arrays and deploy to crossbars.

        ``x``/``y`` are unit-interval arrays; the encoding to bit
        arrays happens here (MEI learns the binary relationship
        directly, Sec. 3.1).
        """
        config = config if config is not None else TrainConfig(shuffle_seed=self.seed)
        x_bits = self.encode_inputs(x)
        y_bits = self.encode_targets(y)
        trainer = Trainer(loss=self.loss(), config=config)
        trainer.fit(self.network, x_bits, y_bits, sample_weights=sample_weights)
        self.deploy()
        return self

    def deploy(self) -> None:
        """(Re)program the crossbars from the current software weights.

        ``digital_input=True``: MEI's input ports carry 0/1 levels that
        the receiving buffers regenerate, so signal fluctuation on the
        inputs only survives when it crosses the logic threshold —
        the source of MEI's Fig. 5 robustness advantage.
        """
        self.analog = AnalogMLP(
            self.network, self.mapping_config, self.device, digital_input=True
        )

    # -- inference ---------------------------------------------------------

    def predict_bits(
        self,
        x: np.ndarray,
        noise: NonIdealFactors = IDEAL,
        trial: int = 0,
    ) -> np.ndarray:
        """Digital-in digital-out path: bits -> crossbars -> comparator."""
        if self.analog is None:
            raise RuntimeError("train() or deploy() must run before predict_bits()")
        x_bits = self.encode_inputs(x)
        analog_out = self.analog.forward(x_bits, noise, trial)
        hard = self.comparator.apply(analog_out)
        if self.out_bits < self.bits:
            hard = hard * self.out_mask
        return hard

    def predict_bits_trials(
        self,
        x: np.ndarray,
        noise: NonIdealFactors = IDEAL,
        trials: TrialSpec = 1,
    ) -> np.ndarray:
        """Batched digital path over Monte-Carlo trials.

        Returns a ``(trials, samples, ports)`` stack whose slice ``[t]``
        is bit-identical to ``predict_bits(x, noise, trial=t)``; the
        per-trial loop is replaced by one stacked crossbar pass.
        """
        if self.analog is None:
            raise RuntimeError("train() or deploy() must run before predict_bits_trials()")
        x_bits = self.encode_inputs(x)
        analog_out = self.analog.forward_trials(x_bits, noise, trials)
        hard = self.comparator.apply(analog_out)
        if self.out_bits < self.bits:
            hard = hard * self.out_mask
        return hard

    def predict(
        self,
        x: np.ndarray,
        noise: NonIdealFactors = IDEAL,
        trial: int = 0,
    ) -> np.ndarray:
        """End-to-end unit-value prediction (bits decoded)."""
        return self.decode_outputs(self.predict_bits(x, noise, trial))

    def predict_trials(
        self,
        x: np.ndarray,
        noise: NonIdealFactors = IDEAL,
        trials: TrialSpec = 1,
    ) -> np.ndarray:
        """Batched end-to-end prediction: ``(trials, samples, values)``."""
        return self.decode_outputs(self.predict_bits_trials(x, noise, trials))

    def predict_digital(self, x: np.ndarray) -> np.ndarray:
        """Software-network prediction (pre-deployment check)."""
        soft = self.network.predict(self.encode_inputs(x))
        return self.decode_outputs((soft >= 0.5).astype(float))

    def mse(self, x: np.ndarray, y: np.ndarray, noise: NonIdealFactors = IDEAL) -> float:
        """MSE of decoded unit values against unit targets."""
        return mse(self.predict(x, noise), self.codec.quantize(np.asarray(y, dtype=float)))

    # -- SAAB bit interface --------------------------------------------------

    def target_bits(self, y: np.ndarray) -> np.ndarray:
        return self.encode_targets(y)

    @property
    def out_groups(self) -> int:
        return self.config.out_groups

    @property
    def bits_per_group(self) -> int:
        return self.bits

    @classmethod
    def from_traditional(
        cls,
        topology: Topology,
        hidden: Optional[int] = None,
        **kwargs,
    ) -> "MEI":
        """MEI replacing a traditional ``I x H x O`` RCS.

        The hidden layer typically needs to grow to support the wider
        bit-level interface (Sec. 3.2 observation 1); ``hidden``
        defaults to twice the traditional size, matching the scale of
        the paper's Table 1 topologies.
        """
        config = MEIConfig(
            in_groups=topology.inputs,
            out_groups=topology.outputs,
            hidden=hidden if hidden is not None else 2 * topology.hidden,
            bits=topology.bits,
        )
        return cls(config, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MEI({self.topology()}, weighted={self.config.msb_weighted})"
