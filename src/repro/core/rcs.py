"""Traditional RRAM crossbar-based computing system with AD/DA interface.

This is the paper's baseline architecture (Sec. 2): a 3-layer analog
ANN on crossbars, fed by B-bit DACs and read out by B-bit ADCs.  Its
accuracy losses relative to the digital ANN come from (a) interface
quantization and (b) device non-idealities; its area/power is Eq. 6.

The class also exposes ``predict_bits``/``target_bits`` so SAAB can
treat AD/DA learners and MEI learners uniformly (Algorithm 1 compares
the most significant ``B_C`` bits either way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analog.converters import ADC, DAC
from repro.core.deploy import AnalogMLP
from repro.cost.area import Topology
from repro.device.rram import HFOX_DEVICE, RRAMDevice
from repro.device.variation import IDEAL, NonIdealFactors, TrialSpec
from repro.nn.losses import WeightedMSE, mse
from repro.nn.network import MLP
from repro.nn.trainer import TrainConfig, Trainer
from repro.quant.fixedpoint import FixedPointCodec
from repro.xbar.mapping import MappingConfig

__all__ = ["TraditionalRCS"]


@dataclass
class _TrainState:
    """Training artifacts kept for inspection."""

    final_loss: float
    epochs_run: int


class TraditionalRCS:
    """An ``I x H x O`` RCS with B-bit AD/DA converters.

    Parameters
    ----------
    topology:
        Analog network dimensions and interface bit width.
    mapping_config, device:
        Crossbar deployment knobs.
    seed:
        Weight-init / training shuffle seed.
    """

    def __init__(
        self,
        topology: Topology,
        mapping_config: Optional[MappingConfig] = None,
        device: RRAMDevice = HFOX_DEVICE,
        seed: Optional[int] = None,
    ):
        self.topology = topology
        self.codec = FixedPointCodec(topology.bits)
        self.dac = DAC(bits=topology.bits)
        self.adc = ADC(bits=topology.bits)
        self.mapping_config = mapping_config
        self.device = device
        self.seed = seed
        self.network = MLP(
            (topology.inputs, topology.hidden, topology.outputs), rng=seed
        )
        self.analog: Optional[AnalogMLP] = None
        self.train_state: Optional[_TrainState] = None

    # -- training ------------------------------------------------------

    def train(
        self,
        x: np.ndarray,
        y: np.ndarray,
        config: Optional[TrainConfig] = None,
        sample_weights: Optional[np.ndarray] = None,
    ) -> "TraditionalRCS":
        """Train the software network (Eq. 4) and deploy to crossbars.

        ``x``/``y`` are unit-interval arrays from the workload layer.
        Training sees DAC-quantized inputs so the network learns the
        interface it will actually be driven through.
        """
        config = config if config is not None else TrainConfig(shuffle_seed=self.seed)
        x_q = self.codec.quantize(np.asarray(x, dtype=float))
        trainer = Trainer(loss=WeightedMSE(), config=config)
        result = trainer.fit(self.network, x_q, np.asarray(y, dtype=float),
                             sample_weights=sample_weights)
        self.train_state = _TrainState(result.final_train_loss, result.epochs_run)
        self.deploy()
        return self

    def deploy(self) -> None:
        """(Re)program the crossbars from the current software weights."""
        self.analog = AnalogMLP(self.network, self.mapping_config, self.device)

    # -- inference -------------------------------------------------------

    def predict(
        self,
        x: np.ndarray,
        noise: NonIdealFactors = IDEAL,
        trial: int = 0,
    ) -> np.ndarray:
        """Full mixed-signal path: DAC -> analog ANN -> ADC.

        Returns unit-interval values quantized to the interface grid.
        """
        if self.analog is None:
            raise RuntimeError("train() or deploy() must run before predict()")
        analog_in = self.dac.convert(np.asarray(x, dtype=float))
        analog_out = self.analog.forward(analog_in, noise, trial)
        return self.adc.convert(analog_out)

    def predict_trials(
        self,
        x: np.ndarray,
        noise: NonIdealFactors = IDEAL,
        trials: TrialSpec = 1,
    ) -> np.ndarray:
        """Batched mixed-signal path over Monte-Carlo trials.

        Returns ``(trials, samples, outputs)``; slice ``[t]`` is
        bit-identical to ``predict(x, noise, trial=t)`` for ideal
        converters (``noise_lsb == 0``, the default — converter noise
        is drawn from unseeded generators on both paths).
        """
        if self.analog is None:
            raise RuntimeError("train() or deploy() must run before predict_trials()")
        analog_in = self.dac.convert(np.asarray(x, dtype=float))
        analog_out = self.analog.forward_trials(analog_in, noise, trials)
        return self.adc.convert(analog_out)

    def predict_digital(self, x: np.ndarray) -> np.ndarray:
        """Ideal software network output (the 'Digital ANN' column)."""
        return self.network.predict(np.asarray(x, dtype=float))

    def mse(self, x: np.ndarray, y: np.ndarray, noise: NonIdealFactors = IDEAL) -> float:
        """Mean squared error of the deployed system on unit targets."""
        return mse(self.predict(x, noise), np.asarray(y, dtype=float))

    # -- SAAB bit interface ----------------------------------------------

    def predict_bits(
        self, x: np.ndarray, noise: NonIdealFactors = IDEAL, trial: int = 0
    ) -> np.ndarray:
        """Outputs as bit arrays (the ADC's digital code words)."""
        return self.codec.encode(self.predict(x, noise, trial))

    def predict_bits_trials(
        self, x: np.ndarray, noise: NonIdealFactors = IDEAL, trials: TrialSpec = 1
    ) -> np.ndarray:
        """Batched bit-array outputs: ``(trials, samples, ports)``."""
        return self.codec.encode(self.predict_trials(x, noise, trials))

    def target_bits(self, y: np.ndarray) -> np.ndarray:
        """Unit targets encoded on the interface grid."""
        return self.codec.encode(np.asarray(y, dtype=float))

    @property
    def out_groups(self) -> int:
        """Output value count (bit groups per prediction row)."""
        return self.topology.outputs

    @property
    def bits_per_group(self) -> int:
        return self.topology.bits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraditionalRCS({self.topology}, {self.topology.bits}-bit AD/DA)"
