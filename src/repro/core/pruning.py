"""LSB pruning of MEI input/output ports (Sec. 4.3, Algorithm 2 Line 22).

Because MEI exposes every interface bit as an independent port, low-
significance ports can simply be removed — unlike an AD/DA, which
always converts full words.  The paper prunes:

* **input ports** — all groups together: try dropping the last 1, 2,
  ... bits of *every* input group simultaneously and keep the deepest
  pruning whose test performance still meets the requirement;
* **output ports** — after the input side is fixed: candidate LSBs
  are those whose place value is below the network's own error floor
  (the paper compares the LSB's weight ``2**-B`` against the RCS MSE,
  e.g. prune once MSE reaches ``~2**-10``), validated by re-testing.

Both passes operate on pruned *views* (masked ports) of one trained
MEI, which is accuracy-equivalent to physically removing crossbar
rows/columns and re-mapping (see :mod:`repro.core.mei`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.mei import MEI

__all__ = ["PruneResult", "prune_input_bits", "prune_output_bits", "prune_lsbs"]

ErrorFn = Callable[[MEI], float]
"""Evaluates a candidate architecture; smaller is better."""


@dataclass
class PruneResult:
    """Outcome of a pruning pass."""

    mei: MEI
    error: float
    steps: int
    """How many candidate prunings were evaluated."""


def prune_input_bits(mei: MEI, error_fn: ErrorFn, max_error: float) -> PruneResult:
    """Drop input-group LSBs (all groups together) within the budget.

    Bits are removed one per group at a time; the first candidate that
    violates ``max_error`` stops the search (the paper's sequential
    "remove 1, 2, ... bits" flow).
    """
    best = mei
    best_error = error_fn(mei)
    steps = 0
    for in_bits in range(mei.in_bits - 1, 0, -1):
        candidate = mei.pruned(in_bits=in_bits)
        steps += 1
        error = error_fn(candidate)
        if error > max_error:
            break
        best, best_error = candidate, error
    return PruneResult(mei=best, error=best_error, steps=steps)


def prune_output_bits(
    mei: MEI,
    error_fn: ErrorFn,
    max_error: float,
    mse: float,
) -> PruneResult:
    """Drop output LSBs whose place value is below the error floor.

    Only bits with place value ``2**-b <= sqrt(mse)`` are candidates
    (pruning them cannot change the output by more than the error the
    network already makes); each candidate is still validated against
    ``max_error`` before being accepted.
    """
    if mse < 0:
        raise ValueError(f"mse must be >= 0, got {mse}")
    floor = float(np.sqrt(mse))
    best = mei
    best_error = error_fn(mei)
    steps = 0
    for out_bits in range(mei.out_bits - 1, 0, -1):
        place_value = 2.0 ** -(out_bits + 1)  # value of the bit being cut
        if place_value > floor:
            break
        candidate = best.pruned(out_bits=out_bits)
        steps += 1
        error = error_fn(candidate)
        if error > max_error:
            break
        best, best_error = candidate, error
    return PruneResult(mei=best, error=best_error, steps=steps)


def prune_lsbs(mei: MEI, error_fn: ErrorFn, max_error: float, mse: float) -> PruneResult:
    """Full Line-22 pass: inputs first, then outputs (the paper's order)."""
    after_inputs = prune_input_bits(mei, error_fn, max_error)
    after_outputs = prune_output_bits(after_inputs.mei, error_fn, max_error, mse)
    return PruneResult(
        mei=after_outputs.mei,
        error=after_outputs.error,
        steps=after_inputs.steps + after_outputs.steps,
    )
