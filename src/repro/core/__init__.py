"""The paper's contributions: MEI, SAAB and the design space exploration."""

from repro.core.calibration import CalibrationReport, ice_calibrate
from repro.core.deploy import AnalogMLP
from repro.core.dse import DSEConfig, DSEResult, explore, search_hidden_size
from repro.core.mei import MEI, MEIConfig
from repro.core.pruning import PruneResult, prune_input_bits, prune_lsbs, prune_output_bits
from repro.core.rcs import TraditionalRCS
from repro.core.saab import SAAB, BoostableLearner, SAABConfig
from repro.core.tradeoff import DesignPoint, TradeoffResult, enumerate_tradeoffs, pareto_front

__all__ = [
    "AnalogMLP",
    "CalibrationReport",
    "ice_calibrate",
    "TraditionalRCS",
    "MEI",
    "MEIConfig",
    "SAAB",
    "SAABConfig",
    "BoostableLearner",
    "PruneResult",
    "prune_input_bits",
    "prune_output_bits",
    "prune_lsbs",
    "DSEConfig",
    "DSEResult",
    "explore",
    "search_hidden_size",
    "DesignPoint",
    "TradeoffResult",
    "enumerate_tradeoffs",
    "pareto_front",
]
