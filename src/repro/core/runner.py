"""Shared experiment infrastructure: scales, configs, table rendering.

Lives in :mod:`repro.core` (not ``repro.experiments``) because
lower-level consumers — :mod:`repro.robustness`, the benchmark
suite — need the scale/table helpers without pulling in the
experiment entry points; ``repro.experiments.runner`` re-exports
everything for compatibility.

Every experiment module regenerates one of the paper's tables/figures
and supports two scales:

* **quick** (default) — reduced sample counts / epochs / Monte-Carlo
  trials so the whole suite runs in minutes on a laptop;
* **full** — the paper's setup (10,000 training samples, 1,000 test
  samples, 1,000-style noise statistics scaled to 100 trials).
  Enable with environment variable ``REPRO_FULL=1`` or by passing
  ``FULL_SCALE`` explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.config import knobs
from repro.nn.trainer import TrainConfig
from repro.parallel import get_executor

__all__ = [
    "ExperimentScale",
    "QUICK_SCALE",
    "FULL_SCALE",
    "default_scale",
    "train_config",
    "train_samples_for",
    "repeat_with_seeds",
    "format_table",
]

_N_TRAIN_MULTIPLIER = {
    # Jmeint's 18-dimensional triangle-pair geometry overfits badly on
    # small sample counts; its generator is cheap, so give it more data
    # (the paper's suite ships large captured trace sets for it too).
    "jmeint": 4,
}


def train_samples_for(benchmark_name: str, scale: "ExperimentScale") -> int:
    """Training-set size for one benchmark at a given scale."""
    return scale.n_train * _N_TRAIN_MULTIPLIER.get(benchmark_name, 1)


@dataclass(frozen=True)
class ExperimentScale:
    """Budget knobs shared by all experiments."""

    name: str
    n_train: int
    n_test: int
    epochs: int
    noise_trials: int

    def __post_init__(self) -> None:
        if min(self.n_train, self.n_test, self.epochs, self.noise_trials) < 1:
            raise ValueError("all scale fields must be >= 1")


QUICK_SCALE = ExperimentScale(name="quick", n_train=2500, n_test=400, epochs=300, noise_trials=5)
FULL_SCALE = ExperimentScale(
    name="full", n_train=10_000, n_test=1_000, epochs=400, noise_trials=100
)


def default_scale() -> ExperimentScale:
    """FULL_SCALE when ``REPRO_FULL`` is truthy, QUICK_SCALE otherwise."""
    return FULL_SCALE if knobs.get_bool("REPRO_FULL") else QUICK_SCALE


def train_config(
    scale: ExperimentScale, seed: int = 0, track_train_loss: bool = True
) -> TrainConfig:
    """The standard training recipe at a given scale.

    Adam with a step learning-rate decay; sized so the paper's small
    topologies converge at either scale.  Sweep-heavy callers can set
    ``track_train_loss=False`` to skip the per-epoch full-dataset loss
    bookkeeping (training results are unchanged).
    """
    # Small batches matter more than epochs for these tiny networks:
    # the paper-scale topologies need the extra gradient steps.
    return TrainConfig(
        epochs=scale.epochs,
        batch_size=32 if scale.n_train <= 4000 else 64,
        learning_rate=0.01,
        shuffle_seed=seed,
        lr_decay=0.5,
        lr_decay_every=max(1, scale.epochs // 2),
        track_train_loss=track_train_loss,
    )


def repeat_with_seeds(fn, seeds: Sequence[int], workers: Optional[int] = None,
                      executor=None):
    """Run ``fn(seed) -> float`` across seeds; return (mean, std, values).

    The paper reports single-run numbers; reviewers usually want
    seed-averaged ones.  Use with any experiment entry point, e.g.
    ``repeat_with_seeds(lambda s: run_benchmark_row('fft', seed=s).error_mei,
    range(3))``.

    Seed repeats are embarrassingly parallel: pass ``workers`` (or set
    ``REPRO_WORKERS``) or an explicit :mod:`repro.parallel` executor to
    fan them out.  Results keep seed order, so serial and parallel runs
    agree bit for bit (``fn`` must be a picklable top-level callable
    for process-based executors; otherwise the map degrades to serial).
    """
    import numpy as np

    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    executor = executor if executor is not None else get_executor(workers)
    values = np.array([float(v) for v in executor.map(fn, seeds)])
    return float(values.mean()), float(values.std()), values


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table (the harness prints paper-style rows)."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([f"{v:.4f}" if isinstance(v, float) else str(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
