"""Design space exploration (Sec. 4, Algorithm 2).

The flow converts a traditional ``I x H x O`` RCS into a MEI-based
architecture meeting an error requirement ``epsilon`` and a robustness
requirement ``gamma``:

1. search a proper MEI hidden-layer size by growing it until the error
   change rate (Eq. 8) falls below a threshold;
2. bound the SAAB ensemble size with Eq. 9 (``K_max = min(A_org/A_MEI,
   P_org/P_MEI)``) so the MEI system never exceeds the original AD/DA
   system's area or power;
3. if a single MEI misses the requirements, grow a SAAB ensemble one
   learner at a time; at each step also train a single wider-hidden
   MEI (``H * K``) and keep whichever is better — preferring the
   wider-hidden network on ties, since it saves ``2 (K-1) O'`` RRAM
   devices and ``(K-1) O'`` peripheral units on the output side;
4. if ``K`` exceeds ``K_max`` before the requirements hold, report
   "Mission Impossible" (the paper's literal Line 13);
5. prune interface LSBs within the error budget (Line 22).

Robustness is quantified with :func:`repro.metrics.robustness_index`
(clean error / noisy error, larger = more robust).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.mei import MEI, MEIConfig
from repro.core.pruning import prune_lsbs
from repro.core.saab import SAAB, SAABConfig
from repro.cost.area import MEITopology, Topology
from repro.cost.params import LITERATURE_AREA, LITERATURE_POWER, CostParams
from repro.cost.power import max_saab_learners, savings
from repro.device.variation import IDEAL, NonIdealFactors
from repro.metrics.robustness import evaluate_under_noise, robustness_index
from repro.nn.trainer import TrainConfig
from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.obs.trace import span

__all__ = ["DSEConfig", "DSEResult", "explore", "search_hidden_size"]

_log = get_logger("core.dse")

MetricFn = Callable[[np.ndarray, np.ndarray], float]
"""(predicted_unit, target_unit) -> error value (smaller = better)."""


@dataclass(frozen=True)
class DSEConfig:
    """Inputs of Algorithm 2 plus engine knobs.

    Parameters
    ----------
    error_requirement:
        ``epsilon`` — maximum acceptable clean test error.
    robustness_requirement:
        ``gamma`` — minimum robustness index under ``noise``
        (0 disables the robustness constraint).
    noise:
        The non-ideal factor vector ``sigma``.
    initial_hidden:
        ``H_i`` — hidden-size search start.
    max_hidden:
        Search / widening cap (guards runaway exploration).
    change_rate_threshold:
        Eq. 8 stop threshold (the paper suggests 5%).
    compare_bits:
        ``B_C`` forwarded to SAAB.
    noise_trials:
        Monte-Carlo trials per robustness evaluation.
    bits:
        Required bit length ``B_r``.
    area_params, power_params:
        Coefficient tables for Eq. 6/7/9.
    prune:
        Run the Line-22 LSB pruning pass on the final single-MEI
        candidate.
    seed:
        Base seed for learner initialization.
    workers:
        Worker count for the hidden-size candidate ladder (None =
        ``REPRO_WORKERS`` env, default serial).  With more than one
        worker the ladder's candidates train speculatively in
        parallel; the Eq. 8 stopping walk then replays the serial
        decision, so the selected architecture is identical.
    """

    error_requirement: float
    robustness_requirement: float = 0.0
    noise: NonIdealFactors = IDEAL
    initial_hidden: int = 8
    max_hidden: int = 256
    change_rate_threshold: float = 0.05
    compare_bits: int = 5
    noise_trials: int = 5
    bits: int = 8
    area_params: CostParams = LITERATURE_AREA
    power_params: CostParams = LITERATURE_POWER
    prune: bool = True
    seed: int = 0
    workers: "int | None" = None

    def __post_init__(self) -> None:
        if self.error_requirement <= 0:
            raise ValueError("error_requirement must be positive")
        if not 0 <= self.robustness_requirement <= 1:
            raise ValueError("robustness_requirement must be in [0, 1]")
        if self.initial_hidden < 1 or self.max_hidden < self.initial_hidden:
            raise ValueError("need 1 <= initial_hidden <= max_hidden")
        if self.change_rate_threshold <= 0:
            raise ValueError("change_rate_threshold must be positive")


@dataclass
class DSEResult:
    """Output of the exploration flow."""

    status: str
    """'ok' or 'mission_impossible' (Algorithm 2, Line 13)."""
    system: object
    """The selected architecture: a :class:`MEI` or a :class:`SAAB`."""
    hidden: int
    k: int
    used_saab: bool
    topology: MEITopology
    error: float
    robustness: float
    k_max: int
    area_saved: float
    power_saved: float
    hidden_history: List[Tuple[int, float]] = field(default_factory=list)
    log: List[str] = field(default_factory=list)

    @property
    def meets_requirements(self) -> bool:
        return self.status == "ok"


def _evaluate(
    system,
    x: np.ndarray,
    y: np.ndarray,
    metric: MetricFn,
    noise: NonIdealFactors,
    trials: int,
) -> Tuple[float, float]:
    """(clean error, robustness index) of a trained system.

    The noisy statistics go through the system's batched
    ``predict_trials`` path (one stacked crossbar pass for all trials)
    — bit-identical to the serial Monte-Carlo loop under fixed seeds.
    """
    with span("evaluate", trials=trials) as sp:
        clean = metric(system.predict(x), y)
        if noise.is_ideal:
            sp.set(clean=float(clean), robustness=1.0)
            return clean, 1.0
        noisy = evaluate_under_noise(system, x, y, metric, noise, trials).mean
        robustness = robustness_index(clean, noisy)
        sp.set(clean=float(clean), noisy=float(noisy), robustness=float(robustness))
    return clean, robustness


def _train_candidate(args) -> Tuple[MEI, float]:
    """Train and score one hidden-size candidate (picklable task)."""
    make_mei, hidden, seed, x_train, y_train, x_test, y_test, metric, train_config = args
    with span(f"candidate:h{hidden}", hidden=hidden) as sp:
        mei = make_mei(hidden, seed).train(x_train, y_train, train_config)
        error = float(metric(mei.predict(x_test), y_test))
        sp.set(error=error)
    obs_metrics.counter("dse_candidates_trained").inc()
    return mei, error


def search_hidden_size(
    make_mei: Callable[[int, int], MEI],
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    metric: MetricFn,
    config: DSEConfig,
    train_config: Optional[TrainConfig] = None,
    executor=None,
) -> Tuple[MEI, int, List[Tuple[int, float]]]:
    """Algorithm 2 Line 1: grow H until Eq. 8's change rate stalls.

    ``make_mei(hidden, seed)`` builds an untrained MEI; the search
    doubles the hidden size each step (the paper allows linear or
    exponential steps).

    With a multi-worker executor (``config.workers`` /
    ``REPRO_WORKERS``) every ladder candidate trains concurrently and
    the Eq. 8 early-stopping walk replays the serial decision over the
    precomputed errors — the selected MEI, its error, and the reported
    history are identical to the serial search (candidates train
    independently under the same seed), at the price of speculative
    training beyond the stopping point.

    Returns the best trained MEI, its hidden size, and the
    (hidden, error) history.
    """
    if executor is None:
        from repro.parallel import get_executor

        executor = get_executor(config.workers)
    ladder: List[int] = []
    hidden = config.initial_hidden
    while hidden <= config.max_hidden:
        ladder.append(hidden)
        hidden *= 2

    obs_metrics.gauge("dse_ladder_size").set(len(ladder))
    with span("hidden_search", ladder=list(ladder)) as sp:
        if getattr(executor, "workers", 1) > 1 and len(ladder) > 1:
            tasks = [
                (make_mei, h, config.seed, x_train, y_train, x_test, y_test, metric,
                 train_config)
                for h in ladder
            ]
            trained = executor.map(_train_candidate, tasks)
            candidates = ((h, mei, error) for h, (mei, error) in zip(ladder, trained))
        else:

            def _lazy():
                for h in ladder:
                    mei, error = _train_candidate(
                        (make_mei, h, config.seed, x_train, y_train, x_test, y_test,
                         metric, train_config)
                    )
                    yield h, mei, error

            candidates = _lazy()

        history: List[Tuple[int, float]] = []
        best: Optional[MEI] = None
        best_error = np.inf
        previous_error: Optional[float] = None
        for h, mei, error in candidates:
            history.append((h, error))
            if error < best_error:
                best, best_error = mei, error
            if previous_error is not None and previous_error > 0:
                eta = abs(error - previous_error) / previous_error  # Eq. 8
                if eta < config.change_rate_threshold:
                    break
            previous_error = error
        assert best is not None
        sp.set(selected_hidden=best.config.hidden, history=[list(p) for p in history])
    _log.debug(
        "hidden search done",
        extra={"fields": {"hidden": best.config.hidden, "history": history}},
    )
    return best, best.config.hidden, history


def explore(
    traditional: Topology,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    metric: MetricFn,
    config: DSEConfig,
    train_config: Optional[TrainConfig] = None,
) -> DSEResult:
    """Run Algorithm 2 end to end.

    ``x_*``/``y_*`` are unit-interval arrays (the workload layer's
    normalized dataset); ``metric`` scores unit-interval predictions.
    """
    log: List[str] = []

    def note(message: str) -> None:
        """DSEResult.log line, mirrored onto the structured logger."""
        log.append(message)
        _log.debug(message)

    # functools.partial of a module-level builder (not a closure) so the
    # candidate-ladder tasks can cross a process boundary.
    make_mei = functools.partial(
        _make_candidate_mei, traditional.inputs, traditional.outputs, config.bits
    )
    # The serial default each MEI.train would build for the ladder and
    # wide-contender candidates (their seed is config.seed), minus the
    # per-epoch full-dataset loss bookkeeping nobody reads during a
    # sweep.  SAAB learners keep the raw train_config: their per-learner
    # seeds drive their own shuffle defaults.
    candidate_config = train_config
    if candidate_config is None:
        candidate_config = TrainConfig(shuffle_seed=config.seed, track_train_loss=False)

    # Line 1: hidden size search.
    r1, hidden, history = search_hidden_size(
        make_mei, x_train, y_train, x_test, y_test, metric, config, candidate_config
    )
    note(f"hidden search: H={hidden}, history={history}")

    # Line 2: maximum SAAB number (Eq. 9).
    k_max = max_saab_learners(traditional, r1.topology(), config.area_params, config.power_params)
    note(f"K_max={k_max}")

    # Lines 3-4: evaluate the single learner.
    error, robustness = _evaluate(r1, x_test, y_test, metric, config.noise, config.noise_trials)
    note(f"R1: error={error:.4f}, robustness={robustness:.3f}")

    system: object = r1
    used_saab = False
    k = 1

    if error > config.error_requirement or robustness < config.robustness_requirement:
        # Lines 9-20: grow the ensemble, racing a wider single MEI.
        saab = SAAB(
            lambda i: make_mei(hidden, config.seed + 1 + i),
            SAABConfig(
                n_learners=1,
                compare_bits=config.compare_bits,
                noise=config.noise,
                seed=config.seed,
            ),
        )
        saab.extend(x_train, y_train, 1, train_config)  # alpha_1's learner
        while error > config.error_requirement or robustness < config.robustness_requirement:
            k += 1
            if k > k_max:  # Line 12-14
                return DSEResult(
                    status="mission_impossible",
                    system=system,
                    hidden=hidden,
                    k=k - 1,
                    used_saab=used_saab,
                    topology=_topology_of(system),
                    error=error,
                    robustness=robustness,
                    k_max=k_max,
                    area_saved=savings(traditional, _topology_of(system),
                                       config.area_params).saved_fraction,
                    power_saved=savings(traditional, _topology_of(system),
                                        config.power_params).saved_fraction,
                    hidden_history=history,
                    log=log + ["Mission Impossible"],
                )
            saab.extend(x_train, y_train, 1, train_config)  # Line 16
            ens_error, ens_rob = _evaluate(
                saab, x_test, y_test, metric, config.noise, config.noise_trials
            )
            # Lines 18-19: the wider-hidden single-network contender.
            wide_hidden = min(hidden * k, config.max_hidden)
            wide = make_mei(wide_hidden, config.seed).train(x_train, y_train, candidate_config)
            wide_error, wide_rob = _evaluate(
                wide, x_test, y_test, metric, config.noise, config.noise_trials
            )
            note(
                f"K={k}: ensemble err={ens_error:.4f}/rob={ens_rob:.3f}, "
                f"wide(H={wide_hidden}) err={wide_error:.4f}/rob={wide_rob:.3f}"
            )
            # Prefer the wider network on (near) ties: it saves
            # 2(K-1)O' devices and (K-1)O' peripheral units.
            system, error, robustness, used_saab = (
                (wide, wide_error, wide_rob, False)
                if (wide_error, -wide_rob) <= (ens_error * 1.05, -ens_rob * 0.95)
                else (saab, ens_error, ens_rob, True)
            )

    # Line 22: prune interface LSBs on a single-MEI result.
    if config.prune and isinstance(system, MEI):
        budget = max(config.error_requirement, error)
        result = prune_lsbs(
            system,
            lambda candidate: metric(candidate.predict(x_test), y_test),
            max_error=budget,
            mse=system.mse(x_test, y_test),
        )
        if result.mei is not system:
            note(
                f"pruned to in_bits={result.mei.in_bits}, out_bits={result.mei.out_bits}"
            )
        system = result.mei
        error = result.error

    topology = _topology_of(system)
    status = "ok" if (
        error <= config.error_requirement and robustness >= config.robustness_requirement
    ) else "mission_impossible"
    return DSEResult(
        status=status,
        system=system,
        hidden=hidden,
        k=k,
        used_saab=used_saab,
        topology=topology,
        error=error,
        robustness=robustness,
        k_max=k_max,
        area_saved=savings(traditional, topology, config.area_params).saved_fraction,
        power_saved=savings(traditional, topology, config.power_params).saved_fraction,
        hidden_history=history,
        log=log,
    )


def _make_candidate_mei(in_groups: int, out_groups: int, bits: int, hidden: int, seed: int) -> MEI:
    """Module-level MEI builder for picklable DSE ladder tasks."""
    return MEI(
        MEIConfig(in_groups=in_groups, out_groups=out_groups, hidden=hidden, bits=bits),
        seed=seed,
    )


def _topology_of(system) -> MEITopology:
    """Cost topology of a single MEI or a SAAB ensemble.

    An ensemble of K learners costs K crossbars/peripheries; model it
    as one MEITopology with a K-times hidden layer (exact for Eq. 7's
    linear-in-H' cost structure up to the shared-output-port savings
    the paper notes).
    """
    if isinstance(system, MEI):
        return system.topology()
    if isinstance(system, SAAB):
        base = system.learners[0].topology()
        return MEITopology(
            in_ports=base.in_ports,
            hidden=base.hidden * len(system),
            out_ports=base.out_ports,
            in_groups=base.in_groups,
            out_groups=base.out_groups,
        )
    raise TypeError(f"unsupported system type {type(system).__name__}")
