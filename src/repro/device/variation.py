"""Non-ideal factor models: process variation and signal fluctuation.

Sec. 5.3 of the paper studies two non-ideal factors, both generated
from lognormal distributions:

* **Process variation (PV)** — the programmed RRAM conductance deviates
  from its target state.  Modeled multiplicatively:
  ``g' = g * exp(N(0, sigma_pv))``.
* **Signal fluctuation (SF)** — electrical noise on the (input)
  signals: ``v' = v * exp(N(0, sigma_sf))``.

Because MEI drives the crossbar with discrete 0/1 levels, a fluctuated
"0" stays exactly 0 (multiplicative noise cannot create signal out of
nothing) and a fluctuated "1" is re-thresholded by the receiver's noise
margin only at the *output* comparator — this is precisely why the
paper finds MEI far more robust to SF than the analog AD/DA interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from repro.parallel.seeding import ensure_rng, fresh_rng

__all__ = [
    "NonIdealFactors",
    "lognormal_factors",
    "lognormal_factor_stack",
    "trial_indices",
    "IDEAL",
]

TrialSpec = Union[int, Sequence[int]]
"""Monte-Carlo trial selector: a count ``n`` (meaning trials ``0..n-1``)
or an explicit sequence of trial indices (used e.g. by SAAB, whose
learners interleave their trial numbering)."""


def trial_indices(trials: TrialSpec) -> List[int]:
    """Normalize a trial spec into an explicit list of trial indices."""
    if isinstance(trials, (int, np.integer)):
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        return list(range(int(trials)))
    indices = [int(t) for t in trials]
    if not indices:
        raise ValueError("trial index sequence must be non-empty")
    return indices


def lognormal_factors(
    shape: "tuple | int",
    sigma: float,
    rng: "np.random.Generator | int | None" = None,
) -> np.ndarray:
    """Multiplicative lognormal factors with median 1.

    ``sigma`` is the standard deviation of the underlying normal; the
    paper sweeps it to generate "variations of different levels".
    """
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return np.ones(shape)
    rng = ensure_rng(rng, "device.lognormal_factors")
    return rng.lognormal(mean=0.0, sigma=sigma, size=shape)


def lognormal_factor_stack(
    shape: "tuple | int",
    sigma: float,
    rngs: "Sequence[np.random.Generator]",
) -> np.ndarray:
    """Per-trial lognormal factors stacked into ``(trials,) + shape``.

    Trial ``t``'s slice is drawn from ``rngs[t]`` with the exact
    generator call :func:`lognormal_factors` makes, so the stack equals
    looping that function trial by trial — the random draws stay in
    serial order (the bit-identity requirement of the batched noise
    path) while all downstream arithmetic runs once on the stack.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be > 0, got {sigma}")
    shape = (shape,) if isinstance(shape, (int, np.integer)) else tuple(shape)
    out = np.empty((len(rngs),) + shape)
    for t, rng in enumerate(rngs):
        out[t] = rng.lognormal(mean=0.0, sigma=sigma, size=shape)
    return out


@dataclass(frozen=True)
class NonIdealFactors:
    """The non-ideal factor vector (sigma) passed around Algorithms 1-2.

    Parameters
    ----------
    sigma_pv:
        Lognormal sigma for process variation on conductances.
    sigma_sf:
        Lognormal sigma for signal fluctuation on analog inputs.
    seed:
        Base seed so Monte-Carlo trials are reproducible.
    """

    sigma_pv: float = 0.0
    sigma_sf: float = 0.0
    seed: "int | None" = None

    def __post_init__(self) -> None:
        if self.sigma_pv < 0 or self.sigma_sf < 0:
            raise ValueError("sigmas must be non-negative")

    @property
    def is_ideal(self) -> bool:
        """True when no noise would be injected at all."""
        return self.sigma_pv == 0 and self.sigma_sf == 0

    def rng(self, trial: int = 0) -> np.random.Generator:
        """Generator for one Monte-Carlo trial."""
        if self.seed is None:
            return fresh_rng("device.NonIdealFactors")
        return np.random.default_rng(self.seed + trial)

    def rngs(self, trials: TrialSpec) -> "List[np.random.Generator]":
        """One generator per Monte-Carlo trial (the batched-noise path).

        Each generator is exactly ``self.rng(t)`` for that trial index,
        so a vectorized evaluation that consumes the generators in the
        same per-trial order as the serial loop draws bit-identical
        variation tensors.
        """
        return [self.rng(t) for t in trial_indices(trials)]

    def perturb_conductance(
        self, g: np.ndarray, rng: "np.random.Generator | None" = None
    ) -> np.ndarray:
        """Apply process variation to a conductance array."""
        if self.sigma_pv == 0:
            return np.asarray(g, dtype=float)
        rng = rng if rng is not None else self.rng()
        return np.asarray(g, dtype=float) * lognormal_factors(np.shape(g), self.sigma_pv, rng)

    def perturb_signal(self, v: np.ndarray, rng: "np.random.Generator | None" = None) -> np.ndarray:
        """Apply signal fluctuation to an analog signal array."""
        if self.sigma_sf == 0:
            return np.asarray(v, dtype=float)
        rng = rng if rng is not None else self.rng()
        return np.asarray(v, dtype=float) * lognormal_factors(np.shape(v), self.sigma_sf, rng)

    def with_seed(self, seed: "int | None") -> "NonIdealFactors":
        """Copy with a different base seed."""
        return NonIdealFactors(self.sigma_pv, self.sigma_sf, seed)

    def idealized(self, pv: bool = False, sf: bool = False) -> "NonIdealFactors":
        """Copy with the selected noise sources switched off.

        The seed is preserved so the surviving source keeps drawing the
        same per-trial generators — the paired-seed construction of the
        error-budget counterfactuals.  (Note the caveat documented
        there: because SF draws precede PV draws on each generator,
        zeroing one source shifts the other's draw positions; the
        pairing is exact in generators, approximate in streams.)
        """
        return NonIdealFactors(
            0.0 if pv else self.sigma_pv,
            0.0 if sf else self.sigma_sf,
            self.seed,
        )


IDEAL = NonIdealFactors()
"""No process variation, no signal fluctuation."""
