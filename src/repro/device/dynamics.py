"""Filament switching dynamics: pulse-level RRAM programming.

The paper's device reference (Yu et al. [9]) is a physical HfOx
switching model; the system-level work abstracts it into "the
resistance can be changed to arbitrary state".  This module fills the
gap between those levels with a compact behavioural dynamics model so
programming studies can operate on *pulses* instead of the idealized
write-verify of :mod:`repro.device.programming`:

    dw/dt = k * sinh(v / v0) * window(w, v)

where ``w`` in [0, 1] is the normalized filament state (conductance
interpolates the device window linearly in ``w``), the sinh gives the
exponential voltage sensitivity real cells show, and the Joglekar-style
window function freezes growth at the boundaries.  Positive voltage
SETs (grows w), negative voltage RESETs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.rram import HFOX_DEVICE, RRAMDevice

__all__ = ["SwitchingModel", "PulseTrain"]


@dataclass(frozen=True)
class SwitchingModel:
    """Compact filament dynamics for one device type.

    Parameters
    ----------
    device:
        Conductance window the state interpolates.
    rate:
        Base switching rate ``k`` (1/s at ``v = v0``-ish drive).
    v0:
        Voltage scale of the sinh sensitivity.
    window_power:
        Joglekar window exponent ``p``; larger = sharper freeze at the
        boundaries.
    threshold:
        Voltages with ``|v| < threshold`` do not move the filament
        (read disturb immunity below the switching threshold).
    """

    device: RRAMDevice = HFOX_DEVICE
    rate: float = 1e5
    v0: float = 0.25
    window_power: int = 2
    threshold: float = 0.3

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.v0 <= 0:
            raise ValueError("rate and v0 must be positive")
        if self.window_power < 1:
            raise ValueError("window_power must be >= 1")
        if self.threshold < 0:
            raise ValueError("threshold must be >= 0")

    # -- state <-> conductance -----------------------------------------

    def conductance(self, state: np.ndarray) -> np.ndarray:
        """Filament state in [0, 1] -> conductance in the device window."""
        state = np.clip(np.asarray(state, dtype=float), 0.0, 1.0)
        return self.device.g_min + state * (self.device.g_max - self.device.g_min)

    def state_of(self, conductance: np.ndarray) -> np.ndarray:
        """Conductance -> filament state (inverse of :meth:`conductance`)."""
        g = self.device.clip_conductance(conductance)
        return (g - self.device.g_min) / (self.device.g_max - self.device.g_min)

    # -- dynamics -------------------------------------------------------

    def _window(self, state: np.ndarray, velocity: np.ndarray) -> np.ndarray:
        """Joglekar window: growth freezes at the approached boundary."""
        toward_one = velocity > 0
        distance = np.where(toward_one, 1.0 - state, state)
        return 1.0 - (1.0 - np.clip(distance, 0.0, 1.0)) ** self.window_power

    def step(self, state: np.ndarray, voltage: np.ndarray, dt: float) -> np.ndarray:
        """Advance the filament by one explicit-Euler step of ``dt``."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        state = np.clip(np.asarray(state, dtype=float), 0.0, 1.0)
        voltage = np.asarray(voltage, dtype=float)
        active = np.abs(voltage) >= self.threshold
        velocity = self.rate * np.sinh(voltage / self.v0) * active
        delta = velocity * self._window(state, velocity) * dt
        return np.clip(state + delta, 0.0, 1.0)

    def apply_pulse(
        self,
        state: np.ndarray,
        voltage: float,
        width: float,
        substeps: int = 8,
    ) -> np.ndarray:
        """Apply one rectangular pulse (integrated in substeps)."""
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if substeps < 1:
            raise ValueError(f"substeps must be >= 1, got {substeps}")
        dt = width / substeps
        for _ in range(substeps):
            state = self.step(state, voltage, dt)
        return state


@dataclass(frozen=True)
class PulseTrain:
    """A programming recipe: repeated identical pulses.

    Parameters
    ----------
    voltage:
        Pulse amplitude (positive = SET, negative = RESET).
    width:
        Pulse width in seconds.
    count:
        Number of pulses.
    """

    voltage: float
    width: float = 50e-9
    count: int = 1

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        if self.count < 1:
            raise ValueError("count must be >= 1")

    def apply(self, model: SwitchingModel, state: np.ndarray) -> np.ndarray:
        """Run the train on a state array; returns the final state."""
        for _ in range(self.count):
            state = model.apply_pulse(state, self.voltage, self.width)
        return state
