"""RRAM device models and non-ideal factor generators."""

from repro.device.dynamics import PulseTrain, SwitchingModel
from repro.device.faults import FaultModel, inject_faults, inject_faults_analog
from repro.device.programming import ProgrammingConfig, ProgrammingResult, program_conductances
from repro.device.rram import HFOX_DEVICE, RRAMDevice
from repro.device.variation import IDEAL, NonIdealFactors, lognormal_factors

__all__ = [
    "RRAMDevice",
    "HFOX_DEVICE",
    "NonIdealFactors",
    "IDEAL",
    "lognormal_factors",
    "FaultModel",
    "inject_faults",
    "inject_faults_analog",
    "SwitchingModel",
    "PulseTrain",
    "ProgrammingConfig",
    "ProgrammingResult",
    "program_conductances",
]
