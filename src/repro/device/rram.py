"""RRAM device model.

Behavioural model of an HfOx-style resistive-switching device (the
paper's accuracy emulation uses the Verilog-A model of Yu et al. [9]).
A device is a passive two-port element whose resistance can be set to
any state within ``[r_on, r_off]`` (Sec. 2.1).  We keep the parameters
that matter to system-level accuracy:

* conductance bounds ``g_min = 1/r_off`` and ``g_max = 1/r_on``;
* the number of reliably distinguishable conductance levels, which
  bounds the weight precision a crossbar cell can store;
* geometry (4F^2 cross-point cell) used by the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.dtype import astype as _astype

__all__ = ["RRAMDevice", "HFOX_DEVICE"]


@dataclass(frozen=True)
class RRAMDevice:
    """Parameters of one RRAM cross-point device.

    Parameters
    ----------
    r_on, r_off:
        Low/high resistance states in ohms.
    levels:
        Number of programmable conductance levels (0 = continuous).
    feature_nm:
        Technology feature size F; a cross-point cell occupies 4F^2.
    """

    r_on: float = 1e4
    r_off: float = 1e7
    levels: int = 0
    feature_nm: float = 90.0

    def __post_init__(self) -> None:
        if self.r_on <= 0 or self.r_off <= 0:
            raise ValueError("resistances must be positive")
        if self.r_off <= self.r_on:
            raise ValueError(f"r_off ({self.r_off}) must exceed r_on ({self.r_on})")
        if self.levels < 0:
            raise ValueError(f"levels must be >= 0, got {self.levels}")
        if self.feature_nm <= 0:
            raise ValueError("feature size must be positive")

    @property
    def g_min(self) -> float:
        """Minimum conductance (high-resistance state), in siemens."""
        return 1.0 / self.r_off

    @property
    def g_max(self) -> float:
        """Maximum conductance (low-resistance state), in siemens."""
        return 1.0 / self.r_on

    @property
    def dynamic_range(self) -> float:
        """Ratio ``g_max / g_min`` (= ``r_off / r_on``)."""
        return self.r_off / self.r_on

    @property
    def cell_area_um2(self) -> float:
        """Cross-point cell footprint 4F^2 in square micrometres."""
        f_um = self.feature_nm * 1e-3
        return 4.0 * f_um * f_um

    def clip_conductance(self, g: np.ndarray) -> np.ndarray:
        """Clip conductances into the device's programmable window."""
        return np.clip(_astype(g), self.g_min, self.g_max)

    def discretize(self, g: np.ndarray) -> np.ndarray:
        """Snap conductances to the nearest programmable level.

        With ``levels == 0`` the device is treated as continuously
        tunable ("arbitrary state within a specific range", Sec. 2.1)
        and the input is only clipped.
        """
        g = self.clip_conductance(g)
        if self.levels == 0:
            return g
        if self.levels == 1:
            return np.full_like(g, self.g_min)
        step = (self.g_max - self.g_min) / (self.levels - 1)
        return self.g_min + np.round((g - self.g_min) / step) * step

    def weight_to_conductance(self, w: np.ndarray) -> np.ndarray:
        """Map weights in ``[0, 1]`` linearly onto the conductance window."""
        w = np.clip(_astype(w), 0.0, 1.0)
        return self.g_min + w * (self.g_max - self.g_min)


HFOX_DEVICE = RRAMDevice(r_on=1e4, r_off=1e7, levels=0, feature_nm=90.0)
"""Default HfOx-style device at the paper's 90nm node [9, 17]."""
