"""Write-verify programming model for RRAM conductances.

Mapping a trained weight matrix onto a crossbar means programming every
cell to a target conductance.  Real arrays use iterative write-verify
loops: apply a pulse, read back, repeat until the state is within a
tolerance band or the attempt budget runs out.  This module provides a
behavioural equivalent so experiments can study residual programming
error separately from drift-style process variation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.rram import RRAMDevice

__all__ = ["ProgrammingConfig", "ProgrammingResult", "program_conductances"]


@dataclass(frozen=True)
class ProgrammingConfig:
    """Write-verify loop parameters.

    Parameters
    ----------
    tolerance:
        Relative error band that counts as "verified".
    max_iterations:
        Pulse budget per cell.
    pulse_sigma:
        Lognormal sigma of a single pulse's landing accuracy.
    seed:
        RNG seed for reproducible programming runs.
    """

    tolerance: float = 0.01
    max_iterations: int = 20
    pulse_sigma: float = 0.05
    seed: "int | None" = None

    def __post_init__(self) -> None:
        if self.tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {self.tolerance}")
        if self.max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.pulse_sigma < 0:
            raise ValueError(f"pulse_sigma must be >= 0, got {self.pulse_sigma}")


@dataclass
class ProgrammingResult:
    """Outcome of programming one conductance array."""

    conductances: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray

    @property
    def mean_iterations(self) -> float:
        return float(np.mean(self.iterations))

    @property
    def yield_fraction(self) -> float:
        """Fraction of cells that verified within the pulse budget."""
        return float(np.mean(self.converged))

    @property
    def max_relative_error(self) -> float:
        return float(np.max(self._rel_error))


def program_conductances(
    target: np.ndarray,
    device: RRAMDevice,
    config: "ProgrammingConfig | None" = None,
) -> ProgrammingResult:
    """Program target conductances with a write-verify loop.

    Each iteration re-writes only the not-yet-verified cells; a write
    lands lognormally around the target.  Cells that never verify keep
    their best-so-far state, modeling a real array's tail cells.
    """
    config = config if config is not None else ProgrammingConfig()
    target = device.clip_conductance(target)
    rng = np.random.default_rng(config.seed)

    current = np.full_like(target, device.g_min)
    best = current.copy()
    best_err = np.abs(best - target) / target
    iterations = np.zeros(target.shape, dtype=int)
    converged = best_err <= config.tolerance

    for _ in range(config.max_iterations):
        pending = ~converged
        if not pending.any():
            break
        factors = rng.lognormal(0.0, config.pulse_sigma, size=target.shape)
        attempt = device.clip_conductance(target * factors)
        err = np.abs(attempt - target) / target
        improve = pending & (err < best_err)
        best = np.where(improve, attempt, best)
        best_err = np.where(improve, err, best_err)
        iterations = iterations + pending.astype(int)
        converged = converged | (best_err <= config.tolerance)

    result = ProgrammingResult(conductances=best, iterations=iterations, converged=converged)
    result._rel_error = best_err
    return result
