"""Stuck-at-fault (SAF) injection for RRAM crossbars.

Beyond the paper's two statistical non-ideal factors (process
variation and signal fluctuation), fabricated RRAM arrays exhibit hard
defects: cells stuck at the low-resistance state (stuck-on, SA1) or
the high-resistance state (stuck-off, SA0).  Published defect maps
put combined SAF rates around 1-10%.  This module injects such faults
into deployed crossbars so the test suite and robustness studies can
exercise the failure mode the paper's redundancy/ensemble discussion
implicitly targets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.xbar.crossbar import Crossbar

__all__ = ["FaultModel", "inject_faults", "inject_faults_analog"]


@dataclass(frozen=True)
class FaultModel:
    """Stuck-at fault rates.

    Parameters
    ----------
    stuck_on_rate:
        Probability a cell is stuck at ``g_max`` (SA1).
    stuck_off_rate:
        Probability a cell is stuck at ``g_min`` (SA0).
    seed:
        RNG seed for the defect map.
    """

    stuck_on_rate: float = 0.0
    stuck_off_rate: float = 0.0
    seed: "int | None" = None

    def __post_init__(self) -> None:
        if not 0 <= self.stuck_on_rate <= 1 or not 0 <= self.stuck_off_rate <= 1:
            raise ValueError("fault rates must be in [0, 1]")
        if self.stuck_on_rate + self.stuck_off_rate > 1:
            raise ValueError("combined fault rate cannot exceed 1")

    @property
    def total_rate(self) -> float:
        return self.stuck_on_rate + self.stuck_off_rate

    def defect_map(self, shape, rng: np.random.Generator) -> np.ndarray:
        """Defect classes per cell: 0 = healthy, 1 = SA1, 2 = SA0."""
        draw = rng.random(shape)
        defects = np.zeros(shape, dtype=int)
        defects[draw < self.stuck_on_rate] = 1
        defects[(draw >= self.stuck_on_rate) & (draw < self.total_rate)] = 2
        return defects


def inject_faults(xbar: Crossbar, model: FaultModel) -> np.ndarray:
    """Inject stuck-at faults into one crossbar array, in place.

    Returns the defect map so callers can report fault statistics.
    """
    rng = np.random.default_rng(model.seed)
    defects = model.defect_map(xbar.conductances.shape, rng)
    g = xbar.conductances.copy()
    g[defects == 1] = xbar.device.g_max
    g[defects == 2] = xbar.device.g_min
    xbar.conductances = g
    return defects


def inject_faults_analog(analog, model: FaultModel) -> int:
    """Inject faults into every array of a deployed :class:`AnalogMLP`.

    Each array gets an independent defect map (seeded deterministically
    from ``model.seed``).  Returns the total number of faulty cells.
    """
    import dataclasses

    total = 0
    index = 0
    for xbar in analog.crossbars:
        for array in type(analog)._arrays_of(xbar):
            array_model = (
                model
                if model.seed is None
                else dataclasses.replace(model, seed=model.seed + index)
            )
            defects = inject_faults(array, array_model)
            total += int(np.count_nonzero(defects))
            index += 1
    return total
