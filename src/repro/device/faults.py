"""Stuck-at-fault (SAF) and line-failure injection for RRAM crossbars.

Beyond the paper's two statistical non-ideal factors (process
variation and signal fluctuation), fabricated RRAM arrays exhibit hard
defects: cells stuck at the low-resistance state (stuck-on, SA1) or
the high-resistance state (stuck-off, SA0), plus whole-line failures
where a broken wordline (row) or bitline (column) disconnects every
cell on it.  Published defect maps put combined SAF rates around
1-10%.  This module injects such faults into deployed crossbars so the
robustness campaign engine (:mod:`repro.robustness`) can measure the
accuracy loss and the recovery delivered by spare-column remapping and
fault-aware SAAB retraining.

Seeding follows the RPR001 discipline: defect maps are drawn through
:func:`repro.parallel.seeding.ensure_rng`, so a ``FaultModel`` without
a seed still produces a *logged* (hence replayable) defect map, and
per-array child seeds derive through
:func:`repro.parallel.seeding.derive_seed` spawn keys rather than
fragile ``seed + index`` arithmetic.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.parallel.seeding import derive_seed, ensure_rng

if TYPE_CHECKING:
    # annotation-only: a module-scope import here would put an upward
    # device -> xbar edge in the real DAG (repro-lint RPR006)
    from repro.xbar.crossbar import Crossbar

__all__ = [
    "DEFECT_HEALTHY",
    "DEFECT_SA1",
    "DEFECT_SA0",
    "DEFECT_ROW_OPEN",
    "DEFECT_COL_OPEN",
    "FaultModel",
    "InjectionReport",
    "inject_faults",
    "inject_faults_analog",
    "inject_faults_analog_report",
]

DEFECT_HEALTHY = 0
"""Defect-map class: cell programs and reads normally."""

DEFECT_SA1 = 1
"""Defect-map class: cell stuck at ``g_max`` (stuck-on)."""

DEFECT_SA0 = 2
"""Defect-map class: cell stuck at ``g_min`` (stuck-off)."""

DEFECT_ROW_OPEN = 3
"""Defect-map class: broken wordline — every cell of the row floats
(modeled as ``g_min``: no programmable current path)."""

DEFECT_COL_OPEN = 4
"""Defect-map class: broken bitline — every cell of the column floats
(modeled as ``g_min``)."""


@dataclass(frozen=True)
class FaultModel:
    """Stuck-at and line-failure rates.

    Parameters
    ----------
    stuck_on_rate:
        Probability a cell is stuck at ``g_max`` (SA1).
    stuck_off_rate:
        Probability a cell is stuck at ``g_min`` (SA0).
    row_failure_rate:
        Probability an entire row (wordline) is open; overrides any
        cell-level class on that row.
    col_failure_rate:
        Probability an entire column (bitline) is open; overrides
        cell-level classes on that column.
    seed:
        Base seed for the defect maps.  ``None`` draws (and logs) fresh
        entropy through the RPR001 discipline, so even unseeded maps
        replay from the structured log.
    """

    stuck_on_rate: float = 0.0
    stuck_off_rate: float = 0.0
    row_failure_rate: float = 0.0
    col_failure_rate: float = 0.0
    seed: "int | None" = None

    def __post_init__(self) -> None:
        for name in ("stuck_on_rate", "stuck_off_rate",
                     "row_failure_rate", "col_failure_rate"):
            rate = getattr(self, name)
            if not 0 <= rate <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.stuck_on_rate + self.stuck_off_rate > 1:
            raise ValueError("combined cell fault rate cannot exceed 1")

    @property
    def total_rate(self) -> float:
        """Combined cell-level SAF rate (line failures not included)."""
        return self.stuck_on_rate + self.stuck_off_rate

    @property
    def is_clean(self) -> bool:
        """True when no fault of any kind would be injected."""
        return (self.total_rate == 0 and self.row_failure_rate == 0
                and self.col_failure_rate == 0)

    def rng(self, index: int = 0) -> np.random.Generator:
        """Generator for array ``index``'s defect map.

        Child streams derive through ``SeedSequence`` spawn keys
        (:func:`repro.parallel.seeding.derive_seed`), so every array of
        a deployment gets a well-mixed independent stream that is a
        pure function of ``(seed, index)``.  An unseeded model routes
        through :func:`repro.parallel.seeding.ensure_rng`, which logs
        the drawn entropy for replay.
        """
        if self.seed is None:
            return ensure_rng(None, f"device.FaultModel[{index}]")
        return ensure_rng(derive_seed(self.seed, index), "device.FaultModel")

    def for_array(self, index: int) -> "FaultModel":
        """The model with array ``index``'s derived seed materialized.

        Used by campaign manifests to record the exact per-array defect
        seed alongside the map statistics; replay the map with
        :meth:`replay_rng` (NOT :meth:`rng`, which would derive a
        second-level child seed).
        """
        if self.seed is None:
            return self
        return dataclasses.replace(self, seed=derive_seed(self.seed, index))

    def replay_rng(self) -> np.random.Generator:
        """Generator seeded with ``seed`` directly — no child derivation.

        The replay half of the manifest contract:
        ``model.for_array(i).replay_rng()`` reproduces the exact stream
        :meth:`rng` gave array ``i`` during injection, so a recorded
        ``array_seeds`` entry regenerates that array's defect map.
        """
        return ensure_rng(self.seed, "device.FaultModel.replay")

    def defect_map(self, shape, rng: np.random.Generator) -> np.ndarray:
        """Defect classes per cell (see the ``DEFECT_*`` constants).

        Cell-level faults draw first, then line failures overwrite
        whole rows/columns — the generator consumption order is part of
        the replay contract.
        """
        draw = rng.random(shape)
        defects = np.zeros(shape, dtype=int)
        defects[draw < self.stuck_on_rate] = DEFECT_SA1
        defects[(draw >= self.stuck_on_rate) & (draw < self.total_rate)] = DEFECT_SA0
        if self.row_failure_rate > 0:
            rows = rng.random(shape[0]) < self.row_failure_rate
            defects[rows, :] = DEFECT_ROW_OPEN
        if self.col_failure_rate > 0:
            cols = rng.random(shape[1]) < self.col_failure_rate
            defects[:, cols] = DEFECT_COL_OPEN
        return defects


@dataclass
class InjectionReport:
    """What one whole-deployment injection actually did.

    Collected per single-ended array in deployment order (the order of
    :meth:`repro.core.deploy.AnalogMLP.arrays`), so the campaign engine
    can replay, report and *repair* exactly the cells that were hit.
    """

    model: FaultModel
    defect_maps: List[np.ndarray] = field(default_factory=list)
    array_seeds: List[Optional[int]] = field(default_factory=list)

    @property
    def faulty_cells(self) -> int:
        return int(sum(np.count_nonzero(d) for d in self.defect_maps))

    @property
    def total_cells(self) -> int:
        return int(sum(d.size for d in self.defect_maps))

    @property
    def observed_rate(self) -> float:
        total = self.total_cells
        return self.faulty_cells / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-safe summary embedded in campaign run manifests."""
        return {
            "stuck_on_rate": self.model.stuck_on_rate,
            "stuck_off_rate": self.model.stuck_off_rate,
            "row_failure_rate": self.model.row_failure_rate,
            "col_failure_rate": self.model.col_failure_rate,
            "base_seed": self.model.seed,
            "array_seeds": list(self.array_seeds),
            "faulty_cells": self.faulty_cells,
            "total_cells": self.total_cells,
            "observed_rate": self.observed_rate,
        }


def _stuck_conductances(g: np.ndarray, defects: np.ndarray, device) -> np.ndarray:
    """Apply a defect map to a conductance array (pure function)."""
    out = g.copy()
    out[defects == DEFECT_SA1] = device.g_max
    out[(defects == DEFECT_SA0) | (defects == DEFECT_ROW_OPEN)
        | (defects == DEFECT_COL_OPEN)] = device.g_min
    return out


def inject_faults(
    xbar: Crossbar,
    model: FaultModel,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Inject faults into one crossbar array, in place.

    Returns the defect map so callers can report fault statistics.
    The map is drawn from ``rng`` when given (the campaign engine
    passes per-array derived streams), else from ``model.rng()``.
    """
    rng = rng if rng is not None else model.rng()
    defects = model.defect_map(xbar.conductances.shape, rng)
    xbar.conductances = _stuck_conductances(xbar.conductances, defects, xbar.device)
    return defects


def inject_faults_analog_report(analog, model: FaultModel) -> InjectionReport:
    """Inject faults into every array of a deployed :class:`AnalogMLP`.

    Each array gets an independent defect map whose stream derives from
    ``model.seed`` through spawn keys (see :meth:`FaultModel.rng`).
    Returns the full :class:`InjectionReport` — per-array maps and
    seeds — which the campaign engine records in run manifests and the
    spare-column repair consumes.
    """
    report = InjectionReport(model=model)
    for index, array in enumerate(analog.arrays()):
        array_model = model.for_array(index)
        defects = inject_faults(array, model, rng=model.rng(index))
        report.defect_maps.append(defects)
        report.array_seeds.append(array_model.seed)
    return report


def inject_faults_analog(analog, model: FaultModel) -> int:
    """Backward-compatible injection: returns the faulty-cell count."""
    return inject_faults_analog_report(analog, model).faulty_cells
