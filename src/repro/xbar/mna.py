"""Modified nodal analysis (MNA) of a crossbar with wire resistance.

The paper performs SPICE-level emulation of the crossbar and picks a
90nm interconnect "to reduce the impact of IR drop" [17].  This module
is the SPICE-equivalent substrate: it solves the full resistive network
of an ``n x m`` crossbar, including wordline/bitline wire segment
resistance, with a sparse linear solve.

Circuit topology (one cell at word row ``i``, bit column ``j``):

* wordline node ``W(i, j)``; ``W(i, 0)`` is driven by the input source
  ``V_i`` (ideal driver);
* wire conductance ``g_w`` between horizontally adjacent wordline
  nodes and vertically adjacent bitline nodes;
* the RRAM cell ``g[i, j]`` bridges ``W(i, j)`` to ``B(i, j)``;
* each bitline ends in a terminal node ``T(j)`` loaded by ``g_s`` to
  ground; the output voltage is read at ``T(j)``.

As ``g_w -> inf`` the solution converges to the ideal behavioural
model of :mod:`repro.xbar.crossbar` (column-sum Eq. 2); the unit tests
assert that limit, which also validates our reading of the paper's
ambiguous Eq. 2 subscripts.

Two factorizations are available (``solver=`` argument):

* ``"lu"`` — sparse LU via SuperLU (:func:`scipy.sparse.linalg.factorized`),
  the historical default.
* ``"banded"`` — the crossbar netlist is a 2-D grid, so numbering the
  unknowns slice by slice along the longer axis (interleaving wordline
  and bitline nodes within a slice) bounds the matrix bandwidth at
  roughly ``2 * min(rows, cols)``.  The system matrix is symmetric
  positive definite, so the banded form factorizes with LAPACK's
  Cholesky ``pbtrf`` — measured 2.5-3.7x faster than SuperLU for
  crossbars up to ~64 ports on the short side, at ~1e-12 relative
  agreement with the LU solution.
* ``"auto"`` (default) — picks ``"banded"`` when
  ``min(rows, cols) <= 32`` (where the banded factorization wins and
  back-substitution overhead stays negligible) and ``"lu"`` otherwise.
  Falls back to LU if the Cholesky factorization fails.

The MNA solve always runs in float64 regardless of the ``REPRO_DTYPE``
knob: the network matrix conditioning worsens with crossbar size and
the SPICE-equivalence tests rely on double-precision headroom.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np
import scipy.linalg as la
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger

__all__ = ["MNACrossbar", "MNA_SOLVERS", "BANDED_AUTO_MAX_SHORT_SIDE"]

_log = get_logger("xbar.mna")

MNA_SOLVERS = ("auto", "lu", "banded")
"""Accepted values for :class:`MNACrossbar`'s ``solver`` argument."""

BANDED_AUTO_MAX_SHORT_SIDE = 32
"""``solver="auto"`` uses the banded path when ``min(rows, cols)`` is at
most this.  The banded bandwidth is ~``2 * min(rows, cols)``; past ~64
SuperLU's fill-reducing ordering wins on both factorize and solve."""


class MNACrossbar:
    """IR-drop-aware crossbar solved by sparse modified nodal analysis.

    Parameters
    ----------
    conductances:
        Cell conductance matrix ``(rows, cols)`` in siemens.
    g_s:
        Load conductance at each bitline terminal.
    wire_resistance:
        Resistance of one wire segment between adjacent cross-points
        (ohms).  ~1-5 ohm/segment is typical for 90nm metal.
    solver:
        ``"auto"`` (default), ``"lu"`` or ``"banded"``; see the module
        docstring.  After construction :attr:`solver_used` records the
        factorization that actually ran.
    """

    def __init__(
        self,
        conductances: np.ndarray,
        g_s: float,
        wire_resistance: float = 2.0,
        solver: str = "auto",
    ):
        # the MNA physics solve is fixed float64 by design (conductance
        # stamps and banded LU; see docs/performance.md) — REPRO_DTYPE
        # only steers the digital data path
        conductances = np.asarray(conductances, dtype=float)  # repro-lint: disable=RPR007
        if conductances.ndim != 2:
            raise ValueError(f"conductances must be 2-D, got shape {conductances.shape}")
        if np.any(conductances < 0):
            raise ValueError("conductances must be non-negative")
        if g_s <= 0:
            raise ValueError("load conductance must be positive")
        if wire_resistance <= 0:
            raise ValueError("wire resistance must be positive")
        if solver not in MNA_SOLVERS:
            raise ValueError(f"solver must be one of {MNA_SOLVERS}, got {solver!r}")
        self.g = conductances
        self.g_s = float(g_s)
        self.g_w = 1.0 / float(wire_resistance)
        self.solver = solver
        self.solver_used: str = ""
        self.bandwidth: Optional[int] = None
        self._factorized: Optional[Callable[[np.ndarray], np.ndarray]] = None
        self._band_cholesky: Optional[np.ndarray] = None
        self._band_source_map: Optional[np.ndarray] = None
        self._band_t_positions: Optional[np.ndarray] = None
        self._build()

    # -- node numbering -------------------------------------------------
    # unknowns: W(i,j) for j >= 1, then all B(i,j), then T(j).
    # W(i,0) is the driven (known) node of row i.

    def _w_index(self, i: int, j: int) -> int:
        # j >= 1 only; W(i, 0) is a source node.
        return i * (self.cols - 1) + (j - 1) if self.cols > 1 else -1

    def _b_index(self, i: int, j: int) -> int:
        return self._n_w + i * self.cols + j

    def _t_index(self, j: int) -> int:
        return self._n_w + self.rows * self.cols + j

    @property
    def rows(self) -> int:
        return self.g.shape[0]

    @property
    def cols(self) -> int:
        return self.g.shape[1]

    def _build(self) -> None:
        n, m = self.rows, self.cols
        self._n_w = n * (m - 1)
        n_nodes = self._n_w + n * m + m
        n_w, g_w = self._n_w, self.g_w
        i_all = np.arange(n)
        j_all = np.arange(m)

        # The netlist is stamped edge-class by edge-class with
        # vectorized index arithmetic (the per-cell python loop used to
        # dominate construction for crossbars past ~32x32).  A
        # symmetric stamp between unknowns a and b contributes
        # (a,a,+g), (b,b,+g), (a,b,-g), (b,a,-g); duplicates are summed
        # by the COO -> CSC conversion / banded accumulation.
        stamp_chunks = []  # (node_rows, node_cols, values)
        src_chunks = []  # (node_rows, source_cols, values)

        def stamp(a: np.ndarray, b: np.ndarray, g: np.ndarray) -> None:
            stamp_chunks.append(
                (
                    np.concatenate((a, b, a, b)),
                    np.concatenate((a, b, b, a)),
                    np.concatenate((g, g, -g, -g)),
                )
            )

        def stamp_to_source(a: np.ndarray, source: np.ndarray, g: np.ndarray) -> None:
            stamp_chunks.append((a, a, g))
            src_chunks.append((a, source, g))

        # Devices in column 0 bridge the driven source node W(i,0) to
        # B(i,0) directly.
        b_col0 = n_w + i_all * m
        live0 = self.g[:, 0] > 0
        if np.any(live0):
            stamp_to_source(b_col0[live0], i_all[live0], self.g[live0, 0])
        # Devices in columns >= 1: W(i,j) -- B(i,j).
        if m > 1:
            w_nodes = i_all[:, None] * (m - 1) + np.arange(m - 1)[None, :]
            b_nodes = n_w + i_all[:, None] * m + np.arange(1, m)[None, :]
            live = self.g[:, 1:] > 0
            if np.any(live):
                stamp(w_nodes[live], b_nodes[live], self.g[:, 1:][live])
            # Wordline wire from the source node: W(i,0) -- W(i,1).
            w_first = i_all * (m - 1)
            stamp_to_source(w_first, i_all, np.full(n, g_w))
            # Interior wordline wires W(i,j) -- W(i,j+1), j >= 1.
            if m > 2:
                w_a = (i_all[:, None] * (m - 1) + np.arange(m - 2)[None, :]).ravel()
                stamp(w_a, w_a + 1, np.full(w_a.size, g_w))
        # Bitline wires B(i,j) -- B(i+1,j).
        if n > 1:
            b_a = (n_w + np.arange(n - 1)[:, None] * m + j_all[None, :]).ravel()
            stamp(b_a, b_a + m, np.full(b_a.size, g_w))
        # Last bitline segment into the terminal node T(j).
        b_last = n_w + (n - 1) * m + j_all
        t_nodes = n_w + n * m + j_all
        stamp(b_last, t_nodes, np.full(m, g_w))
        # Terminal loads T(j) -- ground.
        stamp_chunks.append((t_nodes, t_nodes, np.full(m, self.g_s)))

        rows_idx = np.concatenate([c[0] for c in stamp_chunks])
        cols_idx = np.concatenate([c[1] for c in stamp_chunks])
        data = np.concatenate([c[2] for c in stamp_chunks])
        if src_chunks:
            src_rows = np.concatenate([c[0] for c in src_chunks])
            src_cols = np.concatenate([c[1] for c in src_chunks])
            src_data = np.concatenate([c[2] for c in src_chunks])
        else:  # degenerate 1-column crossbar with every device off
            src_rows = src_cols = np.empty(0, dtype=np.intp)
            src_data = np.empty(0)

        self._source_map = sp.coo_matrix(
            (src_data, (src_rows, src_cols)), shape=(n_nodes, n)
        ).tocsc()
        # Densified once at build time: (n_nodes, rows) is small (the
        # source map has one column per input port), and a plain
        # ndarray matmul avoids both the per-solve densification and
        # the deprecated np.matrix semantics of ``.todense()``.
        self._source_map_dense = np.asarray(  # repro-lint: disable=RPR007
            self._source_map.toarray(), dtype=float)
        self._n_nodes = n_nodes

        data_arr = np.asarray(data, dtype=float)  # repro-lint: disable=RPR007
        rows_arr = np.asarray(rows_idx, dtype=np.intp)
        cols_arr = np.asarray(cols_idx, dtype=np.intp)
        choice = self.solver
        if choice == "auto":
            choice = "banded" if min(n, m) <= BANDED_AUTO_MAX_SHORT_SIDE else "lu"

        t0 = time.perf_counter()
        if choice == "banded":
            try:
                self._factorize_banded(data_arr, rows_arr, cols_arr)
                self.solver_used = "banded"
                obs_metrics.counter("mna_banded_factorizations").inc()
            except la.LinAlgError:
                _log.warning(
                    "banded Cholesky failed, falling back to sparse LU",
                    extra={"fields": {"rows": n, "cols": m}},
                )
                choice = "lu"
        if choice == "lu":
            matrix = sp.coo_matrix(
                (data_arr, (rows_arr, cols_arr)), shape=(n_nodes, n_nodes)
            ).tocsc()
            self._factorized = spla.factorized(matrix)
            self.solver_used = "lu"
        factorize_seconds = time.perf_counter() - t0
        obs_metrics.counter("mna_factorizations").inc()
        obs_metrics.histogram("mna_factorize_seconds").observe(factorize_seconds)
        _log.debug(
            "factorized MNA system",
            extra={
                "fields": {
                    "rows": n,
                    "cols": m,
                    "nodes": n_nodes,
                    "solver": self.solver_used,
                    "bandwidth": self.bandwidth,
                    "seconds": round(factorize_seconds, 6),
                }
            },
        )

    # -- banded fast path ----------------------------------------------

    def _band_positions(self) -> np.ndarray:
        """Analytic bandwidth-minimizing node ordering for the grid.

        Unknowns are renumbered slice by slice along the *longer* axis,
        interleaving wordline and bitline nodes within a slice; every
        netlist edge then connects nodes at most ~``2 * min(rows,
        cols)`` positions apart.  Returns ``pos`` with ``pos[node] =
        banded position``.
        """
        n, m, n_w = self.rows, self.cols, self._n_w
        pos = np.empty(self._n_nodes, dtype=np.intp)
        if m <= n:
            # Slice by wordline row i: [B(i,0), W(i,1), B(i,1), ...,
            # W(i,m-1), B(i,m-1)]; all T(j) appended after the last
            # slice (they only touch B(n-1,j)).  Bandwidth 2m-1.
            s = 2 * m - 1
            i = np.arange(n)[:, None]
            if m > 1:
                j = np.arange(1, m)[None, :]
                pos[(i * (m - 1) + (j - 1)).ravel()] = (i * s + 2 * j - 1).ravel()
            j = np.arange(m)[None, :]
            pos[(n_w + i * m + j).ravel()] = (i * s + 2 * j).ravel()
            pos[n_w + n * m + np.arange(m)] = n * s + np.arange(m)
        else:
            # Slice by bit column j: [W(0,j), B(0,j), ..., W(n-1,j),
            # B(n-1,j), T(j)] (column 0 has no W nodes).  Bandwidth
            # 2n+1.
            base = np.empty(m, dtype=np.intp)
            base[0] = 0
            base[1:] = (n + 1) + (2 * n + 1) * np.arange(m - 1)
            i = np.arange(n)[:, None]
            j = np.arange(1, m)[None, :]
            pos[(i * (m - 1) + (j - 1)).ravel()] = (base[j] + 2 * i).ravel()
            pos[(n_w + i * m + j).ravel()] = (base[j] + 2 * i + 1).ravel()
            pos[n_w + i.ravel() * m] = i.ravel()
            pos[n_w + n * m] = base[0] + n
            pos[n_w + n * m + np.arange(1, m)] = base[1:] + 2 * n
        return pos

    def _factorize_banded(
        self, data: np.ndarray, rows_idx: np.ndarray, cols_idx: np.ndarray
    ) -> None:
        """Assemble the upper-banded SPD matrix and Cholesky-factor it."""
        pos = self._band_positions()
        pr, pc = pos[rows_idx], pos[cols_idx]
        upper = pr <= pc
        pr, pc, vals = pr[upper], pc[upper], data[upper]
        bw = int(np.max(pc - pr))
        ab = np.zeros((bw + 1, self._n_nodes))
        np.add.at(ab, (bw + pr - pc, pc), vals)
        self._band_cholesky = la.cholesky_banded(ab, lower=False, check_finite=False)
        self.bandwidth = bw
        inv = np.argsort(pos)
        self._band_source_map = self._source_map_dense[inv]
        t0 = self._t_index(0)
        self._band_t_positions = pos[t0 : t0 + self.cols]

    def solve(self, v_in: np.ndarray) -> np.ndarray:
        """Solve the network for a batch of input voltage vectors.

        The batch is solved with a single multi-RHS substitution
        against the cached sparse LU factorization, so solving ``B``
        input vectors costs one factorization plus one batched
        triangular solve — not ``B`` independent solves.

        Parameters
        ----------
        v_in:
            Shape ``(batch, rows)`` or ``(rows,)``.

        Returns
        -------
        Output voltages at the bitline terminals, shape ``(batch, cols)``.
        """
        v_in = np.atleast_2d(np.asarray(v_in, dtype=float))  # repro-lint: disable=RPR007
        if v_in.shape[1] != self.rows:
            raise ValueError(f"input has {v_in.shape[1]} ports, crossbar has {self.rows} rows")
        t_start = time.perf_counter()
        if self._band_cholesky is not None:
            assert self._band_source_map is not None and self._band_t_positions is not None
            rhs = self._band_source_map @ v_in.T  # (n_nodes, batch), banded order
            solution = la.cho_solve_banded(
                (self._band_cholesky, False), rhs, check_finite=False
            )
            out = solution[self._band_t_positions].T
        else:
            assert self._factorized is not None
            rhs = self._source_map_dense @ v_in.T  # (n_nodes, batch)
            solution = self._factorized(rhs)
            t0 = self._t_index(0)
            out = solution[t0 : t0 + self.cols].T
        obs_metrics.counter("mna_solves").inc()
        obs_metrics.counter("mna_rhs_vectors").inc(v_in.shape[0])
        obs_metrics.histogram("mna_solve_seconds").observe(time.perf_counter() - t_start)
        return out

    def ideal_outputs(self, v_in: np.ndarray) -> np.ndarray:
        """Reference outputs from the zero-wire-resistance model."""
        from repro.xbar.crossbar import coefficients_from_conductance

        v_in = np.atleast_2d(np.asarray(v_in, dtype=float))  # repro-lint: disable=RPR007
        return v_in @ coefficients_from_conductance(self.g, self.g_s)

    def ir_drop_error(self, v_in: np.ndarray) -> float:
        """Mean |MNA - ideal| output deviation for given inputs."""
        return float(np.mean(np.abs(self.solve(v_in) - self.ideal_outputs(v_in))))
