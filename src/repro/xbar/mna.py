"""Modified nodal analysis (MNA) of a crossbar with wire resistance.

The paper performs SPICE-level emulation of the crossbar and picks a
90nm interconnect "to reduce the impact of IR drop" [17].  This module
is the SPICE-equivalent substrate: it solves the full resistive network
of an ``n x m`` crossbar, including wordline/bitline wire segment
resistance, with a sparse linear solve.

Circuit topology (one cell at word row ``i``, bit column ``j``):

* wordline node ``W(i, j)``; ``W(i, 0)`` is driven by the input source
  ``V_i`` (ideal driver);
* wire conductance ``g_w`` between horizontally adjacent wordline
  nodes and vertically adjacent bitline nodes;
* the RRAM cell ``g[i, j]`` bridges ``W(i, j)`` to ``B(i, j)``;
* each bitline ends in a terminal node ``T(j)`` loaded by ``g_s`` to
  ground; the output voltage is read at ``T(j)``.

As ``g_w -> inf`` the solution converges to the ideal behavioural
model of :mod:`repro.xbar.crossbar` (column-sum Eq. 2); the unit tests
assert that limit, which also validates our reading of the paper's
ambiguous Eq. 2 subscripts.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger

__all__ = ["MNACrossbar"]

_log = get_logger("xbar.mna")


class MNACrossbar:
    """IR-drop-aware crossbar solved by sparse modified nodal analysis.

    Parameters
    ----------
    conductances:
        Cell conductance matrix ``(rows, cols)`` in siemens.
    g_s:
        Load conductance at each bitline terminal.
    wire_resistance:
        Resistance of one wire segment between adjacent cross-points
        (ohms).  ~1-5 ohm/segment is typical for 90nm metal.
    """

    def __init__(self, conductances: np.ndarray, g_s: float, wire_resistance: float = 2.0):
        conductances = np.asarray(conductances, dtype=float)
        if conductances.ndim != 2:
            raise ValueError(f"conductances must be 2-D, got shape {conductances.shape}")
        if np.any(conductances < 0):
            raise ValueError("conductances must be non-negative")
        if g_s <= 0:
            raise ValueError("load conductance must be positive")
        if wire_resistance <= 0:
            raise ValueError("wire resistance must be positive")
        self.g = conductances
        self.g_s = float(g_s)
        self.g_w = 1.0 / float(wire_resistance)
        self._factorized = None
        self._build()

    # -- node numbering -------------------------------------------------
    # unknowns: W(i,j) for j >= 1, then all B(i,j), then T(j).
    # W(i,0) is the driven (known) node of row i.

    def _w_index(self, i: int, j: int) -> int:
        # j >= 1 only; W(i, 0) is a source node.
        return i * (self.cols - 1) + (j - 1) if self.cols > 1 else -1

    def _b_index(self, i: int, j: int) -> int:
        return self._n_w + i * self.cols + j

    def _t_index(self, j: int) -> int:
        return self._n_w + self.rows * self.cols + j

    @property
    def rows(self) -> int:
        return self.g.shape[0]

    @property
    def cols(self) -> int:
        return self.g.shape[1]

    def _build(self) -> None:
        n, m = self.rows, self.cols
        self._n_w = n * (m - 1)
        n_nodes = self._n_w + n * m + m
        data, rows_idx, cols_idx = [], [], []
        # rhs contribution matrix: maps the n source voltages to currents.
        src_data, src_rows, src_cols = [], [], []

        def stamp(a: int, b: int, g: float) -> None:
            """Stamp a conductance between two unknown nodes."""
            data.extend((g, g, -g, -g))
            rows_idx.extend((a, b, a, b))
            cols_idx.extend((a, b, b, a))

        def stamp_to_source(a: int, source: int, g: float) -> None:
            """Stamp a conductance from unknown node a to source node."""
            data.append(g)
            rows_idx.append(a)
            cols_idx.append(a)
            src_data.append(g)
            src_rows.append(a)
            src_cols.append(source)

        def stamp_to_ground(a: int, g: float) -> None:
            data.append(g)
            rows_idx.append(a)
            cols_idx.append(a)

        for i in range(n):
            for j in range(m):
                b = self._b_index(i, j)
                g_cell = self.g[i, j]
                # Device from W(i,j) to B(i,j).
                if j == 0:
                    if g_cell > 0:
                        stamp_to_source(b, i, g_cell)
                else:
                    w = self._w_index(i, j)
                    if g_cell > 0:
                        stamp(w, b, g_cell)
                # Wordline wire W(i,j) -- W(i,j+1).
                if j + 1 < m:
                    w_next = self._w_index(i, j + 1)
                    if j == 0:
                        stamp_to_source(w_next, i, self.g_w)
                    else:
                        stamp(self._w_index(i, j), w_next, self.g_w)
                # Bitline wire B(i,j) -- B(i+1,j), and last row to T(j).
                if i + 1 < n:
                    stamp(b, self._b_index(i + 1, j), self.g_w)
                else:
                    stamp(b, self._t_index(j), self.g_w)
        for j in range(m):
            stamp_to_ground(self._t_index(j), self.g_s)

        matrix = sp.coo_matrix((data, (rows_idx, cols_idx)), shape=(n_nodes, n_nodes)).tocsc()
        self._source_map = sp.coo_matrix(
            (src_data, (src_rows, src_cols)), shape=(n_nodes, n)
        ).tocsc()
        # Densified once at build time: (n_nodes, rows) is small (the
        # source map has one column per input port), and a plain
        # ndarray matmul avoids both the per-solve densification and
        # the deprecated np.matrix semantics of ``.todense()``.
        self._source_map_dense = np.asarray(self._source_map.toarray(), dtype=float)
        t0 = time.perf_counter()
        self._factorized = spla.factorized(matrix)
        factorize_seconds = time.perf_counter() - t0
        self._n_nodes = n_nodes
        obs_metrics.counter("mna_factorizations").inc()
        obs_metrics.histogram("mna_factorize_seconds").observe(factorize_seconds)
        _log.debug(
            "factorized MNA system",
            extra={
                "fields": {
                    "rows": n,
                    "cols": m,
                    "nodes": n_nodes,
                    "seconds": round(factorize_seconds, 6),
                }
            },
        )

    def solve(self, v_in: np.ndarray) -> np.ndarray:
        """Solve the network for a batch of input voltage vectors.

        The batch is solved with a single multi-RHS substitution
        against the cached sparse LU factorization, so solving ``B``
        input vectors costs one factorization plus one batched
        triangular solve — not ``B`` independent solves.

        Parameters
        ----------
        v_in:
            Shape ``(batch, rows)`` or ``(rows,)``.

        Returns
        -------
        Output voltages at the bitline terminals, shape ``(batch, cols)``.
        """
        v_in = np.atleast_2d(np.asarray(v_in, dtype=float))
        if v_in.shape[1] != self.rows:
            raise ValueError(f"input has {v_in.shape[1]} ports, crossbar has {self.rows} rows")
        t_start = time.perf_counter()
        rhs = self._source_map_dense @ v_in.T  # (n_nodes, batch)
        solution = self._factorized(rhs)
        obs_metrics.counter("mna_solves").inc()
        obs_metrics.counter("mna_rhs_vectors").inc(v_in.shape[0])
        obs_metrics.histogram("mna_solve_seconds").observe(time.perf_counter() - t_start)
        t0 = self._t_index(0)
        return solution[t0 : t0 + self.cols].T

    def ideal_outputs(self, v_in: np.ndarray) -> np.ndarray:
        """Reference outputs from the zero-wire-resistance model."""
        from repro.xbar.crossbar import coefficients_from_conductance

        v_in = np.atleast_2d(np.asarray(v_in, dtype=float))
        return v_in @ coefficients_from_conductance(self.g, self.g_s)

    def ir_drop_error(self, v_in: np.ndarray) -> float:
        """Mean |MNA - ideal| output deviation for given inputs."""
        return float(np.mean(np.abs(self.solve(v_in) - self.ideal_outputs(v_in))))
