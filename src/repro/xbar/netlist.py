"""SPICE netlist export for crossbar arrays.

The paper's accuracy emulation runs "SPICE-level" crossbar simulation
with a Verilog-A device model.  Our solvers are pure Python, but for
users who want to cross-check against a real circuit simulator this
module writes a standard SPICE deck of the same network the
:class:`repro.xbar.mna.MNACrossbar` solves:

* one resistor per RRAM cell (``Rc<i>_<j>``);
* wordline/bitline wire segment resistors (``Rw``/``Rb``);
* load resistors to ground at each bitline terminal (``Rl<j>``);
* DC voltage sources driving the wordlines (``Vin<i>``);
* ``.op`` analysis and ``.print`` of the output nodes.

The node naming matches the MNA solver's topology docs, so a SPICE
``.op`` run reproduces ``MNACrossbar.solve`` voltages.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["crossbar_netlist"]


def _fmt(value: float) -> str:
    """SPICE-friendly number formatting."""
    return f"{value:.6g}"


def crossbar_netlist(
    conductances: np.ndarray,
    g_s: float,
    v_in: Sequence[float],
    wire_resistance: float = 2.0,
    title: str = "rram crossbar",
    comments: Optional[Sequence[str]] = None,
) -> str:
    """Build a SPICE deck for one crossbar with wire parasitics.

    Parameters
    ----------
    conductances:
        Cell conductances, shape ``(rows, cols)``; zero-conductance
        cells are omitted (open circuit).
    g_s:
        Load conductance at each bitline terminal.
    v_in:
        DC drive voltage per wordline.
    wire_resistance:
        Per-segment wire resistance in ohms.
    title, comments:
        Deck header content.

    Returns the netlist as a string (caller writes it to a file).
    """
    # SPICE decks are written at full float64 precision regardless of the
    # REPRO_DTYPE data-path setting: the netlist is a physical artifact
    g = np.asarray(conductances, dtype=float)  # repro-lint: disable=RPR007
    if g.ndim != 2:
        raise ValueError(f"conductances must be 2-D, got shape {g.shape}")
    if np.any(g < 0):
        raise ValueError("conductances must be non-negative")
    if g_s <= 0 or wire_resistance <= 0:
        raise ValueError("g_s and wire_resistance must be positive")
    v_in = list(v_in)
    rows, cols = g.shape
    if len(v_in) != rows:
        raise ValueError(f"need {rows} input voltages, got {len(v_in)}")

    lines: List[str] = [f"* {title}"]
    for comment in comments or ():
        lines.append(f"* {comment}")
    lines.append(f"* {rows}x{cols} array, R_wire={_fmt(wire_resistance)} ohm, "
                 f"R_load={_fmt(1.0 / g_s)} ohm")

    # Sources drive the first wordline node of each row.
    for i, v in enumerate(v_in):
        lines.append(f"Vin{i} w{i}_0 0 DC {_fmt(float(v))}")

    # Wordline wires w<i>_<j> -- w<i>_<j+1>.
    for i in range(rows):
        for j in range(cols - 1):
            lines.append(f"Rw{i}_{j} w{i}_{j} w{i}_{j + 1} {_fmt(wire_resistance)}")

    # Cells w<i>_<j> -- b<i>_<j>.
    for i in range(rows):
        for j in range(cols):
            if g[i, j] > 0:
                lines.append(f"Rc{i}_{j} w{i}_{j} b{i}_{j} {_fmt(1.0 / g[i, j])}")

    # Bitline wires b<i>_<j> -- b<i+1>_<j>, last row to terminal t<j>.
    for j in range(cols):
        for i in range(rows - 1):
            lines.append(f"Rb{i}_{j} b{i}_{j} b{i + 1}_{j} {_fmt(wire_resistance)}")
        lines.append(f"Rbt{j} b{rows - 1}_{j} t{j} {_fmt(wire_resistance)}")
        lines.append(f"Rl{j} t{j} 0 {_fmt(1.0 / g_s)}")

    lines.append(".op")
    outputs = " ".join(f"v(t{j})" for j in range(cols))
    lines.append(f".print op {outputs}")
    lines.append(".end")
    return "\n".join(lines) + "\n"
