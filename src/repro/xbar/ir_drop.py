"""IR-drop studies: quantify wire-resistance error across array sizes.

The paper's future-work section calls out "reducing the IR drop for a
larger RCS under smaller technology node".  This module provides the
sweep used by the IR-drop ablation bench: for a family of array sizes
and wire resistances, it measures how far the MNA solution drifts from
the ideal crossbar model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.device.rram import HFOX_DEVICE, RRAMDevice

# The cheap closed-form counterpart of the MNA sweep below: it lives in
# repro.xbar.crossbar (numpy-only, no scipy) so the behavioural model
# can apply IR drop per Monte-Carlo trial, and is re-exported here as
# the natural home for everything IR-drop.  sweep_ir_drop measures what
# the first-order model misses (sneak-path coupling).
from repro.xbar.crossbar import effective_conductances
from repro.xbar.mna import MNACrossbar

__all__ = [
    "IRDropPoint",
    "effective_conductances",
    "sweep_ir_drop",
    "wire_resistance_for_node",
]

_NODE_WIRE_OHMS = {
    # Approximate per-segment wire resistance scaling with node; the
    # 90nm value anchors the paper's setup, others follow ITRS-style
    # R ~ 1/(width x thickness) scaling.
    130: 1.2,
    90: 2.0,
    65: 3.6,
    45: 7.0,
    32: 13.0,
    22: 26.0,
}


def wire_resistance_for_node(feature_nm: int) -> float:
    """Per-segment wire resistance (ohms) for a technology node."""
    try:
        return _NODE_WIRE_OHMS[feature_nm]
    except KeyError:
        raise ValueError(
            f"unknown node {feature_nm}nm; known: {sorted(_NODE_WIRE_OHMS)}"
        ) from None


@dataclass(frozen=True)
class IRDropPoint:
    """One sweep sample: array size, wire resistance, observed error."""

    size: int
    wire_resistance: float
    mean_abs_error: float
    relative_error: float


def sweep_ir_drop(
    sizes: Sequence[int],
    wire_resistances: Sequence[float],
    g_s: float = 1e-3,
    device: RRAMDevice = HFOX_DEVICE,
    n_vectors: int = 16,
    seed: int = 0,
) -> List[IRDropPoint]:
    """Measure MNA-vs-ideal output error over (size, wire R) grid.

    Conductances are drawn uniformly from the device window and inputs
    uniformly from [0, 1], giving a worst-case-ish current load.
    """
    rng = np.random.default_rng(seed)
    points: List[IRDropPoint] = []
    for size in sizes:
        if size < 2:
            raise ValueError(f"array size must be >= 2, got {size}")
        g = rng.uniform(device.g_min, device.g_max, size=(size, size))
        v = rng.uniform(0.0, 1.0, size=(n_vectors, size))
        for r_wire in wire_resistances:
            xbar = MNACrossbar(g, g_s=g_s, wire_resistance=r_wire)
            out_mna = xbar.solve(v)
            out_ideal = xbar.ideal_outputs(v)
            err = np.abs(out_mna - out_ideal)
            scale = max(float(np.mean(np.abs(out_ideal))), 1e-12)
            points.append(
                IRDropPoint(
                    size=size,
                    wire_resistance=float(r_wire),
                    mean_abs_error=float(np.mean(err)),
                    relative_error=float(np.mean(err) / scale),
                )
            )
    return points
