"""Spare-column redundancy repair for faulty crossbar arrays.

Real RRAM macros ship a few spare bitlines per array; after
post-fabrication test locates defective cells, the worst logical
columns are steered onto healthy spares by the column mux (the same
scheme memory redundancy has used for decades, and the fault-aware
mapping literature applies to crossbar accelerators).  In the
behavioural model a remapped column simply gets its *target*
conductances back: the spare is tested healthy, so programming the
logical column's targets onto it realizes them exactly.

The repair is deliberately column-granular — a single stuck cell burns
a whole spare — because that is what the peripheral mux can actually
switch; cell-granular repair would require per-cell steering hardware
no crossbar has.  Column-open line failures are the ideal customer:
one spare recovers an entire dead bitline.

:func:`remap_spare_columns` operates on one single-ended array;
:meth:`repro.core.deploy.AnalogMLP.repair_with_spares` sweeps a whole
deployment, spending an independent spare budget per array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.xbar.crossbar import Crossbar

__all__ = ["RemapReport", "remap_spare_columns"]


@dataclass
class RemapReport:
    """What one array's spare-column repair did."""

    spares_available: int
    remapped_columns: List[int] = field(default_factory=list)
    cells_repaired: int = 0
    cells_unrepaired: int = 0

    @property
    def spares_used(self) -> int:
        return len(self.remapped_columns)

    def to_dict(self) -> dict:
        return {
            "spares_available": self.spares_available,
            "remapped_columns": list(self.remapped_columns),
            "cells_repaired": self.cells_repaired,
            "cells_unrepaired": self.cells_unrepaired,
        }


def remap_spare_columns(
    array: Crossbar,
    defects: np.ndarray,
    pristine: np.ndarray,
    spares: int,
) -> RemapReport:
    """Steer the worst defective columns of one array onto spares.

    Parameters
    ----------
    array:
        The deployed (faulty) single-ended array; repaired in place.
    defects:
        The array's defect map (``DEFECT_*`` classes, shape of the
        conductance matrix) as returned by the injection.
    pristine:
        The pre-injection conductance matrix — the programming targets
        the spare column realizes.
    spares:
        Spare-column budget for this array.  ``0`` is an exact no-op.

    Columns are ranked by defective-cell count (ties broken toward the
    lower index, deterministically); only columns with at least one
    defect consume a spare.  Returns the :class:`RemapReport`.
    """
    defects = np.asarray(defects)
    # pristine conductances are physical device values (float64 domain,
    # like the MNA solve and noise draws), not REPRO_DTYPE data
    pristine = np.asarray(pristine, dtype=float)  # repro-lint: disable=RPR007
    if defects.shape != array.conductances.shape:
        raise ValueError(
            f"defect map shape {defects.shape} does not match "
            f"array shape {array.conductances.shape}"
        )
    if pristine.shape != array.conductances.shape:
        raise ValueError(
            f"pristine snapshot shape {pristine.shape} does not match "
            f"array shape {array.conductances.shape}"
        )
    if spares < 0:
        raise ValueError(f"spares must be >= 0, got {spares}")
    per_column = np.count_nonzero(defects, axis=0)
    report = RemapReport(spares_available=int(spares))
    if spares == 0 or not per_column.any():
        report.cells_unrepaired = int(per_column.sum())
        return report
    # Stable worst-first ranking: sort by (-count, index).
    order = np.lexsort((np.arange(per_column.size), -per_column))
    g = array.conductances.copy()
    for col in order[:spares]:
        if per_column[col] == 0:
            break
        g[:, col] = pristine[:, col]
        report.remapped_columns.append(int(col))
        report.cells_repaired += int(per_column[col])
    array.conductances = g
    report.cells_unrepaired = int(per_column.sum()) - report.cells_repaired
    obs_metrics.counter("spare_columns_remapped").inc(report.spares_used)
    return report
