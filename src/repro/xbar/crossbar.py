"""Behavioural RRAM crossbar model (Eq. 1-2 of the paper).

A crossbar with ``n`` input rows and ``m`` output columns computes

    V_o[j] = sum_k c[k, j] * V_i[k]                       (Eq. 1)
    c[k, j] = g[k, j] / (g_s + sum_l g[l, j])             (Eq. 2)

where ``g`` are the cell conductances and ``g_s`` the load conductance.
The paper's Eq. 2 subscripts are ambiguous about whether the
denominator sums a row or a column; Kirchhoff's current law at the
bitline (and the reference model of Hu et al., DAC'12) gives the
*column* sum, which is what we implement — the MNA solver in
:mod:`repro.xbar.mna` converges to exactly this form as wire
resistance vanishes, and the tests check that agreement.  The
column-sum term couples the cells of one output column — the mapping
layer (:mod:`repro.xbar.mapping`) inverts exactly this coupling when
it programs a target coefficient matrix.

:class:`Crossbar` is the single-array primitive; a differential pair of
them (positive/negative) realizes signed matrices, handled by
:class:`repro.xbar.mapping.DifferentialCrossbar`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config.dtype import astype as _astype
from repro.device.rram import HFOX_DEVICE, RRAMDevice
from repro.device.variation import NonIdealFactors, lognormal_factor_stack
from repro.sanitize import guards as sanitize_guards

__all__ = [
    "Crossbar",
    "coefficients_from_conductance",
    "effective_conductances",
    "sinh_nonlinearity",
]


def effective_conductances(g: np.ndarray, wire_resistance: float) -> np.ndarray:
    """First-order IR-drop attenuation of programmed conductances.

    The cell at (1-indexed) position ``(i, j)`` sees roughly
    ``i + j`` wire segments of resistance ``wire_resistance`` in series
    with its own resistance ``1/g`` (down the word line from the driver,
    along the bit line to the sense load), so its effective conductance
    is ``1 / (1/g + r_path) = g / (1 + g * r_path)``.  This is the
    zeroth iteration of the full MNA solve in :mod:`repro.xbar.mna` —
    it ignores sneak-path coupling but captures the dominant trend: far
    corners fade, strong (low-resistance) cells fade hardest.  It stays
    a cheap closed form so Monte-Carlo trial stacks (``g`` may carry
    leading trial axes) pay one vectorized multiply, not an MNA solve
    per trial.  ``wire_resistance == 0`` returns ``g`` unchanged.
    """
    if wire_resistance < 0:
        raise ValueError(f"wire resistance must be >= 0, got {wire_resistance}")
    g = _astype(g)
    if g.ndim < 2:
        raise ValueError(f"conductance array must be at least 2-D, got shape {g.shape}")
    if wire_resistance == 0:
        return g
    rows, cols = g.shape[-2:]
    i = np.arange(1, rows + 1, dtype=g.dtype)
    j = np.arange(1, cols + 1, dtype=g.dtype)
    r_path = wire_resistance * (i[:, None] + j[None, :])
    return g / (1.0 + g * r_path)


def sinh_nonlinearity(v: np.ndarray, alpha: float) -> np.ndarray:
    """Normalized sinh I-V nonlinearity of an RRAM cell.

    Real devices conduct super-linearly with voltage,
    ``I ~ sinh(alpha * V)``; normalized so ``f(0) = 0`` and
    ``f(1) = 1``, with ``alpha -> 0`` recovering the linear model.
    MEI's 0/1 input levels land exactly on the two fixed points, so
    input-side nonlinearity distorts analog-driven (AD/DA) crossbars
    but not MEI's first layer — one more advantage of discrete levels.
    """
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    v = _astype(v)
    if alpha == 0:
        return v
    return np.sinh(alpha * v) / np.sinh(alpha)


def coefficients_from_conductance(g: np.ndarray, g_s: float) -> np.ndarray:
    """Compute the coefficient matrix ``c`` of Eq. 2 from conductances."""
    g = _astype(g)
    if g.ndim != 2:
        raise ValueError(f"conductance matrix must be 2-D, got shape {g.shape}")
    if np.any(g < 0):
        raise ValueError("conductances must be non-negative")
    if g_s <= 0:
        raise ValueError(f"load conductance must be positive, got {g_s}")
    col_sums = g.sum(axis=0, keepdims=True)
    return g / (g_s + col_sums)


class Crossbar:
    """One RRAM crossbar array of shape ``(rows, cols)``.

    Parameters
    ----------
    conductances:
        Programmed cell conductances in siemens, shape ``(rows, cols)``.
    g_s:
        Load conductance at each output column.
    device:
        Device model used to clip/discretize the programmed states.
    wire_resistance:
        Per-segment wire resistance in ohms; ``0`` (the default) keeps
        the ideal interconnect of Eq. 1-2, any positive value applies
        the first-order :func:`effective_conductances` attenuation to
        whatever conductances (nominal or PV-perturbed) feed Eq. 2.
    """

    def __init__(
        self,
        conductances: np.ndarray,
        g_s: float,
        device: RRAMDevice = HFOX_DEVICE,
        nonlinearity: float = 0.0,
        wire_resistance: float = 0.0,
    ):
        conductances = _astype(conductances)
        if conductances.ndim != 2:
            raise ValueError(f"conductances must be 2-D, got shape {conductances.shape}")
        if g_s <= 0:
            raise ValueError(f"load conductance must be positive, got {g_s}")
        if nonlinearity < 0:
            raise ValueError(f"nonlinearity must be >= 0, got {nonlinearity}")
        if wire_resistance < 0:
            raise ValueError(f"wire resistance must be >= 0, got {wire_resistance}")
        self.device = device
        self.g_s = float(g_s)
        self.nonlinearity = float(nonlinearity)
        self.wire_resistance = float(wire_resistance)
        self.conductances = device.discretize(conductances)

    @property
    def rows(self) -> int:
        return self.conductances.shape[0]

    @property
    def cols(self) -> int:
        return self.conductances.shape[1]

    def coefficients(self, noise: Optional[NonIdealFactors] = None,
                     rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Effective coefficient matrix, optionally under process variation.

        Process variation perturbs the *conductances*; the coupled
        denominators of Eq. 2 are recomputed from the perturbed states,
        so PV on one cell shifts every coefficient in its row — a
        second-order effect SPICE would capture and we preserve.
        """
        g = self.conductances
        if noise is not None and noise.sigma_pv > 0:
            g = self.device.clip_conductance(noise.perturb_conductance(g, rng))
        if self.wire_resistance > 0:
            g = effective_conductances(g, self.wire_resistance)
        return coefficients_from_conductance(g, self.g_s)

    def apply(
        self,
        v_in: np.ndarray,
        noise: Optional[NonIdealFactors] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Analog matrix-vector product on a batch of input vectors.

        Parameters
        ----------
        v_in:
            Input voltages, shape ``(batch, rows)`` or ``(rows,)``.
        noise:
            Optional non-ideal factors; PV perturbs the conductances,
            SF perturbs the input voltages.
        rng:
            Generator for one Monte-Carlo trial (defaults to the noise
            object's own seeding).
        """
        v_in = np.atleast_2d(_astype(v_in))
        if v_in.shape[1] != self.rows:
            raise ValueError(f"input has {v_in.shape[1]} ports, crossbar has {self.rows} rows")
        # The programmed states were clipped at construction; catch any
        # post-construction drift (fault injection, manual edits) that
        # left the physical window before it silently skews Eq. 2.
        sanitize_guards.check_range(
            "crossbar", "conductances", self.conductances,
            self.device.g_min, self.device.g_max,
        )
        sanitize_guards.check_finite("crossbar", "v_in", v_in)
        if noise is not None:
            if rng is None:
                rng = noise.rng()
            v_in = noise.perturb_signal(v_in, rng)
        if self.nonlinearity > 0:
            v_in = sinh_nonlinearity(v_in, self.nonlinearity)
        c = self.coefficients(noise, rng)
        return v_in @ c

    def pv_shapes(self) -> "list":
        """Conductance-array shapes, in per-trial PV draw order."""
        return [self.conductances.shape]

    def consume_pv_factors(self, chunks) -> np.ndarray:
        """Take this array's PV factor stack from an ordered iterator.

        ``chunks`` yields ``(trials,) + shape`` stacks in
        :meth:`pv_shapes` order (see
        :meth:`repro.core.deploy.AnalogMLP.forward_trials`, which draws
        the whole network's PV factors with one generator call per
        trial and splits them here).
        """
        return next(chunks)

    def apply_trials(
        self,
        v_in: np.ndarray,
        noise: Optional[NonIdealFactors] = None,
        rngs: "Optional[list]" = None,
        pv_factors: "Optional[np.ndarray]" = None,
    ) -> np.ndarray:
        """Batched Monte-Carlo matrix-vector product over noise trials.

        Parameters
        ----------
        v_in:
            Input voltage stack of shape ``(trials, batch, rows)``;
            broadcasting views (e.g. ``np.broadcast_to``) are accepted.
        noise:
            Optional non-ideal factors shared by all trials.
        rngs:
            One generator per trial (see
            :meth:`repro.device.variation.NonIdealFactors.rngs`);
            required whenever ``noise`` is given.  Each generator is
            consumed in the same order as one serial :meth:`apply`
            call, so the stacked result is bit-identical to looping
            ``apply`` over the trials.
        pv_factors:
            Optional precomputed process-variation factor stack of
            shape ``(trials, rows, cols)``; when given, the per-trial
            PV draws are skipped (the caller already consumed the
            generators — see :meth:`consume_pv_factors`).

        Returns
        -------
        Output voltages of shape ``(trials, batch, cols)``, computed
        with one stacked matmul instead of a per-trial Python loop.
        """
        v_in = _astype(v_in)
        if v_in.ndim != 3:
            raise ValueError(f"trial stack must be 3-D, got shape {v_in.shape}")
        if v_in.shape[2] != self.rows:
            raise ValueError(f"input has {v_in.shape[2]} ports, crossbar has {self.rows} rows")
        if noise is not None:
            if rngs is None:
                raise ValueError("rngs (one per trial) are required when noise is given")
            if len(rngs) != v_in.shape[0]:
                raise ValueError(
                    f"got {len(rngs)} generators for {v_in.shape[0]} trials"
                )
            if noise.sigma_sf > 0:
                v_in = v_in * lognormal_factor_stack(
                    v_in.shape[1:], noise.sigma_sf, rngs
                )
        if self.nonlinearity > 0:
            v_in = sinh_nonlinearity(v_in, self.nonlinearity)
        if noise is not None and noise.sigma_pv > 0:
            # Per-trial draws stay in the serial order (bit-identity);
            # the multiply/clip/normalize run once on the whole stack.
            factors = pv_factors
            if factors is None:
                factors = lognormal_factor_stack(
                    self.conductances.shape, noise.sigma_pv, rngs
                )
            g = self.device.clip_conductance(self.conductances * factors)
            if self.wire_resistance > 0:
                g = effective_conductances(g, self.wire_resistance)
            c = g / (self.g_s + g.sum(axis=1, keepdims=True))
        else:
            c = self.coefficients()
        return v_in @ c
