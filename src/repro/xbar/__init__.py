"""RRAM crossbar simulators: behavioural (Eq. 1-2) and MNA IR-drop."""

from repro.xbar.compensation import CompensationReport, compensate_ir_drop, effective_coefficients
from repro.xbar.crossbar import Crossbar, coefficients_from_conductance, sinh_nonlinearity
from repro.xbar.ir_drop import IRDropPoint, sweep_ir_drop, wire_resistance_for_node
from repro.xbar.mapping import (
    DifferentialCrossbar,
    MappingConfig,
    map_matrix,
    solve_conductances,
)
from repro.xbar.mna import MNACrossbar
from repro.xbar.netlist import crossbar_netlist
from repro.xbar.redundancy import RemapReport, remap_spare_columns
from repro.xbar.tiling import TiledDifferentialCrossbar

__all__ = [
    "Crossbar",
    "coefficients_from_conductance",
    "sinh_nonlinearity",
    "CompensationReport",
    "compensate_ir_drop",
    "effective_coefficients",
    "DifferentialCrossbar",
    "MappingConfig",
    "map_matrix",
    "solve_conductances",
    "MNACrossbar",
    "crossbar_netlist",
    "RemapReport",
    "remap_spare_columns",
    "TiledDifferentialCrossbar",
    "IRDropPoint",
    "sweep_ir_drop",
    "wire_resistance_for_node",
]
