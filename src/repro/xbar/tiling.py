"""Crossbar tiling: realize tall matrices as stacked sub-arrays.

Practical crossbars are bounded — by the Eq. 2 column-sum headroom
(every row adds its base coefficient to each column's loading), by IR
drop, and by drive strength.  Real accelerators therefore *tile*: a
tall weight matrix is split along its input dimension into several
sub-arrays whose output currents sum (current summing is free in
analog — the bitlines of the tiles share one periphery).

:class:`TiledDifferentialCrossbar` mirrors the
:class:`repro.xbar.mapping.DifferentialCrossbar` interface, so
deployment code can swap it in when a layer's fan-in exceeds a tile
budget (MEI's bit-level interfaces make fan-ins of several hundred
routine, e.g. JPEG's 384 input ports).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.config.dtype import astype as _astype
from repro.device.rram import HFOX_DEVICE, RRAMDevice
from repro.device.variation import NonIdealFactors
from repro.xbar.mapping import DifferentialCrossbar, MappingConfig

__all__ = ["TiledDifferentialCrossbar"]


class TiledDifferentialCrossbar:
    """A tall signed matrix as row-tiles of differential crossbar pairs.

    Parameters
    ----------
    weights:
        Target matrix ``(in_dim, out_dim)``.
    max_rows:
        Largest tile fan-in; the matrix splits into
        ``ceil(in_dim / max_rows)`` tiles.
    config, device:
        Forwarded to every tile's mapping.
    """

    def __init__(
        self,
        weights: np.ndarray,
        max_rows: int,
        config: Optional[MappingConfig] = None,
        device: RRAMDevice = HFOX_DEVICE,
    ):
        weights = _astype(weights)
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        self.in_dim = weights.shape[0]
        self.out_dim = weights.shape[1]
        self.max_rows = int(max_rows)
        self.tiles: List[DifferentialCrossbar] = []
        self._row_slices: List[slice] = []
        for start in range(0, self.in_dim, self.max_rows):
            stop = min(start + self.max_rows, self.in_dim)
            self._row_slices.append(slice(start, stop))
            self.tiles.append(
                DifferentialCrossbar(weights[start:stop], config=config, device=device)
            )

    @property
    def n_tiles(self) -> int:
        return len(self.tiles)

    @property
    def device_count(self) -> int:
        """Total RRAM cells across tiles (equals the untiled count)."""
        return sum(tile.device_count for tile in self.tiles)

    @property
    def gain(self) -> float:  # pragma: no cover - interface parity
        """Tiles restore their own gains; the stack needs none."""
        return 1.0

    def apply(
        self,
        x: np.ndarray,
        noise: Optional[NonIdealFactors] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Compute ``x @ W`` by summing the tiles' output currents."""
        x = np.atleast_2d(_astype(x))
        if x.shape[1] != self.in_dim:
            raise ValueError(f"input has {x.shape[1]} ports, matrix has {self.in_dim} rows")
        total = None
        for rows, tile in zip(self._row_slices, self.tiles):
            partial = tile.apply(x[:, rows], noise, rng)
            total = partial if total is None else total + partial
        return total

    def pv_shapes(self) -> "list":
        """Conductance-array shapes, in per-trial PV draw order."""
        return [shape for tile in self.tiles for shape in tile.pv_shapes()]

    def consume_pv_factors(self, chunks) -> "list":
        """Take every tile's PV factor stacks from an ordered iterator."""
        return [tile.consume_pv_factors(chunks) for tile in self.tiles]

    def apply_trials(
        self,
        x: np.ndarray,
        noise: Optional[NonIdealFactors] = None,
        rngs: "Optional[list]" = None,
        pv_factors: "Optional[list]" = None,
    ) -> np.ndarray:
        """Batched Monte-Carlo apply over a ``(trials, batch, in)`` stack.

        Tiles are visited in the same order as :meth:`apply`, so each
        trial's generator sees the serial draw sequence (per tile:
        signal fluctuation, positive PV, negative PV) and the result is
        bit-identical to looping over trials.  ``pv_factors`` is the
        optional per-tile list from :meth:`consume_pv_factors`.
        """
        x = _astype(x)
        if x.ndim != 3:
            raise ValueError(f"trial stack must be 3-D, got shape {x.shape}")
        if x.shape[2] != self.in_dim:
            raise ValueError(f"input has {x.shape[2]} ports, matrix has {self.in_dim} rows")
        if pv_factors is None:
            pv_factors = [None] * len(self.tiles)
        total = None
        for rows, tile, factors in zip(self._row_slices, self.tiles, pv_factors):
            partial = tile.apply_trials(x[:, :, rows], noise, rngs, pv_factors=factors)
            total = partial if total is None else total + partial
        return total
