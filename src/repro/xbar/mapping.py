"""Weight-matrix to conductance mapping (differential crossbar pair).

The crossbar coefficient of Eq. 2 is non-negative and bounded, so a
signed weight matrix ``W`` is realized as the difference of two arrays
(the paper doubles the RRAM area for exactly this reason, Sec. 4.1):

    W * x  ≈  (1 / scale) * (C_pos - C_neg)^T-free form: x @ (C_pos - C_neg)

Mapping steps:

1. split ``W`` into positive and negative parts;
2. choose a scale so every column's coefficient sum stays below a
   headroom bound (Eq. 2 requires ``sum_k c[k, j] < 1``);
3. add the same *base coefficient* to every cell of both arrays so the
   smallest target stays programmable (``>= g_min``); because both
   arrays realize their targets exactly, the base cancels in the
   differential output;
4. invert Eq. 2 *exactly* per column: with column sum
   ``S_j = sum_l g[l, j]`` and target coefficients ``c``,
   ``S_j = g_s * sc_j / (1 - sc_j)`` (``sc_j`` the column's
   coefficient sum) and ``g[k, j] = c[k, j] * (g_s + S_j)``.

The periphery gain ``1 / scale`` is applied by the analog neuron stage.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.config.dtype import astype as _astype
from repro.device.rram import HFOX_DEVICE, RRAMDevice
from repro.device.variation import (
    NonIdealFactors,
    lognormal_factor_stack,
    lognormal_factors,
)
from repro.obs import metrics as obs_metrics
from repro.sanitize import guards as sanitize_guards
from repro.xbar.crossbar import Crossbar

__all__ = [
    "MappingConfig",
    "solve_conductances",
    "DifferentialCrossbar",
    "ExactDifferentialCrossbar",
    "map_matrix",
    "clear_mapping_cache",
    "mapping_cache_size",
    "mapping_cache_stats",
    "MAPPING_CACHE_CAPACITY",
]


@dataclass(frozen=True)
class MappingConfig:
    """Mapping policy knobs.

    Parameters
    ----------
    g_s:
        Load conductance; sized ~10x the device ``g_max`` so the
        denominator of Eq. 2 is dominated by the load.
    row_sum_headroom:
        Upper bound on a column's total coefficient (must be < 1).
        (Named after the paper's Eq. 2 row notation; physically the
        bound applies per bitline column.)
    coefficient_ceiling:
        Largest single coefficient targeted; keeps cells below g_max.
    """

    g_s: float = 1e-3
    row_sum_headroom: float = 0.5
    coefficient_ceiling: float = 0.01
    input_nonlinearity: float = 0.0
    """Sinh I-V nonlinearity alpha applied to each crossbar's input
    voltages (0 = ideal linear cell).  Digital 0/1 drive levels are
    unaffected by construction (the sinh is normalized at 0 and 1)."""
    max_rows_per_tile: "int | None" = None
    """When set, deployments split matrices taller than this into
    row tiles whose output currents sum
    (:class:`repro.xbar.tiling.TiledDifferentialCrossbar`)."""
    wire_resistance: float = 0.0
    """Per-segment interconnect resistance in ohms applied to each
    deployed crossbar (first-order IR-drop model,
    :func:`repro.xbar.crossbar.effective_conductances`); 0 keeps the
    ideal wires of Eq. 1-2.  The naive mapping solve does *not*
    compensate for it — the attenuation lands as output error, which is
    exactly what the error-budget attribution measures."""

    def __post_init__(self) -> None:
        if self.input_nonlinearity < 0:
            raise ValueError("input_nonlinearity must be >= 0")
        if self.wire_resistance < 0:
            raise ValueError("wire_resistance must be >= 0")
        if self.max_rows_per_tile is not None and self.max_rows_per_tile < 1:
            raise ValueError("max_rows_per_tile must be >= 1 when set")
        if self.g_s <= 0:
            raise ValueError("g_s must be positive")
        if not 0 < self.row_sum_headroom < 1:
            raise ValueError("row_sum_headroom must be in (0, 1)")
        if not 0 < self.coefficient_ceiling < 1:
            raise ValueError("coefficient_ceiling must be in (0, 1)")

    def base_coefficient(self, device: RRAMDevice) -> float:
        """Smallest coefficient guaranteed programmable.

        ``c >= g_min / g_s`` implies the solved conductance
        ``c * (g_s + S_j) >= g_min`` for any column sum ``S_j >= 0``.
        """
        return device.g_min / self.g_s


def solve_conductances(coefficients: np.ndarray, g_s: float, device: RRAMDevice) -> np.ndarray:
    """Invert Eq. 2: find conductances realizing target coefficients.

    Exact where feasible; cells whose solution falls outside the device
    window are clipped (the caller's scale choice keeps this rare).
    """
    c = _astype(coefficients)
    if np.any(c < 0):
        raise ValueError("target coefficients must be non-negative")
    col_sums = c.sum(axis=0)
    if np.any(col_sums >= 1.0):
        raise ValueError("column coefficient sums must be < 1 for Eq. 2 to be invertible")
    s = g_s * col_sums / (1.0 - col_sums)
    g = c * (g_s + s)[None, :]
    return device.clip_conductance(g)


MAPPING_CACHE_CAPACITY = 256
"""Bound on the weight->conductance solution cache (LRU eviction)."""

_cache_lock = threading.Lock()
_MAPPING_CACHE: "OrderedDict[tuple, Tuple[float, np.ndarray, np.ndarray]]" = OrderedDict()


def _cache_key(
    weights: np.ndarray, config: MappingConfig, device: RRAMDevice
) -> tuple:
    digest = hashlib.blake2b(weights.tobytes(), digest_size=16).digest()
    return (digest, weights.shape, str(weights.dtype), config, device)


def clear_mapping_cache() -> None:
    """Drop every cached mapping solution (tests, memory pressure)."""
    with _cache_lock:
        _MAPPING_CACHE.clear()
        obs_metrics.gauge("mapping_cache_entries").set(0)


def mapping_cache_size() -> int:
    """Number of cached (weights, config, device) mapping solutions."""
    with _cache_lock:
        return len(_MAPPING_CACHE)


def _cache_get(key: tuple) -> "Optional[Tuple[float, np.ndarray, np.ndarray]]":
    with _cache_lock:
        cached = _MAPPING_CACHE.get(key)
        if cached is not None:
            _MAPPING_CACHE.move_to_end(key)
    return cached


def _cache_put(key: tuple, value: Tuple[float, np.ndarray, np.ndarray]) -> None:
    with _cache_lock:
        _MAPPING_CACHE[key] = value
        while len(_MAPPING_CACHE) > MAPPING_CACHE_CAPACITY:
            _MAPPING_CACHE.popitem(last=False)
        obs_metrics.gauge("mapping_cache_entries").set(len(_MAPPING_CACHE))


def mapping_cache_stats() -> Dict[str, float]:
    """Live cache effectiveness view (dashboard / manifest helper).

    Hit/miss totals come from the process-wide metrics registry, so
    after a ``ProcessExecutor`` sweep they include the workers'
    lookups (shipped home with each task's metric diff).
    """
    snap = obs_metrics.snapshot()["counters"]
    hits = float(snap.get("mapping_cache_hits", 0.0))
    misses = float(snap.get("mapping_cache_misses", 0.0))
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "size": float(mapping_cache_size()),
        "hit_rate": hits / total if total else 0.0,
    }


def _choose_scale(weights: np.ndarray, config: MappingConfig, base: float) -> float:
    """Scale factor mapping weights onto feasible coefficients.

    The base coefficient added to every cell consumes part of the
    column-sum headroom, so the usable budget shrinks with the number
    of rows.
    """
    w_pos = np.maximum(weights, 0.0)
    w_neg = np.maximum(-weights, 0.0)
    max_cell = max(np.max(np.abs(weights)), 1e-12)
    max_col = max(np.max(w_pos.sum(axis=0)), np.max(w_neg.sum(axis=0)), 1e-12)
    budget = config.row_sum_headroom - base * weights.shape[0]
    if budget <= 0:
        raise ValueError(
            f"crossbar with {weights.shape[0]} rows exhausts the column-sum "
            f"headroom {config.row_sum_headroom} with base coefficient {base}; "
            "use a device with a larger on/off ratio or a larger g_s"
        )
    ceiling_budget = config.coefficient_ceiling - base
    if ceiling_budget <= 0:
        raise ValueError(
            f"base coefficient {base} consumes the whole coefficient ceiling "
            f"{config.coefficient_ceiling}; use a device with a larger on/off "
            "ratio, a larger g_s, or raise coefficient_ceiling"
        )
    return min(ceiling_budget / max_cell, budget / max_col)


class DifferentialCrossbar:
    """A positive/negative crossbar pair realizing a signed matrix.

    Parameters
    ----------
    weights:
        Target matrix of shape ``(in_dim, out_dim)``; the pair computes
        ``x @ weights`` up to the stored ``gain`` (``= 1/scale``) which
        the analog periphery restores.
    """

    def __init__(
        self,
        weights: np.ndarray,
        config: Optional[MappingConfig] = None,
        device: RRAMDevice = HFOX_DEVICE,
    ):
        weights = _astype(weights)
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
        self.config = config if config is not None else MappingConfig()
        self.device = device
        # MC trials, fault campaigns and sweep repeats re-deploy the
        # same trained weights over and over; the solved mapping is a
        # pure function of (weights, config, device), so it is cached.
        # Crossbar.__init__ re-discretizes (always producing fresh
        # arrays), so cache hits share no mutable state — fault
        # injection on one deployment cannot leak into another.
        key = _cache_key(weights, self.config, device)
        cached = _cache_get(key)
        if cached is not None:
            obs_metrics.counter("mapping_cache_hits").inc()
            self.scale, g_pos, g_neg = cached
        else:
            obs_metrics.counter("mapping_cache_misses").inc()
            base = self.config.base_coefficient(device)
            self.scale = _choose_scale(weights, self.config, base)
            c_pos = np.maximum(weights, 0.0) * self.scale + base
            c_neg = np.maximum(-weights, 0.0) * self.scale + base
            g_pos = solve_conductances(c_pos, self.config.g_s, device)
            g_neg = solve_conductances(c_neg, self.config.g_s, device)
            _cache_put(key, (self.scale, g_pos, g_neg))
        # Programmability assertion: the solved states must sit inside
        # the physical [g_min, g_max] window (clip_conductance should
        # guarantee it; a finding here means the solve or the cache
        # handed back something real hardware cannot program).
        sanitize_guards.check_range(
            "mapping", "g_pos", g_pos, device.g_min, device.g_max
        )
        sanitize_guards.check_range(
            "mapping", "g_neg", g_neg, device.g_min, device.g_max
        )
        self.positive = Crossbar(
            g_pos,
            self.config.g_s,
            device,
            nonlinearity=self.config.input_nonlinearity,
            wire_resistance=self.config.wire_resistance,
        )
        self.negative = Crossbar(
            g_neg,
            self.config.g_s,
            device,
            nonlinearity=self.config.input_nonlinearity,
            wire_resistance=self.config.wire_resistance,
        )

    @property
    def gain(self) -> float:
        """Periphery gain restoring the pre-mapping weight magnitude."""
        return 1.0 / self.scale

    @property
    def in_dim(self) -> int:
        return self.positive.rows

    @property
    def out_dim(self) -> int:
        return self.positive.cols

    @property
    def device_count(self) -> int:
        """Total RRAM cells used (the ``2 (I+O) H`` factor of Eq. 6)."""
        return self.positive.conductances.size + self.negative.conductances.size

    def apply(
        self,
        x: np.ndarray,
        noise: Optional[NonIdealFactors] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Compute ``x @ W`` (gain already restored) under optional noise.

        Signal fluctuation is applied once to the shared input voltages
        (both arrays see the same fluctuated signal, as in hardware);
        process variation is drawn independently per array.
        """
        x = np.atleast_2d(_astype(x))
        if noise is not None:
            if rng is None:
                rng = noise.rng()
            x = noise.perturb_signal(x, rng)
            pv_only = NonIdealFactors(sigma_pv=noise.sigma_pv, sigma_sf=0.0, seed=noise.seed)
            out = self.positive.apply(x, pv_only, rng) - self.negative.apply(x, pv_only, rng)
        else:
            out = self.positive.apply(x) - self.negative.apply(x)
        return out * self.gain

    def pv_shapes(self) -> "list":
        """Conductance-array shapes, in per-trial PV draw order."""
        return self.positive.pv_shapes() + self.negative.pv_shapes()

    def consume_pv_factors(self, chunks) -> "tuple":
        """Take this pair's PV factor stacks from an ordered iterator."""
        return (
            self.positive.consume_pv_factors(chunks),
            self.negative.consume_pv_factors(chunks),
        )

    def apply_trials(
        self,
        x: np.ndarray,
        noise: Optional[NonIdealFactors] = None,
        rngs: "Optional[list]" = None,
        pv_factors: "Optional[tuple]" = None,
    ) -> np.ndarray:
        """Batched Monte-Carlo ``x @ W`` over a ``(trials, batch, in)`` stack.

        Per trial the generator is consumed in the serial order
        (shared-input signal fluctuation, then positive-array PV, then
        negative-array PV), so the stack is bit-identical to looping
        :meth:`apply` with the same generators.  ``pv_factors`` is the
        optional precomputed ``(positive, negative)`` factor pair from
        :meth:`consume_pv_factors`.
        """
        x = _astype(x)
        if x.ndim != 3:
            raise ValueError(f"trial stack must be 3-D, got shape {x.shape}")
        if noise is not None:
            if rngs is None:
                raise ValueError("rngs (one per trial) are required when noise is given")
            if noise.sigma_sf > 0:
                x = x * lognormal_factor_stack(x.shape[1:], noise.sigma_sf, rngs)
            pv_pos, pv_neg = pv_factors if pv_factors is not None else (None, None)
            pv_only = NonIdealFactors(sigma_pv=noise.sigma_pv, sigma_sf=0.0, seed=noise.seed)
            out = self.positive.apply_trials(
                x, pv_only, rngs, pv_factors=pv_pos
            ) - self.negative.apply_trials(x, pv_only, rngs, pv_factors=pv_neg)
        else:
            out = self.positive.apply_trials(x) - self.negative.apply_trials(x)
        return out * self.gain


class ExactDifferentialCrossbar:
    """An idealized mapping stage: realizes ``x @ W`` exactly.

    Drop-in stand-in for :class:`DifferentialCrossbar` used by the
    error-budget harness (:mod:`repro.analysis.errorbudget`) to measure
    what the *real* mapping chain costs — scale choice, base
    coefficient, Eq. 2 inversion, conductance discretization and wire
    attenuation all vanish, but the differential split survives so
    process variation still acts on a positive and a negative array.

    Paired-seed counterfactuals require bit-identical random streams,
    so this class mirrors the pair's noise interface exactly: the same
    ``pv_shapes`` (positive then negative, each ``weights.shape``) and
    the same per-trial draw order (shared signal fluctuation first,
    then positive-array PV, then negative-array PV).  PV factors
    multiply the split weights directly — the relative-lognormal
    perturbation of :class:`repro.device.variation.NonIdealFactors`
    applied to an ideal realization.
    """

    def __init__(
        self,
        weights: np.ndarray,
        config: Optional[MappingConfig] = None,
        device: RRAMDevice = HFOX_DEVICE,
    ):
        # Copy: deployment snapshots the weights, like programming does.
        weights = _astype(weights).copy()
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
        self.config = config if config is not None else MappingConfig()
        self.device = device
        self.weights = weights
        self.w_pos = np.maximum(weights, 0.0)
        self.w_neg = np.maximum(-weights, 0.0)

    @property
    def gain(self) -> float:
        """No scale was applied, so no periphery gain to restore."""
        return 1.0

    @property
    def in_dim(self) -> int:
        return self.weights.shape[0]

    @property
    def out_dim(self) -> int:
        return self.weights.shape[1]

    @property
    def device_count(self) -> int:
        """Cells the real pair would use (area accounting stays honest)."""
        return 2 * self.weights.size

    def apply(
        self,
        x: np.ndarray,
        noise: Optional[NonIdealFactors] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        x = np.atleast_2d(_astype(x))
        if x.shape[1] != self.in_dim:
            raise ValueError(
                f"input has {x.shape[1]} ports, matrix has {self.in_dim} rows"
            )
        if noise is not None:
            if rng is None:
                rng = noise.rng()
            x = noise.perturb_signal(x, rng)
            if noise.sigma_pv > 0:
                f_pos = lognormal_factors(self.weights.shape, noise.sigma_pv, rng)
                f_neg = lognormal_factors(self.weights.shape, noise.sigma_pv, rng)
                return x @ (self.w_pos * f_pos - self.w_neg * f_neg)
        return x @ self.weights

    def pv_shapes(self) -> "list":
        """Conductance-array shapes, in per-trial PV draw order."""
        return [self.weights.shape, self.weights.shape]

    def consume_pv_factors(self, chunks) -> "tuple":
        """Take the pair's PV factor stacks from an ordered iterator."""
        return (next(chunks), next(chunks))

    def apply_trials(
        self,
        x: np.ndarray,
        noise: Optional[NonIdealFactors] = None,
        rngs: "Optional[list]" = None,
        pv_factors: "Optional[tuple]" = None,
    ) -> np.ndarray:
        x = _astype(x)
        if x.ndim != 3:
            raise ValueError(f"trial stack must be 3-D, got shape {x.shape}")
        if noise is not None:
            if rngs is None:
                raise ValueError("rngs (one per trial) are required when noise is given")
            if noise.sigma_sf > 0:
                x = x * lognormal_factor_stack(x.shape[1:], noise.sigma_sf, rngs)
            if noise.sigma_pv > 0:
                if pv_factors is not None:
                    f_pos, f_neg = pv_factors
                else:
                    # Interleave per trial to match the serial apply()
                    # draw order (pos then neg from one generator).
                    f_pos = np.empty((len(rngs),) + self.weights.shape, dtype=x.dtype)
                    f_neg = np.empty_like(f_pos)
                    for t, rng in enumerate(rngs):
                        f_pos[t] = lognormal_factors(
                            self.weights.shape, noise.sigma_pv, rng
                        )
                        f_neg[t] = lognormal_factors(
                            self.weights.shape, noise.sigma_pv, rng
                        )
                return x @ (self.w_pos[None] * f_pos - self.w_neg[None] * f_neg)
        return x @ self.weights


def map_matrix(
    weights: np.ndarray,
    config: Optional[MappingConfig] = None,
    device: RRAMDevice = HFOX_DEVICE,
) -> DifferentialCrossbar:
    """Convenience constructor for :class:`DifferentialCrossbar`."""
    return DifferentialCrossbar(weights, config=config, device=device)
