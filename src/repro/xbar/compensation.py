"""IR-drop compensation: reprogram conductances against wire loss.

The paper defers "reducing the IR drop for a larger RCS under smaller
technology node" to future work and cites compensation techniques
(Ref. [3], Liu et al. ICCAD'14).  This module implements the
behavioural core of such a technique:

1. characterize the wire-resistive crossbar by driving the input
   basis through the MNA solver, obtaining the *effective* coefficient
   matrix ``C_eff`` (what the array actually computes);
2. multiplicatively re-target each cell,
   ``g <- g * (C_target / C_eff)``, clipped to the device window;
3. iterate — the network is linear in the drive but the denominator
   coupling of Eq. 2 and the shared wire drops make the update
   approximate, so a few rounds are needed.

The compensation cannot exceed the device window: cells pushed to
``g_max`` saturate, which is why compensation works at moderate IR
drop and fails for very large arrays at very small nodes (the paper's
reason to stay at 90nm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.device.rram import HFOX_DEVICE, RRAMDevice
from repro.xbar.crossbar import coefficients_from_conductance
from repro.xbar.mna import MNACrossbar

__all__ = ["CompensationReport", "effective_coefficients", "compensate_ir_drop"]


def effective_coefficients(
    conductances: np.ndarray, g_s: float, wire_resistance: float
) -> np.ndarray:
    """The coefficient matrix the wire-resistive array actually realizes.

    Columns of the identity drive the MNA solver; the stacked
    responses are the effective linear map (the network is linear).
    """
    # programmed conductances are device-physics quantities and feed the
    # float64-only MNA solve; they do not follow REPRO_DTYPE
    g = np.asarray(conductances, dtype=float)  # repro-lint: disable=RPR007
    mna = MNACrossbar(g, g_s=g_s, wire_resistance=wire_resistance)
    basis = np.eye(g.shape[0])
    return mna.solve(basis)


@dataclass(frozen=True)
class CompensationReport:
    """Outcome of a compensation run."""

    conductances: np.ndarray
    error_before: float
    error_after: float
    iterations: int
    saturated_fraction: float
    """Fraction of cells pinned at the device window's edges."""

    @property
    def improvement(self) -> float:
        """Fraction of the initial coefficient error removed."""
        if self.error_before <= 1e-15:
            return 0.0
        return 1.0 - self.error_after / self.error_before


def compensate_ir_drop(
    conductances: np.ndarray,
    g_s: float,
    wire_resistance: float,
    target: Optional[np.ndarray] = None,
    iterations: int = 4,
    device: RRAMDevice = HFOX_DEVICE,
) -> CompensationReport:
    """Iteratively reprogram an array to counteract IR drop.

    Parameters
    ----------
    conductances:
        The ideally-mapped conductance matrix.
    g_s, wire_resistance:
        The array's electrical context.
    target:
        Coefficient matrix the array *should* realize; defaults to the
        ideal (zero-wire-resistance) coefficients of the input state.
    iterations:
        Re-targeting rounds.
    device:
        Programmable window for clipping.
    """
    # physical conductance domain stays float64 (see module docstring)
    g = device.clip_conductance(np.asarray(conductances, dtype=float))  # repro-lint: disable=RPR007
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if target is None:
        target = coefficients_from_conductance(g, g_s)
    else:
        target = np.asarray(target, dtype=float)  # repro-lint: disable=RPR007
        if target.shape != g.shape:
            raise ValueError(f"target shape {target.shape} != array shape {g.shape}")

    def coefficient_error(current: np.ndarray) -> float:
        effective = effective_coefficients(current, g_s, wire_resistance)
        scale = max(float(np.max(np.abs(target))), 1e-15)
        return float(np.max(np.abs(effective - target)) / scale)

    error_before = coefficient_error(g)
    floor = 1e-4 * float(np.max(np.abs(target)))
    best_g = g
    best_error = error_before
    for _ in range(iterations):
        effective = effective_coefficients(g, g_s, wire_resistance)
        ratio = np.where(
            np.abs(effective) > floor, target / np.maximum(effective, floor), 1.0
        )
        # Damp extreme corrections; saturation handles the rest.
        ratio = np.clip(ratio, 0.25, 4.0)
        g = device.clip_conductance(g * ratio)
        error = coefficient_error(g)
        if error < best_error:
            best_g, best_error = g, error
    # Saturation can make an iterate overshoot; keep the best state
    # seen (a write-verify controller would do the same).
    g = best_g
    error_after = best_error
    at_edges = (g <= device.g_min * (1 + 1e-9)) | (g >= device.g_max * (1 - 1e-9))
    return CompensationReport(
        conductances=g,
        error_before=error_before,
        error_after=error_after,
        iterations=iterations,
        saturated_fraction=float(np.mean(at_edges)),
    )
