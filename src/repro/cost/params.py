"""Area and power parameter tables for the RCS cost model.

The paper estimates area/power from four per-cell coefficients
(Sec. 4.1): a DAC cell, an ADC cell, an analog peripheral unit (the
op-amp sigmoid neuron + column sense circuit), and an RRAM device.
The sources are Refs. [7, 12, 13, 14] — an ISCA'14 analog NPU, a 3D
RRAM array study, a 20nm DAC and an 8-bit flash ADC.

Since the paper never tabulates the raw coefficients, we provide:

* ``LITERATURE_AREA`` / ``LITERATURE_POWER`` — defaults assembled from
  the cited device classes, tuned to reproduce the *shape* of Fig. 2
  (AD/DA > 85% of a 2x8x2 system, RRAM around one percent);
* :mod:`repro.cost.calibration` — a non-negative least-squares fit of
  the same four coefficients against the paper's six reported
  area/power savings (Table 1), which reproduces the published
  trade-off numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostParams", "LITERATURE_AREA", "LITERATURE_POWER"]


@dataclass(frozen=True)
class CostParams:
    """Per-cell cost coefficients for one metric (area or power).

    Units are arbitrary but consistent (we use um^2 for area, uW for
    power in the literature defaults); only ratios enter Eq. 9.

    Parameters
    ----------
    dac:
        One B-bit DAC channel (``A_DA`` / ``P_DA``).
    adc:
        One B-bit ADC channel (``A_AD`` / ``P_AD``).
    periphery:
        One analog peripheral unit per hidden node (``A_P`` / ``P_P``).
    rram:
        One RRAM cross-point device (``A_R`` / ``P_R``).
    metric:
        Human-readable label ('area' or 'power').
    """

    dac: float
    adc: float
    periphery: float
    rram: float
    metric: str = "area"

    def __post_init__(self) -> None:
        for name in ("dac", "adc", "periphery", "rram"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} coefficient must be >= 0")
        if self.rram == 0:
            raise ValueError("rram coefficient must be positive (it sets the scale)")


LITERATURE_AREA = CostParams(dac=800.0, adc=2500.0, periphery=60.0, rram=0.5, metric="area")
"""Default area coefficients in um^2.

DAC ~0.0008 mm^2 (20nm current-steering DAC scaled to 90nm [13]),
flash ADC ~0.0025 mm^2 [14], op-amp sigmoid unit ~60 um^2 [7], RRAM
cross-point ~0.5 um^2 including wire pitch share [12].
"""

LITERATURE_POWER = CostParams(dac=2000.0, adc=3000.0, periphery=200.0, rram=0.5, metric="power")
"""Default power coefficients in uW.

DAC ~2 mW, flash ADC ~3 mW at converter rates [13, 14], peripheral
op-amp ~0.2 mW [7], RRAM device ~0.5 uW average compute power [12].
"""
