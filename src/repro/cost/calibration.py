"""Calibrate cost coefficients against the paper's reported savings.

The paper reports per-benchmark area/power savings (Table 1) but not
the raw coefficients behind Eq. 6/7.  Given the six traditional and
pruned-MEI topologies from Table 1 plus the published saving
percentages, the coefficients are over-determined up to scale: each
benchmark contributes one linear relation

    C_MEI(params) = (1 - saved) * C_org(params).

Fixing the RRAM coefficient (the scale) leaves a 3-unknown
non-negative least-squares problem, solved with ``scipy.optimize.nnls``.
The calibrated tables let the DSE reproduce the paper's trade-off
numbers; the literature defaults in :mod:`repro.cost.params` remain
available for absolute-unit estimates.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy.optimize import nnls

from repro.cost.area import MEITopology, Topology, cost_mei, cost_traditional
from repro.cost.params import CostParams

__all__ = ["fit_cost_params", "calibration_residuals"]


def _design_row(
    traditional: Topology, mei: MEITopology, saved_fraction: float, rram_unit: float
) -> Tuple[np.ndarray, float]:
    """One benchmark's linear relation in (dac, adc, periphery).

    C_MEI - (1-s) C_org = 0, i.e.
    dac*(-(1-s)I) + adc*(-(1-s)O) + periph*(H' - (1-s)H)
        = rram_unit * ((1-s)*R_org - R_mei).
    """
    keep = 1.0 - saved_fraction
    coeffs = np.array(
        [
            -keep * traditional.inputs,
            -keep * traditional.outputs,
            mei.hidden - keep * traditional.hidden,
        ]
    )
    rhs = rram_unit * (keep * traditional.rram_devices - mei.rram_devices)
    return coeffs, rhs


def fit_cost_params(
    pairs: Sequence[Tuple[Topology, MEITopology]],
    saved_fractions: Sequence[float],
    rram_unit: float = 1.0,
    metric: str = "area",
) -> CostParams:
    """Fit (dac, adc, periphery) >= 0 to reported savings by NNLS.

    Parameters
    ----------
    pairs:
        Per-benchmark (traditional, MEI) topology pairs from Table 1.
    saved_fractions:
        Reported savings as fractions in (0, 1), same order as pairs.
    rram_unit:
        The fixed RRAM coefficient setting the scale.
    metric:
        Label stored on the resulting :class:`CostParams`.

    NNLS may legitimately produce a sign flip on an individual row
    (the paper's six constraints are not exactly consistent); the fit
    minimizes the total squared residual.
    """
    if len(pairs) != len(saved_fractions):
        raise ValueError("pairs and saved_fractions must have equal length")
    if len(pairs) < 3:
        raise ValueError("need at least 3 benchmarks to constrain 3 coefficients")
    for s in saved_fractions:
        if not 0.0 < s < 1.0:
            raise ValueError(f"saved fractions must be in (0, 1), got {s}")
    if rram_unit <= 0:
        raise ValueError("rram_unit must be positive")

    design = []
    rhs = []
    for (traditional, mei), saved in zip(pairs, saved_fractions):
        row, target = _design_row(traditional, mei, saved, rram_unit)
        # Normalize each benchmark's relation by its traditional RRAM
        # term so large topologies (JPEG) don't dominate the fit.
        norm = max(traditional.rram_devices * rram_unit, 1e-12)
        design.append(row / norm)
        rhs.append(target / norm)
    solution, _residual = nnls(np.asarray(design), np.asarray(rhs))
    dac, adc, periphery = (float(v) for v in solution)
    return CostParams(dac=dac, adc=adc, periphery=periphery, rram=rram_unit, metric=metric)


def calibration_residuals(
    pairs: Sequence[Tuple[Topology, MEITopology]],
    saved_fractions: Sequence[float],
    params: CostParams,
) -> np.ndarray:
    """Per-benchmark gap between modeled and reported saved fractions."""
    modeled = np.array(
        [
            1.0 - cost_mei(mei, params) / cost_traditional(traditional, params)
            for traditional, mei in pairs
        ]
    )
    return modeled - np.asarray(saved_fractions, dtype=float)
