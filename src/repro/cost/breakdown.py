"""Component-level cost breakdowns (Fig. 2 of the paper).

Fig. 2 shows the normalized power and area of a 2x8x2 RCS with 8-bit
AD/DA split into DAC / ADC / analog periphery / RRAM, demonstrating
that the converters take >85% of both budgets while RRAM devices are
around one percent.  :func:`breakdown` regenerates that decomposition
for any topology and coefficient table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cost.area import MEITopology, Topology
from repro.cost.params import CostParams

__all__ = ["Breakdown", "breakdown", "breakdown_mei"]


@dataclass(frozen=True)
class Breakdown:
    """Per-component absolute and normalized costs for one metric."""

    metric: str
    components: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.components.values())

    @property
    def fractions(self) -> Dict[str, float]:
        """Components normalized to the system total."""
        total = self.total
        return {name: value / total for name, value in self.components.items()}

    @property
    def interface_fraction(self) -> float:
        """Share of the AD/DA interface (the paper's headline >85%).

        Zero for a MEI breakdown — there are no converters to count.
        """
        f = self.fractions
        return f.get("dac", 0.0) + f.get("adc", 0.0)

    def rows(self):
        """(name, absolute, fraction) rows for table printing."""
        fractions = self.fractions
        return [
            (name, self.components[name], fractions[name])
            for name in self.components
        ]


def breakdown(topology: Topology, params: CostParams) -> Breakdown:
    """Decompose Eq. 6 into its four components."""
    return Breakdown(
        metric=params.metric,
        components={
            "dac": topology.inputs * params.dac,
            "adc": topology.outputs * params.adc,
            "periphery": topology.hidden * params.periphery,
            "rram": topology.rram_devices * params.rram,
        },
    )


def breakdown_mei(topology: MEITopology, params: CostParams) -> Breakdown:
    """Decompose Eq. 7 (MEI has only periphery and RRAM components)."""
    return Breakdown(
        metric=params.metric,
        components={
            "periphery": topology.hidden * params.periphery,
            "rram": topology.rram_devices * params.rram,
        },
    )
