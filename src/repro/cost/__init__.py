"""Area/power cost models for RCS architectures (Sec. 4.1)."""

from repro.cost.area import MEITopology, Topology, cost_mei, cost_traditional
from repro.cost.breakdown import Breakdown, breakdown, breakdown_mei
from repro.cost.calibration import calibration_residuals, fit_cost_params
from repro.cost.params import LITERATURE_AREA, LITERATURE_POWER, CostParams
from repro.cost.power import SavingsReport, cost_ratio, max_saab_learners, savings
from repro.cost.timing import (
    TimingParams,
    energy_per_inference,
    latency_mei,
    latency_traditional,
    speedup,
)

__all__ = [
    "CostParams",
    "LITERATURE_AREA",
    "LITERATURE_POWER",
    "Topology",
    "MEITopology",
    "cost_traditional",
    "cost_mei",
    "Breakdown",
    "breakdown",
    "breakdown_mei",
    "SavingsReport",
    "savings",
    "cost_ratio",
    "max_saab_learners",
    "fit_cost_params",
    "calibration_residuals",
    "TimingParams",
    "latency_traditional",
    "latency_mei",
    "speedup",
    "energy_per_inference",
]
