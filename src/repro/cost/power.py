"""Power estimation and saving/ratio helpers.

Sec. 4.1: "Eq. (6) & (7) can also be used to evaluate the power
consumption by replacing the area parameters with parameters for power
estimation" — so the structural code lives in :mod:`repro.cost.area`
and this module adds the comparison helpers used by Table 1 and Eq. 9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.area import MEITopology, Topology, cost_mei, cost_traditional
from repro.cost.params import CostParams

__all__ = ["SavingsReport", "savings", "cost_ratio", "max_saab_learners"]


@dataclass(frozen=True)
class SavingsReport:
    """Cost comparison between a traditional RCS and its MEI version."""

    metric: str
    traditional: float
    mei: float

    @property
    def saved_fraction(self) -> float:
        """Fraction of the traditional cost eliminated by MEI."""
        return 1.0 - self.mei / self.traditional

    @property
    def ratio(self) -> float:
        """``C_org / C_MEI`` — one of the two terms in Eq. 9."""
        return self.traditional / self.mei


def savings(
    traditional: Topology,
    mei: MEITopology,
    params: CostParams,
) -> SavingsReport:
    """Compare Eq. 6 vs Eq. 7 under one coefficient table."""
    return SavingsReport(
        metric=params.metric,
        traditional=cost_traditional(traditional, params),
        mei=cost_mei(mei, params),
    )


def cost_ratio(traditional: Topology, mei: MEITopology, params: CostParams) -> float:
    """``C_org / C_MEI`` for one metric."""
    return savings(traditional, mei, params).ratio


def max_saab_learners(
    traditional: Topology,
    mei: MEITopology,
    area_params: CostParams,
    power_params: CostParams,
) -> int:
    """Eq. 9: maximum SAAB ensemble size within the original budget.

    ``K_max = min(A_org / A_MEI, P_org / P_MEI)`` floored to an
    integer; at least 1 (a single MEI RCS always fits when MEI saves
    cost, and the DSE flow needs a sane lower bound otherwise).
    """
    k = min(
        cost_ratio(traditional, mei, area_params),
        cost_ratio(traditional, mei, power_params),
    )
    return max(1, int(k))
