"""Cost estimation for RCS architectures (Eq. 6 and Eq. 7).

Both area and power use the same structural formulas with different
coefficient tables, so this module works on :class:`CostParams` and is
shared by :mod:`repro.cost.power` (thin aliases for readability).

Topology conventions
--------------------
* A traditional RCS is ``I x H x O`` with B-bit AD/DA on every analog
  input and output (Eq. 6):

      C_org = I*C_DA + O*C_AD + H*C_P + 2*(I+O)*H*C_R

* A MEI RCS exposes ``P_in`` input ports and ``P_out`` output ports
  (each analog value contributes up to B ports; pruning may remove
  LSB ports).  Eq. 7 with the bit factor folded into the port counts:

      C_MEI = H'*C_P + 2*(P_in+P_out)*H'*C_R

  The paper's Eq. 7 writes ``B * 2(I'+O')H'`` with ``I', O'`` the
  analog dimensions; for an unpruned MEI, ``P_in = B*I'`` and
  ``P_out = B*O'`` make the two forms identical, and the port-count
  form is the one the pruning pass needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.params import CostParams

__all__ = ["Topology", "MEITopology", "cost_traditional", "cost_mei"]


@dataclass(frozen=True)
class Topology:
    """A traditional ``I x H x O`` RCS with B-bit AD/DA interfaces."""

    inputs: int
    hidden: int
    outputs: int
    bits: int = 8

    def __post_init__(self) -> None:
        if min(self.inputs, self.hidden, self.outputs) < 1:
            raise ValueError(f"topology dims must be >= 1: {self}")
        if not 1 <= self.bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {self.bits}")

    @property
    def rram_devices(self) -> int:
        """RRAM cell count ``2 (I+O) H`` (differential pairs, Eq. 6)."""
        return 2 * (self.inputs + self.outputs) * self.hidden

    def __str__(self) -> str:
        return f"{self.inputs}x{self.hidden}x{self.outputs}"


@dataclass(frozen=True)
class MEITopology:
    """A MEI RCS described by exposed port counts.

    Parameters
    ----------
    in_ports, out_ports:
        Exposed binary ports after any pruning.
    hidden:
        Hidden layer size ``H'``.
    in_groups, out_groups:
        Number of analog values each side encodes (for the Table 1
        ``(D . B)`` notation).
    """

    in_ports: int
    hidden: int
    out_ports: int
    in_groups: int = 1
    out_groups: int = 1

    def __post_init__(self) -> None:
        if min(self.in_ports, self.hidden, self.out_ports) < 1:
            raise ValueError(f"topology dims must be >= 1: {self}")
        if self.in_groups < 1 or self.out_groups < 1:
            raise ValueError("group counts must be >= 1")
        if self.in_ports % self.in_groups or self.out_ports % self.out_groups:
            raise ValueError("port counts must divide evenly into groups")

    @classmethod
    def from_analog(cls, topology: Topology) -> "MEITopology":
        """Unpruned MEI equivalent of a traditional topology."""
        return cls(
            in_ports=topology.inputs * topology.bits,
            hidden=topology.hidden,
            out_ports=topology.outputs * topology.bits,
            in_groups=topology.inputs,
            out_groups=topology.outputs,
        )

    @property
    def in_bits(self) -> int:
        """Bits kept per input group."""
        return self.in_ports // self.in_groups

    @property
    def out_bits(self) -> int:
        """Bits kept per output group."""
        return self.out_ports // self.out_groups

    @property
    def rram_devices(self) -> int:
        """RRAM cell count ``2 (P_in + P_out) H'`` (Eq. 7)."""
        return 2 * (self.in_ports + self.out_ports) * self.hidden

    def __str__(self) -> str:
        return (
            f"({self.in_groups}.{self.in_bits})x{self.hidden}"
            f"x({self.out_groups}.{self.out_bits})"
        )


def cost_traditional(topology: Topology, params: CostParams) -> float:
    """Eq. 6: cost of an ``I x H x O`` RCS with AD/DA interfaces."""
    return (
        topology.inputs * params.dac
        + topology.outputs * params.adc
        + topology.hidden * params.periphery
        + topology.rram_devices * params.rram
    )


def cost_mei(topology: MEITopology, params: CostParams) -> float:
    """Eq. 7: cost of a MEI RCS (no AD/DA; ports are crossbar rows)."""
    return topology.hidden * params.periphery + topology.rram_devices * params.rram
