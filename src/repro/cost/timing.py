"""Latency model for RCS inference: conversion vs. direct bit drive.

The paper's Fig. 2 motivation is area/power, but the same converter
bottleneck costs *time*: a traditional RCS serializes B-bit DA and AD
conversions (often sharing converters across ports), while MEI drives
all bit ports in parallel and reads comparators in one decision.  This
module estimates per-inference latency for both architectures from
device-class numbers in the paper's references ([13] 960 MS/s DAC,
[14] 1.5 GS/s flash ADC) and the crossbar's RC settling.

This is an *extension* — the paper does not report latency — kept in
the cost package because it reuses the same topology descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.area import MEITopology, Topology

__all__ = ["TimingParams", "latency_traditional", "latency_mei", "speedup", "energy_per_inference"]


@dataclass(frozen=True)
class TimingParams:
    """Per-stage latencies in nanoseconds.

    Parameters
    ----------
    t_dac:
        One DAC conversion (~1 ns at 960 MS/s [13]).
    t_adc:
        One ADC conversion (~0.67 ns at 1.5 GS/s flash [14]).
    t_settle:
        Crossbar + sigmoid periphery settling per layer.
    t_comparator:
        1-bit comparator decision (MEI's output stage).
    dacs_per_port, adcs_per_port:
        Converter sharing: 1.0 = a private converter per port (fully
        parallel), 1/N = one converter time-multiplexed over N ports
        (conversions serialize).
    """

    t_dac: float = 1.0
    t_adc: float = 0.7
    t_settle: float = 5.0
    t_comparator: float = 0.2
    dacs_per_port: float = 1.0
    adcs_per_port: float = 1.0

    def __post_init__(self) -> None:
        for name in ("t_dac", "t_adc", "t_settle", "t_comparator"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not 0 < self.dacs_per_port <= 1 or not 0 < self.adcs_per_port <= 1:
            raise ValueError("converter sharing ratios must be in (0, 1]")


def latency_traditional(
    topology: Topology, params: TimingParams, layers: int = 2
) -> float:
    """Per-inference latency of an ``I x H x O`` RCS with AD/DA.

    Input conversions across ``I`` ports (serialized by sharing), the
    analog layers settling, then output conversions across ``O`` ports.
    """
    if layers < 1:
        raise ValueError("layers must be >= 1")
    # With r converters per port the design instantiates
    # max(1, round(r * ports)) converters; each runs its share of the
    # conversions back to back.  Private converters (r = 1) convert
    # every port in parallel.
    da_time = params.t_dac * _serial_conversions(topology.inputs, params.dacs_per_port)
    ad_time = params.t_adc * _serial_conversions(topology.outputs, params.adcs_per_port)
    return da_time + layers * params.t_settle + ad_time


def _serial_conversions(ports: int, converters_per_port: float) -> int:
    """Back-to-back conversions each converter performs for one vector."""
    import math

    converters = max(1, round(converters_per_port * ports))
    return math.ceil(ports / converters)


def latency_mei(topology: MEITopology, params: TimingParams, layers: int = 2) -> float:
    """Per-inference latency of a MEI RCS.

    All bit ports are driven in parallel (digital levels need no
    conversion), the layers settle, and all comparators decide at once.
    """
    if layers < 1:
        raise ValueError("layers must be >= 1")
    del topology  # fully parallel: latency is port-count independent
    return layers * params.t_settle + params.t_comparator


def speedup(
    traditional: Topology,
    mei: MEITopology,
    params: TimingParams,
    layers: int = 2,
) -> float:
    """Latency ratio ``t_org / t_MEI`` (>1 means MEI is faster)."""
    return latency_traditional(traditional, params, layers) / latency_mei(
        mei, params, layers
    )


def energy_per_inference(power_uw: float, latency_ns: float) -> float:
    """Energy of one inference in femtojoules (power x latency).

    Combine a cost-model power (Eq. 6/7 with power coefficients in uW)
    with a latency from this module: ``1 uW * 1 ns = 1 fJ``.
    """
    if power_uw < 0 or latency_ns < 0:
        raise ValueError("power and latency must be non-negative")
    return power_uw * latency_ns
