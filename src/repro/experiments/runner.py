"""Compatibility shim: the experiment scaffolding moved to
:mod:`repro.core.runner` so lower layers (``repro.robustness``, the
benchmark suite) can use it without importing ``repro.experiments`` —
the layering contract (repro-lint RPR006) forbids that upward edge.

Import from :mod:`repro.core.runner` in new code.
"""

from repro.core.runner import (
    FULL_SCALE,
    QUICK_SCALE,
    ExperimentScale,
    default_scale,
    format_table,
    repeat_with_seeds,
    train_config,
    train_samples_for,
)

__all__ = [
    "ExperimentScale",
    "QUICK_SCALE",
    "FULL_SCALE",
    "default_scale",
    "train_config",
    "train_samples_for",
    "repeat_with_seeds",
    "format_table",
]
