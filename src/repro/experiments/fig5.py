"""Fig. 5: system error under process variation and signal fluctuation.

The paper sweeps lognormal noise levels for the two non-ideal factors
(Sec. 5.3) and compares four systems on three representative
benchmarks (Inversek2j, JPEG, Sobel — "enough to reflect all the
simulation results"):

* the traditional AD/DA RCS;
* a single MEI;
* MEI + SAAB (ensemble of K learners, noise-aware boosting);
* a single MEI with a K-times wider hidden layer.

Shape targets: error grows with sigma everywhere; SAAB and the wider
hidden layer both flatten the curve (which one wins is benchmark-
dependent — the reason Algorithm 2 keeps both, Lines 18-19); MEI is
markedly more robust to *signal fluctuation* than the AD/DA
architecture because its inputs are discrete 0/1 levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.mei import MEI, MEIConfig
from repro.core.rcs import TraditionalRCS
from repro.core.saab import SAAB, SAABConfig
from repro.device.variation import NonIdealFactors
from repro.experiments.runner import (
    ExperimentScale,
    default_scale,
    train_config,
    train_samples_for,
)
from repro.metrics.robustness import evaluate_under_noise
from repro.obs.log import get_logger
from repro.obs.trace import span
from repro.workloads.registry import PAPER_TABLE1, make_benchmark

__all__ = ["Fig5Curve", "Fig5Result", "run_fig5"]

_log = get_logger("experiments.fig5")

DEFAULT_BENCHMARKS = ("inversek2j", "jpeg", "sobel")
DEFAULT_SIGMAS = (0.0, 0.05, 0.1, 0.2)


@dataclass
class Fig5Curve:
    """Mean error vs sigma for one (benchmark, system, noise type)."""

    benchmark: str
    system: str
    noise_type: str
    sigmas: List[float] = field(default_factory=list)
    errors: List[float] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe structured curve (archived by the bench harness)."""
        return {
            "name": f"{self.benchmark}.{self.system}.{self.noise_type}",
            "benchmark": self.benchmark,
            "system": self.system,
            "noise_type": self.noise_type,
            "sigmas": list(self.sigmas),
            "errors": list(self.errors),
        }


@dataclass
class Fig5Result:
    curves: List[Fig5Curve] = field(default_factory=list)

    def row_dicts(self) -> List[Dict[str, object]]:
        """Structured curves for JSON archiving."""
        return [c.as_dict() for c in self.curves]

    def metrics(self) -> Dict[str, float]:
        """Flat ``fig5.<bench>.<system>.<noise>.s<sigma>`` error map."""
        out: Dict[str, float] = {}
        for c in self.curves:
            for sigma, error in zip(c.sigmas, c.errors):
                key = f"fig5.{c.benchmark}.{c.system}.{c.noise_type}.s{sigma:g}"
                out[key] = float(error)
        return out

    def curve(self, benchmark: str, system: str, noise_type: str) -> Fig5Curve:
        for c in self.curves:
            if (c.benchmark, c.system, c.noise_type) == (benchmark, system, noise_type):
                return c
        raise KeyError(f"no curve for ({benchmark}, {system}, {noise_type})")

    def render(self) -> str:
        lines = ["Fig. 5 — error under noise sweeps"]
        for c in self.curves:
            pts = "  ".join(f"s={s:.2f}:{e:.4f}" for s, e in zip(c.sigmas, c.errors))
            lines.append(f"{c.benchmark:<11} {c.system:<10} {c.noise_type:<3} {pts}")
        return "\n".join(lines)


def _noise(noise_type: str, sigma: float, seed: int) -> NonIdealFactors:
    if noise_type == "pv":
        return NonIdealFactors(sigma_pv=sigma, seed=seed)
    if noise_type == "sf":
        return NonIdealFactors(sigma_sf=sigma, seed=seed)
    raise ValueError(f"unknown noise type {noise_type!r}")


def _fig5_benchmark(args) -> List[Fig5Curve]:
    """All of one benchmark's curves (picklable sweep task).

    Each system's noise sweep goes through the batched
    ``predict_trials`` path: all Monte-Carlo trials of a (system,
    sigma) point run as one stacked crossbar pass, bit-identical to
    the serial per-trial loop.
    """
    name, sigmas, scale, seed, k = args
    with span(f"benchmark:{name}", benchmark=name, seed=seed):
        bench = make_benchmark(name)
        paper = PAPER_TABLE1[name]
        data = bench.dataset(
            n_train=train_samples_for(name, scale), n_test=scale.n_test, seed=seed
        )
        cfg = train_config(scale, seed)
        topology = bench.spec.topology
        hidden = paper.pruned_mei.hidden

        mei_config = MEIConfig(topology.inputs, topology.outputs, hidden, topology.bits)
        wide_config = MEIConfig(
            topology.inputs, topology.outputs, hidden * k, topology.bits
        )

        with span("train-systems", k=k):
            systems = {
                "adda": TraditionalRCS(topology, seed=seed).train(
                    data.x_train, data.y_train, cfg
                ),
                "mei": MEI(mei_config, seed=seed).train(data.x_train, data.y_train, cfg),
                "saab": SAAB(
                    lambda i: MEI(mei_config, seed=seed + 1 + i),
                    SAABConfig(
                        n_learners=k,
                        compare_bits=5,
                        noise=NonIdealFactors(sigma_pv=0.05, sigma_sf=0.05, seed=seed),
                        seed=seed,
                    ),
                ).train(data.x_train, data.y_train, cfg),
                "wide": MEI(wide_config, seed=seed).train(data.x_train, data.y_train, cfg),
            }

        metric = bench.error_normalized
        curves: List[Fig5Curve] = []
        for system_name, system in systems.items():
            for noise_type in ("pv", "sf"):
                with span(f"sweep:{system_name}-{noise_type}", system=system_name,
                          noise_type=noise_type):
                    curve = Fig5Curve(
                        benchmark=name, system=system_name, noise_type=noise_type
                    )
                    for sigma in sigmas:
                        noise = _noise(noise_type, float(sigma), seed + 99)
                        evaluation = evaluate_under_noise(
                            system,
                            data.x_test,
                            data.y_test,
                            metric,
                            noise,
                            trials=scale.noise_trials,
                        )
                        curve.sigmas.append(float(sigma))
                        curve.errors.append(evaluation.mean)
                    curves.append(curve)
        _log.debug(
            "fig5 benchmark done",
            extra={"fields": {"benchmark": name, "curves": len(curves)}},
        )
        return curves


def run_fig5(
    names: Sequence[str] = DEFAULT_BENCHMARKS,
    sigmas: Sequence[float] = DEFAULT_SIGMAS,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    k: int = 3,
    workers: Optional[int] = None,
) -> Fig5Result:
    """Regenerate the Fig. 5 noise sweeps.

    ``k`` is the SAAB ensemble size and the hidden-layer multiplier of
    the wider-hidden contender.

    The benchmark rows are independent; pass ``workers`` (or set
    ``REPRO_WORKERS``) to train/evaluate them concurrently with
    identical results.
    """
    from repro.parallel import get_executor

    scale = scale if scale is not None else default_scale()
    executor = get_executor(workers)
    sigmas = tuple(float(s) for s in sigmas)
    with span("fig5", benchmarks=list(names), sigmas=list(sigmas), k=k):
        per_benchmark = executor.map(
            _fig5_benchmark, [(name, sigmas, scale, seed, k) for name in names]
        )
    result = Fig5Result()
    for curves in per_benchmark:
        result.curves.extend(curves)
    return result
