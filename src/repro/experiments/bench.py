"""The ``python -m repro bench`` driver: measure, stamp, append.

One bench run trains the full Table 1 suite (all six benchmarks, three
systems each, plus the pruned-MEI robustness check) with span tracing
forced on, harvests

* the per-benchmark accuracy metrics (``table1.<name>.*``),
* the span wall-clock totals (``span.<path>``: train / deploy /
  noise-eval / prune per row),
* every archived benchmark payload on disk (``benchmarks/out/*.json``
  and repo-root ``BENCH_*.json`` — executor speedups ride in here),

and appends a single provenance-stamped entry to the run history
(``runs/history.jsonl``).  The committed ``benchmarks/baseline.json``
snapshot is the same entry shape, written via ``--write-baseline``;
:mod:`repro.obs.compare` gates later runs against it.
"""

from __future__ import annotations

import json
import pathlib
import warnings
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentScale, default_scale, format_table
from repro.experiments.table1 import Table1Result, calibrated_params, run_benchmark_row
from repro.obs import history as obs_history
from repro.obs import metrics as obs_metrics
from repro.obs import runinfo
from repro.obs import trace as obs_trace
from repro.obs.log import get_logger
from repro.obs.trace import span
from repro.workloads.registry import BENCHMARK_NAMES

__all__ = ["run_bench", "write_baseline", "render_bench_entry"]

_log = get_logger("experiments.bench")


def run_bench(
    names: Sequence[str] = BENCHMARK_NAMES,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    history_path: "Optional[str | pathlib.Path]" = None,
    out_dir: "str | pathlib.Path" = "benchmarks/out",
    include_archive: bool = True,
    append: bool = True,
) -> Tuple[Dict[str, object], Optional[pathlib.Path]]:
    """Run the bench suite and append one entry to the history store.

    Returns ``(entry, history_file)``; ``append=False`` builds the
    entry without touching the store (used by tests and baseline
    regeneration).  Tracing state is restored afterwards, and the
    suite runs on cleared span/metric collectors so the harvested
    ``span.*`` totals belong to this run alone.
    """
    scale = scale if scale is not None else default_scale()
    names = list(names)
    was_tracing = obs_trace.enabled()
    obs_trace.enable(True)
    obs_trace.clear()
    obs_metrics.reset()
    try:
        params = calibrated_params()
        with span("bench", benchmarks=names, seed=seed, scale=scale.name):
            rows = [run_benchmark_row(name, scale, seed, params) for name in names]
        result = Table1Result(rows=rows)
        metrics = result.metrics()
        metrics.update(obs_history.metrics_from_spans())
    finally:
        obs_trace.enable(was_tracing)
        obs_trace.clear()
    if include_archive:
        archived = _ingest_archives(out_dir)
        # Live measurements win over stale archived payloads.
        archived.update(metrics)
        metrics = archived
    entry = obs_history.build_entry(
        metrics,
        kind="bench",
        seed=seed,
        scale=scale.name,
        benchmarks=names,
    )
    # Provenance staleness guard: an entry recorded from a dirty or
    # unknown checkout carries a git_sha that does not describe the
    # code that produced the numbers.  The entry is still appended
    # (local iteration needs it) but the condition is loud, and the
    # CLI refuses to promote such an entry to the committed baseline.
    sha = entry.get("git_sha")
    dirty = runinfo.git_dirty()
    if sha is None or dirty is not False:
        state = "unknown" if sha is None or dirty is None else "dirty"
        warnings.warn(
            f"bench provenance is stale: git checkout is {state}; the recorded "
            f"git_sha does not identify the measured code (commit first, or "
            f"treat this entry as throwaway)",
            RuntimeWarning,
            stacklevel=2,
        )
    target: Optional[pathlib.Path] = None
    if append:
        target = obs_history.append_entry(entry, history_path)
        _log.info(
            "bench entry appended",
            extra={
                "fields": {
                    "history": str(target),
                    "metrics": len(metrics),
                    "git_sha": entry.get("git_sha"),
                }
            },
        )
    return entry, target


def _ingest_archives(out_dir: "str | pathlib.Path") -> Dict[str, float]:
    """Archived payloads: ``benchmarks/out/*.json`` + root ``BENCH_*``."""
    metrics: Dict[str, float] = {}
    out_dir = pathlib.Path(out_dir)
    repo_root = out_dir.parent.parent if out_dir.name else out_dir.parent
    for path in sorted(repo_root.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        metrics.update(obs_history.flatten_payload(payload, prefix=path.stem.lower()))
    metrics.update(obs_history.ingest_out_dir(out_dir))
    return metrics


def write_baseline(
    entry: Dict[str, object],
    path: "str | pathlib.Path" = "benchmarks/baseline.json",
) -> pathlib.Path:
    """Persist a bench entry as the committed baseline snapshot."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(entry, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    return target


def render_bench_entry(entry: Dict[str, object]) -> str:
    """Human summary of one bench entry (accuracy rows + span totals)."""
    metrics = entry.get("metrics") or {}
    benches = sorted(
        {name.split(".")[1] for name in metrics if name.startswith("table1.")}
    )
    rows = []
    for bench in benches:
        rows.append(
            [
                bench,
                metrics.get(f"table1.{bench}.error_mei", float("nan")),
                metrics.get(f"table1.{bench}.error_adda", float("nan")),
                metrics.get(f"table1.{bench}.robustness_mei", float("nan")),
                metrics.get(f"table1.{bench}.area_saved_measured", float("nan")),
                metrics.get(f"table1.{bench}.power_saved_measured", float("nan")),
                metrics.get(f"span.bench/row:{bench}", float("nan")),
            ]
        )
    header = (
        f"Bench run — commit {str(entry.get('git_sha') or 'unknown')[:12]} "
        f"scale={entry.get('scale')} seed={entry.get('seed')} "
        f"({len(metrics)} metrics)\n"
    )
    table = format_table(
        ["bench", "err MEI", "err AD/DA", "robustness", "area saved",
         "power saved", "row seconds"],
        rows,
    )
    return header + table
