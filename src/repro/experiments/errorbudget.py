"""The ``python -m repro errorbudget`` driver: attribute, stamp, append.

For each benchmark the driver trains one MEI (or a SAAB ensemble of
MEI learners) exactly like the Table 1 harness — same dataset sizes,
same Adam recipe, the paper's pruned topology — and then runs the
counterfactual stage-idealization harness
(:mod:`repro.analysis.errorbudget`) over the deployed system.  The
per-benchmark attributions are:

* published as ``error_budget_*`` gauge families in the metrics
  registry (OpenMetrics exposition, dashboard);
* appended to the run history as one ``kind="errorbudget"`` entry so
  :mod:`repro.obs.compare` gates attribution drift (``--kind
  errorbudget``);
* exportable as a provenance-stamped JSON payload and a standalone
  stacked-bar HTML page.

Benchmarks are independent, so the fan-out rides the resilient
executors (``--workers`` / ``REPRO_WORKERS``).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.errorbudget import (
    ErrorBudgetConfig,
    ErrorBudgetResult,
    attribute_error,
    publish_metrics,
)
from repro.core.mei import MEI, MEIConfig
from repro.core.saab import SAAB, SAABConfig
from repro.device.variation import NonIdealFactors
from repro.experiments.runner import (
    ExperimentScale,
    default_scale,
    format_table,
    train_config,
    train_samples_for,
)
from repro.obs import history as obs_history
from repro.obs import metrics as obs_metrics
from repro.obs import runinfo
from repro.obs import trace as obs_trace
from repro.obs.log import get_logger
from repro.obs.report import BUDGET_PALETTE, stacked_budget_svg
from repro.obs.runinfo import provenance_header
from repro.obs.trace import span
from repro.parallel.resilient import resilient_map
from repro.workloads.registry import BENCHMARK_NAMES, PAPER_TABLE1, make_benchmark

__all__ = [
    "ErrorBudgetSuite",
    "run_benchmark_errorbudget",
    "run_errorbudget",
    "baseline_guard",
    "write_errorbudget_baseline",
    "render_errorbudget_html",
    "ERRORBUDGET_BASELINE_FILE",
]

_log = get_logger("experiments.errorbudget")

ERRORBUDGET_BASELINE_FILE = "benchmarks/errorbudget_baseline.json"
"""Committed attribution snapshot gated by ``compare --kind errorbudget``."""


@dataclass
class ErrorBudgetSuite:
    """One run's attributions across benchmarks, render/export-ready."""

    results: List[ErrorBudgetResult]
    config: ErrorBudgetConfig
    scale_name: str
    seed: int
    ensemble: int

    def metrics(self) -> Dict[str, float]:
        """Flat ``errorbudget.<bench>.*`` mapping for the run history."""
        out: Dict[str, float] = {}
        for result in self.results:
            out.update(result.metrics())
        return out

    def payload(self) -> Dict[str, object]:
        """Provenance-stamped JSON export (same header as ``BENCH_*``)."""
        return {
            "provenance": provenance_header(
                seed=self.seed,
                scale=self.scale_name,
                ensemble=self.ensemble,
                benchmarks=[r.benchmark for r in self.results],
            ),
            "config": dataclasses.asdict(self.config),
            "results": [r.as_dict() for r in self.results],
        }

    def render(self) -> str:
        """Text report: per-benchmark stage tables plus the gap line."""
        config = self.config
        lines = [
            f"Error budget — scale={self.scale_name} seed={self.seed} "
            f"trials={config.trials} ensemble={self.ensemble} "
            f"(sigma_pv={config.sigma_pv}, sigma_sf={config.sigma_sf}, "
            f"comparator_offset={config.comparator_offset}, "
            f"wire={config.wire_resistance}ohm)"
        ]
        for result in self.results:
            lines.append("")
            lines.append(
                f"{result.benchmark}: error {result.err_real:.4f} real -> "
                f"{result.err_ideal:.4f} ideal  "
                f"(gap {result.total_gap:+.4f}, residual {result.residual:+.4f}, "
                f"snr {result.snr_db:.1f} dB)"
            )
            gap = result.total_gap
            rows = [
                [
                    stage.stage,
                    f"{stage.delta:+.5f}",
                    f"{stage.delta / gap:+.0%}" if gap else "-",
                    f"{stage.leave_one_in_delta:+.5f}",
                ]
                for stage in result.stages
            ]
            lines.append(
                format_table(["stage", "delta", "share", "leave-one-in"], rows)
            )
            planes = " ".join(f"{rate:.3f}" for rate in result.bit_plane_rates)
            lines.append(
                f"bit planes MSB->LSB: {planes}  "
                f"(weighted {result.weighted_bit_error:.4f})"
            )
        return "\n".join(lines)


def run_benchmark_errorbudget(
    name: str,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    config: Optional[ErrorBudgetConfig] = None,
    ensemble: int = 1,
) -> ErrorBudgetResult:
    """Train one benchmark's MEI/SAAB system and attribute its error.

    The system is trained at full interface width and then pruned to
    the paper's Table 1 bit counts, so the ``input_codec`` and
    ``output_truncation`` budget lines measure real pruning loss (a
    network trained on pruned inputs would make the unpruned
    counterfactual out-of-distribution).
    """
    scale = scale if scale is not None else default_scale()
    config = config if config is not None else ErrorBudgetConfig()
    if ensemble < 1:
        raise ValueError(f"ensemble must be >= 1, got {ensemble}")
    bench = make_benchmark(name)
    paper = PAPER_TABLE1[name]
    topology = bench.spec.topology
    in_bits = paper.pruned_mei.in_ports // topology.inputs
    out_bits = paper.pruned_mei.out_ports // topology.outputs
    with span(f"errorbudget:{name}", benchmark=name, seed=seed, scale=scale.name):
        data = bench.dataset(
            n_train=train_samples_for(name, scale), n_test=scale.n_test, seed=seed
        )
        cfg = train_config(scale, seed)
        mei_config = MEIConfig(
            in_groups=topology.inputs,
            out_groups=topology.outputs,
            hidden=paper.pruned_mei.hidden,
            bits=topology.bits,
        )
        with span("train", ensemble=ensemble):
            if ensemble > 1:
                saab = SAAB(
                    lambda k: MEI(mei_config, seed=seed + k),
                    SAABConfig(
                        n_learners=ensemble,
                        noise=NonIdealFactors(
                            sigma_pv=config.sigma_pv, seed=seed + 617
                        ),
                        seed=seed,
                    ),
                ).train(data.x_train, data.y_train, cfg)
                system = saab.remapped(
                    lambda learner: learner.pruned(in_bits, out_bits)
                )
            else:
                mei = MEI(mei_config, seed=seed).train(
                    data.x_train, data.y_train, cfg
                )
                system = mei.pruned(in_bits, out_bits)
        result = attribute_error(
            system,
            data.x_test,
            data.y_test,
            bench.error_normalized,
            config,
            benchmark=name,
        )
    _log.info(
        "errorbudget done",
        extra={
            "fields": {
                "benchmark": name,
                "total_gap": round(result.total_gap, 6),
                "residual": round(result.residual, 6),
                "top_stage": max(result.stages, key=lambda s: s.delta).stage,
            }
        },
    )
    return result


def _bench_task(args) -> ErrorBudgetResult:
    """One benchmark (module-level so process pools can pickle it)."""
    return run_benchmark_errorbudget(*args)


def run_errorbudget(
    names: Sequence[str] = BENCHMARK_NAMES,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    config: Optional[ErrorBudgetConfig] = None,
    ensemble: int = 1,
    workers: Optional[int] = None,
    history_path: "Optional[str | pathlib.Path]" = None,
    append: bool = True,
) -> Tuple[ErrorBudgetSuite, Dict[str, object], Optional[pathlib.Path]]:
    """Run the attribution suite; append one history entry.

    Returns ``(suite, entry, history_file)``; ``append=False`` builds
    the entry without touching the store.  Like the bench driver,
    tracing runs on cleared collectors so the harvested ``span.*``
    totals belong to this run alone, and the registry ends up holding
    the published ``error_budget_*`` gauges for the OpenMetrics
    exposition.
    """
    scale = scale if scale is not None else default_scale()
    config = config if config is not None else ErrorBudgetConfig()
    names = list(names)
    was_tracing = obs_trace.enabled()
    obs_trace.enable(True)
    obs_trace.clear()
    obs_metrics.reset()
    try:
        with span("errorbudget", benchmarks=names, seed=seed, scale=scale.name):
            mapped = resilient_map(
                _bench_task,
                [(name, scale, seed, config, ensemble) for name in names],
                workers=workers,
            )
        results = [r for r in mapped.results if r is not None]
        suite = ErrorBudgetSuite(
            results=results,
            config=config,
            scale_name=scale.name,
            seed=seed,
            ensemble=ensemble,
        )
        metrics = suite.metrics()
        metrics.update(obs_history.metrics_from_spans())
    finally:
        obs_trace.enable(was_tracing)
        obs_trace.clear()
    for result in results:
        publish_metrics(result)
    entry = obs_history.build_entry(
        metrics,
        kind="errorbudget",
        seed=seed,
        scale=scale.name,
        benchmarks=names,
        ensemble=ensemble,
    )
    # Same provenance staleness guard as the bench driver: append the
    # entry (local iteration needs it) but say loudly that its git_sha
    # does not describe the measured code.
    sha = entry.get("git_sha")
    dirty = runinfo.git_dirty()
    if sha is None or dirty is not False:
        state = "unknown" if sha is None or dirty is None else "dirty"
        warnings.warn(
            f"errorbudget provenance is stale: git checkout is {state}; the "
            f"recorded git_sha does not identify the measured code (commit "
            f"first, or treat this entry as throwaway)",
            RuntimeWarning,
            stacklevel=2,
        )
    target: Optional[pathlib.Path] = None
    if append:
        target = obs_history.append_entry(entry, history_path)
        _log.info(
            "errorbudget entry appended",
            extra={
                "fields": {
                    "history": str(target),
                    "metrics": len(metrics),
                    "git_sha": entry.get("git_sha"),
                }
            },
        )
    return suite, entry, target


def baseline_guard(entry: Dict[str, object], allow_dirty: bool = False) -> Optional[str]:
    """PR-6-style dirty guard: refusal message, or None when clean.

    A baseline written from a dirty or unknown checkout carries a
    ``git_sha`` that does not describe the code that produced the
    numbers; the CLI refuses to promote such an entry unless the user
    explicitly overrides.
    """
    if allow_dirty:
        return None
    sha = entry.get("git_sha")
    dirty = runinfo.git_dirty()
    if sha is None or dirty is not False:
        state = "unknown" if sha is None or dirty is None else "dirty"
        return (
            f"refusing to write the errorbudget baseline from a {state} "
            f"checkout; commit first or pass --allow-dirty"
        )
    return None


def write_errorbudget_baseline(
    entry: Dict[str, object],
    path: "str | pathlib.Path" = ERRORBUDGET_BASELINE_FILE,
) -> pathlib.Path:
    """Persist an errorbudget entry as the committed baseline snapshot."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(entry, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    return target


_HTML_STYLE = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', sans-serif; margin: 2rem auto;
       max-width: 70rem; padding: 0 1rem; color: #1a1a2e; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 0.3rem 0.6rem; border-bottom: 1px solid #e0e0ea; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
code { background: #f2f2f8; padding: 0.1rem 0.3rem; border-radius: 3px; }
.meta { color: #667; }
.neg { color: #c0392b; }
""".strip()


def render_errorbudget_html(suite: ErrorBudgetSuite) -> str:
    """Standalone stacked-bar page for one attribution suite."""
    import html as _html

    esc = _html.escape
    config = suite.config
    stage_order: List[str] = []
    for result in suite.results:
        for stage in result.stages:
            if stage.stage not in stage_order:
                stage_order.append(stage.stage)
    color = {
        stage: BUDGET_PALETTE[i % len(BUDGET_PALETTE)]
        for i, stage in enumerate(stage_order)
    }
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>Error budget</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        "<h1>Error-budget attribution</h1>",
        f"<p class='meta'>scale={esc(suite.scale_name)} seed={suite.seed} "
        f"trials={config.trials} ensemble={suite.ensemble} | "
        f"sigma_pv={config.sigma_pv} sigma_sf={config.sigma_sf} "
        f"comparator_offset={config.comparator_offset} "
        f"wire={config.wire_resistance}&#8486;</p>",
    ]
    if not suite.results:
        parts.append("<p class='meta'>No results.</p></body></html>")
        return "\n".join(parts)
    legend = " ".join(
        f"<span style='color:{color[stage]}'>■</span> <code>{esc(stage)}</code>"
        for stage in stage_order
    )
    parts.append(f"<p class='meta'>{legend}</p>")
    parts.append(
        "<table><thead><tr><th>benchmark</th><th class='num'>err real</th>"
        "<th class='num'>err ideal</th><th class='num'>gap</th>"
        "<th class='num'>residual</th><th>stage budget</th></tr></thead><tbody>"
    )
    for result in suite.results:
        segments = sorted(
            ((s.stage, s.delta) for s in result.stages),
            key=lambda item: -abs(item[1]),
        )
        bar = stacked_budget_svg(
            segments, palette=[color[stage] for stage, _ in segments]
        )
        parts.append(
            f"<tr><td><code>{esc(result.benchmark)}</code></td>"
            f"<td class='num'>{result.err_real:.4f}</td>"
            f"<td class='num'>{result.err_ideal:.4f}</td>"
            f"<td class='num'>{result.total_gap:+.4f}</td>"
            f"<td class='num'>{result.residual:+.4f}</td>"
            f"<td>{bar}</td></tr>"
        )
    parts.append("</tbody></table>")
    parts.append("<h2>Per-stage detail</h2>")
    for result in suite.results:
        parts.append(f"<h3><code>{esc(result.benchmark)}</code></h3>")
        parts.append(
            "<table><thead><tr><th>stage</th><th class='num'>delta</th>"
            "<th class='num'>share of gap</th>"
            "<th class='num'>leave-one-in</th></tr></thead><tbody>"
        )
        gap = result.total_gap
        for stage in result.stages:
            share = f"{stage.delta / gap:+.0%}" if gap else "-"
            cls = " class='num neg'" if stage.delta < 0 else " class='num'"
            parts.append(
                f"<tr><td><code>{esc(stage.stage)}</code></td>"
                f"<td{cls}>{stage.delta:+.5f}</td>"
                f"<td class='num'>{share}</td>"
                f"<td class='num'>{stage.leave_one_in_delta:+.5f}</td></tr>"
            )
        parts.append("</tbody></table>")
        planes = " ".join(f"{rate:.3f}" for rate in result.bit_plane_rates)
        parts.append(
            f"<p class='meta'>bit-plane error rates MSB→LSB: {planes} "
            f"(Eq. 5 weighted: {result.weighted_bit_error:.4f}, "
            f"SNR {result.snr_db:.1f} dB)</p>"
        )
    parts.append("</body></html>")
    return "\n".join(parts)
