"""Extension experiment: MEI beyond the 8-bit AD/DA baseline.

Sec. 5.2 and the paper's future work note that where MEI loses
accuracy to the AD/DA architecture (e.g. Inversek2j, whose output
LSBs change sensitively with the input), "the performance ... may be
compensated by increasing the bit requirement of MEI from 8 to 10, 12
or a higher level" — something an AD/DA interface cannot do without a
new converter design, but MEI gets by simply adding ports.

This experiment sweeps the MEI word length ``B`` and reports the
application error and the Eq. 7 cost growth, quantifying that
accuracy/cost trade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.mei import MEI, MEIConfig
from repro.cost.power import savings
from repro.experiments.runner import ExperimentScale, default_scale, format_table, train_config
from repro.obs.log import get_logger
from repro.obs.trace import span
from repro.workloads.registry import PAPER_TABLE1, make_benchmark

__all__ = ["BitLengthPoint", "BitLengthResult", "run_bitlength"]

_log = get_logger("experiments.bitlength")


@dataclass(frozen=True)
class BitLengthPoint:
    """One word length's accuracy and cost."""

    bits: int
    error: float
    mse: float
    area_saved: float
    power_saved: float


@dataclass
class BitLengthResult:
    benchmark: str
    points: List[BitLengthPoint] = field(default_factory=list)

    def rows(self) -> List[List[object]]:
        return [
            [p.bits, p.error, p.mse, p.area_saved, p.power_saved] for p in self.points
        ]

    def render(self) -> str:
        header = (
            f"Bit-length extension — MEI word length sweep on {self.benchmark}\n"
            "(area/power saved vs the 8-bit AD/DA baseline, Eq. 6 vs Eq. 7)\n"
        )
        return header + format_table(
            ["bits", "error", "MSE", "area saved", "power saved"], self.rows()
        )


def run_bitlength(
    name: str = "inversek2j",
    bit_lengths: Sequence[int] = (4, 6, 8, 10, 12),
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> BitLengthResult:
    """Sweep the MEI interface word length on one benchmark."""
    from repro.experiments.table1 import calibrated_params

    scale = scale if scale is not None else default_scale()
    params = calibrated_params()
    bench = make_benchmark(name)
    data = bench.dataset(n_train=scale.n_train, n_test=scale.n_test, seed=seed)
    cfg = train_config(scale, seed)
    topology = bench.spec.topology
    hidden = PAPER_TABLE1[name].pruned_mei.hidden
    result = BitLengthResult(benchmark=name)
    with span("bitlength", benchmark=name, bit_lengths=list(bit_lengths), seed=seed):
        for bits in bit_lengths:
            with span(f"bits:{bits}", bits=bits):
                mei = MEI(
                    MEIConfig(topology.inputs, topology.outputs, hidden, bits=bits),
                    seed=seed,
                ).train(data.x_train, data.y_train, cfg)
                mei_topology = mei.topology()
                point = BitLengthPoint(
                    bits=bits,
                    error=bench.error_normalized(mei.predict(data.x_test), data.y_test),
                    mse=mei.mse(data.x_test, data.y_test),
                    area_saved=savings(
                        topology, mei_topology, params["area"]
                    ).saved_fraction,
                    power_saved=savings(
                        topology, mei_topology, params["power"]
                    ).saved_fraction,
                )
                result.points.append(point)
                _log.debug(
                    "bitlength point done",
                    extra={"fields": {"bits": bits, "error": round(point.error, 6)}},
                )
    return result
