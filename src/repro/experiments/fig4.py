"""Fig. 4: method comparison — Digital / AD/DA / MEI / MEI + SAAB.

The paper boosts each benchmark with the maximum SAAB number allowed
by Eq. 9 (e.g. 4 RCSs for JPEG) and reports that SAAB improves the
accuracy of *every* benchmark, by 5.76% on average (up to 13.05%).

Accuracy here is ``1 - error`` under each benchmark's native metric,
matching the paper's bar chart.

Training-regime note: ensemble gains exist when individual learners
saturate below the topology's ceiling — the paper's regime.  All four
systems here therefore train with a paper-strength budget (a fraction
of the scale's epochs, fixed across systems so the comparison stays
fair); at full modern training strength single learners close the gap
and SAAB's margin shrinks toward zero (see EXPERIMENTS.md and the
trade-off bench).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.mei import MEI, MEIConfig
from repro.core.rcs import TraditionalRCS
from repro.core.saab import SAAB, SAABConfig
from repro.cost.params import CostParams
from repro.cost.power import max_saab_learners
from repro.experiments.runner import (
    ExperimentScale,
    default_scale,
    format_table,
    train_samples_for,
)
from repro.experiments.table1 import calibrated_params
from repro.nn.network import MLP
from repro.nn.trainer import Trainer
from repro.obs.log import get_logger
from repro.obs.trace import span
from repro.workloads.registry import BENCHMARK_NAMES, PAPER_TABLE1, make_benchmark

__all__ = ["Fig4Row", "Fig4Result", "run_fig4"]

_log = get_logger("experiments.fig4")


@dataclass(frozen=True)
class Fig4Row:
    """Accuracies of the four methods on one benchmark."""

    name: str
    k_used: int
    accuracy_digital: float
    accuracy_adda: float
    accuracy_mei: float
    accuracy_saab: float

    @property
    def saab_improvement(self) -> float:
        """SAAB accuracy gain over single MEI (the paper's +5.76% avg)."""
        return self.accuracy_saab - self.accuracy_mei

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe structured row (archived by the bench harness)."""
        return {
            "name": self.name,
            "k_used": self.k_used,
            "accuracy_digital": self.accuracy_digital,
            "accuracy_adda": self.accuracy_adda,
            "accuracy_mei": self.accuracy_mei,
            "accuracy_saab": self.accuracy_saab,
            "saab_improvement": self.saab_improvement,
        }


@dataclass
class Fig4Result:
    rows: List[Fig4Row] = field(default_factory=list)

    @property
    def average_improvement(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.saab_improvement for r in self.rows) / len(self.rows)

    def row_dicts(self) -> List[Dict[str, object]]:
        """Structured rows for JSON archiving."""
        return [r.as_dict() for r in self.rows]

    def metrics(self) -> Dict[str, float]:
        """Flat ``fig4.<name>.<column>`` mapping for the run history."""
        out: Dict[str, float] = {}
        for row in self.rows:
            for key, value in row.as_dict().items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    out[f"fig4.{row.name}.{key}"] = float(value)
        out["fig4.average_improvement"] = self.average_improvement
        return out

    def table_rows(self) -> List[List[object]]:
        return [
            [r.name, r.k_used, r.accuracy_digital, r.accuracy_adda, r.accuracy_mei,
             r.accuracy_saab, r.saab_improvement]
            for r in self.rows
        ]

    def render(self) -> str:
        header = "Fig. 4 — accuracy comparison of methods\n"
        body = format_table(
            ["name", "K", "Digital", "AD/DA", "MEI", "MEI+SAAB", "SAAB gain"],
            self.table_rows(),
        )
        average = f"average SAAB improvement: {self.average_improvement:.4f}"
        return body and header + body + "\n" + average


def _fig4_row(args) -> Fig4Row:
    """One benchmark's four-system comparison (picklable sweep task)."""
    name, scale, seed, max_k, params = args
    with span(f"row:{name}", benchmark=name, seed=seed):
        return _fig4_row_body(name, scale, seed, max_k, params)


def _fig4_row_body(name, scale, seed, max_k, params) -> Fig4Row:
    bench = make_benchmark(name)
    paper = PAPER_TABLE1[name]
    data = bench.dataset(
        n_train=train_samples_for(name, scale), n_test=scale.n_test, seed=seed
    )
    # Paper-strength budget (see module docstring), same for all
    # four systems.
    from repro.nn.trainer import TrainConfig

    cfg = TrainConfig(
        epochs=max(30, scale.epochs // 5),
        batch_size=64,
        learning_rate=0.01,
        shuffle_seed=seed,
    )
    topology = bench.spec.topology

    with span("digital"):
        digital = MLP((topology.inputs, topology.hidden, topology.outputs), rng=seed)
        Trainer(config=cfg).fit(digital, data.x_train, data.y_train)
        err_digital = bench.error_normalized(digital.predict(data.x_test), data.y_test)

    with span("adda"):
        rcs = TraditionalRCS(topology, seed=seed).train(data.x_train, data.y_train, cfg)
        err_adda = bench.error_normalized(rcs.predict(data.x_test), data.y_test)

    mei_config = MEIConfig(
        in_groups=topology.inputs,
        out_groups=topology.outputs,
        hidden=paper.pruned_mei.hidden,
        bits=topology.bits,
    )
    k_max = max_saab_learners(topology, paper.pruned_mei, params["area"], params["power"])
    k = max(2, min(k_max, max_k))
    # Default (weighted) SAAB trains its first learner on the full
    # set with uniform weights — that learner IS the standalone
    # Table 1 MEI, so it provides the MEI bar directly.
    with span("saab", k=k):
        saab = SAAB(
            lambda i: MEI(mei_config, seed=seed + i),
            SAABConfig(n_learners=k, compare_bits=4, seed=seed),
        ).train(data.x_train, data.y_train, cfg)
        err_mei = bench.error_normalized(saab.learners[0].predict(data.x_test), data.y_test)
        err_saab = bench.error_normalized(saab.predict(data.x_test), data.y_test)

    return Fig4Row(
        name=name,
        k_used=k,
        accuracy_digital=1.0 - err_digital,
        accuracy_adda=1.0 - err_adda,
        accuracy_mei=1.0 - err_mei,
        accuracy_saab=1.0 - err_saab,
    )


def run_fig4(
    names: Sequence[str] = BENCHMARK_NAMES,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    max_k: int = 4,
    params: Optional[Dict[str, CostParams]] = None,
    workers: Optional[int] = None,
) -> Fig4Result:
    """Regenerate the Fig. 4 comparison.

    ``max_k`` caps the ensemble size for runtime; Eq. 9's bound is
    computed from the calibrated cost model and clipped to it.

    The benchmark rows are independent; pass ``workers`` (or set
    ``REPRO_WORKERS``) to train them concurrently with identical
    results.
    """
    from repro.parallel import get_executor

    scale = scale if scale is not None else default_scale()
    params = params if params is not None else calibrated_params()
    executor = get_executor(workers)
    with span("fig4", benchmarks=list(names), seed=seed):
        rows = executor.map(_fig4_row, [(name, scale, seed, max_k, params) for name in names])
    result = Fig4Result(rows=rows)
    _log.info(
        "fig4 done",
        extra={"fields": {"average_improvement": round(result.average_improvement, 6)}},
    )
    return result
