"""Fig. 3: architecture comparison while fitting ``f(x) = exp(-x**2)``.

The paper sweeps the hidden layer size of a ``1 x N x 1`` RCS fitting
``exp(-x**2)`` (10k train / 1k test samples in ``(0, 1)``) and
compares three architectures:

* the traditional AD/DA RCS;
* MEI trained with the plain Eq. (4) loss;
* MEI trained with the MSB-weighted Eq. (5) loss.

Shape targets: the weighted loss clearly beats the plain loss, and at
larger hidden sizes weighted MEI matches or beats the AD/DA RCS; the
accuracy saturates as the hidden layer grows (the observation that
motivates both Eq. 8's stopping rule and SAAB).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.mei import MEI, MEIConfig
from repro.core.rcs import TraditionalRCS
from repro.cost.area import Topology
from repro.experiments.runner import ExperimentScale, default_scale, format_table, train_config
from repro.obs.log import get_logger
from repro.obs.trace import span
from repro.workloads.expfit import ExpFitBenchmark

__all__ = ["Fig3Point", "Fig3Result", "run_fig3"]

_log = get_logger("experiments.fig3")


@dataclass(frozen=True)
class Fig3Point:
    """Errors of the three architectures at one hidden size."""

    hidden: int
    error_adda: float
    error_mei_plain: float
    error_mei_weighted: float


@dataclass
class Fig3Result:
    """The full hidden-size sweep."""

    points: List[Fig3Point] = field(default_factory=list)

    def rows(self) -> List[List[object]]:
        return [
            [p.hidden, p.error_adda, p.error_mei_plain, p.error_mei_weighted]
            for p in self.points
        ]

    def render(self) -> str:
        header = "Fig. 3 — exp(-x^2) fitting error vs hidden size\n"
        return header + format_table(
            ["hidden", "AD/DA RCS", "MEI (plain loss)", "MEI (Eq.5 loss)"], self.rows()
        )


def run_fig3(
    hidden_sizes: Sequence[int] = (2, 4, 8, 16, 32),
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> Fig3Result:
    """Regenerate the Fig. 3 sweep."""
    scale = scale if scale is not None else default_scale()
    bench = ExpFitBenchmark()
    data = bench.dataset(n_train=scale.n_train, n_test=scale.n_test, seed=seed)
    cfg = train_config(scale, seed)
    result = Fig3Result()
    with span("fig3", hidden_sizes=list(hidden_sizes), seed=seed):
        for hidden in hidden_sizes:
            with span(f"hidden:{hidden}", hidden=hidden):
                rcs = TraditionalRCS(
                    Topology(inputs=1, hidden=hidden, outputs=1), seed=seed
                ).train(data.x_train, data.y_train, cfg)
                error_adda = bench.error_normalized(rcs.predict(data.x_test), data.y_test)

                # MEI gets the same hidden budget scaled by the port ratio the
                # paper's Table 1 exhibits (MEI hidden ~2x the AD/DA hidden).
                mei_hidden = 2 * hidden
                plain = MEI(
                    MEIConfig(1, 1, mei_hidden, msb_weighted=False), seed=seed
                ).train(data.x_train, data.y_train, cfg)
                weighted = MEI(
                    MEIConfig(1, 1, mei_hidden, msb_weighted=True), seed=seed
                ).train(data.x_train, data.y_train, cfg)
                point = Fig3Point(
                    hidden=hidden,
                    error_adda=error_adda,
                    error_mei_plain=bench.error_normalized(
                        plain.predict(data.x_test), data.y_test
                    ),
                    error_mei_weighted=bench.error_normalized(
                        weighted.predict(data.x_test), data.y_test
                    ),
                )
                result.points.append(point)
                _log.debug(
                    "fig3 point done",
                    extra={
                        "fields": {
                            "hidden": hidden,
                            "error_adda": round(point.error_adda, 6),
                            "error_mei_weighted": round(point.error_mei_weighted, 6),
                        }
                    },
                )
    return result
