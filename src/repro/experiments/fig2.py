"""Fig. 2: normalized power/area breakdown of a 2x8x2 RCS with AD/DA.

The paper's motivating observation: for an 8-bit 2x8x2 RCS (the
robotics/inversek2j topology of Ref. [7]), the AD/DA interface takes
more than 85% of both area and power while the RRAM devices account
for about one percent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cost.area import Topology
from repro.cost.breakdown import Breakdown, breakdown
from repro.cost.params import LITERATURE_AREA, LITERATURE_POWER, CostParams
from repro.experiments.runner import format_table
from repro.obs.trace import span

__all__ = ["Fig2Result", "run_fig2"]


@dataclass
class Fig2Result:
    """Area and power breakdowns for the motivating topology."""

    topology: Topology
    area: Breakdown
    power: Breakdown

    def rows(self) -> List[List[object]]:
        rows: List[List[object]] = []
        for name in ("dac", "adc", "periphery", "rram"):
            rows.append(
                [name, self.area.fractions[name], self.power.fractions[name]]
            )
        rows.append(["AD/DA total", self.area.interface_fraction, self.power.interface_fraction])
        return rows

    def render(self) -> str:
        header = (
            f"Fig. 2 — cost breakdown of a {self.topology} RCS with "
            f"{self.topology.bits}-bit AD/DA\n"
        )
        return header + format_table(["component", "area frac", "power frac"], self.rows())


def run_fig2(
    topology: Topology = Topology(inputs=2, hidden=8, outputs=2, bits=8),
    area_params: CostParams = LITERATURE_AREA,
    power_params: CostParams = LITERATURE_POWER,
) -> Fig2Result:
    """Regenerate the Fig. 2 decomposition."""
    with span("fig2", topology=str(topology)):
        return Fig2Result(
            topology=topology,
            area=breakdown(topology, area_params),
            power=breakdown(topology, power_params),
        )
