"""Table 1: the six-benchmark comparison of Digital / AD/DA / MEI.

For each benchmark the harness trains three systems on the same data:

* **Digital ANN** — the ideal 32-bit floating-point network;
* **AD/DA RCS** — the traditional architecture (8-bit converters
  around the analog crossbar network);
* **MEI RCS** — the merged-interface architecture, trained with the
  Eq. (5) loss and LSB-pruned per Algorithm 2 Line 22;

and reports the normalized-output MSE, the application error metric,
the pruned MEI topology, and the area/power saved.

Costs are reported twice: with the NNLS-calibrated coefficients on the
*paper's* pruned topologies (reproducing Table 1's numbers by
construction) and with the same coefficients on *our measured* pruned
topologies (the substrate-dependent result).

Topology note: the MEI hidden sizes are the paper's own (Table 1's
pruned MEI column), so the measured cost savings are directly
comparable with the published ones.  Our first-order Adam trainer
slightly underfits MEI at these widths relative to the authors'
trainer; the tradeoff bench quantifies the wider-hidden alternative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.mei import MEI, MEIConfig
from repro.core.pruning import prune_lsbs
from repro.core.rcs import TraditionalRCS
from repro.cost.area import MEITopology, Topology
from repro.cost.calibration import fit_cost_params
from repro.cost.params import CostParams
from repro.cost.power import savings
from repro.experiments.runner import (
    ExperimentScale,
    default_scale,
    format_table,
    train_config,
    train_samples_for,
)
from repro.device.variation import NonIdealFactors
from repro.metrics.robustness import evaluate_under_noise, robustness_index
from repro.nn.losses import mse
from repro.nn.network import MLP
from repro.nn.trainer import Trainer
from repro.obs.log import get_logger
from repro.obs.trace import span
from repro.quant.fixedpoint import FixedPointCodec
from repro.workloads.registry import BENCHMARK_NAMES, PAPER_TABLE1, make_benchmark

__all__ = ["Table1Row", "Table1Result", "calibrated_params", "run_benchmark_row", "run_table1"]

_log = get_logger("experiments.table1")

ROBUSTNESS_SIGMA_PV = 0.1
"""Process-variation level of the per-row MEI robustness check."""


def calibrated_params() -> Dict[str, CostParams]:
    """Cost coefficients fitted to the paper's reported savings."""
    pairs = [
        (make_benchmark(name).spec.topology, PAPER_TABLE1[name].pruned_mei)
        for name in BENCHMARK_NAMES
    ]
    area = fit_cost_params(
        pairs, [PAPER_TABLE1[n].area_saved for n in BENCHMARK_NAMES], metric="area"
    )
    power = fit_cost_params(
        pairs, [PAPER_TABLE1[n].power_saved for n in BENCHMARK_NAMES], metric="power"
    )
    return {"area": area, "power": power}


@dataclass
class Table1Row:
    """One benchmark's measured results next to the paper's."""

    name: str
    topology: Topology
    pruned_topology: MEITopology
    mse_digital: float
    mse_adda: float
    mse_mei: float
    error_digital: float
    error_adda: float
    error_mei: float
    area_saved_paper_topology: float
    power_saved_paper_topology: float
    area_saved_measured: float
    power_saved_measured: float
    robustness_mei: float = float("nan")
    """Robustness index of the pruned MEI under ``sigma_pv=0.1``
    process variation (clean/noisy error ratio; 1 = noise-immune).
    Not part of the paper's Table 1; recorded for the run manifest."""

    @property
    def paper(self):
        return PAPER_TABLE1[self.name]

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe structured row (archived by the bench harness)."""
        return {
            "name": self.name,
            "topology": str(self.topology),
            "pruned_topology": str(self.pruned_topology),
            "mse_digital": self.mse_digital,
            "mse_adda": self.mse_adda,
            "mse_mei": self.mse_mei,
            "error_digital": self.error_digital,
            "error_adda": self.error_adda,
            "error_mei": self.error_mei,
            "area_saved_paper_topology": self.area_saved_paper_topology,
            "power_saved_paper_topology": self.power_saved_paper_topology,
            "area_saved_measured": self.area_saved_measured,
            "power_saved_measured": self.power_saved_measured,
            "robustness_mei": self.robustness_mei,
        }

    def metrics(self) -> Dict[str, float]:
        """Flat ``table1.<name>.<column>`` mapping for the run history."""
        return {
            f"table1.{self.name}.{key}": float(value)
            for key, value in self.as_dict().items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }


@dataclass
class Table1Result:
    rows: List[Table1Row] = field(default_factory=list)

    def row_dicts(self) -> List[Dict[str, object]]:
        """Structured rows for JSON archiving (paper refs included)."""
        return [r.as_dict() for r in self.rows]

    def metrics(self) -> Dict[str, float]:
        """Flat accuracy metrics of every row, history-ready."""
        out: Dict[str, float] = {}
        for row in self.rows:
            out.update(row.metrics())
        return out

    def table_rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for r in self.rows:
            out.append(
                [
                    r.name,
                    str(r.topology),
                    str(r.pruned_topology),
                    r.mse_digital,
                    r.mse_adda,
                    r.mse_mei,
                    r.error_digital,
                    r.error_adda,
                    r.error_mei,
                    r.area_saved_measured,
                    r.power_saved_measured,
                ]
            )
        return out

    def render(self) -> str:
        header = "Table 1 — benchmark results (measured)\n"
        body = format_table(
            [
                "name",
                "topology",
                "pruned MEI",
                "MSE dig",
                "MSE AD/DA",
                "MSE MEI",
                "err dig",
                "err AD/DA",
                "err MEI",
                "area saved",
                "power saved",
            ],
            self.table_rows(),
        )
        paper_rows = [
            [
                r.name,
                r.paper.error_digital,
                r.paper.error_adda,
                r.paper.error_mei,
                r.paper.area_saved,
                r.area_saved_paper_topology,
                r.paper.power_saved,
                r.power_saved_paper_topology,
            ]
            for r in self.rows
        ]
        paper_table = format_table(
            [
                "name",
                "paper err dig",
                "paper err AD/DA",
                "paper err MEI",
                "paper area",
                "calib area",
                "paper power",
                "calib power",
            ],
            paper_rows,
        )
        return header + body + "\n\nPaper reference vs calibrated cost model\n" + paper_table


def run_benchmark_row(
    name: str,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    params: Optional[Dict[str, CostParams]] = None,
) -> Table1Row:
    """Train the three systems on one benchmark and build its row.

    Alongside the paper's columns the row records ``robustness_mei``:
    the pruned MEI's clean/noisy error ratio under ``sigma_pv=0.1``
    process variation over ``scale.noise_trials`` Monte-Carlo trials
    (run last, from independent RNG streams, so every other number is
    untouched).
    """
    scale = scale if scale is not None else default_scale()
    params = params if params is not None else calibrated_params()
    bench = make_benchmark(name)
    paper = PAPER_TABLE1[name]
    with span(f"row:{name}", benchmark=name, seed=seed, scale=scale.name):
        data = bench.dataset(
            n_train=train_samples_for(name, scale), n_test=scale.n_test, seed=seed
        )
        cfg = train_config(scale, seed)
        topology = bench.spec.topology
        codec = FixedPointCodec(topology.bits)
        y_test_q = codec.quantize(data.y_test)

        # Digital ANN: ideal floating-point network on raw unit data.
        with span("digital"):
            digital = MLP((topology.inputs, topology.hidden, topology.outputs), rng=seed)
            Trainer(config=cfg).fit(digital, data.x_train, data.y_train)
            digital_pred = digital.predict(data.x_test)

        # Traditional AD/DA RCS.
        with span("adda"):
            rcs = TraditionalRCS(topology, seed=seed).train(data.x_train, data.y_train, cfg)
            adda_pred = rcs.predict(data.x_test)

        # MEI, trained then LSB-pruned (Algorithm 2 Line 22).
        with span("mei"):
            mei = MEI(
                MEIConfig(
                    in_groups=topology.inputs,
                    out_groups=topology.outputs,
                    hidden=paper.pruned_mei.hidden,
                    bits=topology.bits,
                ),
                seed=seed,
            ).train(data.x_train, data.y_train, cfg)
        mei_error_fn = lambda candidate: bench.error_normalized(
            candidate.predict(data.x_test), data.y_test
        )
        with span("prune") as prune_span:
            unpruned_error = mei_error_fn(mei)
            pruned = prune_lsbs(
                mei,
                mei_error_fn,
                max_error=unpruned_error * 1.05,
                mse=mei.mse(data.x_test, data.y_test),
            ).mei
            mei_pred = pruned.predict(data.x_test)
            prune_span.set(in_bits=pruned.in_bits, out_bits=pruned.out_bits)

        # Robustness spot-check of the deployed MEI (Sec. 5.3 style).
        error_mei = bench.error_normalized(mei_pred, data.y_test)
        noisy = evaluate_under_noise(
            pruned,
            data.x_test,
            data.y_test,
            bench.error_normalized,
            NonIdealFactors(sigma_pv=ROBUSTNESS_SIGMA_PV, seed=seed + 991),
            trials=scale.noise_trials,
        )
        robustness_mei = robustness_index(error_mei, noisy.mean)

        row = Table1Row(
            name=name,
            topology=topology,
            pruned_topology=pruned.topology(),
            mse_digital=mse(digital_pred, data.y_test),
            mse_adda=mse(adda_pred, y_test_q),
            mse_mei=mse(mei_pred, y_test_q),
            error_digital=bench.error_normalized(digital_pred, data.y_test),
            error_adda=bench.error_normalized(adda_pred, data.y_test),
            error_mei=error_mei,
            area_saved_paper_topology=savings(
                topology, paper.pruned_mei, params["area"]
            ).saved_fraction,
            power_saved_paper_topology=savings(
                topology, paper.pruned_mei, params["power"]
            ).saved_fraction,
            area_saved_measured=savings(
                topology, pruned.topology(), params["area"]
            ).saved_fraction,
            power_saved_measured=savings(
                topology, pruned.topology(), params["power"]
            ).saved_fraction,
            robustness_mei=robustness_mei,
        )
    _log.info(
        "table1 row done",
        extra={
            "fields": {
                "benchmark": name,
                "error_mei": round(row.error_mei, 6),
                "robustness_mei": round(row.robustness_mei, 4),
            }
        },
    )
    return row


def _row_task(args) -> Table1Row:
    """One benchmark row (module-level so process pools can pickle it)."""
    return run_benchmark_row(*args)


def run_table1(
    names: Sequence[str] = BENCHMARK_NAMES,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Table1Result:
    """Regenerate the full Table 1.

    The per-benchmark rows are independent; pass ``workers`` (or set
    ``REPRO_WORKERS``) to train them concurrently.  Row order and
    numbers match the serial run exactly.
    """
    from repro.parallel import get_executor

    params = calibrated_params()
    executor = get_executor(workers)
    with span("table1", benchmarks=list(names), seed=seed):
        rows = executor.map(_row_task, [(name, scale, seed, params) for name in names])
    return Table1Result(rows=rows)
