"""Fault-injection campaign driver (``python -m repro faults``).

Not a figure of the paper: the DAC'15 text treats the crossbars as
defect-free and only models the two *statistical* non-ideal factors
(Sec. 2.3).  Real RRAM arrays additionally carry hard defects —
stuck-at cells and broken lines — so this driver extends the paper's
robustness story (Fig. 5) with a stuck-at-fault campaign comparing
three deployments per fault point:

* ``none`` — the trained MEI with faults injected, unmitigated;
* ``remap`` — spare-column redundancy repair;
* ``retrain`` — fault-aware SAAB retraining on the faulty chips.

The sweep executes on the resilient executor and (by default) stages a
forced worker crash mid-campaign, so every run also exercises the
crash-resubmission path it depends on.  See ``docs/robustness.md``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.experiments.runner import FULL_SCALE, QUICK_SCALE, ExperimentScale
from repro.obs.log import get_logger
from repro.parallel.resilient import RetryPolicy
from repro.robustness.campaign import (
    FAST_CAMPAIGN_SCALE,
    CampaignConfig,
    CampaignResult,
    run_campaign,
)

__all__ = ["CAMPAIGN_SCALES", "campaign_scale", "run_fig_faults"]

_log = get_logger("experiments.fig_faults")

CAMPAIGN_SCALES = {
    "fast": FAST_CAMPAIGN_SCALE,
    "quick": QUICK_SCALE,
    "full": FULL_SCALE,
}
"""Named campaign budgets (``--scale`` on the CLI)."""


def campaign_scale(name: str) -> ExperimentScale:
    """Resolve a ``--scale`` name to its budget."""
    try:
        return CAMPAIGN_SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown campaign scale {name!r}; use one of {sorted(CAMPAIGN_SCALES)}"
        ) from None


def run_fig_faults(
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    benchmarks: Optional[Tuple[str, ...]] = None,
    saf_rates: Optional[Tuple[float, ...]] = None,
    defect_seeds: Optional[Tuple[int, ...]] = None,
    spare_columns: Optional[int] = None,
    ensemble_k: Optional[int] = None,
    workers: Optional[int] = None,
    kind: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    chaos: bool = False,
) -> CampaignResult:
    """Run the fault campaign; return the mitigation comparison.

    Every ``None`` argument keeps the :class:`CampaignConfig` /
    :data:`FAST_CAMPAIGN_SCALE` default, so the CLI and tests override
    only what they mean to.  ``chaos=True`` SIGKILLs the first grid
    cell's worker once (process pools only) — the campaign must still
    complete via resubmission, and the resilience telemetry lands in
    the result.
    """
    defaults = CampaignConfig()
    config = CampaignConfig(
        benchmarks=benchmarks if benchmarks is not None else defaults.benchmarks,
        saf_rates=saf_rates if saf_rates is not None else defaults.saf_rates,
        seeds=defect_seeds if defect_seeds is not None else defaults.seeds,
        spare_columns=(
            spare_columns if spare_columns is not None else defaults.spare_columns
        ),
        ensemble_k=ensemble_k if ensemble_k is not None else defaults.ensemble_k,
    )
    scale = scale if scale is not None else FAST_CAMPAIGN_SCALE
    _log.info(
        "fault campaign",
        extra={"fields": {
            "benchmarks": list(config.benchmarks),
            "saf_rates": list(config.saf_rates),
            "defect_seeds": list(config.seeds),
            "scale": scale.name,
            "chaos": chaos,
        }},
    )
    return run_campaign(
        config=config,
        scale=scale,
        seed=seed,
        workers=workers,
        kind=kind,
        policy=policy,
        chaos=chaos,
    )
