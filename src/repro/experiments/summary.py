"""Aggregate bench outputs into one report.

Every bench archives its rendered table under ``benchmarks/out/``;
:func:`collect_reports` gathers them into a single document (the basis
of EXPERIMENTS.md updates), ordered to follow the paper: Fig. 2,
Fig. 3, Table 1, Fig. 4, Fig. 5, the DSE runs, then ablations and
extensions.
"""

from __future__ import annotations

import pathlib
from typing import List, Sequence

__all__ = ["REPORT_ORDER", "collect_reports"]

REPORT_ORDER = (
    "fig2_breakdown",
    "fig3_hidden_sweep",
    "table1_fft",
    "table1_inversek2j",
    "table1_jmeint",
    "table1_jpeg",
    "table1_kmeans",
    "table1_sobel",
    "fig4_methods",
    "fig5_robustness",
    "dse_sobel",
    "dse_mission_impossible",
    "ablation_loss",
    "ablation_saab",
    "ablation_irdrop",
    "ablation_levels",
    "ablation_nonlinearity",
    "ext_bitlength",
    "ext_compensation",
    "ext_timing",
    "ext_variation_aware",
    "tradeoff_kmeans",
    "bench_parallel",
    "bench_hotpath",
    "bench_serve",
)


def collect_reports(
    out_dir: "str | pathlib.Path" = "benchmarks/out",
    order: Sequence[str] = REPORT_ORDER,
    title: str = "Reproduction report",
) -> str:
    """Concatenate archived bench reports in paper order.

    Missing reports are listed at the end (so a partial run still
    produces a useful document); unknown extra files are appended
    after the known ones.
    """
    out_dir = pathlib.Path(out_dir)
    sections: List[str] = [f"# {title}", ""]
    missing: List[str] = []
    seen = set()
    for name in order:
        path = out_dir / f"{name}.txt"
        if path.exists():
            sections.append(path.read_text().rstrip())
            sections.append("")
            seen.add(path.name)
        else:
            missing.append(name)
    if out_dir.exists():
        for path in sorted(out_dir.glob("*.txt")):
            if path.name not in seen:
                sections.append(path.read_text().rstrip())
                sections.append("")
    if missing:
        sections.append("Missing reports (bench not yet run): " + ", ".join(missing))
    return "\n".join(sections).rstrip() + "\n"
