"""Experiment harnesses regenerating every table/figure of the paper."""

from repro.experiments.bench import render_bench_entry, run_bench, write_baseline
from repro.experiments.bitlength import BitLengthPoint, BitLengthResult, run_bitlength
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3 import Fig3Point, Fig3Result, run_fig3
from repro.experiments.fig4 import Fig4Result, Fig4Row, run_fig4
from repro.experiments.fig5 import Fig5Curve, Fig5Result, run_fig5
from repro.experiments.summary import REPORT_ORDER, collect_reports
from repro.experiments.runner import (
    FULL_SCALE,
    QUICK_SCALE,
    ExperimentScale,
    default_scale,
    format_table,
    train_config,
)
from repro.experiments.table1 import (
    Table1Result,
    Table1Row,
    calibrated_params,
    run_benchmark_row,
    run_table1,
)

__all__ = [
    "ExperimentScale",
    "QUICK_SCALE",
    "FULL_SCALE",
    "default_scale",
    "train_config",
    "format_table",
    "REPORT_ORDER",
    "collect_reports",
    "run_bench",
    "write_baseline",
    "render_bench_entry",
    "BitLengthPoint",
    "BitLengthResult",
    "run_bitlength",
    "Fig2Result",
    "run_fig2",
    "Fig3Point",
    "Fig3Result",
    "run_fig3",
    "Table1Row",
    "Table1Result",
    "calibrated_params",
    "run_benchmark_row",
    "run_table1",
    "Fig4Row",
    "Fig4Result",
    "run_fig4",
    "Fig5Curve",
    "Fig5Result",
    "run_fig5",
]
