"""Fault-injection campaign engine and mitigation strategies.

This package answers the question the two statistical non-ideal
factors cannot: *how much accuracy does a deployed system lose to hard
defects (stuck-at faults, broken lines), and how much do the two
mitigations win back?*

* :mod:`repro.robustness.mitigation` — spare-column remapping
  (redundancy repair through :mod:`repro.xbar.redundancy`) and
  fault-aware SAAB retraining (each boosting round evaluates its
  learner on a chip carrying that chip's defect map, so Algorithm 1's
  noise-aware re-weighting also sees the faults).
* :mod:`repro.robustness.campaign` — the sweep engine: a grid of
  :class:`~repro.device.faults.FaultModel` points x defect seeds x
  benchmarks, executed on the resilient map
  (:func:`repro.parallel.resilient_map`) so campaigns survive worker
  crashes, with every defect-map seed and the mitigation comparison
  recorded in the run manifest.

CLI: ``python -m repro faults --scale fast``; driver:
:func:`repro.experiments.fig_faults.run_fig_faults`; docs:
``docs/robustness.md``.
"""

from repro.robustness.campaign import (
    FAST_CAMPAIGN_SCALE,
    CampaignConfig,
    CampaignResult,
    CampaignRow,
    run_campaign,
)
from repro.robustness.mitigation import FaultedMEI, chip_fault_model, fault_aware_saab

__all__ = [
    "FAST_CAMPAIGN_SCALE",
    "CampaignConfig",
    "CampaignResult",
    "CampaignRow",
    "run_campaign",
    "FaultedMEI",
    "chip_fault_model",
    "fault_aware_saab",
]
