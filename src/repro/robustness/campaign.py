"""The fault-injection campaign engine.

A *campaign* sweeps a grid of stuck-at/line-failure fault points
(:class:`~repro.device.faults.FaultModel` rates x defect-map seeds)
across benchmarks, and reports three systems side by side at every
grid cell:

* ``none`` — the trained MEI with the defect map injected, no
  mitigation (the baseline accuracy loss);
* ``remap`` — the same chip after spare-column redundancy repair
  (:meth:`repro.core.deploy.AnalogMLP.repair_with_spares`);
* ``retrain`` — a fault-aware SAAB ensemble retrained on faulty chips
  (:func:`repro.robustness.mitigation.fault_aware_saab`).

Grid cells are independent and run on the *resilient* executor
(:func:`repro.parallel.resilient_map`): per-task retry, stall timeout,
crashed-worker resubmission and serial degradation, so a campaign
completes even when workers die mid-sweep — the resilience telemetry
lands in the result (and hence the run manifest) next to the accuracy
numbers.  Every row records its defect-map seeds, so any cell replays
exactly from the manifest.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.mei import MEI, MEIConfig
from repro.device.faults import FaultModel, inject_faults_analog_report
from repro.core.runner import (
    ExperimentScale,
    format_table,
    train_config,
    train_samples_for,
)
from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.obs.trace import span
from repro.parallel.resilient import ResilienceReport, RetryPolicy, resilient_map
from repro.robustness.mitigation import fault_aware_saab, predicted_error
from repro.workloads.registry import BENCHMARK_NAMES, PAPER_TABLE1, make_benchmark

__all__ = [
    "FAST_CAMPAIGN_SCALE",
    "MITIGATIONS",
    "CampaignConfig",
    "CampaignRow",
    "CampaignResult",
    "run_campaign",
]

_log = get_logger("robustness.campaign")

FAST_CAMPAIGN_SCALE = ExperimentScale(
    name="fast", n_train=1000, n_test=150, epochs=120, noise_trials=1
)
"""Campaign budget sized for CI seed-matrix jobs: minutes, not hours.

Deliberately above toy budgets: under-trained weights sit in a flat
loss region where stuck-at faults barely move the output, hiding the
very effect the campaign measures.  120 epochs x 1000 samples is the
smallest budget where a 5% SAF rate visibly separates the mitigations
on the two default benchmarks."""

MITIGATIONS = ("none", "remap", "retrain")
"""Mitigation column order of every campaign table."""


@dataclass(frozen=True)
class CampaignConfig:
    """The sweep grid and mitigation knobs of one campaign.

    Parameters
    ----------
    benchmarks:
        Table 1 benchmark names to sweep.
    saf_rates:
        Total stuck-at fault rates; each splits into SA1/SA0 by
        ``sa1_fraction``.
    sa1_fraction:
        Share of the total rate that is stuck-on (SA1).
    row_failure_rate, col_failure_rate:
        Optional line-failure rates applied at every grid point.
    seeds:
        Defect-map base seeds — the statistical axis of the campaign.
    spare_columns:
        Spare-column budget per single-ended array for the ``remap``
        mitigation.
    ensemble_k:
        Learner count of the fault-aware SAAB ``retrain`` mitigation.
    compare_bits:
        SAAB's relaxed-comparison bit count (Algorithm 1, Line 6).
    """

    benchmarks: Tuple[str, ...] = ("sobel", "inversek2j")
    saf_rates: Tuple[float, ...] = (0.0, 0.05, 0.1)
    sa1_fraction: float = 0.5
    row_failure_rate: float = 0.0
    col_failure_rate: float = 0.0
    seeds: Tuple[int, ...] = (0, 1, 2)
    spare_columns: int = 4
    ensemble_k: int = 3
    compare_bits: int = 5

    def __post_init__(self) -> None:
        unknown = [b for b in self.benchmarks if b not in BENCHMARK_NAMES]
        if unknown:
            raise ValueError(f"unknown benchmarks {unknown}; known: {list(BENCHMARK_NAMES)}")
        if not self.benchmarks or not self.saf_rates or not self.seeds:
            raise ValueError("benchmarks, saf_rates and seeds must be non-empty")
        if not 0 <= self.sa1_fraction <= 1:
            raise ValueError(f"sa1_fraction must be in [0, 1], got {self.sa1_fraction}")
        for rate in self.saf_rates:
            if not 0 <= rate <= 1:
                raise ValueError(f"saf rates must be in [0, 1], got {rate}")
        if self.spare_columns < 0:
            raise ValueError(f"spare_columns must be >= 0, got {self.spare_columns}")
        if self.ensemble_k < 1:
            raise ValueError(f"ensemble_k must be >= 1, got {self.ensemble_k}")

    def fault_model(self, rate: float, seed: int) -> FaultModel:
        """The grid point's fault model (rates split, seed attached)."""
        return FaultModel(
            stuck_on_rate=rate * self.sa1_fraction,
            stuck_off_rate=rate * (1.0 - self.sa1_fraction),
            row_failure_rate=self.row_failure_rate,
            col_failure_rate=self.col_failure_rate,
            seed=seed,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmarks": list(self.benchmarks),
            "saf_rates": list(self.saf_rates),
            "sa1_fraction": self.sa1_fraction,
            "row_failure_rate": self.row_failure_rate,
            "col_failure_rate": self.col_failure_rate,
            "seeds": list(self.seeds),
            "spare_columns": self.spare_columns,
            "ensemble_k": self.ensemble_k,
            "compare_bits": self.compare_bits,
        }


@dataclass
class CampaignRow:
    """One (benchmark, rate, defect seed, mitigation) measurement."""

    benchmark: str
    saf_rate: float
    defect_seed: int
    mitigation: str
    error: float
    clean_error: float
    faulty_cells: int = 0
    total_cells: int = 0
    spares_used: int = 0
    defect_seeds: List[Optional[int]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "saf_rate": self.saf_rate,
            "defect_seed": self.defect_seed,
            "mitigation": self.mitigation,
            "error": self.error,
            "clean_error": self.clean_error,
            "faulty_cells": self.faulty_cells,
            "total_cells": self.total_cells,
            "spares_used": self.spares_used,
            "defect_seeds": list(self.defect_seeds),
        }


@dataclass(frozen=True)
class _CampaignTask:
    """One picklable grid cell (benchmark x rate x defect seed)."""

    benchmark: str
    saf_rate: float
    defect_seed: int
    train_seed: int
    config: CampaignConfig
    scale: ExperimentScale
    chaos_marker: Optional[str] = None
    parent_pid: int = 0


def _maybe_chaos_crash(task: "_CampaignTask") -> None:
    """Forced worker crash: die hard exactly once, only in a worker.

    The marker file is created *before* the kill, so the resubmitted
    task sees it and proceeds — proving retry-after-crash end to end.
    Refuses to kill the parent process (serial/degraded execution).
    """
    if task.chaos_marker is None or os.path.exists(task.chaos_marker):
        return
    if os.getpid() == task.parent_pid:
        _log.warning(
            "chaos crash skipped: task is running in the parent process",
            extra={"fields": {"benchmark": task.benchmark}},
        )
        return
    with open(task.chaos_marker, "w", encoding="utf-8") as handle:
        handle.write(f"killed worker {os.getpid()}\n")
    _log.warning(
        "chaos: killing this worker",
        extra={"fields": {"pid": os.getpid(), "benchmark": task.benchmark}},
    )
    os.kill(os.getpid(), signal.SIGKILL)


def _campaign_cell(task: "_CampaignTask") -> List[CampaignRow]:
    """Train, injure, mitigate and measure one grid cell."""
    _maybe_chaos_crash(task)
    config = task.config
    bench = make_benchmark(task.benchmark)
    data = bench.dataset(
        n_train=train_samples_for(task.benchmark, task.scale),
        n_test=task.scale.n_test,
        seed=task.train_seed,
    )
    cfg = train_config(task.scale, task.train_seed, track_train_loss=False)
    topology = bench.spec.topology
    hidden = PAPER_TABLE1[task.benchmark].pruned_mei.hidden
    mei_config = MEIConfig(topology.inputs, topology.outputs, hidden, topology.bits)
    metric = bench.error_normalized
    model = config.fault_model(task.saf_rate, task.defect_seed)
    with span(
        "campaign_cell", benchmark=task.benchmark, saf_rate=task.saf_rate,
        defect_seed=task.defect_seed,
    ) as sp:
        mei = MEI(mei_config, seed=task.train_seed).train(
            data.x_train, data.y_train, cfg
        )
        clean = predicted_error(mei, data.x_test, data.y_test, metric)

        snapshot = mei.analog.conductance_snapshot()
        injection = inject_faults_analog_report(mei.analog, model)
        error_none = predicted_error(mei, data.x_test, data.y_test, metric)

        repairs = mei.analog.repair_with_spares(
            injection.defect_maps, snapshot, config.spare_columns
        )
        error_remap = predicted_error(mei, data.x_test, data.y_test, metric)
        spares_used = sum(r.spares_used for r in repairs)

        saab = fault_aware_saab(
            mei_config, model, config.ensemble_k,
            seed=task.train_seed, compare_bits=config.compare_bits,
        ).train(data.x_train, data.y_train, cfg)
        error_retrain = predicted_error(saab, data.x_test, data.y_test, metric)
        retrain_seeds: List[Optional[int]] = []
        for learner in saab.learners:
            chip_injection = getattr(learner, "last_injection", None)
            if chip_injection is not None:
                retrain_seeds.append(chip_injection.model.seed)
        sp.set(clean=clean, none=error_none, remap=error_remap, retrain=error_retrain)
    obs_metrics.counter("campaign_cells").inc()

    def row(mitigation: str, error: float, spares: int,
            seeds: List[Optional[int]]) -> CampaignRow:
        return CampaignRow(
            benchmark=task.benchmark,
            saf_rate=task.saf_rate,
            defect_seed=task.defect_seed,
            mitigation=mitigation,
            error=error,
            clean_error=clean,
            faulty_cells=injection.faulty_cells,
            total_cells=injection.total_cells,
            spares_used=spares,
            defect_seeds=seeds,
        )

    return [
        row("none", error_none, 0, list(injection.array_seeds)),
        row("remap", error_remap, spares_used, list(injection.array_seeds)),
        row("retrain", error_retrain, 0, retrain_seeds),
    ]


@dataclass
class CampaignResult:
    """All campaign rows plus the resilience telemetry behind them."""

    config: CampaignConfig
    scale: ExperimentScale
    rows: List[CampaignRow] = field(default_factory=list)
    resilience: Optional[ResilienceReport] = None

    def mean_error(self, benchmark: str, rate: float, mitigation: str) -> float:
        values = [
            r.error for r in self.rows
            if (r.benchmark, r.mitigation) == (benchmark, mitigation)
            and r.saf_rate == rate
        ]
        if not values:
            raise KeyError(f"no rows for ({benchmark}, {rate}, {mitigation})")
        return float(sum(values) / len(values))

    def recovery(self, benchmark: str, rate: float, mitigation: str) -> float:
        """Fraction of the fault-induced error recovered by a mitigation.

        ``1.0`` = back to the clean error, ``0.0`` = no better than
        unmitigated, negative = worse than unmitigated.  Cells whose
        faults cost nothing report ``0.0``.
        """
        none = self.mean_error(benchmark, rate, "none")
        cleans = [r.clean_error for r in self.rows
                  if r.benchmark == benchmark and r.saf_rate == rate]
        clean = float(sum(cleans) / max(1, len(cleans)))
        loss = none - clean
        if loss <= 1e-12:
            return 0.0
        return float((none - self.mean_error(benchmark, rate, mitigation)) / loss)

    def mitigation_table(self) -> List[Dict[str, object]]:
        """Seed-averaged comparison: one dict per (benchmark, rate)."""
        table: List[Dict[str, object]] = []
        for benchmark in self.config.benchmarks:
            for rate in self.config.saf_rates:
                entry: Dict[str, object] = {
                    "benchmark": benchmark,
                    "saf_rate": rate,
                    "seeds": len(self.config.seeds),
                }
                for mitigation in MITIGATIONS:
                    entry[f"error_{mitigation}"] = self.mean_error(
                        benchmark, rate, mitigation
                    )
                for mitigation in ("remap", "retrain"):
                    entry[f"recovery_{mitigation}"] = self.recovery(
                        benchmark, rate, mitigation
                    )
                table.append(entry)
        return table

    def render(self) -> str:
        headers = ["benchmark", "rate", "err none", "err remap", "err retrain",
                   "rec remap", "rec retrain"]
        rows = [
            [e["benchmark"], f"{e['saf_rate']:.2f}", e["error_none"],
             e["error_remap"], e["error_retrain"],
             e["recovery_remap"], e["recovery_retrain"]]
            for e in self.mitigation_table()
        ]
        lines = [
            "Fault-injection campaign — seed-averaged error by mitigation",
            f"(scale {self.scale.name}: {len(self.rows)} rows, "
            f"{len(self.config.seeds)} defect seeds, "
            f"{self.config.spare_columns} spare cols/array, "
            f"K={self.config.ensemble_k} retrain ensemble)",
            format_table(headers, rows),
        ]
        if self.resilience is not None:
            rep = self.resilience
            lines.append(
                f"resilience: {rep.tasks} tasks, {rep.retries} retries, "
                f"{rep.timeouts} timeouts, {rep.crashes} crashes, "
                f"degraded={rep.degraded}"
            )
        return "\n".join(lines)

    def row_dicts(self) -> List[Dict[str, object]]:
        return [r.to_dict() for r in self.rows]

    def metrics(self) -> Dict[str, float]:
        """Flat ``faults.<bench>.r<rate>.<mitigation>`` error map."""
        out: Dict[str, float] = {}
        for entry in self.mitigation_table():
            for mitigation in MITIGATIONS:
                key = (f"faults.{entry['benchmark']}."
                       f"r{entry['saf_rate']:g}.{mitigation}")
                out[key] = float(entry[f"error_{mitigation}"])  # type: ignore[arg-type]
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe payload embedded in the run manifest."""
        return {
            "config": self.config.to_dict(),
            "scale": self.scale.name,
            "mitigation_table": self.mitigation_table(),
            "rows": self.row_dicts(),
            "resilience": (
                self.resilience.to_dict() if self.resilience is not None else None
            ),
        }


def run_campaign(
    config: Optional[CampaignConfig] = None,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    workers: Optional[int] = None,
    kind: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    chaos: bool = False,
    chaos_marker: Optional[str] = None,
) -> CampaignResult:
    """Execute a fault-injection campaign on the resilient executor.

    Parameters
    ----------
    config, scale:
        The sweep grid (default :class:`CampaignConfig`) and budget
        (default :data:`FAST_CAMPAIGN_SCALE`).
    seed:
        Training seed shared by every cell, so the defect-map seeds of
        ``config.seeds`` are the only statistical axis.
    workers, kind, policy:
        Resilient-executor knobs (see :func:`repro.parallel.resilient_map`
        and ``REPRO_TASK_TIMEOUT`` / ``REPRO_TASK_RETRIES``).
    chaos:
        Kill the first grid cell's worker (SIGKILL) on its first
        execution — a live drill proving crashed-worker resubmission.
        Requires a process pool; refuses to kill the parent.
    chaos_marker:
        Override the marker-file path the chaos drill uses (a fresh
        temp file by default).
    """
    import tempfile

    config = config if config is not None else CampaignConfig()
    scale = scale if scale is not None else FAST_CAMPAIGN_SCALE
    marker: Optional[str] = None
    if chaos:
        if chaos_marker is not None:
            marker = chaos_marker
        else:
            handle, marker = tempfile.mkstemp(prefix="repro-chaos-")
            os.close(handle)
            os.unlink(marker)
    tasks = [
        _CampaignTask(
            benchmark=benchmark,
            saf_rate=float(rate),
            defect_seed=int(defect_seed),
            train_seed=seed,
            config=config,
            scale=scale,
            chaos_marker=marker if index == 0 else None,
            parent_pid=os.getpid(),
        )
        for index, (benchmark, rate, defect_seed) in enumerate(
            (b, r, s)
            for b in config.benchmarks
            for r in config.saf_rates
            for s in config.seeds
        )
    ]
    _log.info(
        "campaign starting",
        extra={"fields": {"cells": len(tasks), "scale": scale.name,
                          "chaos": chaos, "seed": seed}},
    )
    # Progress gauges the telemetry sampler turns into percent + ETA.
    obs_metrics.gauge("campaign_cells_total").set(len(tasks))
    obs_metrics.gauge("campaign_started_unixtime").set(time.time())
    with span("fault_campaign", cells=len(tasks), scale=scale.name, chaos=chaos):
        outcome = resilient_map(
            _campaign_cell, tasks, workers=workers, kind=kind, policy=policy
        )
    result = CampaignResult(config=config, scale=scale, resilience=outcome.report)
    for cell_rows in outcome.results:
        result.rows.extend(cell_rows)  # type: ignore[arg-type]
    if marker is not None and os.path.exists(marker):
        os.unlink(marker)
    return result
