"""Fault mitigations: spare-column remapping and fault-aware retraining.

Two recovery strategies from the non-ideality-resilient mapping
literature, adapted to this repository's MEI/SAAB systems:

* **Spare-column remapping** (hardware redundancy): post-test, the
  worst defective bitlines of every array are steered onto healthy
  spare columns.  Implemented by
  :meth:`repro.core.deploy.AnalogMLP.repair_with_spares`; this module
  only orchestrates it inside campaign rows.
* **Fault-aware SAAB retraining** (algorithmic): the ensemble is
  retrained *on the faulty chips*.  Each boosted learner deploys onto
  a chip with its own static defect map (:class:`FaultedMEI` injects
  it at every deployment), so Algorithm 1's Line-6 evaluation sees the
  faults and up-weights fault-sensitive samples exactly as it does for
  noise-sensitive ones — and the alpha-weighted vote additionally
  masks whatever a single chip's defects still break.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Optional

import numpy as np

from repro.core.mei import MEI, MEIConfig
from repro.core.saab import SAAB, SAABConfig
from repro.device.faults import FaultModel, InjectionReport, inject_faults_analog_report
from repro.device.rram import HFOX_DEVICE, RRAMDevice
from repro.device.variation import IDEAL, NonIdealFactors
from repro.parallel.seeding import derive_seed
from repro.xbar.mapping import MappingConfig

__all__ = ["FaultedMEI", "chip_fault_model", "fault_aware_saab"]

_CHIP_SEED_SPACE = 7_000_000
"""Spawn-key namespace separating per-chip fault seeds from the
per-array derivation inside one injection (which starts at index 0)."""


def chip_fault_model(model: FaultModel, chip: int) -> FaultModel:
    """The fault model of ensemble chip ``chip``.

    Every physical chip of an ensemble has its *own* defect map, so
    each learner's model gets an independent spawn-key-derived seed.
    An unseeded model stays unseeded (fresh logged entropy per chip).
    """
    if model.seed is None:
        return model
    return dataclasses.replace(
        model, seed=derive_seed(model.seed, _CHIP_SEED_SPACE + chip)
    )


class FaultedMEI(MEI):
    """A MEI deployed on a chip with a fixed defect map.

    Every (re)deployment injects ``fault_model`` into the fresh
    crossbars — the chip's defects are permanent, surviving the
    retraining cycles of a boosting loop.  The last
    :class:`~repro.device.faults.InjectionReport` is kept for
    inspection and manifest capture.
    """

    def __init__(
        self,
        config: MEIConfig,
        fault_model: FaultModel,
        mapping_config: Optional[MappingConfig] = None,
        device: RRAMDevice = HFOX_DEVICE,
        seed: Optional[int] = None,
    ) -> None:
        self.fault_model = fault_model
        self.last_injection: Optional[InjectionReport] = None
        super().__init__(config, mapping_config=mapping_config, device=device, seed=seed)

    def deploy(self) -> None:
        super().deploy()
        if not self.fault_model.is_clean:
            self.last_injection = inject_faults_analog_report(
                self.analog, self.fault_model
            )


def fault_aware_saab(
    mei_config: MEIConfig,
    fault_model: FaultModel,
    n_learners: int,
    seed: int = 0,
    noise: NonIdealFactors = IDEAL,
    compare_bits: int = 5,
    mapping_config: Optional[MappingConfig] = None,
    device: RRAMDevice = HFOX_DEVICE,
) -> SAAB:
    """An untrained SAAB whose learners live on faulty chips.

    Training it runs Algorithm 1 with the defect maps injected during
    every boosting round: learner ``k`` trains in software, deploys
    onto chip ``k`` (whose defects :class:`FaultedMEI` injects), and is
    evaluated *on that chip* for the Line-6 error that drives the
    sample re-weighting.  Pass ``noise`` to additionally inject the
    statistical factors during those evaluations (the paper's SAAB),
    on top of the hard faults.
    """
    if n_learners < 1:
        raise ValueError(f"n_learners must be >= 1, got {n_learners}")

    def factory(k: int) -> FaultedMEI:
        return FaultedMEI(
            mei_config,
            chip_fault_model(fault_model, k),
            mapping_config=mapping_config,
            device=device,
            seed=seed + 1 + k,
        )

    return SAAB(
        factory,
        SAABConfig(
            n_learners=n_learners,
            compare_bits=compare_bits,
            noise=noise,
            seed=seed,
        ),
    )


def predicted_error(
    system: Any,
    x: np.ndarray,
    y: np.ndarray,
    metric: Callable[[np.ndarray, np.ndarray], float],
) -> float:
    """One deterministic evaluation of a deployed system's error."""
    return float(metric(system.predict(x), y))
