"""Opt-in runtime sanitizer: cheap guards at the analog stage seams.

The static rules (``repro.lintrules``) prove structural invariants;
this package checks the *numeric* ones the paper's Eq. 5 error model
silently assumes — values stay finite through DAC → crossbar →
comparator/ADC, programmed conductances stay inside the device window,
SHM-fanned arrays are never mutated mid-sweep, and one
``np.random.Generator`` is never driven from several threads (which
the logged-seed replay contract cannot survive).

Everything is gated behind the ``REPRO_SANITIZE`` knob and costs one
cached boolean check when off.  When a guard trips it **records a
finding** (process-local list + the ``sanitize_findings`` counter,
exposed as ``repro_sanitize_findings_total`` over OpenMetrics, + a
structured log warning) instead of raising: a fault campaign that
deliberately injects NaNs should complete, and the findings list tells
the harness — and the CI sanitize leg — exactly what fired where.

Usage::

    REPRO_SANITIZE=1 python -m pytest -x -q      # CI leg: assert no findings

    from repro.sanitize import findings, reset
    reset()
    ...  # run the pipeline
    assert findings() == []
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import knobs
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics

__all__ = [
    "MAX_FINDINGS",
    "SANITIZE_ENV",
    "SanitizeFinding",
    "enabled",
    "findings",
    "record",
    "reset",
    "set_enabled",
]

SANITIZE_ENV = "REPRO_SANITIZE"
"""Set to ``1`` to arm the runtime sanitizer guards."""

MAX_FINDINGS = 1000
"""Findings kept in memory; the counter keeps counting beyond this."""

_log = obs_log.get_logger("sanitize")

_lock = threading.Lock()
_enabled: Optional[bool] = None
_findings: List["SanitizeFinding"] = []


@dataclass(frozen=True)
class SanitizeFinding:
    """One tripped guard."""

    stage: str
    """Pipeline stage that tripped (``trainer``, ``crossbar``, ``shm``...)."""
    kind: str
    """Guard family: ``non-finite`` / ``range`` / ``shm-mutated`` /
    ``rng-shared``."""
    detail: str
    """Human-readable description with the offending values."""
    fields: Dict[str, object] = field(default_factory=dict)

    def format(self) -> str:
        return f"[{self.stage}] {self.kind}: {self.detail}"


def enabled() -> bool:
    """Whether the sanitizer is armed (REPRO_SANITIZE, cached)."""
    global _enabled
    if _enabled is None:
        _enabled = knobs.get_bool(SANITIZE_ENV)
    return _enabled


def set_enabled(on: Optional[bool]) -> None:
    """Force the sanitizer on/off; ``None`` re-resolves from the knob."""
    global _enabled
    _enabled = on if on is None else bool(on)


def record(stage: str, kind: str, detail: str, **fields: object) -> SanitizeFinding:
    """Record one finding (list + counter + log warning); never raises."""
    finding = SanitizeFinding(stage=stage, kind=kind, detail=detail, fields=dict(fields))
    with _lock:
        if len(_findings) < MAX_FINDINGS:
            _findings.append(finding)
    obs_metrics.counter("sanitize_findings").inc()
    _log.warning(
        "sanitizer guard tripped: %s",
        finding.format(),
        extra={"fields": {"stage": stage, "kind": kind, **fields}},
    )
    return finding


def findings() -> List[SanitizeFinding]:
    """Snapshot of the findings recorded so far in this process."""
    with _lock:
        return list(_findings)


def reset() -> None:
    """Clear findings and per-run guard state (tests, new runs)."""
    from repro.sanitize import guards, rng

    global _enabled
    with _lock:
        _findings.clear()
    _enabled = None
    rng._reset()
    guards._reset()


from repro.sanitize.guards import (  # noqa: E402  (public re-exports)
    check_finite,
    check_range,
    verify_buffer,
    watch_buffer,
)
from repro.sanitize.rng import note_rng, scan_items  # noqa: E402

__all__ += [
    "check_finite",
    "check_range",
    "note_rng",
    "scan_items",
    "verify_buffer",
    "watch_buffer",
]
