"""Seed-discipline race detector.

The repo's replay contract (see :mod:`repro.parallel.seeding`) assumes
each :class:`numpy.random.Generator` is consumed by exactly one thread:
a generator's stream is only replayable if the *order* of draws is
deterministic, and two threads interleaving draws on one generator
destroys that order (besides racing the generator's internal state,
which numpy does not lock).

:func:`note_rng` is called from :func:`repro.parallel.seeding.ensure_rng`
— the single chokepoint every seed-or-rng argument flows through — and
from the thread executor's fan-out scan.  Handing a generator from the
main thread to one worker is fine (sequential hand-off); the guard
fires when a generator is *used* from two or more distinct non-main
threads.

``np.random.Generator`` does not support weak references, so the
registry holds strong references in a bounded FIFO map: pathological
programs creating millions of generators evict the oldest entries
rather than leaking.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, Sequence, Set, Tuple

import numpy as np

__all__ = ["note_rng", "scan_items"]

_MAX_TRACKED = 4096

_lock = threading.Lock()
# id(rng) -> (rng, thread names seen, already reported)
_seen: "OrderedDict[int, Tuple[np.random.Generator, Set[str], bool]]" = OrderedDict()


def _thread_name() -> str:
    thread = threading.current_thread()
    if thread is threading.main_thread():
        return "MainThread"
    return f"{thread.name}#{thread.ident}"


def note_rng(rng: np.random.Generator, label: str = "") -> bool:
    """Record that ``rng`` is about to be used on the current thread.

    Returns ``True`` while the generator's usage is single-threaded
    (or the sanitizer is off).  Records one ``rng-shared`` finding —
    once per generator — when a second worker thread shows up.
    """
    import repro.sanitize as sanitize

    if not sanitize.enabled():
        return True
    # not normalization: ensure_rng itself calls in here, so this guard
    # must tolerate (and ignore) non-Generator values without recursing
    if not isinstance(rng, np.random.Generator):  # repro-lint: disable=RPR005
        return True
    name = _thread_name()
    with _lock:
        entry = _seen.get(id(rng))
        if entry is None:
            while len(_seen) >= _MAX_TRACKED:
                _seen.popitem(last=False)
            _seen[id(rng)] = (rng, {name}, False)
            return True
        kept, threads, reported = entry
        threads.add(name)
        workers = [t for t in threads if t != "MainThread"]
        # main -> one worker hand-off is a sequential transfer and stays
        # replayable; two distinct workers drawing on one generator is not.
        shared = len(workers) >= 2
        if not shared or reported:
            return not shared
        _seen[id(rng)] = (kept, threads, True)
    sanitize.record(
        "rng",
        "rng-shared",
        f"generator{f' ({label})' if label else ''} used from multiple "
        f"threads: {sorted(threads)} — interleaved draws break seed replay",
        label=label,
        threads=sorted(threads),
    )
    return False


def _shallow_generators(item: object) -> Iterator[np.random.Generator]:
    """Generators in a task payload: the item itself, or one container deep."""
    if isinstance(item, np.random.Generator):
        yield item
        return
    values: Iterable[object] = ()
    if isinstance(item, (tuple, list, set)):
        values = item
    elif isinstance(item, dict):
        values = item.values()
    for value in values:
        if isinstance(value, np.random.Generator):
            yield value


def scan_items(stage: str, items: Sequence[object]) -> bool:
    """Flag a Generator shipped inside two or more fan-out payloads.

    Called by the thread executor before submitting: each payload runs
    on its own worker thread, so one generator appearing in two items
    *will* be drawn from two threads — catch it at submission, before
    the interleaving scrambles the streams.  Returns ``True`` when the
    payloads are disjoint (or the sanitizer is off).
    """
    import repro.sanitize as sanitize

    if not sanitize.enabled():
        return True
    counts: Dict[int, int] = {}
    keep: Dict[int, np.random.Generator] = {}
    for item in items:
        for rng in {id(g): g for g in _shallow_generators(item)}.values():
            counts[id(rng)] = counts.get(id(rng), 0) + 1
            keep[id(rng)] = rng
    clean = True
    for rng_id, count in counts.items():
        if count >= 2:
            clean = False
            sanitize.record(
                stage,
                "rng-shared",
                f"one generator shipped in {count} of {len(items)} parallel "
                "task payloads — each worker thread would interleave draws "
                "on the same stream",
                payloads=count,
                tasks=len(items),
            )
    return clean


def _reset() -> None:
    with _lock:
        _seen.clear()
