"""Numeric and buffer guards for the runtime sanitizer.

Each guard early-returns when :func:`repro.sanitize.enabled` is false,
so a disabled sanitizer costs one cached boolean test per call site.
Guards record findings through :func:`repro.sanitize.record` instead of
raising — see the package docstring for why.
"""

from __future__ import annotations

import hashlib
import threading
import types
from collections import OrderedDict
from typing import Tuple

import numpy as np

__all__ = ["check_finite", "check_range", "verify_buffer", "watch_buffer"]

_MAX_WATCHED = 4096

_watch_lock = threading.Lock()
_watched: "OrderedDict[str, Tuple[str, Tuple[int, ...]]]" = OrderedDict()


def _sanitize() -> types.ModuleType:
    """The package root, imported lazily (guards load during its init)."""
    import repro.sanitize as sanitize

    return sanitize


def _digest(array: np.ndarray) -> str:
    data = np.ascontiguousarray(array)
    return hashlib.blake2b(data.tobytes(), digest_size=16).hexdigest()


def check_finite(stage: str, name: str, array: np.ndarray) -> bool:
    """Record a finding if ``array`` contains NaN or Inf.

    Returns ``True`` when the array is clean (or the sanitizer is off),
    so call sites can gate optional recovery logic on the result.
    """
    sanitize = _sanitize()
    if not sanitize.enabled():
        return True
    values = np.asarray(array)
    if values.size == 0 or not np.issubdtype(values.dtype, np.number):
        return True
    finite = np.isfinite(values)
    if bool(finite.all()):
        return True
    bad = int(values.size - int(finite.sum()))
    nan_count = int(np.isnan(values).sum())
    sanitize.record(
        stage,
        "non-finite",
        f"{name}: {bad}/{values.size} non-finite values "
        f"({nan_count} NaN, {bad - nan_count} Inf)",
        name=name,
        bad=bad,
        size=int(values.size),
    )
    return False


def check_range(
    stage: str,
    name: str,
    array: np.ndarray,
    lo: float,
    hi: float,
    rtol: float = 1e-9,
) -> bool:
    """Record a finding if any element leaves ``[lo, hi]``.

    Used for programmed conductances: after mapping, every device must
    sit inside the physical ``[g_off, g_on]`` window (a value outside
    it is not programmable on real hardware, so the simulated accuracy
    would be fiction).  ``rtol`` absorbs float round-off at the window
    edges.
    """
    sanitize = _sanitize()
    if not sanitize.enabled():
        return True
    values = np.asarray(array)
    if values.size == 0:
        return True
    slack = rtol * max(abs(lo), abs(hi), 1.0)
    outside = (values < lo - slack) | (values > hi + slack)
    if not bool(outside.any()):
        return True
    count = int(outside.sum())
    worst = float(values[outside].flat[np.argmax(np.abs(values[outside] - (lo + hi) / 2))])
    sanitize.record(
        stage,
        "range",
        f"{name}: {count}/{values.size} values outside [{lo:.4g}, {hi:.4g}] "
        f"(worst {worst:.6g})",
        name=name,
        count=count,
        lo=lo,
        hi=hi,
        worst=worst,
    )
    return False


def watch_buffer(stage: str, name: str, array: np.ndarray) -> None:
    """Checksum a buffer that must stay immutable (e.g. an SHM segment).

    Call once after publishing the buffer; :func:`verify_buffer` with
    the same ``name`` later detects any write that happened in between.
    """
    sanitize = _sanitize()
    if not sanitize.enabled():
        return
    values = np.asarray(array)
    with _watch_lock:
        while len(_watched) >= _MAX_WATCHED:
            _watched.popitem(last=False)
        _watched[name] = (_digest(values), tuple(values.shape))


def verify_buffer(stage: str, name: str, array: np.ndarray) -> bool:
    """Record a finding if a watched buffer changed since :func:`watch_buffer`."""
    sanitize = _sanitize()
    if not sanitize.enabled():
        return True
    with _watch_lock:
        expected = _watched.get(name)
    if expected is None:
        return True
    values = np.asarray(array)
    if _digest(values) == expected[0] and tuple(values.shape) == expected[1]:
        return True
    sanitize.record(
        stage,
        "shm-mutated",
        f"{name}: buffer contents changed while shared "
        f"(shape {tuple(values.shape)}, expected shape {expected[1]})",
        name=name,
    )
    return False


def _reset() -> None:
    with _watch_lock:
        _watched.clear()
