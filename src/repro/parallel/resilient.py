"""Campaign-grade resilient map: timeouts, retries, crash resubmission.

The plain executors in :mod:`repro.parallel.executor` assume a polite
world: every task returns, no worker dies, nothing hangs.  Long
fault-injection campaigns (:mod:`repro.robustness`) cannot — a sweep
that trains hundreds of small systems must survive a worker being
OOM-killed at hour three.  :func:`resilient_map` wraps the same
order-preserving ``map`` contract with:

* **stall timeout** — if *no* task completes within
  ``REPRO_TASK_TIMEOUT`` seconds, the pool is declared hung, torn
  down, and its unfinished tasks resubmitted to a fresh pool.  The
  window resets on every completion, so a long queue behind a slow
  pool never trips it; only genuine no-progress does.
* **bounded retry with exponential backoff** — a task that raises is
  re-executed up to ``REPRO_TASK_RETRIES`` times, sleeping
  ``backoff * 2^attempt`` between rounds.
* **crashed-worker detection** — a ``BrokenProcessPool`` (worker
  killed mid-task) charges one attempt to every unfinished task
  (the culprit cannot be identified from the parent), rebuilds the
  pool, and resubmits.
* **graceful degradation to serial** — tasks that exhaust their
  budget, non-picklable work, or a pool that keeps breaking all fall
  back to in-parent serial execution, logged and recorded in a span,
  so the campaign *completes* (a task that still fails serially
  raises :class:`TaskError` with the real cause chained).

Results keep input order and the serial/parallel bit-identity
guarantee of the plain executors — resilience only changes *where*
a task runs, never its seeds.  Caveats: the stall timeout needs a
pool (serial runs cannot be interrupted), and a task that kills its
own process will kill the campaign if it degrades to the in-parent
serial path — by then it has already murdered ``retries`` workers,
so the loud death is deliberate.
"""

from __future__ import annotations

import time
import warnings
from concurrent import futures as cf
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.config import knobs
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.log import get_logger
from repro.parallel.executor import (
    EXECUTOR_ENV,
    ProcessExecutor,
    _ObsTask,
    _TaskOutcome,
    resolve_workers,
)

__all__ = [
    "TASK_TIMEOUT_ENV",
    "TASK_RETRIES_ENV",
    "RetryPolicy",
    "TaskError",
    "ResilienceReport",
    "ResilientResult",
    "resilient_map",
]

TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"
"""Environment knob: stall timeout in seconds (unset = wait forever)."""

TASK_RETRIES_ENV = "REPRO_TASK_RETRIES"
"""Environment knob: per-task re-execution budget (default 2)."""

T = TypeVar("T")
R = TypeVar("R")

_log = get_logger("parallel.resilient")


@dataclass(frozen=True)
class RetryPolicy:
    """Failure-handling knobs for one resilient map.

    Parameters
    ----------
    timeout:
        Stall timeout in seconds: if no task completes within this
        window the pool is rebuilt and unfinished tasks resubmitted.
        ``None`` waits forever (retry/crash handling still applies).
    retries:
        Re-executions granted to each task after its first failure
        before it degrades to the serial fallback.
    backoff:
        Base sleep between failure rounds; doubles each round.
    max_backoff:
        Upper bound on one backoff sleep.
    max_pool_rebuilds:
        Pool incidents (crash or stall) tolerated before the whole
        remaining workload degrades to serial.
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.05
    max_backoff: float = 2.0
    max_pool_rebuilds: int = 3

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff values must be >= 0")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")

    @classmethod
    def from_env(
        cls,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> "RetryPolicy":
        """Policy from ``REPRO_TASK_TIMEOUT`` / ``REPRO_TASK_RETRIES``.

        Explicit arguments override the environment, which overrides
        the dataclass defaults.
        """
        if timeout is None:
            timeout = knobs.get_float(TASK_TIMEOUT_ENV)
        env_retries = knobs.get_int(TASK_RETRIES_ENV)
        if retries is None:
            retries = env_retries if env_retries is not None else 2
        return cls(timeout=timeout, retries=retries)

    def sleep_for(self, round_index: int) -> float:
        """Backoff before failure round ``round_index`` (0-based)."""
        if self.backoff == 0:
            return 0.0
        return float(min(self.backoff * (2 ** round_index), self.max_backoff))


class TaskError(RuntimeError):
    """A task failed terminally, even on the serial fallback path."""

    def __init__(self, index: int, attempts: int, cause: BaseException):
        super().__init__(
            f"task {index} failed after {attempts} attempt(s): {cause!r}"
        )
        self.index = index
        self.attempts = attempts
        self.__cause__ = cause


@dataclass
class ResilienceReport:
    """Telemetry of one resilient map (embedded in campaign manifests)."""

    tasks: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    pool_rebuilds: int = 0
    serial_fallback_tasks: int = 0
    degraded: bool = False
    events: List[str] = field(default_factory=list)

    def record(self, event: str) -> None:
        self.events.append(event)
        _log.warning("resilience event", extra={"fields": {"event": event}})

    def to_dict(self) -> Dict[str, object]:
        return {
            "tasks": self.tasks,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "pool_rebuilds": self.pool_rebuilds,
            "serial_fallback_tasks": self.serial_fallback_tasks,
            "degraded": self.degraded,
            "events": list(self.events),
        }


@dataclass
class ResilientResult:
    """Ordered results plus the resilience telemetry that produced them."""

    results: List[object]
    report: ResilienceReport

    def __iter__(self):  # pragma: no cover - convenience
        return iter(self.results)


def _absorb(outcome: _TaskOutcome) -> object:
    """Unwrap one worker outcome, folding its telemetry into-process."""
    obs_metrics.histogram("executor_queue_wait_seconds").observe(outcome.queue_wait)
    obs_metrics.histogram("executor_task_seconds").observe(outcome.exec_seconds)
    if outcome.spans:
        obs_trace.absorb(outcome.spans)
    if outcome.metrics:
        obs_metrics.merge(outcome.metrics)
    obs_metrics.counter("executor_tasks").inc()
    return outcome.result


def _serial_attempts(
    fn: Callable[[T], R],
    item: T,
    index: int,
    prior_attempts: int,
    policy: RetryPolicy,
    report: ResilienceReport,
) -> R:
    """Run one task in-parent, honoring the remaining retry budget."""
    attempts = prior_attempts
    while True:
        try:
            return fn(item)
        except Exception as exc:
            attempts += 1
            if attempts > policy.retries:
                raise TaskError(index, attempts, exc) from exc
            report.retries += 1
            report.record(f"task {index} raised {type(exc).__name__}; "
                          f"retry {attempts}/{policy.retries}")
            time.sleep(policy.sleep_for(attempts - 1))


def _serial_fallback(
    fn: Callable[[T], R],
    items: Sequence[T],
    results: List[object],
    leftover: Dict[int, int],
    policy: RetryPolicy,
    report: ResilienceReport,
) -> None:
    """Degraded path: run the surviving tasks in the parent process."""
    report.degraded = True
    report.serial_fallback_tasks += len(leftover)
    obs_metrics.counter("resilient_serial_fallback").inc(len(leftover))
    report.record(f"degrading {len(leftover)} task(s) to the serial executor")
    with obs_trace.span("resilient_serial_fallback", tasks=len(leftover)):
        for index in sorted(leftover):
            results[index] = _serial_attempts(
                fn, items[index], index, leftover[index], policy, report
            )


def _pooled(
    fn: Callable[[T], R],
    items: Sequence[T],
    results: List[object],
    workers: int,
    kind: str,
    policy: RetryPolicy,
    report: ResilienceReport,
) -> Dict[int, int]:
    """Pool rounds with stall/crash handling.

    Returns the tasks (index -> attempts so far) that must degrade to
    the serial fallback; everything else has its result in ``results``.
    """
    pending: Dict[int, int] = {i: 0 for i in range(len(items))}
    leftover: Dict[int, int] = {}
    depth = obs_metrics.gauge("executor_queue_depth")
    incidents = 0
    failure_rounds = 0
    while pending:
        if incidents > policy.max_pool_rebuilds:
            report.record(
                f"pool broke/stalled {incidents} times "
                f"(max {policy.max_pool_rebuilds}); abandoning pooling"
            )
            leftover.update(pending)
            pending.clear()
            break
        pool_cls = (
            cf.ThreadPoolExecutor if kind == "thread" else cf.ProcessPoolExecutor
        )
        pool = pool_cls(max_workers=min(workers, len(pending)))
        task = _ObsTask(fn)
        future_index = {pool.submit(task, items[i]): i for i in sorted(pending)}
        in_flight = len(future_index)
        depth.add(in_flight)
        incident = None  # "crash" | "stall"
        retriers: Dict[int, int] = {}
        try:
            waiting = set(future_index)
            while waiting:
                done, waiting = cf.wait(
                    waiting, timeout=policy.timeout,
                    return_when=cf.FIRST_COMPLETED,
                )
                if not done:
                    incident = "stall"
                    report.timeouts += 1
                    obs_metrics.counter("resilient_timeouts").inc()
                    report.record(
                        f"no task completed within {policy.timeout}s; "
                        f"{len(waiting)} unfinished — rebuilding pool"
                    )
                    break
                for future in done:
                    index = future_index[future]
                    in_flight -= 1
                    depth.add(-1)
                    try:
                        outcome = future.result()
                    except cf.BrokenExecutor:
                        incident = "crash"
                        break
                    except Exception as exc:
                        attempts = pending[index] + 1
                        if attempts > policy.retries:
                            leftover[index] = attempts
                            del pending[index]
                            report.record(
                                f"task {index} exhausted {policy.retries} "
                                f"retries ({type(exc).__name__})"
                            )
                        else:
                            pending[index] = attempts
                            retriers[index] = attempts
                            report.retries += 1
                            obs_metrics.counter("resilient_retries").inc()
                            report.record(
                                f"task {index} raised {type(exc).__name__}; "
                                f"retry {attempts}/{policy.retries}"
                            )
                    else:
                        results[index] = _absorb(outcome)
                        del pending[index]
                if incident == "crash":
                    break
        except cf.BrokenExecutor:
            incident = "crash"
        if incident == "crash":
            report.crashes += 1
            obs_metrics.counter("resilient_crashes").inc()
            report.record(
                f"worker crashed (pool broken); resubmitting "
                f"{len(pending)} unfinished task(s)"
            )
        # A hung/broken pool cannot be joined; leave its teardown to
        # the GC and move on (cancel what never started).
        graceful = incident is None
        pool.shutdown(wait=graceful, cancel_futures=True)
        depth.add(-in_flight)  # futures abandoned with the pool
        if incident is not None:
            incidents += 1
            report.pool_rebuilds += 1
            # The culprit cannot be identified from the parent: charge
            # one attempt to every task that was still in flight.
            for index in list(pending):
                attempts = pending[index] + 1
                if attempts > policy.retries:
                    leftover[index] = attempts
                    del pending[index]
                else:
                    pending[index] = attempts
            if pending:
                obs_metrics.counter("resilient_resubmissions").inc(len(pending))
        if pending and (incident is not None or retriers):
            time.sleep(policy.sleep_for(failure_rounds))
            failure_rounds += 1
    return leftover


def resilient_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    kind: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
) -> ResilientResult:
    """Order-preserving map that survives worker failure.

    Resolves ``workers``/``kind`` exactly like
    :func:`repro.parallel.executor.get_executor` and applies ``policy``
    (default: :meth:`RetryPolicy.from_env`).  Always returns all
    results in input order; raises :class:`TaskError` only when a task
    fails even on the serial fallback path.
    """
    items = list(items)
    policy = policy if policy is not None else RetryPolicy.from_env()
    count = resolve_workers(workers)
    resolved = kind if kind is not None else (knobs.get_str(EXECUTOR_ENV) or "process")
    resolved = (resolved.strip() or "process").lower()
    if resolved not in ("serial", "thread", "process"):
        raise ValueError(
            f"unknown executor kind {resolved!r}; use serial, thread or process"
        )
    report = ResilienceReport(tasks=len(items))
    results: List[object] = [None] * len(items)
    with obs_trace.span(
        "resilient_map", tasks=len(items), workers=count, kind=resolved,
        timeout=policy.timeout, retries=policy.retries,
    ) as sp:
        pooled = count > 1 and len(items) > 1 and resolved != "serial"
        if pooled and resolved == "process" and not ProcessExecutor._picklable(fn, items):
            warnings.warn(
                "task function or arguments are not picklable; "
                "resilient map degrading to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            report.record("work not picklable; serial from the start")
            pooled = False
            report.degraded = True
        if pooled:
            leftover = _pooled(fn, items, results, count, resolved, policy, report)
            if leftover:
                _serial_fallback(fn, items, results, leftover, policy, report)
        else:
            for index, item in enumerate(items):
                results[index] = _serial_attempts(fn, item, index, 0, policy, report)
        sp.set(
            retries=report.retries, timeouts=report.timeouts,
            crashes=report.crashes, degraded=report.degraded,
        )
    if report.degraded:
        obs_metrics.counter("resilient_degraded_maps").inc()
    return ResilientResult(results=results, report=report)
