"""Zero-copy ndarray transport for process pools (``REPRO_SHM``).

:class:`~repro.parallel.executor.ProcessExecutor` normally pickles the
task function and every item into each worker task, so a sweep that
fans one large read-only array (a dataset, a conductance matrix, a
deployed model) out to ``N`` workers serializes and copies it ``N``
times.  This module replaces those copies with POSIX shared memory:

* the parent pickles payloads with a :class:`pickle.Pickler` whose
  ``persistent_id`` hook intercepts every large ``np.ndarray`` and
  swaps it for a tiny :class:`ShmRef` handle backed by a
  :class:`multiprocessing.shared_memory.SharedMemory` segment (written
  once, deduplicated per session);
* workers resolve each handle back into a **read-only** ndarray view
  of the mapped segment — no copy, no deserialization of the bulk
  data.

The transport is opt-in via the ``REPRO_SHM`` knob (default off)
because it changes one observable contract: arrays that crossed the
boundary arrive as read-only views, so tasks must not mutate their
inputs.  Sweep tasks are pure by convention (see
:mod:`repro.parallel.executor`), which is why the default pickling
path and the shared-memory path return bit-identical results.

Lifetime: the parent-side :class:`ShmSession` owns every segment it
created and unlinks them when closed (the executor closes it after the
map completes).  Workers unregister attached segments from the
``resource_tracker`` so the tracker does not unlink storage it does
not own (bpo-39959); Linux keeps unlinked segments alive while mapped.
"""

from __future__ import annotations

import hashlib
import io
import multiprocessing
import pickle
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, NamedTuple, Optional, Tuple

import numpy as np

from repro.config import knobs
from repro.obs import metrics as obs_metrics
from repro.sanitize import guards as sanitize_guards

__all__ = [
    "SHM_ENV",
    "SHM_MIN_BYTES",
    "ShmRef",
    "ShmSession",
    "ShmCall",
    "shm_enabled",
    "dumps",
    "loads",
]

SHM_ENV = "REPRO_SHM"
"""Knob enabling the shared-memory transport (default off)."""

SHM_MIN_BYTES = 1 << 16
"""Arrays smaller than this (64 KiB) pickle inline; the segment setup
cost only pays off for bulk payloads."""

_PID_TAG = "repro-shm"


def shm_enabled() -> bool:
    """True when ``REPRO_SHM`` selects the shared-memory transport."""
    return knobs.get_bool(SHM_ENV)


class ShmRef(NamedTuple):
    """Picklable handle to an ndarray stored in a shared segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


class ShmSession:
    """Parent-side owner of the segments backing one executor map.

    ``share`` copies an array into a fresh segment (once per distinct
    array — repeated appearances of the same buffer reuse the same
    segment) and returns its :class:`ShmRef`.  ``close`` unlinks every
    segment the session created.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self._refs: list[ShmRef] = []
        self._by_buffer: Dict[Tuple[int, int, str, Tuple[int, ...]], ShmRef] = {}

    def share(self, array: np.ndarray) -> ShmRef:
        contiguous = np.ascontiguousarray(array)
        key = (
            contiguous.__array_interface__["data"][0],
            contiguous.nbytes,
            str(contiguous.dtype),
            contiguous.shape,
        )
        cached = self._by_buffer.get(key)
        if cached is not None:
            return cached
        # segment lifetime spans the whole sweep, not this call: the
        # owning ShmSession (itself context-managed) unlinks in close()
        segment = shared_memory.SharedMemory(create=True, size=contiguous.nbytes)  # repro-lint: disable=RPR010
        view = np.ndarray(contiguous.shape, dtype=contiguous.dtype, buffer=segment.buf)
        view[...] = contiguous
        self._segments.append(segment)
        ref = ShmRef(segment.name, contiguous.shape, str(contiguous.dtype))
        self._refs.append(ref)
        self._by_buffer[key] = ref
        # Read-only contract: the fanned-out segment must come back
        # bit-identical at close() (workers get non-writeable views,
        # but nothing stops a worker from re-flagging one).
        sanitize_guards.watch_buffer("shm", ref.name, view)
        obs_metrics.counter("shm_segments").inc()
        obs_metrics.counter("shm_bytes").inc(contiguous.nbytes)
        obs_metrics.gauge("shm_active_bytes").add(contiguous.nbytes)
        return ref

    def close(self) -> None:
        released = 0
        for segment, ref in zip(self._segments, self._refs):
            try:
                view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf)
                sanitize_guards.verify_buffer("shm", ref.name, view)
                del view
            except Exception:  # pragma: no cover - segment already torn down
                pass
            try:
                released += segment.size
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        if released:
            obs_metrics.gauge("shm_active_bytes").add(-released)
        self._segments.clear()
        self._refs.clear()
        self._by_buffer.clear()

    def __enter__(self) -> "ShmSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class _ShmPickler(pickle.Pickler):
    """Pickler that diverts large ndarrays into shared memory."""

    def __init__(self, file: io.BytesIO, session: ShmSession, min_bytes: int):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._session = session
        self._min_bytes = min_bytes

    def persistent_id(self, obj: Any) -> Optional[Tuple[str, ShmRef]]:
        if isinstance(obj, np.ndarray) and obj.nbytes >= self._min_bytes:
            return (_PID_TAG, self._session.share(obj))
        return None


def dumps(obj: Any, session: ShmSession, min_bytes: int = SHM_MIN_BYTES) -> bytes:
    """Pickle ``obj``, diverting large arrays into ``session`` segments."""
    buffer = io.BytesIO()
    _ShmPickler(buffer, session, min_bytes).dump(obj)
    return buffer.getvalue()


# -- worker side -------------------------------------------------------

# Attached segments are cached (and kept referenced, which keeps the
# mapping alive) for the lifetime of the worker process.
_attached: Dict[str, shared_memory.SharedMemory] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    segment = _attached.get(name)
    if segment is None:
        # worker-side attachment is deliberately process-lived (cached in
        # _attached so views stay backed); the parent unlinks the storage
        segment = shared_memory.SharedMemory(name=name)  # repro-lint: disable=RPR010
        # Attaching registered the segment with a resource tracker.
        # Fork-started workers share the parent's tracker, where the
        # name is already registered (registration is a set add), so
        # the parent's unlink balances it.  Spawn-started workers run
        # their own tracker, which would unlink the parent's storage
        # at worker exit (bpo-39959) — unregister there.
        if multiprocessing.get_start_method(allow_none=True) != "fork":
            try:
                resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
            except Exception:  # pragma: no cover - tracker internals moved
                pass
        _attached[name] = segment
    return segment


class _ShmUnpickler(pickle.Unpickler):
    def persistent_load(self, pid: Tuple[str, ShmRef]) -> np.ndarray:
        tag, ref = pid
        if tag != _PID_TAG:  # pragma: no cover - foreign persistent id
            raise pickle.UnpicklingError(f"unknown persistent id tag {tag!r}")
        ref = ShmRef(*ref)
        segment = _attach(ref.name)
        view: np.ndarray = np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf
        )
        view.flags.writeable = False
        return view


def loads(blob: bytes) -> Any:
    """Unpickle a :func:`dumps` payload, resolving refs to shm views."""
    return _ShmUnpickler(io.BytesIO(blob)).load()


_task_cache: Dict[bytes, Any] = {}


def _cached_task(blob: bytes) -> Any:
    key = hashlib.blake2b(blob, digest_size=16).digest()
    task = _task_cache.get(key)
    if task is None:
        task = loads(blob)
        _task_cache.clear()  # one live task per pool; don't hoard old ones
        _task_cache[key] = task
    return task


class ShmCall(object):
    """Worker-side trampoline: blobs in, ordinary task call out.

    Both the wrapped task function and each item travel as
    shared-memory-aware pickles; the task blob is decoded once per
    worker process and cached.
    """

    __slots__ = ("task_blob",)

    def __init__(self, task_blob: bytes):
        self.task_blob = task_blob

    def __call__(self, item_blob: bytes) -> Any:
        task = _cached_task(self.task_blob)
        return task(loads(item_blob))
