"""Executor abstraction for embarrassingly-parallel sweeps.

The evaluation plane of this repository — Monte-Carlo robustness
statistics, DSE hidden-size ladders, seed repeats, per-benchmark
experiment rows — is a set of pure, independent tasks.  This module
provides a minimal, deterministic ``map`` abstraction over them:

* :class:`SerialExecutor` — the reference implementation (a list
  comprehension);
* :class:`ThreadExecutor` — threads; useful when the work releases the
  GIL (large NumPy matmuls, the MNA sparse solves);
* :class:`ProcessExecutor` — a :class:`concurrent.futures.ProcessPoolExecutor`
  for Python-bound work (training loops).  Falls back to serial
  execution, with a warning, when the task function or its arguments
  cannot be pickled — results are identical either way because tasks
  are pure.

Worker counts resolve from (in priority order) an explicit argument,
the ``REPRO_WORKERS`` environment variable, and a serial default of 1;
the executor kind resolves from ``REPRO_EXECUTOR``
(``serial`` / ``thread`` / ``process``).  All executors preserve input
order, so parallel and serial runs return bit-identical result lists
for deterministic tasks.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

from repro.config import knobs
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.log import get_logger

__all__ = [
    "WORKERS_ENV",
    "EXECUTOR_ENV",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "resolve_workers",
    "get_executor",
    "parallel_map",
]

WORKERS_ENV = "REPRO_WORKERS"
"""Environment variable holding the default worker count."""

EXECUTOR_ENV = "REPRO_EXECUTOR"
"""Environment variable selecting the executor kind for multi-worker
runs: ``serial``, ``thread`` or ``process`` (default ``process``)."""

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``REPRO_WORKERS`` > 1."""
    if workers is None:
        raw = (knobs.get_raw(WORKERS_ENV) or "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            warnings.warn(
                f"ignoring non-integer {WORKERS_ENV}={raw!r}; running serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


_log = get_logger("parallel")


@dataclass
class _TaskOutcome:
    """A worker's result plus the telemetry it produced."""

    result: object
    queue_wait: float
    exec_seconds: float
    spans: Optional[List[obs_trace.SpanRecord]] = None
    metrics: Optional[Dict[str, Dict[str, object]]] = field(default=None)


class _ObsTask:
    """Task wrapper adding per-task telemetry to a pool map.

    Measures queue wait (submit -> start) and execute time, and — when
    the task runs in a *different process* — ships the spans and
    metric deltas the task produced back to the parent, which absorbs
    them so parallel sweeps and serial runs report the same tree and
    totals.  Picklable exactly when the wrapped ``fn`` is.
    """

    __slots__ = ("fn", "parent_pid", "context", "trace_on", "enqueued")

    def __init__(self, fn: Callable):
        self.fn = fn
        self.parent_pid = os.getpid()
        self.context = obs_trace.current_path()
        self.trace_on = obs_trace.enabled()
        self.enqueued = time.time()

    def __call__(self, item):
        started = time.time()
        foreign = os.getpid() != self.parent_pid
        span_mark = metrics_before = None
        if self.trace_on:
            if foreign:
                # A spawn-started worker loses the parent's runtime
                # enable flag (fork inherits it); set both either way.
                obs_trace.enable(True)
                span_mark = obs_trace.mark()
            obs_trace.set_context(self.context)
        if foreign:
            metrics_before = obs_metrics.snapshot()
        t0 = time.perf_counter()
        result = self.fn(item)
        exec_seconds = time.perf_counter() - t0
        outcome = _TaskOutcome(
            result=result,
            queue_wait=max(0.0, started - self.enqueued),
            exec_seconds=exec_seconds,
        )
        if foreign:
            if span_mark is not None:
                outcome.spans = obs_trace.records_since(span_mark)
            outcome.metrics = obs_metrics.diff(metrics_before, obs_metrics.snapshot())
        return outcome


def _drain(pool, task: Callable, items: Sequence) -> List[_TaskOutcome]:
    """Consume ``pool.map`` incrementally, tracking live queue depth.

    The ``executor_queue_depth`` gauge counts tasks submitted but not
    yet yielded; decrementing as the (order-preserving) iterator
    yields lets the telemetry sampler and the ``/metrics`` endpoint
    watch a sweep drain in real time instead of seeing one opaque
    blocking call.
    """
    depth = obs_metrics.gauge("executor_queue_depth")
    depth.add(len(items))
    outcomes: List[_TaskOutcome] = []
    try:
        for outcome in pool.map(task, items):
            outcomes.append(outcome)
            depth.add(-1)
    finally:
        # On an exception (e.g. BrokenProcessPool) the unfinished
        # remainder never yields; settle the gauge before unwinding.
        depth.add(-(len(items) - len(outcomes)))
    return outcomes


def _harvest(
    outcomes: Sequence[_TaskOutcome], workers: int, wall_seconds: float, kind: str
) -> List:
    """Unwrap outcomes, folding worker telemetry into this process."""
    results = []
    busy = 0.0
    queue_hist = obs_metrics.histogram("executor_queue_wait_seconds")
    task_hist = obs_metrics.histogram("executor_task_seconds")
    for outcome in outcomes:
        results.append(outcome.result)
        busy += outcome.exec_seconds
        queue_hist.observe(outcome.queue_wait)
        task_hist.observe(outcome.exec_seconds)
        if outcome.spans:
            obs_trace.absorb(outcome.spans)
        if outcome.metrics:
            obs_metrics.merge(outcome.metrics)
    obs_metrics.counter("executor_tasks").inc(len(outcomes))
    utilization = (
        busy / (workers * wall_seconds) if workers and wall_seconds > 0 else 0.0
    )
    obs_metrics.gauge("executor_utilization").set(utilization)
    if _log.isEnabledFor(10):  # DEBUG
        _log.debug(
            "%s map done",
            kind,
            extra={
                "fields": {
                    "tasks": len(outcomes),
                    "workers": workers,
                    "wall_s": round(wall_seconds, 4),
                    "busy_s": round(busy, 4),
                    "utilization": round(utilization, 3),
                }
            },
        )
    return results


class Executor:
    """Order-preserving ``map`` over independent tasks."""

    workers: int = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """The in-process reference executor."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(item) for item in items]


class ThreadExecutor(Executor):
    """Thread-pool executor for GIL-releasing (NumPy/SciPy-bound) tasks."""

    def __init__(self, workers: int):
        self.workers = resolve_workers(workers)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        from concurrent.futures import ThreadPoolExecutor

        from repro.sanitize import rng as sanitize_rng

        # One generator shipped in two payloads means two worker
        # threads interleaving draws on one stream — flag it before
        # the pool scrambles the evidence.
        sanitize_rng.scan_items("thread-executor", items)
        pool_size = min(self.workers, len(items))
        with obs_trace.span("parallel_map", kind="thread", tasks=len(items),
                            workers=pool_size):
            task = _ObsTask(fn)
            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=pool_size) as pool:
                outcomes = _drain(pool, task, items)
            return _harvest(outcomes, pool_size, time.perf_counter() - t0, "thread")


class ProcessExecutor(Executor):
    """Process-pool executor for Python-bound tasks.

    Tasks must be picklable to cross the process boundary; when they
    are not (lambdas, closures over local state), the map degrades to
    the serial reference path with a :class:`RuntimeWarning` instead of
    failing — the results are identical because sweep tasks are pure.
    """

    def __init__(self, workers: int):
        self.workers = resolve_workers(workers)

    @staticmethod
    def _picklable(*objects) -> bool:
        try:
            for obj in objects:
                pickle.dumps(obj)
        except Exception:
            return False
        return True

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        from repro.parallel import shm as shm_mod

        if shm_mod.shm_enabled():
            return self._map_shm(fn, items)
        if not self._picklable(fn, items):
            warnings.warn(
                "task function or arguments are not picklable; "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(item) for item in items]
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        pool_size = min(self.workers, len(items))
        try:
            with obs_trace.span("parallel_map", kind="process", tasks=len(items),
                                workers=pool_size):
                task = _ObsTask(fn)
                t0 = time.perf_counter()
                with ProcessPoolExecutor(max_workers=pool_size) as pool:
                    outcomes = _drain(pool, task, items)
                return _harvest(outcomes, pool_size, time.perf_counter() - t0, "process")
        except BrokenProcessPool:
            warnings.warn(
                "process pool broke mid-sweep; re-running serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(item) for item in items]

    def _map_shm(self, fn: Callable[[T], R], items: List[T]) -> List[R]:
        """Map via the shared-memory transport (``REPRO_SHM=1``).

        Large arrays in the task function and items ship as
        zero-copy shared segments instead of per-task pickles; see
        :mod:`repro.parallel.shm`.  Falls back to serial execution with
        a warning exactly like the default path when payloads cannot
        be pickled at all.
        """
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        from repro.parallel import shm as shm_mod

        with shm_mod.ShmSession() as session:
            try:
                task = _ObsTask(fn)
                task_blob = shm_mod.dumps(task, session)
                item_blobs = [shm_mod.dumps(item, session) for item in items]
            except Exception:
                warnings.warn(
                    "task function or arguments are not picklable; "
                    "falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return [fn(item) for item in items]
            pool_size = min(self.workers, len(items))
            try:
                with obs_trace.span("parallel_map", kind="process-shm",
                                    tasks=len(items), workers=pool_size):
                    t0 = time.perf_counter()
                    with ProcessPoolExecutor(max_workers=pool_size) as pool:
                        outcomes = _drain(pool, shm_mod.ShmCall(task_blob), item_blobs)
                    return _harvest(
                        outcomes, pool_size, time.perf_counter() - t0, "process-shm"
                    )
            except BrokenProcessPool:
                warnings.warn(
                    "process pool broke mid-sweep; re-running serially",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return [fn(item) for item in items]


def get_executor(
    workers: Optional[int] = None, kind: Optional[str] = None
) -> Executor:
    """Build the executor implied by arguments and environment.

    ``workers`` resolves via :func:`resolve_workers`; one worker yields
    the :class:`SerialExecutor`, more yield the kind selected by the
    ``kind`` argument or ``REPRO_EXECUTOR`` (default ``process``).
    """
    count = resolve_workers(workers)
    if count <= 1:
        return SerialExecutor()
    kind = kind if kind is not None else (knobs.get_str(EXECUTOR_ENV) or "process")
    kind = (kind.strip() or "process").lower()
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(count)
    if kind == "process":
        return ProcessExecutor(count)
    raise ValueError(f"unknown executor kind {kind!r}; use serial, thread or process")


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` on the configured executor."""
    executor = executor if executor is not None else get_executor(workers)
    return executor.map(fn, items)
