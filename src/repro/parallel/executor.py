"""Executor abstraction for embarrassingly-parallel sweeps.

The evaluation plane of this repository — Monte-Carlo robustness
statistics, DSE hidden-size ladders, seed repeats, per-benchmark
experiment rows — is a set of pure, independent tasks.  This module
provides a minimal, deterministic ``map`` abstraction over them:

* :class:`SerialExecutor` — the reference implementation (a list
  comprehension);
* :class:`ThreadExecutor` — threads; useful when the work releases the
  GIL (large NumPy matmuls, the MNA sparse solves);
* :class:`ProcessExecutor` — a :class:`concurrent.futures.ProcessPoolExecutor`
  for Python-bound work (training loops).  Falls back to serial
  execution, with a warning, when the task function or its arguments
  cannot be pickled — results are identical either way because tasks
  are pure.

Worker counts resolve from (in priority order) an explicit argument,
the ``REPRO_WORKERS`` environment variable, and a serial default of 1;
the executor kind resolves from ``REPRO_EXECUTOR``
(``serial`` / ``thread`` / ``process``).  All executors preserve input
order, so parallel and serial runs return bit-identical result lists
for deterministic tasks.
"""

from __future__ import annotations

import os
import pickle
import warnings
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

__all__ = [
    "WORKERS_ENV",
    "EXECUTOR_ENV",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "resolve_workers",
    "get_executor",
    "parallel_map",
]

WORKERS_ENV = "REPRO_WORKERS"
"""Environment variable holding the default worker count."""

EXECUTOR_ENV = "REPRO_EXECUTOR"
"""Environment variable selecting the executor kind for multi-worker
runs: ``serial``, ``thread`` or ``process`` (default ``process``)."""

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``REPRO_WORKERS`` > 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            warnings.warn(
                f"ignoring non-integer {WORKERS_ENV}={raw!r}; running serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


class Executor:
    """Order-preserving ``map`` over independent tasks."""

    workers: int = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """The in-process reference executor."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(item) for item in items]


class ThreadExecutor(Executor):
    """Thread-pool executor for GIL-releasing (NumPy/SciPy-bound) tasks."""

    def __init__(self, workers: int):
        self.workers = resolve_workers(workers)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=min(self.workers, len(items))) as pool:
            return list(pool.map(fn, items))


class ProcessExecutor(Executor):
    """Process-pool executor for Python-bound tasks.

    Tasks must be picklable to cross the process boundary; when they
    are not (lambdas, closures over local state), the map degrades to
    the serial reference path with a :class:`RuntimeWarning` instead of
    failing — the results are identical because sweep tasks are pure.
    """

    def __init__(self, workers: int):
        self.workers = resolve_workers(workers)

    @staticmethod
    def _picklable(*objects) -> bool:
        try:
            for obj in objects:
                pickle.dumps(obj)
        except Exception:
            return False
        return True

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if not self._picklable(fn, items):
            warnings.warn(
                "task function or arguments are not picklable; "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(item) for item in items]
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        try:
            with ProcessPoolExecutor(max_workers=min(self.workers, len(items))) as pool:
                return list(pool.map(fn, items))
        except BrokenProcessPool:
            warnings.warn(
                "process pool broke mid-sweep; re-running serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(item) for item in items]


def get_executor(
    workers: Optional[int] = None, kind: Optional[str] = None
) -> Executor:
    """Build the executor implied by arguments and environment.

    ``workers`` resolves via :func:`resolve_workers`; one worker yields
    the :class:`SerialExecutor`, more yield the kind selected by the
    ``kind`` argument or ``REPRO_EXECUTOR`` (default ``process``).
    """
    count = resolve_workers(workers)
    if count <= 1:
        return SerialExecutor()
    kind = kind if kind is not None else os.environ.get(EXECUTOR_ENV, "process").strip()
    kind = (kind or "process").lower()
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(count)
    if kind == "process":
        return ProcessExecutor(count)
    raise ValueError(f"unknown executor kind {kind!r}; use serial, thread or process")


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` on the configured executor."""
    executor = executor if executor is not None else get_executor(workers)
    return executor.map(fn, items)
