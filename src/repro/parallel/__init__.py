"""Parallel sweep engine: executors + deterministic seeding.

The repository's statistical evaluation plane (Monte-Carlo robustness,
DSE candidate ladders, seed repeats, per-benchmark experiment rows) is
embarrassingly parallel.  This package provides the order-preserving
executor abstraction those sweeps run on and the deterministic
per-task seed derivation that keeps serial and parallel runs
bit-identical.  Configure with ``REPRO_WORKERS`` / ``REPRO_EXECUTOR``
or explicit ``workers=`` arguments; see ``docs/performance.md``.
"""

from repro.parallel.executor import (
    EXECUTOR_ENV,
    WORKERS_ENV,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    parallel_map,
    resolve_workers,
)
from repro.parallel.resilient import (
    TASK_RETRIES_ENV,
    TASK_TIMEOUT_ENV,
    ResilienceReport,
    ResilientResult,
    RetryPolicy,
    TaskError,
    resilient_map,
)
from repro.parallel.seeding import RngLike, derive_seed, derive_seeds, ensure_rng, fresh_rng
from repro.parallel.shm import SHM_ENV, SHM_MIN_BYTES, ShmRef, ShmSession, shm_enabled

__all__ = [
    "SHM_ENV",
    "SHM_MIN_BYTES",
    "ShmRef",
    "ShmSession",
    "shm_enabled",
    "TASK_TIMEOUT_ENV",
    "TASK_RETRIES_ENV",
    "RetryPolicy",
    "TaskError",
    "ResilienceReport",
    "ResilientResult",
    "resilient_map",
    "WORKERS_ENV",
    "EXECUTOR_ENV",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "resolve_workers",
    "get_executor",
    "parallel_map",
    "RngLike",
    "derive_seed",
    "derive_seeds",
    "ensure_rng",
    "fresh_rng",
]
