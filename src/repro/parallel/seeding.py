"""Deterministic per-task seed derivation for parallel sweeps.

Handing ``base_seed + i`` to task ``i`` is fragile: adjacent integer
seeds correlate under some generators, and two sweeps with overlapping
ranges silently share streams.  We derive child seeds through
:class:`numpy.random.SeedSequence` spawn keys instead — well-mixed,
collision-resistant, and (critically for the executor equivalence
guarantee) a pure function of ``(base_seed, index)`` only, so serial
and parallel runs of a sweep see identical seeds regardless of
scheduling order.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = ["derive_seed", "derive_seeds"]


def derive_seed(base_seed: Optional[int], index: int) -> int:
    """Deterministic, well-mixed seed for task ``index`` of a sweep."""
    if index < 0:
        raise ValueError(f"index must be >= 0, got {index}")
    entropy = 0 if base_seed is None else int(base_seed)
    sequence = np.random.SeedSequence(entropy=entropy, spawn_key=(int(index),))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def derive_seeds(base_seed: Optional[int], count: int) -> List[int]:
    """Seeds for tasks ``0..count-1`` of a sweep."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return [derive_seed(base_seed, i) for i in range(count)]
