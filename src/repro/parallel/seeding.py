"""Deterministic seed derivation and the repo's RNG discipline helpers.

Handing ``base_seed + i`` to task ``i`` is fragile: adjacent integer
seeds correlate under some generators, and two sweeps with overlapping
ranges silently share streams.  We derive child seeds through
:class:`numpy.random.SeedSequence` spawn keys instead — well-mixed,
collision-resistant, and (critically for the executor equivalence
guarantee) a pure function of ``(base_seed, index)`` only, so serial
and parallel runs of a sweep see identical seeds regardless of
scheduling order.

This module also owns the two RNG-discipline helpers enforced by
``repro-lint``:

* :func:`fresh_rng` — the only sanctioned way to obtain a generator
  without an explicit seed (RPR001).  It draws entropy from the OS
  once, **logs the drawn seed** through :mod:`repro.obs.log`, and
  returns a generator seeded with it, so even "unseeded" runs are
  replayable from their logs.
* :func:`ensure_rng` — the shared ``Generator | int | None``
  normalization used everywhere a public API accepts a seed-or-rng
  argument (RPR005), replacing the hand-rolled ``isinstance`` blocks
  that used to be copy-pasted across the tree.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.sanitize import rng as sanitize_rng

__all__ = ["RngLike", "derive_seed", "derive_seeds", "ensure_rng", "fresh_rng"]

RngLike = Union[np.random.Generator, np.random.SeedSequence, int, np.integer, None]
"""Anything :func:`ensure_rng` can normalize into a Generator."""


def fresh_rng(label: str = "") -> np.random.Generator:
    """A generator seeded from fresh OS entropy, with the seed logged.

    Library code must never call ``np.random.default_rng()`` with no
    argument (repro-lint RPR001): the generator it returns is
    unrecoverable, so any number influenced by it cannot be replayed.
    This helper derives one 128-bit seed from the OS entropy pool,
    emits it at INFO level (``fields.seed``) through the structured
    log, and seeds the generator with it — rerunning with that seed
    reproduces the stream exactly.

    Parameters
    ----------
    label:
        Caller identification recorded alongside the seed (e.g.
        ``"analog.Comparator"``), so a log with several draws says
        which seed belongs to which component.
    """
    from repro.obs.log import get_logger

    sequence = np.random.SeedSequence()
    seed = int(sequence.entropy if sequence.entropy is not None else 0)
    get_logger("parallel.seeding").info(
        "fresh rng drawn", extra={"fields": {"seed": seed, "label": label or "?"}}
    )
    return np.random.default_rng(seed)


def ensure_rng(rng: RngLike = None, label: str = "") -> np.random.Generator:
    """Normalize a seed-or-generator argument into a Generator.

    * a :class:`~numpy.random.Generator` passes through untouched;
    * ``None`` yields a logged :func:`fresh_rng` (replayable, unlike
      the bare ``default_rng()`` fallbacks it replaces);
    * anything else (int, :class:`~numpy.random.SeedSequence`) seeds a
      new generator deterministically.
    """
    if isinstance(rng, np.random.Generator):
        # ensure_rng is the chokepoint every seed-or-rng argument flows
        # through, so this is where the sanitizer learns which thread
        # consumes which generator (rng-shared race detection).
        sanitize_rng.note_rng(rng, label)
        return rng
    if rng is None:
        return fresh_rng(label)
    return np.random.default_rng(rng)


def derive_seed(base_seed: Optional[int], index: int) -> int:
    """Deterministic, well-mixed seed for task ``index`` of a sweep."""
    if index < 0:
        raise ValueError(f"index must be >= 0, got {index}")
    entropy = 0 if base_seed is None else int(base_seed)
    sequence = np.random.SeedSequence(entropy=entropy, spawn_key=(int(index),))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def derive_seeds(base_seed: Optional[int], count: int) -> List[int]:
    """Seeds for tasks ``0..count-1`` of a sweep."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return [derive_seed(base_seed, i) for i in range(count)]
