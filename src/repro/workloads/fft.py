"""FFT benchmark: radix-2 FFT substrate + twiddle-factor approximation.

The NPU suite's ``fft`` workload replaces the twiddle computation
inside a radix-2 Cooley-Tukey FFT with a 1x8x2 neural network: one
input (the normalized angle fraction ``x`` in ``(0, 1)``) and two
outputs (the real and imaginary twiddle components ``cos(2 pi x)`` and
``-sin(2 pi x)``).  Error metric: average relative error (Table 1).

This module provides:

* :func:`radix2_fft` — a from-scratch recursive radix-2 FFT (the host
  application substrate);
* :func:`twiddle` — the exact kernel the network approximates;
* :func:`approximate_fft` — the FFT with its twiddles served by any
  predictor, used by the examples to demonstrate end-to-end
  approximate computing on the RCS.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.cost.area import Topology
from repro.nn.datasets import UnitScaler
from repro.workloads.base import Benchmark, BenchmarkSpec

__all__ = ["twiddle", "radix2_fft", "approximate_fft", "FFTBenchmark"]


def twiddle(fraction: np.ndarray) -> np.ndarray:
    """Exact twiddle kernel: fraction x -> (cos(2 pi x), -sin(2 pi x)).

    ``fraction`` has shape ``(n, 1)`` (or ``(n,)``); returns ``(n, 2)``.
    """
    fraction = np.asarray(fraction, dtype=float).reshape(-1)
    angle = 2.0 * np.pi * fraction
    return np.column_stack([np.cos(angle), -np.sin(angle)])


def radix2_fft(signal: np.ndarray) -> np.ndarray:
    """Recursive radix-2 Cooley-Tukey FFT (power-of-two length)."""
    signal = np.asarray(signal, dtype=complex)
    n = signal.shape[0]
    if n == 0 or n & (n - 1):
        raise ValueError(f"signal length must be a power of two, got {n}")
    if n == 1:
        return signal.copy()
    even = radix2_fft(signal[0::2])
    odd = radix2_fft(signal[1::2])
    k = np.arange(n // 2)
    tw = twiddle(k / n)
    factors = tw[:, 0] + 1j * tw[:, 1]
    return np.concatenate([even + factors * odd, even - factors * odd])


def approximate_fft(
    signal: np.ndarray,
    twiddle_fn: Callable[[np.ndarray], np.ndarray],
) -> np.ndarray:
    """Radix-2 FFT whose twiddle factors come from ``twiddle_fn``.

    ``twiddle_fn`` maps fractions ``(m, 1)`` to ``(m, 2)`` twiddle
    pairs — pass an RCS/MEI predictor pipeline to run the paper's
    approximate-computing scenario.
    """
    signal = np.asarray(signal, dtype=complex)
    n = signal.shape[0]
    if n == 0 or n & (n - 1):
        raise ValueError(f"signal length must be a power of two, got {n}")
    if n == 1:
        return signal.copy()
    even = approximate_fft(signal[0::2], twiddle_fn)
    odd = approximate_fft(signal[1::2], twiddle_fn)
    k = np.arange(n // 2)
    tw = np.asarray(twiddle_fn((k / n).reshape(-1, 1)), dtype=float)
    factors = tw[:, 0] + 1j * tw[:, 1]
    return np.concatenate([even + factors * odd, even - factors * odd])


class FFTBenchmark(Benchmark):
    """Twiddle-factor approximation, topology 1x8x2 (Table 1)."""

    def __init__(self) -> None:
        self.spec = BenchmarkSpec(
            name="fft",
            application="Signal Processing",
            topology=Topology(inputs=1, hidden=8, outputs=2),
            metric="average_relative_error",
        )

    def generate(self, n: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        x = rng.uniform(0.0, 1.0, size=(n, 1))
        return x, twiddle(x)

    def scalers(self) -> Tuple[UnitScaler, UnitScaler]:
        # Inputs already live in (0, 1); outputs are in [-1, 1].  A
        # small output margin keeps sigmoid targets off the rails.
        in_scaler = UnitScaler(low=np.zeros(1), high=np.ones(1))
        out_scaler = UnitScaler(low=-np.ones(2), high=np.ones(2), margin=0.05)
        return in_scaler, out_scaler
