"""Benchmark registry plus the paper's Table 1 reference numbers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cost.area import MEITopology
from repro.workloads.base import Benchmark
from repro.workloads.fft import FFTBenchmark
from repro.workloads.inversek2j import InverseK2JBenchmark
from repro.workloads.jmeint import JmeintBenchmark
from repro.workloads.jpeg import JPEGBenchmark
from repro.workloads.kmeans import KMeansBenchmark
from repro.workloads.sobel import SobelBenchmark

__all__ = ["make_benchmark", "all_benchmarks", "BENCHMARK_NAMES", "PaperRow", "PAPER_TABLE1"]

_FACTORIES = {
    "fft": FFTBenchmark,
    "inversek2j": InverseK2JBenchmark,
    "jmeint": JmeintBenchmark,
    "jpeg": JPEGBenchmark,
    "kmeans": KMeansBenchmark,
    "sobel": SobelBenchmark,
}

BENCHMARK_NAMES = tuple(_FACTORIES)


def make_benchmark(name: str) -> Benchmark:
    """Instantiate a benchmark by its Table 1 name."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise ValueError(f"unknown benchmark {name!r}; known: {sorted(_FACTORIES)}") from None


def all_benchmarks() -> List[Benchmark]:
    """All six benchmarks in Table 1 order."""
    return [factory() for factory in _FACTORIES.values()]


@dataclass(frozen=True)
class PaperRow:
    """The published Table 1 numbers for one benchmark."""

    name: str
    pruned_mei: MEITopology
    mse_digital: float
    mse_adda: float
    mse_mei: float
    error_digital: float
    error_adda: float
    error_mei: float
    area_saved: float
    power_saved: float


PAPER_TABLE1: Dict[str, PaperRow] = {
    "fft": PaperRow(
        name="fft",
        pruned_mei=MEITopology(in_ports=7, hidden=16, out_ports=16, in_groups=1, out_groups=2),
        mse_digital=0.0046, mse_adda=0.0071, mse_mei=0.0052,
        error_digital=0.0603, error_adda=0.1072, error_mei=0.0887,
        area_saved=0.7424, power_saved=0.8723,
    ),
    "inversek2j": PaperRow(
        name="inversek2j",
        pruned_mei=MEITopology(in_ports=16, hidden=32, out_ports=16, in_groups=2, out_groups=2),
        mse_digital=0.0038, mse_adda=0.0053, mse_mei=0.0067,
        error_digital=0.0657, error_adda=0.0907, error_mei=0.1045,
        area_saved=0.5463, power_saved=0.7373,
    ),
    "jmeint": PaperRow(
        name="jmeint",
        pruned_mei=MEITopology(in_ports=108, hidden=64, out_ports=2, in_groups=18, out_groups=2),
        mse_digital=0.0117, mse_adda=0.0258, mse_mei=0.0262,
        error_digital=0.0719, error_adda=0.0950, error_mei=0.0996,
        area_saved=0.6967, power_saved=0.6182,
    ),
    "jpeg": PaperRow(
        name="jpeg",
        pruned_mei=MEITopology(in_ports=384, hidden=64, out_ports=448, in_groups=64, out_groups=64),
        mse_digital=0.0081, mse_adda=0.0153, mse_mei=0.0142,
        error_digital=0.0689, error_adda=0.1144, error_mei=0.0973,
        area_saved=0.8614, power_saved=0.7958,
    ),
    "kmeans": PaperRow(
        name="kmeans",
        pruned_mei=MEITopology(in_ports=36, hidden=32, out_ports=8, in_groups=6, out_groups=1),
        mse_digital=0.0052, mse_adda=0.0081, mse_mei=0.0094,
        error_digital=0.0359, error_adda=0.0759, error_mei=0.0813,
        area_saved=0.6700, power_saved=0.7025,
    ),
    "sobel": PaperRow(
        name="sobel",
        pruned_mei=MEITopology(in_ports=54, hidden=16, out_ports=1, in_groups=9, out_groups=1),
        mse_digital=0.0024, mse_adda=0.0028, mse_mei=0.0026,
        error_digital=0.0371, error_adda=0.0400, error_mei=0.0377,
        area_saved=0.8599, power_saved=0.8680,
    ),
}
"""Published Table 1 rows, used by the calibration fit and the
experiment harness's paper-vs-measured reports.  The pruned MEI
topologies decode the paper's ``(D . B)`` notation into port counts."""
