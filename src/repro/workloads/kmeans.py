"""K-Means benchmark: RGB distance kernel + Lloyd clustering substrate.

The NPU suite's ``kmeans`` workload approximates the Euclidean
distance computation inside k-means image segmentation with a 6x20x1
network: inputs are a pixel's RGB triple and a centroid's RGB triple,
output their distance.  Error metric: image diff on the segmented
image.

Substrate implemented from scratch:

* :func:`rgb_distance` — the exact kernel;
* :class:`KMeansClusterer` — full Lloyd's algorithm with k-means++
  style seeding, accepting a pluggable distance function so an
  RCS/MEI predictor can drive the segmentation end to end;
* :func:`segment_image` — cluster an RGB image and paint each pixel
  with its centroid color (what the image-diff metric compares).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.cost.area import Topology
from repro.nn.datasets import UnitScaler
from repro.parallel.seeding import ensure_rng
from repro.workloads.base import Benchmark, BenchmarkSpec

__all__ = ["rgb_distance", "KMeansClusterer", "segment_image", "synthetic_rgb_image",
           "KMeansBenchmark", "MAX_DISTANCE"]

MAX_DISTANCE = float(np.sqrt(3.0) * 255.0)
"""Largest possible RGB Euclidean distance."""

DistanceFn = Callable[[np.ndarray], np.ndarray]
"""Maps (n, 6) [pixel RGB | centroid RGB] rows to (n, 1) distances."""


def rgb_distance(pairs: np.ndarray) -> np.ndarray:
    """Exact kernel: ``(n, 6)`` pixel/centroid pairs -> ``(n, 1)``."""
    pairs = np.atleast_2d(np.asarray(pairs, dtype=float))
    if pairs.shape[1] != 6:
        raise ValueError(f"expected 6 features per row, got {pairs.shape[1]}")
    diff = pairs[:, :3] - pairs[:, 3:]
    return np.sqrt(np.sum(diff * diff, axis=1, keepdims=True))


class KMeansClusterer:
    """Lloyd's algorithm with a pluggable distance kernel.

    Parameters
    ----------
    k:
        Number of clusters.
    distance_fn:
        Kernel mapping ``(n, 6)`` pairs to ``(n, 1)`` distances;
        defaults to the exact :func:`rgb_distance`.  Passing an
        RCS/MEI predictor reproduces the paper's approximate pipeline.
    max_iterations:
        Lloyd iteration budget.
    """

    def __init__(
        self,
        k: int = 4,
        distance_fn: Optional[DistanceFn] = None,
        max_iterations: int = 20,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self.k = k
        self.distance_fn = distance_fn if distance_fn is not None else rgb_distance
        self.max_iterations = max_iterations
        self.centroids: Optional[np.ndarray] = None

    def _pairwise(self, points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """Distance matrix ``(n, k)`` via the pluggable kernel."""
        n, k = points.shape[0], centroids.shape[0]
        pairs = np.concatenate(
            [
                np.repeat(points, k, axis=0),
                np.tile(centroids, (n, 1)),
            ],
            axis=1,
        )
        return np.asarray(self.distance_fn(pairs), dtype=float).reshape(n, k)

    def _seed(self, points: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ style seeding using exact distances."""
        centroids = [points[rng.integers(len(points))]]
        for _ in range(1, self.k):
            d2 = np.min(
                [np.sum((points - c) ** 2, axis=1) for c in centroids], axis=0
            )
            total = d2.sum()
            if total <= 0:
                centroids.append(points[rng.integers(len(points))])
                continue
            centroids.append(points[rng.choice(len(points), p=d2 / total)])
        return np.array(centroids, dtype=float)

    def fit(
        self, points: np.ndarray, rng: "np.random.Generator | int | None" = None
    ) -> "KMeansClusterer":
        """Run Lloyd's algorithm on ``(n, 3)`` RGB points."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[1] != 3:
            raise ValueError(f"expected RGB points, got {points.shape[1]} features")
        if len(points) < self.k:
            raise ValueError(f"need at least k={self.k} points, got {len(points)}")
        rng = ensure_rng(rng, "workloads.KMeansClusterer")
        centroids = self._seed(points, rng)
        for _ in range(self.max_iterations):
            labels = np.argmin(self._pairwise(points, centroids), axis=1)
            new_centroids = centroids.copy()
            for j in range(self.k):
                members = points[labels == j]
                if len(members):
                    new_centroids[j] = members.mean(axis=0)
            if np.allclose(new_centroids, centroids):
                centroids = new_centroids
                break
            centroids = new_centroids
        self.centroids = centroids
        return self

    def assign(self, points: np.ndarray) -> np.ndarray:
        """Nearest-centroid labels for ``(n, 3)`` points."""
        if self.centroids is None:
            raise RuntimeError("fit() must run before assign()")
        points = np.atleast_2d(np.asarray(points, dtype=float))
        return np.argmin(self._pairwise(points, self.centroids), axis=1)


def synthetic_rgb_image(
    height: int, width: int, rng: np.random.Generator, n_regions: int = 5
) -> np.ndarray:
    """Piecewise-colored RGB image with noise, shape ``(h, w, 3)``."""
    img = np.empty((height, width, 3))
    base_colors = rng.uniform(0.0, 255.0, size=(n_regions, 3))
    yy, xx = np.mgrid[0:height, 0:width]
    region = np.zeros((height, width), dtype=int)
    for i in range(1, n_regions):
        cy, cx = rng.uniform(0, height), rng.uniform(0, width)
        r = rng.uniform(min(height, width) / 6, min(height, width) / 2)
        mask = (yy - cy) ** 2 + (xx - cx) ** 2 < r * r
        region[mask] = i
    img = base_colors[region] + rng.normal(0.0, 10.0, size=(height, width, 3))
    return np.clip(img, 0.0, 255.0)


def segment_image(
    image: np.ndarray,
    k: int = 4,
    distance_fn: Optional[DistanceFn] = None,
    rng: "np.random.Generator | int | None" = 0,
    max_iterations: int = 10,
) -> np.ndarray:
    """Cluster an RGB image and paint pixels with centroid colors."""
    image = np.asarray(image, dtype=float)
    points = image.reshape(-1, 3)
    clusterer = KMeansClusterer(k=k, distance_fn=distance_fn, max_iterations=max_iterations)
    clusterer.fit(points, rng)
    labels = clusterer.assign(points)
    return clusterer.centroids[labels].reshape(image.shape)


class KMeansBenchmark(Benchmark):
    """RGB distance approximation, topology 6x20x1 (Table 1)."""

    def __init__(self) -> None:
        self.spec = BenchmarkSpec(
            name="kmeans",
            application="Machine Learning",
            topology=Topology(inputs=6, hidden=20, outputs=1),
            metric="image_diff",
        )

    def generate(self, n: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        # Pixel/centroid pairs drawn from clustered synthetic images:
        # centroids tend to be near pixels, matching the distances the
        # kernel actually sees inside Lloyd iterations.
        pixels = synthetic_rgb_image(32, 32, rng).reshape(-1, 3)
        pixel_rows = pixels[rng.integers(0, len(pixels), size=n)]
        near = rng.random(n) < 0.5
        centroid_rows = rng.uniform(0.0, 255.0, size=(n, 3))
        jitter = rng.normal(0.0, 40.0, size=(n, 3))
        centroid_rows[near] = np.clip(pixel_rows[near] + jitter[near], 0.0, 255.0)
        pairs = np.concatenate([pixel_rows, centroid_rows], axis=1)
        return pairs, rgb_distance(pairs)

    def scalers(self) -> Tuple[UnitScaler, UnitScaler]:
        in_scaler = UnitScaler(low=np.zeros(6), high=np.full(6, 255.0))
        out_scaler = UnitScaler(low=np.zeros(1), high=np.array([MAX_DISTANCE]), margin=0.02)
        return in_scaler, out_scaler

    def error(self, predicted_raw: np.ndarray, target_raw: np.ndarray) -> float:
        """Image diff normalized by the maximum RGB distance."""
        return self.metric_fn(predicted_raw, target_raw, value_range=MAX_DISTANCE)
