"""The six NPU-suite benchmarks, rebuilt from scratch (Table 1)."""

from repro.workloads.base import Benchmark, BenchmarkSpec, Dataset
from repro.workloads.expfit import ExpFitBenchmark, gaussian_kernel
from repro.workloads.fft import FFTBenchmark, approximate_fft, radix2_fft, twiddle
from repro.workloads.inversek2j import (
    InverseK2JBenchmark,
    forward_kinematics,
    inverse_kinematics,
)
from repro.workloads.jmeint import JmeintBenchmark, triangles_intersect
from repro.workloads.jpeg import (
    JPEGBenchmark,
    block_dct,
    block_idct,
    blocks_to_image,
    codec_roundtrip,
    image_to_blocks,
    quantization_table,
    synthetic_image,
    zigzag_indices,
)
from repro.workloads.kmeans import (
    KMeansBenchmark,
    KMeansClusterer,
    rgb_distance,
    segment_image,
    synthetic_rgb_image,
)
from repro.workloads.registry import (
    BENCHMARK_NAMES,
    PAPER_TABLE1,
    PaperRow,
    all_benchmarks,
    make_benchmark,
)
from repro.workloads.sobel import SobelBenchmark, extract_windows, sobel_image, sobel_window

__all__ = [
    "Benchmark",
    "BenchmarkSpec",
    "Dataset",
    "ExpFitBenchmark",
    "gaussian_kernel",
    "FFTBenchmark",
    "InverseK2JBenchmark",
    "JmeintBenchmark",
    "JPEGBenchmark",
    "KMeansBenchmark",
    "SobelBenchmark",
    "twiddle",
    "radix2_fft",
    "approximate_fft",
    "forward_kinematics",
    "inverse_kinematics",
    "triangles_intersect",
    "block_dct",
    "block_idct",
    "codec_roundtrip",
    "quantization_table",
    "zigzag_indices",
    "synthetic_image",
    "image_to_blocks",
    "blocks_to_image",
    "rgb_distance",
    "KMeansClusterer",
    "segment_image",
    "synthetic_rgb_image",
    "sobel_window",
    "sobel_image",
    "extract_windows",
    "make_benchmark",
    "all_benchmarks",
    "BENCHMARK_NAMES",
    "PaperRow",
    "PAPER_TABLE1",
]
