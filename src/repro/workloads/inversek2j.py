"""Inversek2j benchmark: 2-joint arm inverse kinematics.

The NPU suite's ``inversek2j`` workload replaces the closed-form
inverse kinematics of a planar 2-joint robotic arm with a 2x8x2
network: inputs are the end-effector coordinates ``(x, y)``, outputs
the joint angles ``(theta1, theta2)``.  Error metric: average relative
error.

Substrate implemented here:

* :func:`forward_kinematics` — exact forward model (used both to
  generate reachable targets and to validate IK solutions);
* :func:`inverse_kinematics` — exact closed-form (law of cosines)
  elbow-down solution, the oracle the network learns.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.cost.area import Topology
from repro.nn.datasets import UnitScaler
from repro.workloads.base import Benchmark, BenchmarkSpec

__all__ = ["forward_kinematics", "inverse_kinematics", "InverseK2JBenchmark"]

LINK1 = 0.5
"""Length of the shoulder link (metres)."""

LINK2 = 0.5
"""Length of the elbow link (metres)."""


def forward_kinematics(theta: np.ndarray, l1: float = LINK1, l2: float = LINK2) -> np.ndarray:
    """Joint angles ``(n, 2)`` -> end-effector positions ``(n, 2)``."""
    theta = np.atleast_2d(np.asarray(theta, dtype=float))
    t1 = theta[:, 0]
    t12 = theta[:, 0] + theta[:, 1]
    x = l1 * np.cos(t1) + l2 * np.cos(t12)
    y = l1 * np.sin(t1) + l2 * np.sin(t12)
    return np.column_stack([x, y])


def inverse_kinematics(position: np.ndarray, l1: float = LINK1, l2: float = LINK2) -> np.ndarray:
    """End-effector positions ``(n, 2)`` -> elbow-down joint angles.

    Unreachable targets are clipped to the workspace boundary (the
    benchmark generator only emits reachable points, so clipping only
    guards numerical round-off).
    """
    position = np.atleast_2d(np.asarray(position, dtype=float))
    x, y = position[:, 0], position[:, 1]
    d2 = x * x + y * y
    cos_t2 = (d2 - l1 * l1 - l2 * l2) / (2.0 * l1 * l2)
    cos_t2 = np.clip(cos_t2, -1.0, 1.0)
    t2 = np.arccos(cos_t2)
    k1 = l1 + l2 * np.cos(t2)
    k2 = l2 * np.sin(t2)
    t1 = np.arctan2(y, x) - np.arctan2(k2, k1)
    return np.column_stack([t1, t2])


class InverseK2JBenchmark(Benchmark):
    """Inverse kinematics approximation, topology 2x8x2 (Table 1)."""

    def __init__(self) -> None:
        self.spec = BenchmarkSpec(
            name="inversek2j",
            application="Robotics",
            topology=Topology(inputs=2, hidden=8, outputs=2),
            metric="average_relative_error",
        )

    def generate(self, n: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        # Sample angles in the first-quadrant-ish workspace the NPU
        # benchmark uses: theta1 in (0, pi/2), theta2 in (0, pi/2);
        # positions follow from forward kinematics so every sample is
        # reachable and the oracle IK recovers the angles exactly.
        theta = rng.uniform(0.0, np.pi / 2.0, size=(n, 2))
        positions = forward_kinematics(theta)
        return positions, inverse_kinematics(positions)

    def scalers(self) -> Tuple[UnitScaler, UnitScaler]:
        reach = LINK1 + LINK2
        in_scaler = UnitScaler(low=np.array([-reach, -reach]), high=np.array([reach, reach]))
        out_scaler = UnitScaler(
            low=np.zeros(2), high=np.array([np.pi / 2.0, np.pi / 2.0]), margin=0.05
        )
        return in_scaler, out_scaler
