"""The paper's motivation workload: fitting ``f(x) = exp(-x**2)``.

Sec. 3.1 / Fig. 3 use a ``1 x N x 1`` RCS that performs approximate
computing by fitting ``f(x) = exp(-x**2)`` on 10,000 random training
samples in ``(0, 1)`` and 1,000 test samples.  This workload drives
the Fig. 3 hidden-size sweep and the quickstart example; it is not
part of the Table 1 suite.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.cost.area import Topology
from repro.nn.datasets import UnitScaler
from repro.workloads.base import Benchmark, BenchmarkSpec

__all__ = ["gaussian_kernel", "ExpFitBenchmark"]


def gaussian_kernel(x: np.ndarray) -> np.ndarray:
    """Exact kernel ``exp(-x**2)`` on ``(n, 1)`` inputs."""
    x = np.asarray(x, dtype=float).reshape(-1, 1)
    return np.exp(-x * x)


class ExpFitBenchmark(Benchmark):
    """Approximate computing of exp(-x^2), topology 1xNx1 (Fig. 3)."""

    def __init__(self, hidden: int = 8) -> None:
        if hidden < 1:
            raise ValueError(f"hidden must be >= 1, got {hidden}")
        self.spec = BenchmarkSpec(
            name="expfit",
            application="Approximate Computing",
            topology=Topology(inputs=1, hidden=hidden, outputs=1),
            metric="average_relative_error",
        )

    def generate(self, n: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        x = rng.uniform(0.0, 1.0, size=(n, 1))
        return x, gaussian_kernel(x)

    def scalers(self) -> Tuple[UnitScaler, UnitScaler]:
        in_scaler = UnitScaler(low=np.zeros(1), high=np.ones(1))
        # exp(-x^2) on (0, 1) spans (exp(-1), 1).
        out_scaler = UnitScaler(
            low=np.array([np.exp(-1.0)]), high=np.ones(1), margin=0.05
        )
        return in_scaler, out_scaler
