"""Sobel benchmark: 3x3 gradient-magnitude kernel + edge-map substrate.

The NPU suite's ``sobel`` workload approximates the Sobel edge
detector's per-window computation with a 9x8x1 network: input is a
3x3 grayscale window (row-major), output the clamped gradient
magnitude.  Error metric: image diff on the edge map.

Substrate implemented from scratch:

* :func:`sobel_window` — the exact kernel on ``(n, 9)`` windows;
* :func:`sobel_image` — full-image edge map via window extraction
  (reflect padding), accepting a pluggable window kernel so the RCS
  pipeline can be dropped in;
* :func:`extract_windows` — im2col-style 3x3 window extraction.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.cost.area import Topology
from repro.nn.datasets import UnitScaler
from repro.workloads.base import Benchmark, BenchmarkSpec
from repro.workloads.jpeg import synthetic_image

__all__ = ["SOBEL_X", "SOBEL_Y", "sobel_window", "extract_windows", "sobel_image",
           "SobelBenchmark", "MAX_MAGNITUDE"]

SOBEL_X = np.array([[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]])
SOBEL_Y = SOBEL_X.T.copy()

MAX_MAGNITUDE = 255.0
"""The kernel clamps gradient magnitudes to the pixel range."""

WindowFn = Callable[[np.ndarray], np.ndarray]
"""Maps (n, 9) windows to (n, 1) magnitudes."""


def sobel_window(windows: np.ndarray) -> np.ndarray:
    """Exact kernel: ``(n, 9)`` row-major 3x3 windows -> ``(n, 1)``.

    Magnitude ``sqrt(gx^2 + gy^2)`` clamped to ``[0, 255]`` (the NPU
    benchmark clamps so the output fits a pixel).
    """
    windows = np.atleast_2d(np.asarray(windows, dtype=float))
    if windows.shape[1] != 9:
        raise ValueError(f"expected 9 pixels per window, got {windows.shape[1]}")
    gx = windows @ SOBEL_X.reshape(-1)
    gy = windows @ SOBEL_Y.reshape(-1)
    mag = np.sqrt(gx * gx + gy * gy)
    return np.clip(mag, 0.0, MAX_MAGNITUDE).reshape(-1, 1)


def extract_windows(image: np.ndarray) -> np.ndarray:
    """All 3x3 windows of an image with reflect padding, ``(h*w, 9)``."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"expected a grayscale image, got shape {image.shape}")
    padded = np.pad(image, 1, mode="reflect")
    h, w = image.shape
    windows = np.empty((h, w, 9))
    idx = 0
    for dy in range(3):
        for dx in range(3):
            windows[:, :, idx] = padded[dy : dy + h, dx : dx + w]
            idx += 1
    return windows.reshape(h * w, 9)


def sobel_image(image: np.ndarray, window_fn: Optional[WindowFn] = None) -> np.ndarray:
    """Edge map of a grayscale image via a pluggable window kernel."""
    image = np.asarray(image, dtype=float)
    fn = window_fn if window_fn is not None else sobel_window
    windows = extract_windows(image)
    return np.asarray(fn(windows), dtype=float).reshape(image.shape)


class SobelBenchmark(Benchmark):
    """Gradient magnitude approximation, topology 9x8x1 (Table 1)."""

    def __init__(self) -> None:
        self.spec = BenchmarkSpec(
            name="sobel",
            application="Image Processing",
            topology=Topology(inputs=9, hidden=8, outputs=1),
            metric="image_diff",
        )

    def generate(self, n: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        # Low-texture images: photographic content has correlated
        # pixels, so the gradient field is dominated by real edges
        # rather than per-pixel noise (heavy texture would make the
        # window->magnitude mapping mostly irreducible noise for the
        # paper's 9x8x1 topology).
        windows = []
        while sum(w.shape[0] for w in windows) < n:
            img = synthetic_image(48, 48, rng, texture=2.0)
            w = extract_windows(img)
            windows.append(w[rng.permutation(len(w))])
        all_windows = np.concatenate(windows)[:n]
        return all_windows, sobel_window(all_windows)

    def scalers(self) -> Tuple[UnitScaler, UnitScaler]:
        in_scaler = UnitScaler(low=np.zeros(9), high=np.full(9, 255.0))
        out_scaler = UnitScaler(low=np.zeros(1), high=np.array([MAX_MAGNITUDE]), margin=0.02)
        return in_scaler, out_scaler

    def error(self, predicted_raw: np.ndarray, target_raw: np.ndarray) -> float:
        """Image diff normalized by the magnitude range."""
        return self.metric_fn(predicted_raw, target_raw, value_range=MAX_MAGNITUDE)
